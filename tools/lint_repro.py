#!/usr/bin/env python3
"""CI entry point for the repro static checks: AST lint + flow analysis.

Usage::

    python tools/lint_repro.py src/repro [more paths...]
    python tools/lint_repro.py --json src/repro       # machine-readable
    python tools/lint_repro.py --flow-only            # analyzer only
    python tools/lint_repro.py --no-flow src/repro    # lint only

Runs two layers and combines their verdicts:

1. the per-file AST lint (:mod:`repro.verify.lint`, rules L001-L004)
   over every path given on the command line;
2. the whole-program determinism & concurrency analyzer
   (:mod:`repro.verify.flow`, rules F000-F103) over the repro package,
   gated against the committed baseline ``tools/flow_baseline.json``.

``--flow-only`` skips layer 1 (paths may then be omitted); ``--no-flow``
skips layer 2.  ``--cache DIR`` reuses extracted module summaries keyed
by file content hash, which keeps CI runs under a minute.

Exit codes
----------
* ``0`` — clean: no lint findings and no unsuppressed flow findings.
* ``1`` — at least one lint finding or unsuppressed flow finding.
* ``2`` — usage or I/O error (missing path, unreadable file).

Bootstraps ``src/`` onto ``sys.path`` so the script works from a bare
checkout (no install needed).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

_REPO = pathlib.Path(__file__).resolve().parent.parent
_SRC = _REPO / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.verify.lint import lint_paths  # noqa: E402


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_repro",
        description="repro static checks: AST lint (L-rules) + "
                    "whole-program flow analysis (F-rules)",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit one JSON payload combining both layers")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--flow-only", action="store_true",
                       help="run only the whole-program flow analyzer")
    group.add_argument("--no-flow", action="store_true",
                       help="run only the AST lint")
    parser.add_argument("--flow-root", metavar="DIR",
                        help="analyze this tree instead of src/repro")
    parser.add_argument("--baseline", metavar="PATH",
                        default=str(_REPO / "tools" / "flow_baseline.json"),
                        help="flow baseline suppression file")
    parser.add_argument("--cache", metavar="DIR",
                        help="flow summary cache directory (content-hash "
                             "keyed; safe to persist across runs)")
    args = parser.parse_args(argv)

    lint_findings = []
    if not args.flow_only:
        paths = args.paths or [str(_SRC / "repro")]
        try:
            lint_findings = lint_paths(paths)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    flow_payload = None
    flow_ok = True
    if not args.no_flow:
        from repro.verify.flow import FlowConfig, analyze_project

        root = args.flow_root or _SRC / "repro"
        try:
            result = analyze_project(root, config=FlowConfig(
                baseline_path=args.baseline, cache_dir=args.cache))
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        flow_payload = result.to_payload()
        flow_ok = result.ok

    if args.as_json:
        print(json.dumps({
            "ok": not lint_findings and flow_ok,
            "lint": [f.to_dict() for f in lint_findings],
            "flow": flow_payload,
        }, indent=2))
    else:
        for finding in lint_findings:
            print(finding)
        if lint_findings:
            print(f"{len(lint_findings)} lint finding(s)")
        if flow_payload is not None:
            for f in flow_payload["findings"]:
                d = f["details"]
                print(f"{d.get('path')}:{d.get('line')}: {f['rule']} "
                      f"{f['message']}")
            counts = flow_payload["classification_counts"]
            print(f"flow: {flow_payload['files']} file(s), "
                  f"{flow_payload['functions']} function(s) "
                  f"[{counts['pure']} pure, {counts['deterministic']} "
                  f"deterministic, {counts['tainted']} tainted], "
                  f"{len(flow_payload['findings'])} finding(s), "
                  f"{len(flow_payload['suppressed'])} suppressed")
    return 1 if (lint_findings or not flow_ok) else 0


if __name__ == "__main__":
    sys.exit(main())
