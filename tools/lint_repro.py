#!/usr/bin/env python3
"""CI entry point for the repro custom lint.

Usage::

    python tools/lint_repro.py src/repro [more paths...]

Bootstraps ``src/`` onto ``sys.path`` so the script works from a bare
checkout (no install needed), then delegates to
:func:`repro.verify.lint.main`.  Exit code 1 iff findings.
"""

from __future__ import annotations

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.verify.lint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
