"""Legacy setup shim.

This environment has no ``wheel`` package and no network access, so
PEP 660 editable installs fail; with this shim ``pip install -e .``
falls back to ``setup.py develop``, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "DelayStage: stage delay scheduling for DAG-style data analytics "
        "jobs (ICPP 2019 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
