#!/usr/bin/env python3
"""Fig. 10 in miniature: the four benchmark workloads under stock
Spark, AggShuffle, and DelayStage on the 30-node EC2 cluster.

Prints the JCT comparison plus each workload's delay table and the
calculator's runtime overhead (Sec. 5.4).

Run:  python examples/workload_comparison.py      (~1 minute)
"""

from repro import (
    AggShuffleScheduler,
    DelayStageScheduler,
    StockSparkScheduler,
    WORKLOADS,
    compare_schedulers,
    ec2_m4large_cluster,
)
from repro.analysis import render_table


def main() -> None:
    cluster = ec2_m4large_cluster()
    rows = []
    details = []
    for name, ctor in WORKLOADS.items():
        job = ctor()
        runs = compare_schedulers(
            job,
            cluster,
            [
                StockSparkScheduler(track_metrics=False),
                AggShuffleScheduler(track_metrics=False),
                DelayStageScheduler(profiled=False, track_metrics=False),
            ],
        )
        spark, agg, ds = (runs[k].jct for k in ("spark", "aggshuffle", "delaystage"))
        rows.append([name, spark, agg, ds, f"{1 - ds / spark:.1%}"])
        schedule = runs["delaystage"].info["schedule"]
        details.append(
            (name,
             {s: round(x, 1) for s, x in schedule.delays.items() if x > 0},
             schedule.compute_seconds * 1000)
        )

    print(render_table(
        ["workload", "spark(s)", "aggshuffle(s)", "delaystage(s)", "gain"],
        rows,
        title="Fig. 10 — job completion time by stage-scheduling strategy",
    ))
    print("\nDelayStage decisions (Sec. 5.4 overhead):")
    for name, delays, ms in details:
        print(f"  {name:22s} delays {delays}  — computed in {ms:.0f} ms")


if __name__ == "__main__":
    main()
