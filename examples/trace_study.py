#!/usr/bin/env python3
"""Trace-driven study: the statistical twin of the Alibaba trace.

Reproduces the paper's trace analysis (Sec. 2.1, Figs. 2-3) on the
synthetic twin, then replays a job sample through the simulator under
the Fuxi baseline and DelayStage (Fig. 14 in miniature).

Run:  python examples/trace_study.py     (~1 minute)
"""

import numpy as np

from repro import DelayStageScheduler, FuxiScheduler, alibaba_sim_cluster
from repro.analysis import render_cdf, render_table
from repro.core import DelayStageParams
from repro.schedulers import run_with_scheduler
from repro.trace import (
    TraceGeneratorConfig,
    generate_trace,
    parallel_makespan_fraction,
    stage_count_summary,
    to_job,
)

PENALTY = 0.5  # contention-inefficiency knob used for trace replay


def main() -> None:
    # 1. Generate the twin and verify the paper's headline statistics.
    trace = generate_trace(TraceGeneratorConfig(num_jobs=800, replay_workers=3), rng=1)
    summary = stage_count_summary(trace)
    print("Sec. 2.1 statistics (paper value in parentheses):")
    print(f"  jobs with parallel stages: {summary.fraction_jobs_with_parallel:.1%} (68.6 %)")
    print(f"  parallel share of stages:  {summary.parallel_stage_fraction:.1%} (79.1 %)")
    fr = np.array([f for f in map(parallel_makespan_fraction, trace) if f > 0])
    print(f"  mean parallel-makespan/JCT: {fr.mean():.1%} (82.3 %)\n")

    # Fig. 2: stage-count CDFs.
    print(render_cdf(
        {"stages/job": summary.stages_per_job,
         "parallel/job": summary.parallel_per_job},
        title="Fig. 2 — stage counts per job",
    ))

    # 2. Replay a sample under Fuxi vs DelayStage (Fig. 14 in miniature).
    cluster = alibaba_sim_cluster(
        num_machines=3, storage_nodes=1, nic_mbps_range=(600, 2000), rng=0
    )
    sample = [j for j in trace if j.num_stages <= 40][:60]
    fuxi = FuxiScheduler(track_metrics=False, contention_penalty=PENALTY)
    delay = DelayStageScheduler(
        profiled=False, track_metrics=False, contention_penalty=PENALTY,
        params=DelayStageParams(max_slots=12),
    )
    jct = {"fuxi": [], "delaystage": []}
    for tj in sample:
        job = to_job(tj)
        jct["fuxi"].append(run_with_scheduler(job, cluster, fuxi).jct)
        jct["delaystage"].append(run_with_scheduler(job, cluster, delay).jct)

    rows = [
        [name, float(np.mean(v)), float(np.median(v)), float(np.percentile(v, 90))]
        for name, v in jct.items()
    ]
    print()
    print(render_table(
        ["strategy", "mean JCT(s)", "median(s)", "p90(s)"],
        rows,
        title=f"Fig. 14 (sampled) — {len(sample)} trace jobs replayed",
    ))
    gain = 1 - np.mean(jct["delaystage"]) / np.mean(jct["fuxi"])
    print(f"\nDelayStage reduces mean JCT by {gain:.1%} vs Fuxi (paper: 36.6 %)")


if __name__ == "__main__":
    main()
