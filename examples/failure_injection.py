#!/usr/bin/env python3
"""Robustness study: DelayStage under node degradation.

Production clusters are not stable: nodes slow down mid-job (noisy
neighbors, failing disks, congested links).  DelayStage computes its
delays *before* the job runs — so does a degraded node invalidate the
schedule?  This example injects a mid-run NIC/CPU slowdown on one
worker and compares stock Spark against the (healthy-cluster-planned)
DelayStage schedule.

Run:  python examples/failure_injection.py     (~30 s)
"""

from repro import (
    DelayStageParams,
    FixedDelayPolicy,
    Simulation,
    SimulationConfig,
    delay_stage_schedule,
    ec2_m4large_cluster,
    lda,
)
from repro.analysis import render_table


def run(job, cluster, delays, degrade):
    sim = Simulation(cluster, SimulationConfig(track_metrics=False))
    if degrade:
        # At t = 60 s worker w0's NIC drops to 30 % and it loses half
        # its effective compute capacity (e.g. a co-located batch job).
        sim.inject_degradation("w0", 60.0, nic_factor=0.3, executor_factor=0.5)
    sim.add_job(job, FixedDelayPolicy(delays))
    return sim.run().job_completion_time(job.job_id)


def main() -> None:
    cluster = ec2_m4large_cluster()
    job = lda()
    schedule = delay_stage_schedule(job, cluster, DelayStageParams(max_slots=24))
    print(f"delays (planned on the healthy cluster): "
          f"{ {s: round(x, 1) for s, x in schedule.delays.items() if x > 0} }\n")

    rows = []
    for degrade in (False, True):
        stock = run(job, cluster, {}, degrade)
        delayed = run(job, cluster, schedule.delays, degrade)
        label = "w0 degraded at t=60s" if degrade else "healthy cluster"
        rows.append([label, f"{stock:.1f}", f"{delayed:.1f}",
                     f"{1 - delayed / stock:.1%}"])

    print(render_table(
        ["scenario", "stock JCT (s)", "delaystage JCT (s)", "gain"],
        rows,
        title="LDA on 30 EC2 workers — schedule robustness to a straggler node",
    ))
    print("\nThe delays were chosen for the healthy cluster, yet the gain")
    print("survives the straggler: interleaving reduces *contention*, and a")
    print("degraded node suffers less when fewer stages fight over it.")


if __name__ == "__main__":
    main()
