#!/usr/bin/env python3
"""Extending the library: writing a custom submission policy.

Any object with ``delay(job, stage_id, ready_time) -> float`` is a
submission policy the simulator accepts.  This example implements a
naive "jittered" scheduler that staggers parallel stages by a fixed
spacing (no model, no profiling) and compares it against stock Spark
and the real DelayStage on CosineSimilarity — showing that delaying
*blindly* actively hurts (it postpones the long path too), while
choosing which stages to delay and by how much (Algorithm 1) wins.

Run:  python examples/custom_policy.py     (~30 s)
"""

from repro import (
    DelayStageScheduler,
    StockSparkScheduler,
    cosine_similarity,
    ec2_m4large_cluster,
    parallel_stage_set,
    simulate_job,
)
from repro.analysis import render_table
from repro.schedulers import run_with_scheduler
from repro.simulator import SimulationConfig


class StaggerPolicy:
    """Delay the i-th parallel stage by ``i * spacing`` seconds.

    A strawman: it decoheres the synchronized resource phases but,
    knowing nothing about stage durations or paths, it also delays the
    long execution path itself — which directly extends the makespan.
    """

    def __init__(self, job, spacing: float) -> None:
        members = sorted(parallel_stage_set(job))
        self._delays = {sid: i * spacing for i, sid in enumerate(members)}

    def delay(self, job, stage_id: str, ready_time: float) -> float:
        return self._delays.get(stage_id, 0.0)


def main() -> None:
    cluster = ec2_m4large_cluster()
    job = cosine_similarity()

    spark = run_with_scheduler(job, cluster, StockSparkScheduler(track_metrics=False)).jct
    delaystage = run_with_scheduler(
        job, cluster, DelayStageScheduler(profiled=False, track_metrics=False)
    ).jct

    rows = [["spark (no delay)", spark, "0.0%"]]
    cfg = SimulationConfig(track_metrics=False)
    for spacing in (30.0, 90.0, 180.0):
        policy = StaggerPolicy(job, spacing)
        jct = simulate_job(job, cluster, policy, cfg).job_completion_time(job.job_id)
        rows.append([f"stagger({spacing:.0f}s)", jct, f"{1 - jct / spark:.1%}"])
    rows.append(["delaystage", delaystage, f"{1 - delaystage / spark:.1%}"])

    print(render_table(
        ["policy", "JCT(s)", "gain"],
        rows,
        title="CosineSimilarity on 30 EC2 nodes — custom policy vs Algorithm 1",
    ))
    print("\nBlind staggering backfires: it delays the long path too, extending")
    print("the makespan.  Knowing WHICH stages to delay and by HOW MUCH —")
    print("Algorithm 1's whole job — is what turns delays into speedups.")


if __name__ == "__main__":
    main()
