#!/usr/bin/env python3
"""Service demo: stream jobs through the scheduler daemon.

Two modes over the same PR-10 service stack:

* **In-process** (default): build a ``ServiceDaemon`` on a
  ``VirtualClock``, feed it an open-loop Poisson arrival stream from
  the trace twin, and run the whole thing deterministically — zero
  wall-clock sleeps, identical output on every run.  This is the
  smallest complete picture of the streaming path: admission →
  DelayStage delay table per arriving DAG → fluid-simulator dispatch →
  drain.

* **Client driver** (``--url http://127.0.0.1:9470``): drive a live
  ``repro serve`` daemon over HTTP with ``ServiceClient`` — submit
  ``--jobs`` DAGs as fast as the daemon admits them, backing off and
  retrying whenever admission control sheds one, then optionally
  ``--drain``.  The CI ``service`` job uses exactly this mode to push
  500 submissions through a booted daemon.

Run:  python examples/service_demo.py                     (~5 s)
      repro serve --bind 127.0.0.1:9470 &                 (terminal 1)
      python examples/service_demo.py --url 127.0.0.1:9470 \
          --jobs 50 --drain                               (terminal 2)
"""

import argparse
import asyncio
import time

from repro.analysis import render_table
from repro.cluster import alibaba_sim_cluster
from repro.core import DelayStageParams
from repro.schedulers import DelayStageScheduler
from repro.service import (
    AdmissionConfig,
    RejectedSubmission,
    ServiceClient,
    ServiceCore,
    ServiceDaemon,
    VirtualClock,
)
from repro.trace.generator import TraceGeneratorConfig, open_loop_arrivals
from repro.trace.replay import to_job
from repro.workloads.synthetic import random_job


def in_process_demo(num_jobs: int, rate: float, seed: int) -> None:
    """Deterministic end-to-end run on a virtual clock."""
    cluster = alibaba_sim_cluster(num_machines=3, storage_nodes=1,
                                  nic_mbps_range=(600, 2000), rng=0)
    cfg = TraceGeneratorConfig(num_jobs=num_jobs, replay_workers=3,
                               max_stages=24, replay_read_mb_per_sec=85.0)
    schedule = open_loop_arrivals(cfg, rng=seed, rate_jobs_per_s=rate,
                                  num_jobs=num_jobs)
    arrivals = [(t, to_job(tj, cfg)) for t, tj in schedule]
    core = ServiceCore(
        cluster,
        DelayStageScheduler(profiled=False, track_metrics=False,
                            params=DelayStageParams(max_slots=12)),
        slots=2,
        admission=AdmissionConfig(max_pending=8),
    )
    clock = VirtualClock()
    daemon = ServiceDaemon(core, clock, arrivals=arrivals,
                           drain_after=schedule[-1][0])

    async def scenario() -> dict:
        # Virtual time only moves when the driver advances it: the
        # daemon's sleeps resolve instantly, in timestamp order.
        task = asyncio.create_task(daemon.run())
        await clock.run_until(schedule[-1][0] + 1e9)
        return await task

    stats = asyncio.run(scenario())

    counters = stats["counters"]
    rows = [[s, n] for s, n in sorted(stats["states"].items())]
    print(render_table(
        ["state", "jobs"], rows,
        title=(f"in-process serve — {counters['submitted']} submitted, "
               f"{counters['rejected']} shed, peak queue "
               f"{stats['peak_queue_depth']}"),
    ))
    jcts = [j["jct"] for j in daemon.jobs_list() if j.get("jct") is not None]
    if jcts:
        print(f"\nmean JCT {sum(jcts) / len(jcts):.1f}s over "
              f"{len(jcts)} completion(s); virtual service time "
              f"{stats['now']:.1f}s, wall time ~0s")


def drive_daemon(url: str, num_jobs: int, seed: int, drain: bool) -> None:
    """Push ``num_jobs`` submissions through a live daemon over HTTP."""
    client = ServiceClient(url)
    client.healthz()
    submitted = 0
    shed_retries = 0
    for i in range(num_jobs):
        job = random_job(4, job_id=f"demo-{seed}-{i}", rng=seed * 1000 + i)
        while True:
            try:
                client.submit(job)
                submitted += 1
                break
            except RejectedSubmission as exc:
                if exc.rejection.reason != "queue_full":
                    print(f"{job.job_id}: dropped ({exc.rejection.reason})")
                    break
                # Admission control shed the job: back off and retry.
                shed_retries += 1
                time.sleep(0.05)
    stats = client.stats()
    print(f"submitted {submitted}/{num_jobs} "
          f"(retried through {shed_retries} queue_full rejections); "
          f"daemon counters: {stats['counters']}")
    if drain:
        print("draining...", client.drain()["draining"])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default=None,
                        help="drive a live repro serve daemon at this "
                             "address instead of the in-process demo")
    parser.add_argument("--jobs", type=int, default=12)
    parser.add_argument("--rate", type=float, default=0.05,
                        help="open-loop arrival rate (jobs/s, in-process)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--drain", action="store_true",
                        help="ask the remote daemon to drain afterwards")
    args = parser.parse_args()
    if args.url:
        drive_daemon(args.url, args.jobs, args.seed, args.drain)
    else:
        in_process_demo(args.jobs, args.rate, args.seed)


if __name__ == "__main__":
    main()
