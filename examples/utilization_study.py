#!/usr/bin/env python3
"""Fig. 4-style utilization study through the report API.

The paper motivates DelayStage with cluster utilization (Fig. 4): CPUs
sit below 10 % for ~39 % of the time because stages hog one resource at
a time.  This example builds the same picture for a simulated workload
via :func:`repro.obs.interleaving_report` — the machinery behind
``repro report`` — and compares how stock Spark and DelayStage
redistribute time across the utilization bands.

Run:  python examples/utilization_study.py     (~15 s)
"""

from repro import (
    DelayStageScheduler,
    StockSparkScheduler,
    compare_schedulers,
    uniform_cluster,
    workload_by_name,
)
from repro.obs import interleaving_report, render_markdown_report, reports_to_csv


def bar(fraction: float, width: int = 40) -> str:
    n = int(round(fraction * width))
    return "#" * n + "." * (width - n)


def main() -> None:
    cluster = uniform_cluster(3, executors_per_worker=2, nic_mbps=450,
                              disk_mb_per_sec=150, storage_nodes=0)
    job = workload_by_name("ALS", 1.0)

    runs = compare_schedulers(
        job,
        cluster,
        [
            StockSparkScheduler(track_metrics=True),
            DelayStageScheduler(profiled=False, track_metrics=True),
        ],
    )
    reports = {
        name: interleaving_report(run.result, job, label=name)
        for name, run in runs.items()
    }

    # Fig. 4 analogue: the time share each run spends per CPU band.
    # DelayStage drains the lowest band — that time moves into the
    # middle bands because compute now overlaps other stages' shuffles.
    print("CPU utilization bands (share of worker-time):\n")
    for name, rep in reports.items():
        print(f"  {name} (JCT {rep.jct_seconds:.1f} s)")
        for label, frac in zip(rep.cpu_bands.labels(), rep.cpu_bands.fractions):
            print(f"    {label:>7s} %  {bar(frac)} {frac:6.1%}")
        low = rep.cpu_bands.low_fraction
        print(f"    below 10 % for {low:.1%} of the time "
              "(paper's trace: ~39.1 %)\n")

    # The headline interleaving quantities, one line each.
    spark, ds = reports["spark"], reports["delaystage"]
    print(f"stage overlap ratio:     {spark.stage_overlap_ratio:.3f} -> "
          f"{ds.stage_overlap_ratio:.3f}")
    print(f"CPU/net complementarity: {spark.cpu_net_complementarity:.3f} -> "
          f"{ds.cpu_net_complementarity:.3f}")
    print(f"cluster CPU %:           {spark.cluster_cpu_pct:.1f} -> "
          f"{ds.cluster_cpu_pct:.1f}")
    print(f"cluster net %:           {spark.cluster_net_pct:.1f} -> "
          f"{ds.cluster_net_pct:.1f}")
    print(f"delay-wait share:        {spark.delay_wait_share:.1%} -> "
          f"{ds.delay_wait_share:.1%}")

    # The full comparison, as `repro report` renders it.
    print("\n" + render_markdown_report(
        reports, title="Interleaving report — ALS on 3 workers"))

    # Machine-readable forms for notebooks/dashboards.
    print("\nCSV (reports_to_csv):\n")
    print(reports_to_csv(reports))


if __name__ == "__main__":
    main()
