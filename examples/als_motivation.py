#!/usr/bin/env python3
"""The paper's motivation example: ALS on a three-node cluster.

Reproduces the story of Figs. 5-6: under stock Spark the ALS job's
parallel stages fetch input simultaneously (network saturated, CPU
idle) and then compute simultaneously (CPU saturated, network idle);
delaying Stages 2 and 3 interleaves the resources and shortens the job
(the paper measures 133 s -> 104 s).

Run:  python examples/als_motivation.py
"""

import numpy as np

from repro import (
    DelayStageScheduler,
    StockSparkScheduler,
    als,
    compare_schedulers,
    uniform_cluster,
)
from repro.analysis import render_series, stage_gantt, utilization_series


def main() -> None:
    # Three m4.large-like nodes, input data co-hosted on the workers.
    cluster = uniform_cluster(3, executors_per_worker=2, nic_mbps=450,
                              disk_mb_per_sec=150, storage_nodes=0)
    job = als()

    runs = compare_schedulers(
        job,
        cluster,
        [StockSparkScheduler(), DelayStageScheduler(profiled=False)],
    )
    stock, delay = runs["spark"], runs["delaystage"]

    print(f"stock Spark JCT: {stock.jct:6.1f} s   (paper: 133 s)")
    print(f"DelayStage JCT:  {delay.jct:6.1f} s   (paper: 104 s)")
    print(f"improvement:     {1 - delay.jct / stock.jct:6.1%}  (paper: ~22 %)")
    schedule = delay.info["schedule"]
    print(f"delayed stages:  {schedule.delayed_stages}  (paper delays Stages 2 and 3)\n")

    # Fig. 5: one worker's CPU utilization and network throughput under
    # stock Spark — the full-or-idle oscillation.
    t, cpu, net = utilization_series(stock.result, "w0", step=1.0)
    print(render_series(
        t,
        {"cpu_%": cpu, "net_MB/s": net / 2**20},
        title="Fig. 5 — worker w0 under stock Spark",
        x_label="t(s)",
        max_points=18,
    ))

    # Fig. 6: the stage gantt for both schedules.
    for name, run in (("stock Spark", stock), ("DelayStage", delay)):
        print(f"\nFig. 6 — stage execution under {name}:")
        for row in stage_gantt(run.result, "als"):
            bar_scale = 0.5  # seconds per character
            pre = " " * int(row.submit * bar_scale)
            read = "▒" * max(int((row.read_done - row.submit) * bar_scale), 1)
            proc = "█" * max(int((row.finish - row.read_done) * bar_scale), 1)
            print(f"  {row.stage_id:3s} |{pre}{read}{proc}  "
                  f"[{row.submit:5.1f} → {row.finish:5.1f}]")

    # Average utilization comparison (the paper's +31.3 % network /
    # +40.1 % CPU claim for the hand-delayed schedule).
    for name, run in (("stock", stock), ("delay", delay)):
        m = run.result.metrics
        cpu_avg = m.cluster_average("cpu_utilization", 0, run.jct) * 100
        net_avg = np.mean([
            m.node_series(w).average("net_in", 0, run.jct) / 2**20
            for w in cluster.worker_ids
        ])
        print(f"\n{name:6s} avg worker CPU {cpu_avg:5.1f} %   avg net {net_avg:5.1f} MB/s")


if __name__ == "__main__":
    main()
