#!/usr/bin/env python3
"""Quickstart: build a DAG job, schedule it with DelayStage, compare.

Covers the core public API in ~60 lines:

* describe a cluster (``uniform_cluster``) and a job (``JobBuilder``),
* run it under stock Spark semantics (``simulate_job``),
* compute a delay schedule with Algorithm 1 (``delay_stage_schedule``),
* re-run with the delays applied and inspect the improvement,
* emit a Perfetto-loadable trace of the delayed run and summarize it.

Run:  python examples/quickstart.py
"""

from repro import (
    FixedDelayPolicy,
    JobBuilder,
    Tracer,
    build_manifest,
    delay_stage_schedule,
    simulate_job,
    uniform_cluster,
    write_chrome_trace,
)
from repro.analysis import stage_gantt
from repro.obs import decision_audits, delay_tables, validate_chrome_trace


def main() -> None:
    # A 6-worker cluster (2 executors each) plus 2 storage nodes.
    cluster = uniform_cluster(6, executors_per_worker=2, nic_mbps=480,
                              disk_mb_per_sec=150, storage_nodes=2)

    # Three parallel source stages feeding a join — the structure where
    # naive scheduling synchronizes resource usage.
    job = (
        JobBuilder("quickstart")
        .stage("extract_a", input_mb=3000, output_mb=2000, process_rate_mb=6)
        .stage("extract_b", input_mb=3000, output_mb=1500, process_rate_mb=6)
        .stage("transform", input_mb=3000, output_mb=6000, process_rate_mb=6)
        .stage("aggregate", input_mb=6000, output_mb=1000, process_rate_mb=18,
               parents=["transform"])
        .stage("join", input_mb=4500, output_mb=200, process_rate_mb=20,
               parents=["extract_a", "extract_b", "aggregate"])
        .build()
    )

    # 1. Stock Spark: every stage submits the moment it is ready.
    stock = simulate_job(job, cluster)
    print(f"stock Spark JCT:      {stock.job_completion_time('quickstart'):7.1f} s")

    # 2. DelayStage (Algorithm 1) computes per-stage submission delays.
    schedule = delay_stage_schedule(job, cluster)
    print(f"computed delays:      { {s: round(x, 1) for s, x in schedule.delays.items() if x > 0} }")
    print(f"algorithm runtime:    {schedule.compute_seconds * 1000:7.1f} ms "
          f"({schedule.evaluations} model evaluations)")

    # 3. Re-run with the delays applied.
    delayed = simulate_job(job, cluster, FixedDelayPolicy(schedule.delays))
    jct = delayed.job_completion_time("quickstart")
    gain = 1 - jct / stock.job_completion_time("quickstart")
    print(f"DelayStage JCT:       {jct:7.1f} s  ({gain:.1%} faster)")

    # 4. Stage timeline: gray = shuffle read, white = process + write.
    print("\nstage timeline (DelayStage):")
    for row in stage_gantt(delayed, "quickstart"):
        print(
            f"  {row.stage_id:10s} ready {row.ready:6.1f}  "
            f"submit {row.submit:6.1f} (delay {row.delay:5.1f})  "
            f"read-done {row.read_done:6.1f}  finish {row.finish:6.1f}"
        )

    # 5. Observability: re-run with a tracer and export a Chrome trace
    # (open it at https://ui.perfetto.dev).  The same tracer captures
    # Algorithm 1's decision audit and the run's phase spans.
    tracer = Tracer()
    traced_schedule = delay_stage_schedule(job, cluster, tracer=tracer)
    simulate_job(job, cluster, FixedDelayPolicy(traced_schedule.delays),
                 tracer=tracer)
    doc = write_chrome_trace(
        "quickstart-trace.json", tracer,
        build_manifest(seed=0, config={"example": "quickstart"}, jobs=[job]),
    )
    assert validate_chrome_trace(doc) == []
    audits = decision_audits(doc)
    table = delay_tables(doc)["quickstart"]
    print(f"\ntrace written to quickstart-trace.json "
          f"({len(doc['traceEvents'])} events)")
    print(f"decision audit: {len(audits)} stage scan(s), "
          f"{sum(len(a['candidates']) for a in audits)} candidates evaluated")
    print(f"delay table recovered from trace: "
          f"{ {s: round(x, 1) for s, x in table.items() if x > 0} }")


if __name__ == "__main__":
    main()
