"""Shared fixtures: small clusters and jobs that keep tests fast."""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.dag import JobBuilder
from repro.verify import sanitizer


@pytest.fixture(autouse=True, scope="session")
def _sanitize_suite():
    """Run the whole suite with runtime invariant checks on.

    Every fluid-engine allocation, fair-share split, and simulation
    result is checked against the paper's invariants (see
    ``docs/verification.md``); a violation fails the offending test
    with a ``SanitizerError`` instead of silently corrupting results.
    """
    previous = sanitizer.ENABLED
    sanitizer.ENABLED = True
    yield
    sanitizer.ENABLED = previous


@pytest.fixture
def small_cluster():
    """4 workers (2 executors each) + 2 storage nodes."""
    return uniform_cluster(4, executors_per_worker=2, nic_mbps=480, disk_mb_per_sec=150, storage_nodes=2)


@pytest.fixture
def tiny_cluster():
    """2 workers, 1 storage — the smallest interesting topology."""
    return uniform_cluster(2, executors_per_worker=2, nic_mbps=400, disk_mb_per_sec=100, storage_nodes=1)


@pytest.fixture
def diamond_job():
    """S1 -> {S2, S3} -> S4: the classic diamond DAG."""
    return (
        JobBuilder("diamond")
        .stage("S1", input_mb=256, output_mb=256, process_rate_mb=20)
        .stage("S2", input_mb=256, output_mb=128, process_rate_mb=20, parents=["S1"])
        .stage("S3", input_mb=256, output_mb=128, process_rate_mb=20, parents=["S1"])
        .stage("S4", input_mb=256, output_mb=64, process_rate_mb=20, parents=["S2", "S3"])
        .build()
    )


@pytest.fixture
def fork_join_job():
    """Three parallel roots joining into one stage (ALS-like core)."""
    return (
        JobBuilder("forkjoin")
        .stage("A", input_mb=512, output_mb=256, process_rate_mb=10)
        .stage("B", input_mb=384, output_mb=192, process_rate_mb=10)
        .stage("C", input_mb=512, output_mb=256, process_rate_mb=10)
        .stage("D", input_mb=704, output_mb=64, process_rate_mb=10, parents=["A", "B", "C"])
        .build()
    )


@pytest.fixture
def chain_job():
    """A purely sequential three-stage chain (no parallel stages)."""
    return (
        JobBuilder("chain")
        .stage("S1", input_mb=256, output_mb=128, process_rate_mb=20)
        .stage("S2", input_mb=128, output_mb=64, process_rate_mb=20, parents=["S1"])
        .stage("S3", input_mb=64, output_mb=16, process_rate_mb=20, parents=["S2"])
        .build()
    )
