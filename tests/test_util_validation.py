"""Argument validation helpers."""

import math

import pytest

from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
)


@pytest.mark.parametrize("value", [1, 0.5, 1e9])
def test_check_positive_accepts(value):
    assert check_positive(value, "x") == value


@pytest.mark.parametrize("value", [0, -1, -1e-9])
def test_check_positive_rejects(value):
    with pytest.raises(ValueError, match="x must be > 0"):
        check_positive(value, "x")


def test_check_non_negative_accepts_zero():
    assert check_non_negative(0, "x") == 0


def test_check_non_negative_rejects_negative():
    with pytest.raises(ValueError):
        check_non_negative(-0.1, "x")


def test_check_in_range_bounds_inclusive():
    assert check_in_range(0, "x", 0, 1) == 0
    assert check_in_range(1, "x", 0, 1) == 1


def test_check_in_range_rejects_outside():
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        check_in_range(1.5, "x", 0, 1)


@pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf, "abc", None])
def test_check_finite_rejects(bad):
    with pytest.raises(ValueError):
        check_finite(bad, "x")


def test_check_finite_returns_float():
    assert check_finite(3, "x") == 3.0
