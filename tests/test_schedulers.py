"""Scheduler strategies and the comparison runner."""

import pytest

from repro.dag import JobBuilder
from repro.schedulers import (
    AggShuffleScheduler,
    DelayStageScheduler,
    FuxiScheduler,
    StockSparkScheduler,
    compare_schedulers,
    run_with_scheduler,
)
from repro.core import DelayStageParams, PathOrder


def contended_job():
    return (
        JobBuilder("cj")
        .stage("S1", input_mb=1024, output_mb=512, process_rate_mb=8, num_tasks=32, task_cv=0.5)
        .stage("S2", input_mb=1024, output_mb=2048, process_rate_mb=8, num_tasks=32, task_cv=0.5)
        .stage("S3", input_mb=2048, output_mb=512, process_rate_mb=16, num_tasks=32, task_cv=0.5, parents=["S2"])
        .stage("S4", input_mb=1024, output_mb=128, process_rate_mb=16, num_tasks=32, task_cv=0.5, parents=["S1", "S3"])
        .build()
    )


def test_spark_immediate_submission(small_cluster):
    run = run_with_scheduler(contended_job(), small_cluster, StockSparkScheduler())
    for (jid, sid), rec in run.result.stage_records.items():
        assert rec.delay == pytest.approx(0.0)


def test_fuxi_immediate_submission(small_cluster):
    run = run_with_scheduler(contended_job(), small_cluster, FuxiScheduler())
    for rec in run.result.stage_records.values():
        assert rec.delay == pytest.approx(0.0)


def test_aggshuffle_pipelines(small_cluster):
    run = run_with_scheduler(contended_job(), small_cluster, AggShuffleScheduler())
    spark = run_with_scheduler(contended_job(), small_cluster, StockSparkScheduler())
    # S3's shuffle read from S2 shortens under pipelining.
    assert (
        run.result.stage("cj", "S3").read_time
        < spark.result.stage("cj", "S3").read_time
    )


def test_delaystage_oracle_beats_spark(small_cluster):
    job = contended_job()
    runs = compare_schedulers(
        job,
        small_cluster,
        [StockSparkScheduler(track_metrics=False),
         DelayStageScheduler(profiled=False, track_metrics=False)],
    )
    assert runs["delaystage"].jct < runs["spark"].jct
    assert "schedule" in runs["delaystage"].info


def test_delaystage_profiled_pipeline_runs(small_cluster):
    job = contended_job()
    run = run_with_scheduler(
        job,
        small_cluster,
        DelayStageScheduler(profiled=True, rng=0, track_metrics=False),
    )
    assert run.info["profile"] is not None
    assert run.jct > 0


def test_delaystage_variant_names():
    assert DelayStageScheduler(order=PathOrder.DESCENDING).name == "delaystage"
    assert DelayStageScheduler(order=PathOrder.RANDOM).name == "delaystage-random"
    assert DelayStageScheduler(order="ascending").name == "delaystage-ascending"


def test_compare_rejects_duplicate_names(small_cluster):
    with pytest.raises(ValueError, match="duplicate"):
        compare_schedulers(
            contended_job(), small_cluster, [StockSparkScheduler(), StockSparkScheduler()]
        )


def test_contention_penalty_plumbed_through(small_cluster):
    job = contended_job()
    plain = run_with_scheduler(
        job, small_cluster, FuxiScheduler(track_metrics=False)
    ).jct
    penalized = run_with_scheduler(
        job, small_cluster, FuxiScheduler(track_metrics=False, contention_penalty=0.5)
    ).jct
    assert penalized > plain


def test_delaystage_penalty_sets_planning_config():
    sched = DelayStageScheduler(contention_penalty=0.4)
    assert sched.params.sim_config is not None
    assert sched.params.sim_config.contention_penalty == 0.4


def test_scheduler_run_jct_property(small_cluster):
    run = run_with_scheduler(contended_job(), small_cluster, StockSparkScheduler())
    assert run.jct == pytest.approx(run.result.job_completion_time("cj"))
    assert run.scheduler_name == "spark"
