"""Property-based tests on simulation invariants over random DAGs."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import uniform_cluster
from repro.simulator import FixedDelayPolicy, SimulationConfig, simulate_job
from repro.workloads import random_job


CLUSTER = uniform_cluster(3, executors_per_worker=2, nic_mbps=480,
                          disk_mb_per_sec=120, storage_nodes=1)


@st.composite
def jobs(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    par = draw(st.floats(min_value=0.0, max_value=1.0))
    return random_job(
        n, parallelism=par, rng=seed, median_input_mb=512, median_rate_mb=8
    )


@given(jobs())
@settings(max_examples=25, deadline=None)
def test_phase_ordering_invariant(job):
    """Every stage: ready <= submit <= read_done <= compute_done <= finish."""
    res = simulate_job(job, CLUSTER, config=SimulationConfig(track_metrics=False))
    for rec in res.stage_records.values():
        assert rec.ready_time <= rec.submit_time + 1e-9
        assert rec.submit_time <= rec.read_done_time + 1e-9
        assert rec.read_done_time <= rec.compute_done_time + 1e-9
        assert rec.compute_done_time <= rec.finish_time + 1e-9
        assert not math.isnan(rec.finish_time)


@given(jobs())
@settings(max_examples=25, deadline=None)
def test_precedence_invariant(job):
    """No stage submits before all of its parents completed."""
    res = simulate_job(job, CLUSTER, config=SimulationConfig(track_metrics=False))
    for sid in job.stage_ids:
        rec = res.stage(job.job_id, sid)
        for parent in job.parents(sid):
            assert rec.submit_time >= res.stage(job.job_id, parent).finish_time - 1e-9


@given(jobs())
@settings(max_examples=20, deadline=None)
def test_determinism(job):
    """Two identical runs produce identical timings."""
    a = simulate_job(job, CLUSTER, config=SimulationConfig(track_metrics=False))
    b = simulate_job(job, CLUSTER, config=SimulationConfig(track_metrics=False))
    for key, rec in a.stage_records.items():
        other = b.stage_records[key]
        assert rec.finish_time == other.finish_time
        assert rec.submit_time == other.submit_time


@given(jobs(), st.floats(min_value=0.0, max_value=50.0))
@settings(max_examples=20, deadline=None)
def test_delaying_a_root_never_finishes_job_before_its_own_span(job, delay):
    """JCT >= root delay + something; delays are actually applied."""
    roots = job.roots
    policy = FixedDelayPolicy({roots[0]: delay})
    res = simulate_job(job, CLUSTER, policy, SimulationConfig(track_metrics=False))
    rec = res.stage(job.job_id, roots[0])
    assert rec.submit_time == pytest.approx(delay, abs=1e-6)


@given(jobs())
@settings(max_examples=15, deadline=None)
def test_compute_work_conserved(job):
    """Integrated executor-seconds equal each stage's compute demand."""
    res = simulate_job(job, CLUSTER)
    m = res.metrics
    total_busy = 0.0
    for node in CLUSTER.worker_ids:
        s = m.node_series(node)
        total_busy += float(((s.t1 - s.t0) * s.cpu_busy).sum())
    expected = sum(
        stage.input_bytes / stage.process_rate for stage in job
    )
    assert total_busy == pytest.approx(expected, rel=1e-6, abs=1e-6)


@given(jobs())
@settings(max_examples=15, deadline=None)
def test_contention_penalty_never_speeds_up(job):
    ideal = simulate_job(
        job, CLUSTER, config=SimulationConfig(track_metrics=False)
    ).job_completion_time(job.job_id)
    penalized = simulate_job(
        job, CLUSTER, config=SimulationConfig(track_metrics=False, contention_penalty=0.4)
    ).job_completion_time(job.job_id)
    assert penalized >= ideal - 1e-9
