"""Sanitizer-mode tests: the runtime checks accept every correct
allocation and reject deliberately corrupted ones."""

from __future__ import annotations

import math

import pytest

from repro.cluster.spec import uniform_cluster
from repro.cluster.topology import Topology
from repro.simulator.engine import FluidEngine, WorkItem
from repro.simulator.fairshare import compute_shares, disk_shares, maxmin_network_rates
from repro.simulator.flows import ComputeDemand, DiskWrite, NetworkFlow
from repro.verify import SanitizerError, sanitized, sanitizer


@pytest.fixture
def topology(tiny_cluster):
    return Topology(tiny_cluster)


def make_flows(topology):
    ids = topology.node_ids
    return [
        NetworkFlow(ids[0], ids[1], volume=1e9, stage_key=("j", "S1")),
        NetworkFlow(ids[2], ids[1], volume=1e9, stage_key=("j", "S2")),
        NetworkFlow(ids[0], ids[2], volume=1e9, stage_key=("j", "S3")),
    ]


# ------------------------------------------------------------------ #
# switch plumbing
# ------------------------------------------------------------------ #

class TestSwitch:
    def test_sanitized_scopes_and_restores(self):
        before = sanitizer.ENABLED
        with sanitized(not before):
            assert sanitizer.ENABLED is (not before)
        assert sanitizer.ENABLED is before

    def test_enable_toggle(self):
        before = sanitizer.ENABLED
        try:
            sanitizer.enable(False)
            assert not sanitizer.enabled()
            sanitizer.enable(True)
            assert sanitizer.enabled()
        finally:
            sanitizer.enable(before)

    def test_checks_skipped_when_off(self, topology):
        flows = make_flows(topology)
        with sanitized(False):
            rates = maxmin_network_rates(flows, topology)
            # Corrupting the allocation goes unnoticed with the
            # sanitizer off: callers opted out of the cost.
            for f, r in zip(flows, rates):
                f.rate = float(r) * 10
        assert True  # no SanitizerError raised


# ------------------------------------------------------------------ #
# network allocation
# ------------------------------------------------------------------ #

class TestNetwork:
    def test_maxmin_output_accepted(self, topology):
        rates = maxmin_network_rates(make_flows(topology), topology)
        assert len(rates) == 3  # check ran inside maxmin (sanitizer on)

    def test_oversubscription_rejected(self, topology):
        flows = make_flows(topology)
        rates = list(map(float, maxmin_network_rates(flows, topology)))
        rates[0] *= 1.5  # exceed a saturated NIC
        with pytest.raises(SanitizerError, match="oversubscribed|exceeds its cap"):
            sanitizer.check_network_allocation(flows, topology, rates)

    def test_unfairness_rejected(self, topology):
        flows = make_flows(topology)
        rates = list(map(float, maxmin_network_rates(flows, topology)))
        rates[0] *= 0.5  # below cap with no saturated bottleneck
        with pytest.raises(SanitizerError, match="water-filling optimality"):
            sanitizer.check_network_allocation(flows, topology, rates)

    def test_negative_rate_rejected(self, topology):
        flows = make_flows(topology)
        rates = [-1.0, 0.0, 0.0]
        with pytest.raises(SanitizerError, match="negative/NaN"):
            sanitizer.check_network_allocation(flows, topology, rates)

    def test_capped_flow_exempt_from_bottleneck(self, topology):
        ids = topology.node_ids
        flows = [
            NetworkFlow(ids[0], ids[1], volume=1e9, stage_key=("j", "S1"),
                        rate_cap=1e3),
            NetworkFlow(ids[2], ids[1], volume=1e9, stage_key=("j", "S2")),
        ]
        rates = maxmin_network_rates(flows, topology)
        assert rates[0] == pytest.approx(1e3)


# ------------------------------------------------------------------ #
# compute / disk allocation
# ------------------------------------------------------------------ #

class TestCompute:
    def make_demands(self):
        return [
            ComputeDemand("w0", 1e8, ("j", "S1"), process_rate=2e7),
            ComputeDemand("w0", 1e8, ("j", "S2"), process_rate=1e7),
            ComputeDemand("w1", 1e8, ("j", "S1"), process_rate=2e7),
        ]

    def test_equal_split_accepted(self):
        demands = self.make_demands()
        compute_shares(demands, {"w0": 4, "w1": 2})
        assert demands[0].executor_share == pytest.approx(2.0)
        assert demands[2].executor_share == pytest.approx(2.0)

    def test_corrupted_share_breaks_work_conservation(self):
        demands = self.make_demands()
        executors = {"w0": 4, "w1": 2}
        compute_shares(demands, executors)
        demands[0].executor_share *= 1.5
        demands[0].rate = demands[0].executor_share * demands[0].process_rate
        with pytest.raises(SanitizerError, match="work conservation"):
            sanitizer.check_compute_allocation(demands, executors)

    def test_rate_share_mismatch_rejected(self):
        demands = self.make_demands()
        executors = {"w0": 4, "w1": 2}
        compute_shares(demands, executors)
        demands[1].rate *= 2  # rate no longer equals share * R_k
        with pytest.raises(SanitizerError, match="inconsistent with share"):
            sanitizer.check_compute_allocation(demands, executors)

    def test_unequal_stage_shares_rejected(self):
        demands = self.make_demands()
        executors = {"w0": 4, "w1": 2}
        compute_shares(demands, executors)
        # Shift share from one stage to the other: totals still sum to
        # the executor count, but the split is no longer fair.
        demands[0].executor_share += 0.5
        demands[1].executor_share -= 0.5
        for d in demands:
            d.rate = d.executor_share * d.process_rate
        with pytest.raises(SanitizerError, match="unequal per-stage"):
            sanitizer.check_compute_allocation(demands, executors)


class TestDisk:
    def test_equal_split_accepted(self):
        writes = [DiskWrite("w0", 1e8, ("j", "S1")),
                  DiskWrite("w0", 1e8, ("j", "S2"))]
        disk_shares(writes, {"w0": 1e8})
        assert writes[0].rate == pytest.approx(5e7)

    def test_corrupted_rate_rejected(self):
        writes = [DiskWrite("w0", 1e8, ("j", "S1")),
                  DiskWrite("w0", 1e8, ("j", "S2"))]
        disk_shares(writes, {"w0": 1e8})
        writes[0].rate *= 1.5
        with pytest.raises(SanitizerError):
            sanitizer.check_disk_allocation(writes, {"w0": 1e8})


# ------------------------------------------------------------------ #
# engine integration
# ------------------------------------------------------------------ #

class TestEngine:
    def test_clock_monotone_check(self):
        sanitizer.check_clock_monotone(1.0, 2.0)  # fine
        with pytest.raises(SanitizerError, match="clock moved backwards"):
            sanitizer.check_clock_monotone(2.0, 1.0)

    def test_rates_valid_rejects_bad_remaining(self):
        item = WorkItem(10.0)
        item.rate = 1.0
        item.remaining = -5.0
        with pytest.raises(SanitizerError, match="remaining volume"):
            sanitizer.check_rates_valid([item])

    def test_corrupted_item_caught_at_reallocation(self):
        """A timer callback corrupting a work item's remaining volume is
        caught at the next allocation pass, not silently integrated."""
        def allocate(items):
            for it in items:
                it.rate = 1.0

        engine = FluidEngine(allocate)
        item = WorkItem(100.0)
        engine.add_item(item)
        engine.schedule(1.0, lambda: setattr(item, "remaining", math.nan))
        with pytest.raises(SanitizerError, match="remaining volume"):
            engine.run()

    def test_run_until_past_time_is_noop(self):
        engine = FluidEngine(lambda items: [setattr(i, "rate", 1.0) for i in items])
        engine.add_item(WorkItem(5.0))
        engine.run(until=2.0)
        assert engine.now == pytest.approx(2.0)
        engine.run(until=1.0)  # in the past: no-op, not a clock reversal
        assert engine.now == pytest.approx(2.0)


# ------------------------------------------------------------------ #
# end-to-end simulation consistency
# ------------------------------------------------------------------ #

class TestSimulationResult:
    def test_full_run_checked(self, diamond_job, small_cluster):
        from repro.simulator.simulation import Simulation

        sim = Simulation(small_cluster)
        sim.add_job(diamond_job)
        result = sim.run()  # check_result runs inside (sanitizer on)
        records = {k: r for k, r in result.stage_records.items()}
        assert len(records) == 4

    def test_corrupted_result_rejected(self, diamond_job, small_cluster):
        from repro.simulator.simulation import Simulation

        sim = Simulation(small_cluster)
        sim.add_job(diamond_job)
        with sanitized(False):
            result = sim.run()
        key = (diamond_job.job_id, "S4")
        rec = result.stage_records[key]
        rec.finish_time = rec.ready_time - 10.0  # finish before ready
        with pytest.raises(SanitizerError, match="precedes"):
            sanitizer.check_result(result)
