"""Service load battery: rates, overload, bit-identity, virtual clock.

Drives the streaming scheduler service at 10×/100×/overload arrival
rates — entirely in virtual time, zero wall-clock sleeps — and asserts
the acceptance contract of PR 10:

* the pending queue never exceeds its bound, and overload sheds load
  with typed ``queue_full`` rejections instead of deadlocking or
  growing memory;
* completion counters are monotone (no double completion, no lost
  job: admitted = terminal + live at every step);
* per-job JCTs from a service run are **bit-identical** to an offline
  ``replay_batch`` of the same jobs — queueing lives in the lifecycle
  record, never inside the JCT;
* the asyncio daemon driven by a :class:`VirtualClock` reproduces the
  synchronous core's trajectory exactly, ending in a ``drained``
  terminal event;
* ``repro tail`` against a draining server exits cleanly after the
  terminal event instead of burning its reconnect budget (regression
  for the PR-10 tail fix).
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.cluster import alibaba_sim_cluster
from repro.obs.live.bus import TelemetryBus, TelemetryPublisher
from repro.obs.live.hub import LiveHub
from repro.obs.live.server import LiveServer
from repro.obs.live.tail import iter_events, tail
from repro.schedulers import DelayStageScheduler, FuxiScheduler, replay_batch
from repro.service import (
    AdmissionConfig,
    RejectedSubmission,
    ServiceCore,
    ServiceDaemon,
    VirtualClock,
)
from repro.trace.generator import TraceGeneratorConfig, open_loop_arrivals
from repro.trace.replay import to_job

TRACE_CFG = TraceGeneratorConfig(num_jobs=24, max_stages=16,
                                 replay_workers=3,
                                 replay_read_mb_per_sec=85.0)


@pytest.fixture(scope="module")
def cluster():
    return alibaba_sim_cluster(num_machines=3, storage_nodes=1,
                               nic_mbps_range=(600, 2000), rng=0)


def _arrival_jobs(rate: float, n: int, seed: int = 5):
    schedule = open_loop_arrivals(TRACE_CFG, rng=seed,
                                  rate_jobs_per_s=rate, num_jobs=n)
    return [(t, to_job(tj, TRACE_CFG)) for t, tj in schedule]


def _scheduler():
    return FuxiScheduler(track_metrics=False)


def _drive(core: ServiceCore, arrivals) -> int:
    """Feed an arrival schedule through a core in timestamp order."""
    shed = 0
    for t, job in arrivals:
        core.advance_to(t)
        try:
            core.submit(job)
        except RejectedSubmission as exc:
            assert exc.rejection.reason == "queue_full"
            shed += 1
    core.run_until_idle()
    return shed


# -- arrival-rate sweep ------------------------------------------------- #

@pytest.mark.parametrize("rate_multiplier", [10.0, 100.0])
def test_elevated_rates_bounded_queue_no_loss(cluster, rate_multiplier):
    """10×/100× the nominal rate: queue bounded, every job accounted."""
    arrivals = _arrival_jobs(0.01 * rate_multiplier, 12)
    core = ServiceCore(cluster, _scheduler(), slots=2,
                       admission=AdmissionConfig(max_pending=8))
    shed = _drive(core, arrivals)
    stats = core.stats()
    assert stats["peak_queue_depth"] <= 8
    assert stats["counters"]["submitted"] == 12
    assert stats["counters"]["admitted"] + stats["counters"]["rejected"] == 12
    assert stats["counters"]["rejected"] == shed
    # no lost job, no deadlock: everything admitted reached a terminal
    assert stats["counters"]["completed"] == stats["counters"]["admitted"]
    assert stats["states"] == {"completed": stats["counters"]["completed"]}


def test_overload_sheds_without_deadlock_or_unbounded_memory(cluster):
    """Sustained overload: arrivals far faster than service.

    The queue bound forces typed rejections; the retention bound caps
    retained records; the run still terminates with monotone counters.
    """
    arrivals = _arrival_jobs(50.0, 24)  # ~24 jobs in ~0.5s of service time
    core = ServiceCore(
        cluster, _scheduler(), slots=1,
        admission=AdmissionConfig(max_pending=3, retain_results=2),
    )
    completed_seen = 0
    shed = 0
    for t, job in arrivals:
        core.advance_to(t)
        try:
            core.submit(job)
        except RejectedSubmission as exc:
            assert exc.rejection.reason == "queue_full"
            shed += 1
        # counters are monotone and internally consistent at every step
        s = core.stats()
        assert s["counters"]["completed"] >= completed_seen
        completed_seen = s["counters"]["completed"]
        assert s["queue_depth"] <= 3
        live = s["queue_depth"] + s["running"]
        terminal = (s["counters"]["completed"] + s["counters"]["failed"]
                    + s["counters"]["cancelled"])
        assert s["counters"]["admitted"] == live + terminal
    core.run_until_idle()
    stats = core.stats()
    assert shed > 0 and stats["rejected_by_reason"] == {"queue_full": shed}
    assert stats["counters"]["completed"] == stats["counters"]["admitted"]
    # memory bound: at most retain_results terminal records retained
    assert len(core.jobs) <= 2
    assert stats["counters"]["evicted"] > 0
    # evicted records drop out of status but never out of the counters
    assert (stats["counters"]["completed"] + stats["counters"]["evicted"]
            >= stats["counters"]["admitted"])


def test_rejections_are_typed_and_bounded(cluster):
    core = ServiceCore(cluster, _scheduler(), slots=1,
                       admission=AdmissionConfig(max_pending=1, max_stages=4))
    arrivals = _arrival_jobs(100.0, 8)
    big = next((j for _, j in arrivals if j.num_stages > 4), None)
    small = [(t, j) for t, j in arrivals if j.num_stages <= 4]
    if big is not None:
        with pytest.raises(RejectedSubmission) as exc:
            core.submit(big)
        assert exc.value.rejection.reason == "too_large"
    if small:
        t, job = small[0]
        core.submit(job, service_id="dup")
        with pytest.raises(RejectedSubmission) as exc:
            core.submit(job, service_id="dup")
        assert exc.value.rejection.reason == "duplicate"
    core.drain()
    if len(small) > 1:
        with pytest.raises(RejectedSubmission) as exc:
            core.submit(small[1][1])
        assert exc.value.rejection.reason == "draining"
    reasons = {r.reason for r in core.rejections()}
    assert reasons <= {"queue_full", "draining", "duplicate", "too_large"}
    core.run_until_idle()
    assert core.drained


# -- bit-identity vs offline replay -------------------------------------- #

@pytest.mark.parametrize("make_sched", [
    lambda: FuxiScheduler(track_metrics=False),
    lambda: DelayStageScheduler(profiled=False, track_metrics=False),
], ids=["fuxi", "delaystage"])
def test_service_jcts_bit_identical_to_offline_replay(cluster, make_sched):
    """The acceptance contract: service JCT ≡ offline replay JCT."""
    arrivals = _arrival_jobs(0.5, 8)
    jobs = [job for _, job in arrivals]
    core = ServiceCore(cluster, make_sched(), slots=2,
                       admission=AdmissionConfig(max_pending=64))
    _drive(core, arrivals)
    offline = replay_batch(jobs, cluster, make_sched(), processes=1)
    for job, expected in zip(jobs, offline):
        record = core.status(job.job_id)
        assert record is not None and record.state.value == "completed"
        assert record.jct == expected  # bit-identical, not approx
        # queueing delay is recorded separately, never folded into JCT
        assert record.dispatch_t is not None
        assert record.dispatch_t >= record.submit_t


def test_queueing_delay_separated_from_jct(cluster):
    """Jobs queued behind a busy slot keep their offline JCT."""
    arrivals = _arrival_jobs(100.0, 4)  # all arrive near-instantly
    jobs = [job for _, job in arrivals]
    core = ServiceCore(cluster, _scheduler(), slots=1,
                       admission=AdmissionConfig(max_pending=64))
    _drive(core, arrivals)
    offline = replay_batch(jobs, cluster, _scheduler(), processes=1)
    waited = 0
    for job, expected in zip(jobs, offline):
        record = core.status(job.job_id)
        assert record.jct == expected
        assert record.finish_t == pytest.approx(record.dispatch_t + expected)
        if record.dispatch_t - record.submit_t > 0:
            waited += 1
    assert waited > 0  # with one slot, someone must have queued


# -- the asyncio daemon under a virtual clock ---------------------------- #

def test_daemon_virtual_clock_matches_core_and_drains(cluster):
    """Full daemon (arrival task + pump) in virtual time, zero sleeps."""
    arrivals = _arrival_jobs(0.2, 6)
    jobs = [job for _, job in arrivals]
    bus = TelemetryBus()
    publisher = TelemetryPublisher(bus, label="serve", run_id="serve")
    hub = LiveHub(bus=bus)
    core = ServiceCore(cluster, _scheduler(), slots=2, publisher=publisher,
                       admission=AdmissionConfig(max_pending=64))
    clock = VirtualClock()
    last_arrival = arrivals[-1][0]
    daemon = ServiceDaemon(core, clock, arrivals=arrivals,
                           drain_after=last_arrival)

    async def scenario():
        task = asyncio.create_task(daemon.run())
        # partway in: some jobs should be live, none lost
        await clock.run_until(last_arrival / 2)
        mid = core.stats()
        assert mid["counters"]["submitted"] >= 1
        await clock.run_until(last_arrival + 1e7)
        assert core.drained
        return await asyncio.wait_for(task, timeout=5)

    stats = asyncio.run(scenario())
    assert stats["counters"]["completed"] == len(jobs)
    offline = replay_batch(jobs, cluster, _scheduler(), processes=1)
    for job, expected in zip(jobs, offline):
        assert core.status(job.job_id).jct == expected
    types = [e["type"] for e in bus.events_since()]
    assert types[-1] == "drained"
    assert types.count("drained") == 1
    assert types.count("submitted") == len(jobs)
    snap = hub.run_snapshot("serve")
    assert snap["service"]["drained"] is True
    assert snap["service"]["queue_depth"] == 0


def test_daemon_virtual_clock_is_deterministic(cluster):
    """Same seed, same schedule, same event trajectory — twice."""

    def one_run():
        arrivals = _arrival_jobs(2.0, 6, seed=9)
        bus = TelemetryBus()
        publisher = TelemetryPublisher(bus, label="serve", run_id="serve")
        core = ServiceCore(cluster, _scheduler(), slots=1,
                           publisher=publisher,
                           admission=AdmissionConfig(max_pending=2))
        clock = VirtualClock()
        daemon = ServiceDaemon(core, clock, arrivals=arrivals,
                               drain_after=arrivals[-1][0])

        async def scenario():
            task = asyncio.create_task(daemon.run())
            await clock.run_until(1e8)
            return await asyncio.wait_for(task, timeout=5)

        stats = asyncio.run(scenario())
        trajectory = [
            {k: e[k] for k in e if k != "elapsed_s"}
            for e in bus.events_since()
        ]
        return stats, trajectory

    first_stats, first_events = one_run()
    second_stats, second_events = one_run()
    assert first_stats == second_stats
    assert first_events == second_events
    assert any(e["type"] == "rejected" for e in first_events)


# -- tail vs a draining server (regression) ------------------------------ #

def _fake_stream_factory(batches):
    """Each call to _read_stream yields the next batch then ends."""
    calls = {"n": 0}

    def fake(target, timeout):
        i = min(calls["n"], len(batches) - 1)
        calls["n"] += 1
        yield from batches[i]

    return fake, calls


def test_tail_exits_cleanly_after_terminal_event(monkeypatch):
    """A stream ending on a terminal event must not reconnect-loop."""
    import importlib

    tail_mod = importlib.import_module("repro.obs.live.tail")
    events = [
        {"seq": 1, "type": "submitted", "run": "serve"},
        {"seq": 2, "type": "job", "run": "serve", "jobs_done": 1},
        {"seq": 3, "type": "drained", "run": "serve"},
    ]
    fake, calls = _fake_stream_factory([events])
    monkeypatch.setattr(tail_mod, "_read_stream", fake)
    sleeps: list = []
    got = list(iter_events("127.0.0.1:9", reconnect=5, sleep=sleeps.append))
    assert [e["seq"] for e in got] == [1, 2, 3]
    assert calls["n"] == 1  # no reconnect attempt after the terminal event
    assert sleeps == []


def test_tail_exits_cleanly_on_timeout_after_terminal_event(monkeypatch):
    """A read timeout after the terminal event is a normal exit.

    A shutting-down server holds the follow stream open (silent)
    through its grace window, so the client's next read *times out*
    rather than ending cleanly — that OSError must not be re-raised or
    burn the reconnect budget once a terminal event has been seen.
    """
    import importlib

    tail_mod = importlib.import_module("repro.obs.live.tail")
    events = [
        {"seq": 1, "type": "job", "run": "serve", "jobs_done": 1},
        {"seq": 2, "type": "run_finished", "run": "serve"},
    ]
    calls = {"n": 0}

    def fake(target, timeout):
        calls["n"] += 1
        yield from events
        raise OSError("timed out")

    monkeypatch.setattr(tail_mod, "_read_stream", fake)
    sleeps: list = []
    got = list(iter_events("127.0.0.1:9", reconnect=5, sleep=sleeps.append))
    assert [e["seq"] for e in got] == [1, 2]
    assert calls["n"] == 1
    assert sleeps == []


def test_tail_still_reconnects_after_nonterminal_end(monkeypatch):
    """The reconnect budget still guards genuinely dropped streams."""
    import importlib

    tail_mod = importlib.import_module("repro.obs.live.tail")
    events = [{"seq": 1, "type": "job", "run": "serve", "jobs_done": 1}]
    fake, calls = _fake_stream_factory([events, [], []])
    monkeypatch.setattr(tail_mod, "_read_stream", fake)
    sleeps: list = []
    with pytest.raises(OSError):
        list(iter_events("127.0.0.1:9", reconnect=2, sleep=sleeps.append))
    assert calls["n"] == 3  # initial + 2 retries
    assert len(sleeps) == 2


def test_tail_against_real_draining_server_exits_zero():
    """End-to-end: tail a live server that drains and closes."""
    bus = TelemetryBus()
    publisher = TelemetryPublisher(bus, label="serve", run_id="serve")
    hub = LiveHub(bus=bus)
    server = LiveServer(hub).start()
    publisher.job_submitted("j0", stages=3, queue_depth=1, running=0)
    publisher.drain_started(queue_depth=0, running=1)
    publisher.drain_finished(completed=1, failed=0, cancelled=0, rejected=0)
    result: dict = {}

    def run_tail():
        import io

        out = io.StringIO()
        result["count"] = tail(server.url, stream=out, reconnect=5,
                               timeout=5.0, sleep=lambda s: None)

    thread = threading.Thread(target=run_tail)
    thread.start()
    try:
        # Give the tail a moment to connect and replay the backlog,
        # then close the server: the stream ends after `drained`.
        deadline = threading.Event()
        deadline.wait(0.5)
    finally:
        server.close()
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert result["count"] == 3
