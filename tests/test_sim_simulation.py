"""Simulation semantics: Eq. (1) phase structure, dependencies,
policies, event-log ordering, and conservation invariants."""

import math

import pytest

from repro.dag import JobBuilder, parallel_stage_set
from repro.cluster import uniform_cluster
from repro.simulator import (
    EventKind,
    FixedDelayPolicy,
    ImmediatePolicy,
    Simulation,
    SimulationConfig,
    simulate_job,
)
from repro.util.units import MB, mbps_to_bytes_per_sec


def single_stage_job(input_mb=512, output_mb=256, rate_mb=20):
    return (
        JobBuilder("one")
        .stage("S", input_mb=input_mb, output_mb=output_mb, process_rate_mb=rate_mb)
        .build()
    )


def test_single_stage_phase_times_match_closed_form(small_cluster):
    """Eq. (1) by hand for one stage on the 4-worker fixture."""
    job = single_stage_job()
    res = simulate_job(job, small_cluster)
    rec = res.stage("one", "S")

    workers = 4
    nic = mbps_to_bytes_per_sec(480)
    # Read: 512/4 MB per worker from 2 storage nodes; each storage node
    # fans out to 4 workers -> egress share nic/4; ingress share nic/2.
    per_flow = (512 / workers / 2) * MB
    bandwidth = min(nic / 4, nic / 2)
    assert rec.read_time == pytest.approx(per_flow / bandwidth, rel=1e-6)
    # Compute: per-worker 128 MB at 2 executors * 20 MB/s.
    assert rec.compute_time == pytest.approx(128 / 40, rel=1e-6)
    # Write: per-worker 64 MB at 150 MB/s.
    assert rec.write_time == pytest.approx(64 / 150, rel=1e-6)


def test_dependencies_respected(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    s1 = res.stage("diamond", "S1")
    s2 = res.stage("diamond", "S2")
    s4 = res.stage("diamond", "S4")
    assert s2.ready_time == pytest.approx(s1.finish_time)
    assert s4.submit_time >= max(s2.finish_time, res.stage("diamond", "S3").finish_time) - 1e-9


def test_parallel_roots_start_together(fork_join_job, small_cluster):
    res = simulate_job(fork_join_job, small_cluster)
    subs = [res.stage("forkjoin", s).submit_time for s in ("A", "B", "C")]
    assert subs == [0.0, 0.0, 0.0]


def test_fixed_delay_policy_applies(fork_join_job, small_cluster):
    res = simulate_job(
        fork_join_job, small_cluster, FixedDelayPolicy({"B": 7.5})
    )
    assert res.stage("forkjoin", "B").submit_time == pytest.approx(7.5)
    assert res.stage("forkjoin", "B").delay == pytest.approx(7.5)
    assert res.stage("forkjoin", "A").delay == 0.0


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        FixedDelayPolicy({"A": -1.0})


def test_policy_returning_negative_rejected(fork_join_job, small_cluster):
    class Bad:
        def delay(self, job, sid, ready):
            return -5.0

    with pytest.raises(ValueError, match="invalid delay"):
        simulate_job(fork_join_job, small_cluster, Bad())


def test_contention_stretches_stage(fork_join_job, small_cluster):
    """A stage sharing the cluster must not run faster than alone."""
    together = simulate_job(fork_join_job, small_cluster)
    alone = simulate_job(
        JobBuilder("solo")
        .stage("A", input_mb=512, output_mb=256, process_rate_mb=10)
        .build(),
        small_cluster,
    )
    assert together.stage("forkjoin", "A").duration >= alone.stage("solo", "A").duration - 1e-6


def test_event_log_ordering(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    times = [e.time for e in res.events]
    assert times == sorted(times)
    kinds = [e.kind for e in res.events]
    assert kinds[0] == EventKind.JOB_SUBMITTED
    assert kinds[-1] == EventKind.JOB_COMPLETED
    # Each stage: ready <= submitted <= read_done <= compute_done <= completed
    for sid in diamond_job.stage_ids:
        seq = [e.kind for e in res.events if e.stage_id == sid]
        order = [
            EventKind.STAGE_READY,
            EventKind.STAGE_SUBMITTED,
            EventKind.STAGE_READ_DONE,
            EventKind.STAGE_COMPUTE_DONE,
            EventKind.STAGE_COMPLETED,
        ]
        assert [k for k in seq if k in order] == order


def test_job_completion_is_last_stage(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    assert res.job_completion_time("diamond") == pytest.approx(
        max(r.finish_time for r in res.stage_records.values())
    )


def test_zero_input_stage_skips_read(small_cluster):
    job = (
        JobBuilder("z")
        .stage("S", input_mb=0, output_mb=64, process_rate_mb=10)
        .build()
    )
    res = simulate_job(job, small_cluster)
    rec = res.stage("z", "S")
    assert rec.read_time == pytest.approx(0.0)
    assert rec.compute_time == pytest.approx(0.0)  # nothing to process
    assert rec.write_time > 0


def test_zero_output_stage_skips_write(small_cluster):
    job = (
        JobBuilder("z")
        .stage("S", input_mb=64, output_mb=0, process_rate_mb=10)
        .build()
    )
    res = simulate_job(job, small_cluster)
    assert res.stage("z", "S").write_time == pytest.approx(0.0)


def test_no_storage_cluster_roots_read_from_peers():
    cluster = uniform_cluster(3, storage_nodes=0)
    job = single_stage_job()
    res = simulate_job(job, cluster)
    # 1/3 of the per-worker volume is co-located (free); the rest moves.
    assert res.stage("one", "S").read_time > 0


def test_single_worker_no_storage_all_local():
    cluster = uniform_cluster(1, storage_nodes=0)
    res = simulate_job(single_stage_job(), cluster)
    assert res.stage("one", "S").read_time == pytest.approx(0.0)


def test_multi_job_fair_sharing(small_cluster):
    """Two identical jobs submitted together finish together, later
    than one job alone."""
    job_a = single_stage_job()
    solo = simulate_job(job_a, small_cluster).job_completion_time("one")

    sim = Simulation(small_cluster)
    j1 = (
        JobBuilder("j1").stage("S", input_mb=512, output_mb=256, process_rate_mb=20).build()
    )
    j2 = (
        JobBuilder("j2").stage("S", input_mb=512, output_mb=256, process_rate_mb=20).build()
    )
    sim.add_job(j1)
    sim.add_job(j2)
    res = sim.run()
    t1 = res.job_completion_time("j1")
    t2 = res.job_completion_time("j2")
    assert t1 == pytest.approx(t2, rel=1e-6)
    assert t1 > solo


def test_staggered_job_arrival(small_cluster):
    sim = Simulation(small_cluster)
    j1 = JobBuilder("j1").stage("S", input_mb=256, output_mb=64, process_rate_mb=20).build()
    j2 = JobBuilder("j2").stage("S", input_mb=256, output_mb=64, process_rate_mb=20).build()
    sim.add_job(j1, submit_time=0.0)
    sim.add_job(j2, submit_time=100.0)
    res = sim.run()
    assert res.job_records["j2"].submit_time == 100.0
    assert res.stage("j2", "S").submit_time >= 100.0


def test_duplicate_job_rejected(small_cluster, diamond_job):
    sim = Simulation(small_cluster)
    sim.add_job(diamond_job)
    with pytest.raises(ValueError, match="duplicate"):
        sim.add_job(diamond_job)


def test_run_twice_rejected(small_cluster, diamond_job):
    sim = Simulation(small_cluster)
    sim.add_job(diamond_job)
    sim.run()
    with pytest.raises(RuntimeError):
        sim.run()


def test_run_without_jobs_rejected(small_cluster):
    with pytest.raises(RuntimeError, match="no jobs"):
        Simulation(small_cluster).run()


def test_add_job_after_run_rejected(small_cluster, diamond_job, chain_job):
    sim = Simulation(small_cluster)
    sim.add_job(diamond_job)
    sim.run()
    with pytest.raises(RuntimeError):
        sim.add_job(chain_job)


def test_parallel_stage_makespan_helper(fork_join_job, small_cluster):
    res = simulate_job(fork_join_job, small_cluster)
    members = parallel_stage_set(fork_join_job)
    span = res.parallel_stage_makespan("forkjoin", members)
    assert 0 < span <= res.job_completion_time("forkjoin")


def test_delays_never_speed_up_chain(chain_job, small_cluster):
    """Delaying stages of a pure chain only shifts it later."""
    base = simulate_job(chain_job, small_cluster).job_completion_time("chain")
    delayed = simulate_job(
        chain_job, small_cluster, FixedDelayPolicy({"S2": 10.0})
    ).job_completion_time("chain")
    assert delayed == pytest.approx(base + 10.0, rel=1e-6)


def test_contention_penalty_slows_contended_run(fork_join_job, small_cluster):
    ideal = simulate_job(fork_join_job, small_cluster).job_completion_time("forkjoin")
    penalized = simulate_job(
        fork_join_job,
        small_cluster,
        config=SimulationConfig(contention_penalty=0.5, track_metrics=False),
    ).job_completion_time("forkjoin")
    assert penalized > ideal


def test_contention_penalty_no_effect_when_alone(small_cluster):
    job = single_stage_job()
    a = simulate_job(job, small_cluster).job_completion_time("one")
    b = simulate_job(
        job,
        small_cluster,
        config=SimulationConfig(contention_penalty=0.5, track_metrics=False),
    ).job_completion_time("one")
    assert a == pytest.approx(b, rel=1e-9)


def test_volume_conservation(diamond_job, small_cluster):
    """Bytes received over the network equal the remote read volumes."""
    res = simulate_job(diamond_job, small_cluster)
    m = res.metrics
    total_in = 0.0
    for node in small_cluster.node_ids:
        s = m.node_series(node)
        total_in += float(((s.t1 - s.t0) * s.net_in).sum())

    expected = 0.0
    workers = len(small_cluster.worker_ids)
    for sid in diamond_job.stage_ids:
        stage = diamond_job.stage(sid)
        if diamond_job.parents(sid):
            sources = workers
            remote = (sources - 1) / sources
        else:
            remote = 1.0  # storage nodes are disjoint from workers
        expected += stage.input_bytes * remote
    assert total_in == pytest.approx(expected, rel=1e-6)


def test_fanin_limits_sources(small_cluster):
    job = single_stage_job()
    res = simulate_job(
        job, small_cluster, config=SimulationConfig(fanin=1, track_metrics=True)
    )
    # With fanin=1 each worker reads its whole remote share from one
    # storage node; the job still completes and reads everything.
    assert res.stage("one", "S").read_time > 0
