"""NodeSpec/ClusterSpec validation and the paper's cluster presets."""

import pytest

from repro.cluster import (
    ClusterSpec,
    NodeSpec,
    alibaba_sim_cluster,
    ec2_m4large_cluster,
    uniform_cluster,
)
from repro.util.units import mbps_to_bytes_per_sec, MB


def test_nodespec_validation():
    with pytest.raises(ValueError):
        NodeSpec("", 1, 1.0, 1.0)
    with pytest.raises(ValueError):
        NodeSpec("n", -1, 1.0, 1.0)
    with pytest.raises(ValueError, match="executor"):
        NodeSpec("n", 0, 1.0, 1.0)  # worker with no executors
    with pytest.raises(ValueError):
        NodeSpec("n", 1, 0.0, 1.0)
    # storage node with zero executors is fine
    NodeSpec("s", 0, 1.0, 1.0, is_storage=True)


def test_cluster_duplicate_node_rejected():
    n = NodeSpec("a", 1, 1.0, 1.0)
    with pytest.raises(ValueError, match="duplicate"):
        ClusterSpec([n, n])


def test_cluster_needs_a_worker():
    storage = NodeSpec("s", 0, 1.0, 1.0, is_storage=True)
    with pytest.raises(ValueError, match="worker"):
        ClusterSpec([storage])


def test_uniform_cluster_shape():
    c = uniform_cluster(4, executors_per_worker=3, storage_nodes=2)
    assert c.num_workers == 4
    assert len(c.storage_ids) == 2
    assert c.total_executors == 12
    assert "w0" in c and "hdfs1" in c
    assert len(c) == 6


def test_ec2_defaults_match_paper():
    """Sec. 5.1: 30 m4.large instances, 2 executors each, 3 HDFS nodes."""
    c = ec2_m4large_cluster()
    assert c.num_workers == 30
    assert len(c.storage_ids) == 3
    assert all(c.node(w).executors == 2 for w in c.worker_ids)
    assert c.node("w0").nic_bandwidth == pytest.approx(mbps_to_bytes_per_sec(450))


def test_alibaba_cluster_heterogeneous_nics():
    c = alibaba_sim_cluster(num_machines=10, rng=0)
    nics = {c.node(w).nic_bandwidth for w in c.worker_ids}
    assert len(nics) > 1  # heterogeneity is the point
    lo = mbps_to_bytes_per_sec(100)
    hi = mbps_to_bytes_per_sec(2000)
    assert all(lo <= b <= hi for b in nics)
    assert c.node("m0").disk_bandwidth == pytest.approx(80 * MB)


def test_alibaba_cluster_deterministic_by_seed():
    a = alibaba_sim_cluster(num_machines=5, rng=3)
    b = alibaba_sim_cluster(num_machines=5, rng=3)
    assert [n.nic_bandwidth for n in a.nodes] == [n.nic_bandwidth for n in b.nodes]


def test_partitioned_scales_resources():
    c = uniform_cluster(2, executors_per_worker=4, nic_mbps=400, storage_nodes=1)
    half = c.partitioned(0.5)
    assert half.node("w0").executors == 2
    assert half.node("w0").nic_bandwidth == pytest.approx(c.node("w0").nic_bandwidth / 2)
    # storage nodes keep zero executors
    assert half.node("hdfs0").executors == 0


def test_partitioned_keeps_at_least_one_executor():
    c = uniform_cluster(1, executors_per_worker=2)
    tiny = c.partitioned(0.1)
    assert tiny.node("w0").executors == 1


def test_partitioned_rejects_bad_share():
    c = uniform_cluster(1)
    for bad in (0.0, -0.5, 1.5):
        with pytest.raises(ValueError):
            c.partitioned(bad)


def test_node_lookup_error():
    c = uniform_cluster(1)
    with pytest.raises(KeyError):
        c.node("nope")
