"""Makespan lower bounds and the random-search baseline."""

import pytest

from repro.core import (
    DelayStageParams,
    delay_stage_schedule,
    makespan_bounds,
    optimality_gap,
    random_search_schedule,
)
from repro.dag import JobBuilder
from repro.model import evaluate_schedule


def contended_job():
    return (
        JobBuilder("cb")
        .stage("S1", input_mb=1024, output_mb=512, process_rate_mb=8)
        .stage("S2", input_mb=1024, output_mb=2048, process_rate_mb=8)
        .stage("S3", input_mb=2048, output_mb=512, process_rate_mb=16, parents=["S2"])
        .stage("S4", input_mb=1024, output_mb=128, process_rate_mb=16, parents=["S1", "S3"])
        .build()
    )


# ------------------------------ bounds --------------------------------- #


def test_bound_below_any_schedule(small_cluster):
    job = contended_job()
    bounds = makespan_bounds(job, small_cluster)
    stock = evaluate_schedule(job, small_cluster, {})
    ds = delay_stage_schedule(job, small_cluster)
    assert bounds.bound <= stock.parallel_makespan + 1e-6
    assert bounds.bound <= ds.predicted_makespan + 1e-6


def test_bound_components_nonnegative(small_cluster):
    b = makespan_bounds(contended_job(), small_cluster)
    for v in (b.critical_path, b.cpu_work, b.storage_egress, b.network_volume, b.disk_volume):
        assert v >= 0
    assert b.bound == max(
        b.critical_path, b.cpu_work, b.storage_egress, b.network_volume, b.disk_volume
    )
    assert b.binding in {
        "critical_path", "cpu_work", "storage_egress", "network_volume", "disk_volume"
    }


def test_bound_zero_for_sequential_job(chain_job, small_cluster):
    b = makespan_bounds(chain_job, small_cluster)
    assert b.bound == 0.0


def test_optimality_gap(small_cluster):
    job = contended_job()
    b = makespan_bounds(job, small_cluster)
    ds = delay_stage_schedule(job, small_cluster)
    gap = optimality_gap(ds.predicted_makespan, b)
    assert gap >= -1e-9
    assert gap < 1.0  # the greedy lands within 2x of the (loose) bound
    assert optimality_gap(5.0, makespan_bounds(chain_job_fixture(), small_cluster)) == 0.0


def chain_job_fixture():
    return (
        JobBuilder("seq")
        .stage("A", input_mb=64, output_mb=32, process_rate_mb=10)
        .stage("B", input_mb=32, output_mb=8, process_rate_mb=10, parents=["A"])
        .build()
    )


# ------------------------------ search --------------------------------- #


def test_search_never_worse_than_stock(small_cluster):
    job = contended_job()
    rs = random_search_schedule(job, small_cluster, samples=20, rng=0)
    assert rs.predicted_makespan <= rs.baseline_makespan + 1e-9


def test_search_deterministic_by_seed(small_cluster):
    job = contended_job()
    a = random_search_schedule(job, small_cluster, samples=10, rng=5)
    b = random_search_schedule(job, small_cluster, samples=10, rng=5)
    assert a.delays == b.delays


def test_search_on_sequential_job(chain_job, small_cluster):
    rs = random_search_schedule(chain_job, small_cluster, samples=5)
    assert rs.delays == {}


def test_search_rejects_bad_samples(small_cluster):
    with pytest.raises(ValueError):
        random_search_schedule(contended_job(), small_cluster, samples=0)


def test_greedy_competitive_with_search(small_cluster):
    """Algorithm 1 lands within 10 % of a 60-sample random search —
    the greedy's structure costs little (Sec. 4.1's implicit claim)."""
    job = contended_job()
    greedy = delay_stage_schedule(job, small_cluster, DelayStageParams(max_slots=24))
    search = random_search_schedule(job, small_cluster, samples=60, rng=0)
    assert greedy.predicted_makespan <= search.predicted_makespan * 1.10


# ------------------------- property: bound validity -------------------- #

from hypothesis import given, settings, strategies as st

from repro.workloads import random_job


@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=2**31),
    st.floats(min_value=0.0, max_value=120.0),
)
@settings(max_examples=15, deadline=None)
def test_bound_below_arbitrary_schedules(n, seed, delay):
    """No delay vector can beat the lower bound (hypothesis sweep)."""
    from repro.cluster import uniform_cluster
    from repro.dag import parallel_stage_set

    cluster = uniform_cluster(3, storage_nodes=1)
    job = random_job(n, parallelism=0.7, rng=seed, median_input_mb=256, median_rate_mb=8)
    members = parallel_stage_set(job)
    if not members:
        return
    bounds = makespan_bounds(job, cluster)
    delays = {sid: delay * ((i % 3) / 2) for i, sid in enumerate(sorted(members))}
    ev = evaluate_schedule(job, cluster, delays, members=members)
    assert ev.parallel_makespan >= bounds.bound - 1e-6
