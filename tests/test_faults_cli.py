"""CLI fault-injection surface (--faults / --chaos-seed)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.faults import FaultPlan, NodeCrash


def _json_out(capsys):
    return json.loads(capsys.readouterr().out)


@pytest.fixture
def plan_file(tmp_path):
    path = tmp_path / "plan.json"
    FaultPlan(
        events=(NodeCrash(time=30.0, node="w2"),),
        retry_budget=3, backoff_base=0.5, backoff_cap=4.0,
    ).save(path)
    return str(path)


def test_flags_are_mutually_exclusive(plan_file, capsys):
    with pytest.raises(SystemExit):
        main(["compare", "--workload", "ALS", "--faults", plan_file,
              "--chaos-seed", "1"])
    capsys.readouterr()


def test_compare_with_fault_plan(plan_file, capsys):
    assert main(["compare", "--workload", "ALS", "--oracle",
                 "--faults", plan_file, "--json"]) == 0
    payload = _json_out(capsys)
    # AggShuffle (pipelined shuffle) is swapped out for Fuxi, and the
    # replanning DelayStage variant joins the lineup.
    assert set(payload["runs"]) == {"spark", "fuxi", "delaystage",
                                    "delaystage+replan"}
    assert payload["fault_plan"]["events"][0]["kind"] == "node_crash"
    for run in payload["runs"].values():
        assert run["faults"]["injected"] == 1
        assert run["faults"]["dead_nodes"] == {"w2": 30.0}
        assert run["counters"]["faults.crashes"] == 1.0


def test_compare_with_chaos_seed(capsys):
    assert main(["compare", "--workload", "ALS", "--oracle",
                 "--chaos-seed", "5", "--json"]) == 0
    payload = _json_out(capsys)
    assert len(payload["fault_plan"]["events"]) >= 1
    assert payload["manifest"]["config"]["chaos_seed"] == 5


def test_compare_healthy_lineup_unchanged(capsys):
    assert main(["compare", "--workload", "ALS", "--oracle", "--json"]) == 0
    payload = _json_out(capsys)
    assert set(payload["runs"]) == {"spark", "aggshuffle", "delaystage"}
    assert "fault_plan" not in payload


def test_compare_rejects_plan_for_wrong_cluster(tmp_path, capsys):
    path = tmp_path / "bad.json"
    FaultPlan(events=(NodeCrash(time=1.0, node="w99"),)).save(path)
    with pytest.raises(ValueError, match="unknown node"):
        main(["compare", "--workload", "ALS", "--faults", str(path)])
    capsys.readouterr()


def test_compare_faults_emit_trace_validates(plan_file, tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert main(["compare", "--workload", "ALS", "--oracle",
                 "--faults", plan_file, "--emit-trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["inspect", str(trace), "--validate"]) == 0
    capsys.readouterr()


def test_report_availability_section(plan_file, capsys):
    assert main(["report", "--workload", "ALS", "--oracle",
                 "--faults", plan_file, "--json"]) == 0
    payload = _json_out(capsys)
    rows = payload["availability"]
    assert rows, "availability section must be non-empty"
    by_name = {row["scheduler"]: row for row in rows}
    assert set(by_name) == {"fuxi", "spark", "delaystage"}
    for row in by_name.values():
        assert row["faulty_makespan"] >= row["healthy_makespan"] > 0
        assert row["jct_inflation"] >= 0.0
        assert row["jobs_failed"] == 0


def test_report_availability_text(plan_file, capsys):
    assert main(["report", "--workload", "ALS", "--oracle",
                 "--faults", plan_file]) == 0
    out = capsys.readouterr().out
    assert "inflation" in out and "healthy" in out and "faulty" in out


def test_empty_plan_file_is_accepted(tmp_path, capsys):
    path = tmp_path / "empty.json"
    FaultPlan().save(path)
    assert main(["compare", "--workload", "ALS", "--oracle",
                 "--faults", str(path), "--json"]) == 0
    payload = _json_out(capsys)
    # No events: nothing injected, per-run fault stats stay null.
    assert all(run["faults"] is None for run in payload["runs"].values())


def test_replay_with_chaos_seed(capsys):
    assert main(["replay", "--jobs", "2", "--chaos-seed", "1",
                 "--parallel", "1", "--json"]) == 0
    payload = _json_out(capsys)
    faults = payload["faults"]
    assert faults["plan_events"] >= 1
    assert faults["jobs_compared"] <= 2
    assert {"jobs_failed", "retries"} <= set(faults["fuxi"])


def test_replay_faults_rejects_emit_trace(plan_file, tmp_path, capsys):
    assert main(["replay", "--jobs", "2", "--chaos-seed", "1",
                 "--emit-trace", str(tmp_path / "t.json")]) == 2
    assert "not supported" in capsys.readouterr().err
