"""CSV export of simulation results."""

import csv
import io

import pytest

from repro.analysis import export_stage_records_csv, export_utilization_csv
from repro.simulator import SimulationConfig, simulate_job


def test_stage_records_csv(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    buf = io.StringIO()
    rows = export_stage_records_csv(res, buf)
    assert rows == 4
    buf.seek(0)
    parsed = list(csv.DictReader(buf))
    assert {r["stage_id"] for r in parsed} == {"S1", "S2", "S3", "S4"}
    s1 = next(r for r in parsed if r["stage_id"] == "S1")
    assert float(s1["finish"]) == pytest.approx(
        res.stage("diamond", "S1").finish_time
    )
    assert float(s1["duration"]) > 0


def test_stage_records_to_file(diamond_job, small_cluster, tmp_path):
    res = simulate_job(diamond_job, small_cluster)
    path = tmp_path / "stages.csv"
    export_stage_records_csv(res, path)
    assert path.read_text().startswith("job_id,stage_id,")


def test_utilization_csv(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    buf = io.StringIO()
    rows = export_utilization_csv(res, buf, step=5.0, nodes=["w0"])
    buf.seek(0)
    parsed = list(csv.DictReader(buf))
    assert len(parsed) == rows
    assert all(r["node"] == "w0" for r in parsed)
    assert any(float(r["net_in_bytes"]) > 0 for r in parsed)
    assert all(0 <= float(r["cpu_utilization"]) <= 1 for r in parsed)


def test_utilization_requires_metrics(diamond_job, small_cluster):
    res = simulate_job(
        diamond_job, small_cluster, config=SimulationConfig(track_metrics=False)
    )
    with pytest.raises(ValueError, match="metrics"):
        export_utilization_csv(res, io.StringIO())


def test_utilization_step_validated(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    with pytest.raises(ValueError, match="step"):
        export_utilization_csv(res, io.StringIO(), step=0)
