"""The perf layer is bit-exact: optimized and escape-hatch paths agree.

The PR that introduced the scoped allocator, Algorithm 1 memoization /
bound pruning, and parallel replay claims *identical* results — not
merely close ones.  These property tests are that claim's enforcement:
every comparison below is ``==`` on floats, never ``pytest.approx``.
"""

from __future__ import annotations

import dataclasses
import io
import math

from hypothesis import given, settings, strategies as st

from repro.cluster.spec import uniform_cluster
from repro.core.delaystage import DelayStageParams, delay_stage_schedule
from repro.simulator.simulation import (
    ImmediatePolicy,
    Simulation,
    SimulationConfig,
)
from repro.workloads.synthetic import random_job


def _records_equal(a, b) -> bool:
    """Dataclass equality where NaN == NaN (unset lifecycle fields)."""
    for f in dataclasses.fields(a):
        x, y = getattr(a, f.name), getattr(b, f.name)
        if isinstance(x, float) and math.isnan(x) and math.isnan(y):
            continue
        if x != y:
            return False
    return True


def _cluster():
    return uniform_cluster(
        3, executors_per_worker=2, nic_mbps=450, disk_mb_per_sec=150,
        storage_nodes=0,
    )


def _run(jobs, *, incremental: bool, penalty: float = 0.0):
    cfg = SimulationConfig(
        track_metrics=False, contention_penalty=penalty,
        incremental=incremental,
    )
    sim = Simulation(_cluster(), cfg)
    for job in jobs:
        sim.add_job(job, ImmediatePolicy())
    return sim.run()


def _assert_results_identical(a, b) -> None:
    assert a.stage_records.keys() == b.stage_records.keys()
    for key in a.stage_records:
        assert _records_equal(a.stage_records[key], b.stage_records[key]), key
    for jid in a.job_records:
        assert _records_equal(a.job_records[jid], b.job_records[jid]), jid
    assert a.events == b.events


# --------------------------------------------------------------------- #
# tentpole 1: scoped (incremental) fair-share == full re-solve


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_stages=st.integers(2, 9),
    num_jobs=st.integers(1, 3),
    penalty=st.sampled_from([0.0, 0.5]),
)
def test_incremental_allocator_bit_identical(seed, num_stages, num_jobs, penalty):
    jobs = [
        random_job(num_stages, job_id=f"J{i}", parallelism=0.6,
                   rng=seed * 7 + i)
        for i in range(num_jobs)
    ]
    full = _run(jobs, incremental=False, penalty=penalty)
    scoped = _run(jobs, incremental=True, penalty=penalty)
    _assert_results_identical(scoped, full)


def test_incremental_eventlog_seed_identical():
    """The serialized eventlog — not just the records — is byte-equal."""
    from repro.simulator.eventlog import write_eventlog

    jobs = [random_job(7, job_id=f"J{i}", parallelism=0.7, rng=11 + i)
            for i in range(2)]
    logs = []
    for incremental in (True, False):
        buf = io.StringIO()
        write_eventlog(_run(jobs, incremental=incremental).events, buf)
        logs.append(buf.getvalue())
    assert logs[0] == logs[1]


# --------------------------------------------------------------------- #
# tentpole 2: memoized + bound-pruned Algorithm 1 == plain Algorithm 1


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_stages=st.integers(3, 8),
    parallelism=st.floats(0.3, 0.9),
)
def test_memoized_alg1_bit_identical(seed, num_stages, parallelism):
    job = random_job(num_stages, parallelism=parallelism, rng=seed)
    cluster = _cluster()
    fast = delay_stage_schedule(job, cluster, DelayStageParams(max_slots=8))
    plain = delay_stage_schedule(
        job, cluster,
        DelayStageParams(max_slots=8, memoize=False, bound_prune=False),
    )
    # Semantic fields only: evaluations/compute_seconds are telemetry
    # and legitimately differ (that's the point of the optimization).
    assert fast.delays == plain.delays
    assert fast.predicted_makespan == plain.predicted_makespan
    assert fast.baseline_makespan == plain.baseline_makespan
    assert fast.paths == plain.paths
    assert fast.standalone_times == plain.standalone_times
    assert fast.evaluations <= plain.evaluations


def test_memoized_alg1_with_refinement_identical():
    job = random_job(7, parallelism=0.7, rng=42)
    cluster = _cluster()
    fast = delay_stage_schedule(
        job, cluster, DelayStageParams(max_slots=8, refine_passes=1)
    )
    plain = delay_stage_schedule(
        job, cluster,
        DelayStageParams(max_slots=8, refine_passes=1, memoize=False,
                         bound_prune=False),
    )
    assert fast.delays == plain.delays
    assert fast.predicted_makespan == plain.predicted_makespan


# --------------------------------------------------------------------- #
# tentpole 3: parallel replay == serial replay


def test_parallel_replay_matches_serial():
    from repro.schedulers.fuxi import FuxiScheduler
    from repro.simulator.parallel import replay_jcts

    jobs = [random_job(5, job_id=f"J{i}", parallelism=0.5, rng=i)
            for i in range(5)]
    cluster = _cluster()
    sched = FuxiScheduler(track_metrics=False)
    serial = replay_jcts(jobs, cluster, sched, processes=1)
    for processes in (2, 3):
        assert replay_jcts(jobs, cluster, sched, processes=processes) == serial


def test_shard_split_and_seeds_deterministic():
    from repro.simulator.parallel import shard_seeds, split_shards

    shards = split_shards(list("abcdefg"), 3)
    assert [[i for i, _ in s] for s in shards] == [[0, 3, 6], [1, 4], [2, 5]]
    # All items present exactly once, index-tagged.
    assert sorted(i for s in shards for i, _ in s) == list(range(7))
    assert split_shards([1, 2], 5) == [[(0, 1)], [(1, 2)]]
    assert shard_seeds(3, 4) == shard_seeds(3, 4)
    assert shard_seeds(3, 4) != shard_seeds(4, 4)


def test_replay_batch_serial_path_with_tracer():
    from repro.obs.tracer import Tracer
    from repro.schedulers.fuxi import FuxiScheduler
    from repro.schedulers.runner import replay_batch

    jobs = [random_job(4, job_id=f"J{i}", rng=i) for i in range(2)]
    cluster = _cluster()
    sched = FuxiScheduler(track_metrics=False)
    # A tracer forces the serial path; results still match.
    traced = replay_batch(jobs, cluster, sched, processes=4, tracer=Tracer())
    assert traced == replay_batch(jobs, cluster, sched, processes=1)


# --------------------------------------------------------------------- #
# supporting machinery


def test_track_events_off_only_drops_events():
    job = random_job(6, parallelism=0.6, rng=5)
    quiet_cfg = SimulationConfig(track_metrics=False, track_events=False)
    sim = Simulation(_cluster(), quiet_cfg)
    sim.add_job(job, ImmediatePolicy())
    quiet = sim.run()
    loud = _run([job], incremental=True)
    assert quiet.events == []
    assert loud.events
    for key in loud.stage_records:
        assert _records_equal(quiet.stage_records[key], loud.stage_records[key])


def test_bench_quick_smoke():
    from repro.bench import run_benchmarks

    (result,) = run_benchmarks(["alg1"], quick=True)
    assert result.name == "alg1"
    assert result.equivalent
    assert result.wall_s > 0 and result.baseline_wall_s > 0
    payload = result.to_dict()
    for key in ("name", "wall_s", "jobs_per_s", "events_per_s",
                "manifest_hash", "baseline", "speedup"):
        assert key in payload
