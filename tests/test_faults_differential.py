"""Differential chaos tests.

Two contracts:

* **Empty plan is free** — a scheduler handed ``FaultPlan()`` produces
  byte-identical records and events to one handed no plan at all (the
  injector must not even install itself).
* **Replanning never hurts (much)** — on seeded chaos plans, DelayStage
  with mid-run Algorithm 1 replanning finishes within 5 % of DelayStage
  without it.  Replanning only moves *not-yet-submitted* stage delays,
  so it can refine but not sabotage the schedule.
"""

from __future__ import annotations

import dataclasses
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import uniform_cluster
from repro.core.delaystage import DelayStageParams
from repro.faults import FaultPlan, generate_plan
from repro.schedulers import (
    DelayStageScheduler,
    FuxiScheduler,
    StockSparkScheduler,
    run_with_scheduler,
)
from repro.workloads.synthetic import random_job


def _cluster():
    return uniform_cluster(3, executors_per_worker=2, nic_mbps=450,
                           disk_mb_per_sec=150, storage_nodes=0)


def _records_equal(a, b) -> bool:
    """Dataclass equality where NaN == NaN (unset lifecycle fields)."""
    for f in dataclasses.fields(a):
        x, y = getattr(a, f.name), getattr(b, f.name)
        if isinstance(x, float) and math.isnan(x) and math.isnan(y):
            continue
        if x != y:
            return False
    return True


def _assert_results_identical(a, b) -> None:
    assert a.stage_records.keys() == b.stage_records.keys()
    for key in a.stage_records:
        assert _records_equal(a.stage_records[key], b.stage_records[key]), key
    for jid in a.job_records:
        assert _records_equal(a.job_records[jid], b.job_records[jid]), jid
    assert a.events == b.events


def _schedulers(plan):
    return [
        FuxiScheduler(track_metrics=False, fault_plan=plan),
        StockSparkScheduler(track_metrics=False, fault_plan=plan),
        DelayStageScheduler(profiled=False, track_metrics=False,
                            params=DelayStageParams(max_slots=8),
                            fault_plan=plan),
    ]


# --------------------------------------------------------------------- #
# empty plan == no plan, bit for bit (acceptance criterion)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000), num_stages=st.integers(2, 7))
def test_empty_plan_is_bit_identical(seed, num_stages):
    job = random_job(num_stages, job_id="j0", rng=seed)
    cluster = _cluster()
    for bare, empty in zip(_schedulers(None), _schedulers(FaultPlan())):
        a = run_with_scheduler(job, cluster, bare).result
        b = run_with_scheduler(job, cluster, empty).result
        assert b.faults is None  # injector never installed
        _assert_results_identical(a, b)


def test_empty_plan_identity_on_paper_workload():
    from repro.workloads import workload_by_name

    job = workload_by_name("ALS", 1.0)
    cluster = _cluster()
    for bare, empty in zip(_schedulers(None), _schedulers(FaultPlan())):
        a = run_with_scheduler(job, cluster, bare).result
        b = run_with_scheduler(job, cluster, empty).result
        _assert_results_identical(a, b)


# --------------------------------------------------------------------- #
# replanning never loses by more than 5 % on seeded chaos


@pytest.mark.parametrize("seed", [1, 2, 3, 5, 8, 13])
def test_replan_never_loses_to_static_plan(seed):
    job = random_job(6, job_id="j0", rng=seed)
    cluster = _cluster()
    plan = generate_plan(cluster, seed, jobs=[job], num_events=4,
                         retry_budget=5, backoff_base=0.25, backoff_cap=2.0)
    params = DelayStageParams(max_slots=8)
    static = run_with_scheduler(job, cluster, DelayStageScheduler(
        profiled=False, track_metrics=False, params=params,
        fault_plan=plan))
    replan = run_with_scheduler(job, cluster, DelayStageScheduler(
        profiled=False, track_metrics=False, params=params,
        fault_plan=plan, replan=True))
    assert replan.scheduler_name == "delaystage+replan"

    static_failed = static.result.faults and static.result.faults.jobs_failed
    replan_failed = replan.result.faults and replan.result.faults.jobs_failed
    if static_failed:
        return  # the static plan lost the job; replan cannot do worse
    assert not replan_failed, f"seed {seed}: replanning failed a job static saved"
    assert replan.jct <= 1.05 * static.jct, (
        f"seed {seed}: replan {replan.jct:.2f}s vs static {static.jct:.2f}s"
    )
