"""Trace schema records and the batch_task.csv parser."""

import io

import pytest

from repro.trace import TraceJob, TraceStage, parse_batch_task_csv, parse_task_name


def test_stage_duration_and_validation():
    s = TraceStage("S1", 10.0, 25.0)
    assert s.duration == 15.0
    with pytest.raises(ValueError):
        TraceStage("S1", 25.0, 10.0)


def test_job_aggregates():
    job = TraceJob(
        "j",
        [TraceStage("A", 0.0, 10.0), TraceStage("B", 10.0, 30.0)],
        [("A", "B")],
    )
    assert job.num_stages == 2
    assert job.start_time == 0.0
    assert job.end_time == 30.0
    assert job.duration == 30.0
    assert job.stage("A").duration == 10.0
    with pytest.raises(KeyError):
        job.stage("Z")


# ----------------------------- task names ----------------------------- #


def test_parse_dag_task_names():
    assert parse_task_name("M1") == (1, [])
    assert parse_task_name("R2_1") == (2, [1])
    assert parse_task_name("M3_1_2") == (3, [1, 2])
    assert parse_task_name("J10_4_7") == (10, [4, 7])


def test_parse_independent_task_names():
    assert parse_task_name("task_Nzg3ODcwNDc2MjE2") is None
    assert parse_task_name("MergeTask") is None


# ------------------------------- parser ------------------------------- #

CSV = """\
M1,10,j_1,A,Terminated,100,150,50,0.5
R2_1,5,j_1,A,Terminated,150,200,50,0.5
M3_1_2,5,j_1,A,Terminated,200,220,50,0.5
M1,4,j_2,A,Terminated,300,400,50,0.5
task_xyz,1,j_3,A,Terminated,10,20,50,0.5
"""


def test_parse_csv_jobs_and_edges():
    jobs = {j.job_id: j for j in parse_batch_task_csv(io.StringIO(CSV))}
    assert set(jobs) == {"j_1", "j_2", "j_3"}
    j1 = jobs["j_1"]
    assert j1.num_stages == 3
    assert ("M1", "R2_1") in j1.edges
    assert ("M1", "M3_1_2") in j1.edges
    assert ("R2_1", "M3_1_2") in j1.edges
    assert jobs["j_2"].edges == []
    assert jobs["j_3"].edges == []


def test_parser_skips_non_terminated():
    csv = "M1,1,j,A,Failed,1,2,0,0\nM2_1,1,j,A,Terminated,2,3,0,0\n"
    jobs = parse_batch_task_csv(io.StringIO(csv), statuses=frozenset({"Terminated"}))
    # M2 depends on M1 which was filtered -> broken DAG -> job dropped.
    assert jobs == []


def test_parser_keeps_all_statuses_when_none():
    csv = "M1,1,j,A,Failed,1,2,0,0\n"
    jobs = parse_batch_task_csv(io.StringIO(csv), statuses=None)
    assert len(jobs) == 1


def test_parser_skips_bad_timestamps():
    csv = "M1,1,j,A,Terminated,,-1,0,0\nM1,1,k,A,Terminated,5,9,0,0\n"
    jobs = parse_batch_task_csv(io.StringIO(csv))
    assert [j.job_id for j in jobs] == ["k"]


def test_parser_drops_duplicate_task_numbers():
    csv = "M1,1,j,A,Terminated,1,2,0,0\nR1,1,j,A,Terminated,2,3,0,0\n"
    assert parse_batch_task_csv(io.StringIO(csv)) == []


def test_parser_max_jobs():
    csv = "".join(f"M1,1,j_{i},A,Terminated,1,2,0,0\n" for i in range(10))
    jobs = parse_batch_task_csv(io.StringIO(csv), max_jobs=3)
    assert len(jobs) <= 3


def test_parser_reads_file(tmp_path):
    f = tmp_path / "batch_task.csv"
    f.write_text(CSV)
    jobs = parse_batch_task_csv(f)
    assert len(jobs) == 3
