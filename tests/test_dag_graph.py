"""Graph algorithms: topological order, ancestors, parallel stages,
critical path — including hypothesis property tests on random DAGs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dag import (
    Job,
    ancestors,
    critical_path,
    descendants,
    is_parallel_pair,
    parallel_pairs,
    parallel_stage_set,
    sequential_stage_set,
    topological_order,
)
from repro.workloads import random_job

from testutil import make_job


def test_topological_order_respects_edges(diamond_job):
    order = topological_order(diamond_job)
    pos = {sid: i for i, sid in enumerate(order)}
    for parent, child in diamond_job.edges:
        assert pos[parent] < pos[child]


def test_topological_order_deterministic(diamond_job):
    assert topological_order(diamond_job) == topological_order(diamond_job)


def test_ancestors_descendants(diamond_job):
    assert ancestors(diamond_job, "S4") == {"S1", "S2", "S3"}
    assert ancestors(diamond_job, "S1") == frozenset()
    assert descendants(diamond_job, "S1") == {"S2", "S3", "S4"}
    assert descendants(diamond_job, "S4") == frozenset()


def test_parallel_pair(diamond_job):
    assert is_parallel_pair(diamond_job, "S2", "S3")
    assert not is_parallel_pair(diamond_job, "S1", "S2")
    assert not is_parallel_pair(diamond_job, "S1", "S4")
    assert not is_parallel_pair(diamond_job, "S2", "S2")


def test_parallel_pairs_diamond(diamond_job):
    assert parallel_pairs(diamond_job) == {frozenset(("S2", "S3"))}


def test_parallel_stage_set_diamond(diamond_job):
    # S1 and S4 are sequential with everything.
    assert parallel_stage_set(diamond_job) == {"S2", "S3"}
    assert sequential_stage_set(diamond_job) == {"S1", "S4"}


def test_parallel_stage_set_chain(chain_job):
    assert parallel_stage_set(chain_job) == frozenset()
    assert sequential_stage_set(chain_job) == {"S1", "S2", "S3"}


def test_parallel_stage_set_fork_join(fork_join_job):
    assert parallel_stage_set(fork_join_job) == {"A", "B", "C"}


def test_als_structure_matches_paper():
    """Fig. 1/7: ALS parallel set is {S1..S4}; S5, S6 sequential."""
    from repro.workloads import als

    job = als()
    assert parallel_stage_set(job) == {"S1", "S2", "S3", "S4"}
    assert sequential_stage_set(job) == {"S5", "S6"}


def test_critical_path_with_weights(diamond_job):
    weights = {"S1": 1.0, "S2": 5.0, "S3": 2.0, "S4": 1.0}
    path, total = critical_path(diamond_job, weights)
    assert path == ["S1", "S2", "S4"]
    assert total == pytest.approx(7.0)


def test_critical_path_default_weight(fork_join_job):
    path, total = critical_path(fork_join_job)
    assert path[-1] == "D"
    assert len(path) == 2


def test_critical_path_callable_weight(chain_job):
    path, total = critical_path(chain_job, lambda sid: 1.0)
    assert path == ["S1", "S2", "S3"]
    assert total == pytest.approx(3.0)


# --------------------------------------------------------------------- #
# property tests on random DAGs
# --------------------------------------------------------------------- #


@st.composite
def random_jobs(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    par = draw(st.floats(min_value=0.0, max_value=1.0))
    return random_job(n, parallelism=par, rng=seed)


@given(random_jobs())
@settings(max_examples=40, deadline=None)
def test_topological_order_is_valid_permutation(job):
    order = topological_order(job)
    assert sorted(order) == sorted(job.stage_ids)
    pos = {sid: i for i, sid in enumerate(order)}
    for parent, child in job.edges:
        assert pos[parent] < pos[child]


@given(random_jobs())
@settings(max_examples=40, deadline=None)
def test_parallel_set_consistent_with_pairs(job):
    members = parallel_stage_set(job)
    in_pairs = {sid for pair in parallel_pairs(job) for sid in pair}
    assert members == in_pairs


@given(random_jobs())
@settings(max_examples=40, deadline=None)
def test_parallel_is_symmetric_and_antireflexive(job):
    ids = job.stage_ids[:6]
    for a in ids:
        assert not is_parallel_pair(job, a, a)
        for b in ids:
            assert is_parallel_pair(job, a, b) == is_parallel_pair(job, b, a)


@given(random_jobs())
@settings(max_examples=30, deadline=None)
def test_ancestors_never_parallel(job):
    for sid in job.stage_ids[:5]:
        for anc in list(ancestors(job, sid))[:5]:
            assert not is_parallel_pair(job, sid, anc)
