"""Unit tests for the perf-layer machinery itself.

`tests/test_perf_equivalence.py` proves the optimized paths produce
identical results; this file tests the supporting pieces directly —
truncated probes, the evaluation cache, the bound-prune audit fields,
allocator telemetry, and the metrics fast paths.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.delaystage import DelayStageParams, delay_stage_schedule
from repro.model.interference import (
    EvaluationCache,
    evaluate_schedule,
    probe_schedule,
)
from repro.obs import Tracer, decision_audits, to_chrome_trace
from repro.workloads.synthetic import random_job


# --------------------------------------------------------------------- #
# truncated probes


def test_probe_matches_full_evaluation(fork_join_job, small_cluster):
    delays = {"S2": 5.0}
    full = evaluate_schedule(fork_join_job, small_cluster, delays)
    probed = probe_schedule(fork_join_job, small_cluster, delays)
    assert probed == full.stage_finish


def test_probe_horizon_truncates_exactly(fork_join_job, small_cluster):
    full = evaluate_schedule(fork_join_job, small_cluster, {})
    finishes = sorted(full.stage_finish.values())
    horizon = (finishes[0] + finishes[-1]) / 2
    probed = probe_schedule(fork_join_job, small_cluster, {}, horizon=horizon)
    expected = {s: t for s, t in full.stage_finish.items() if t <= horizon}
    assert probed == expected
    assert len(probed) < len(full.stage_finish)


def test_probe_watch_stops_early(fork_join_job, small_cluster):
    full = evaluate_schedule(fork_join_job, small_cluster, {})
    first = min(full.stage_finish, key=full.stage_finish.get)
    probed = probe_schedule(fork_join_job, small_cluster, {}, watch=[first])
    assert probed[first] == full.stage_finish[first]


# --------------------------------------------------------------------- #
# evaluation cache


def test_evaluation_cache_hit_returns_identical_object(
    fork_join_job, small_cluster
):
    cache = EvaluationCache()
    delays = {"S1": 1.0, "S2": 0.0}
    key = cache.key(["S3"], delays)
    assert cache.get(key) is None
    ev = evaluate_schedule(fork_join_job, small_cluster, delays)
    cache.put(key, ev)
    assert cache.get(key) is ev
    assert cache.hits == 1 and cache.misses == 1 and len(cache) == 1


def test_evaluation_cache_key_canonical():
    a = EvaluationCache.key(["S1", "S2"], {"S3": 1.0, "S4": 2.0})
    b = EvaluationCache.key(["S2", "S1"], {"S4": 2.0, "S3": 1.0})
    assert a == b


def test_memoization_saves_evaluations(fork_join_job, small_cluster):
    fast = delay_stage_schedule(
        fork_join_job, small_cluster, DelayStageParams(bound_prune=False)
    )
    plain = delay_stage_schedule(
        fork_join_job, small_cluster,
        DelayStageParams(memoize=False, bound_prune=False),
    )
    assert fast.evaluations < plain.evaluations
    assert fast.delays == plain.delays


# --------------------------------------------------------------------- #
# bound-prune audit


def test_scan_audit_reports_pruned_by_bound(fork_join_job, small_cluster):
    tracer = Tracer()
    delay_stage_schedule(fork_join_job, small_cluster, tracer=tracer)
    audits = decision_audits(to_chrome_trace(tracer))
    assert audits
    total = 0
    for audit in audits:
        assert audit["pruned_by_bound"] >= 0
        assert audit["ready_lower_bound"] >= 0.0
        total += audit["pruned_by_bound"]
    assert tracer.counters.get("alg1.pruned_by_bound", 0) == total


def test_scan_audit_no_bound_prune_reports_zero(fork_join_job, small_cluster):
    tracer = Tracer()
    delay_stage_schedule(
        fork_join_job, small_cluster, DelayStageParams(bound_prune=False),
        tracer=tracer,
    )
    for audit in decision_audits(to_chrome_trace(tracer)):
        assert audit["pruned_by_bound"] == 0


# --------------------------------------------------------------------- #
# allocator telemetry


def test_incremental_runs_use_scoped_allocations(small_cluster):
    from repro.simulator.simulation import (
        ImmediatePolicy,
        Simulation,
        SimulationConfig,
    )

    job = random_job(6, parallelism=0.6, rng=9)
    sim = Simulation(small_cluster, SimulationConfig(track_metrics=False))
    sim.add_job(job, ImmediatePolicy())
    sim.run()
    assert sim.engine.incremental_allocations > 0

    full = Simulation(
        small_cluster,
        SimulationConfig(track_metrics=False, incremental=False),
    )
    full.add_job(job, ImmediatePolicy())
    full.run()
    assert full.engine.incremental_allocations == 0
    assert full.engine.full_allocations > 0


# --------------------------------------------------------------------- #
# parallel replay edge cases


def test_replay_jcts_empty_batch():
    from repro.cluster.spec import uniform_cluster
    from repro.schedulers.fuxi import FuxiScheduler
    from repro.simulator.parallel import replay_jcts

    cluster = uniform_cluster(2, executors_per_worker=2)
    assert replay_jcts([], cluster, FuxiScheduler(track_metrics=False)) == []


def test_split_shards_rejects_nonpositive():
    from repro.simulator.parallel import split_shards

    with pytest.raises(ValueError, match="num_shards"):
        split_shards([1], 0)


# --------------------------------------------------------------------- #
# metrics fast paths


def test_metrics_observe_ignores_zero_width(small_cluster):
    from repro.simulator.metrics import MetricsCollector

    coll = MetricsCollector(small_cluster)
    coll.observe(1.0, 1.0, [])
    node = small_cluster.node_ids[0]
    assert len(coll.node_series(node).t0) == 0
    coll.observe(1.0, 2.0, [])
    assert len(coll.node_series(node).t0) == 1


def test_metrics_node_series_consistent_after_growth(small_cluster):
    from repro.simulator.metrics import MetricsCollector

    coll = MetricsCollector(small_cluster)
    node = small_cluster.node_ids[0]
    coll.observe(0.0, 1.0, [])
    first = coll.node_series(node)
    assert first.t1[-1] == 1.0
    coll.observe(1.0, 3.0, [])
    second = coll.node_series(node)
    assert len(second.t0) == 2 and second.t1[-1] == 3.0


# --------------------------------------------------------------------- #
# fairshare sequence dispatcher


def test_maxmin_rates_seq_matches_ndarray_solver(small_cluster):
    from repro.simulator.fairshare import (
        maxmin_network_rates,
        maxmin_rates_seq,
    )
    from repro.simulator.flows import NetworkFlow

    from repro.cluster.topology import Topology

    topology = Topology(small_cluster)
    nodes = small_cluster.node_ids
    flows = [
        NetworkFlow(src=nodes[i % len(nodes)],
                    dst=nodes[(i + 1) % len(nodes)],
                    volume=100.0, stage_key=("J", f"S{i}"))
        for i in range(6)
    ]
    seq = maxmin_rates_seq(flows, topology)
    arr = maxmin_network_rates(flows, topology)
    assert list(seq) == list(arr)
    assert maxmin_rates_seq([], topology) == ()
