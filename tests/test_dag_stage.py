"""Stage construction, derived properties, and scaling."""

import pytest

from repro.dag import Stage
from repro.util.units import MB

from testutil import make_stage


def test_basic_construction():
    s = make_stage("S1", input_mb=100, output_mb=50, rate_mb=10)
    assert s.stage_id == "S1"
    assert s.input_bytes == 100 * MB
    assert s.name == "S1"  # defaults to the id


def test_custom_name_kept():
    s = make_stage("S1", name="shuffle-map")
    assert s.name == "shuffle-map"


def test_shuffle_ratio():
    s = make_stage(input_mb=130, output_mb=100)
    assert s.shuffle_ratio == pytest.approx(1.3)


def test_shuffle_ratio_zero_output():
    assert make_stage(input_mb=10, output_mb=0).shuffle_ratio == float("inf")
    assert Stage("z", 0.0, 0.0, 1.0).shuffle_ratio == 0.0


def test_compute_work_is_input_over_rate():
    s = make_stage(input_mb=100, rate_mb=10)
    assert s.compute_work == pytest.approx(10.0)


def test_scaled_scales_volumes_only():
    s = make_stage(input_mb=100, output_mb=40, rate_mb=10, num_tasks=32, task_cv=0.5)
    t = s.scaled(0.1)
    assert t.input_bytes == pytest.approx(10 * MB)
    assert t.output_bytes == pytest.approx(4 * MB)
    assert t.process_rate == s.process_rate
    assert t.num_tasks == 32
    assert t.task_cv == 0.5


def test_scaled_rejects_nonpositive():
    with pytest.raises(ValueError):
        make_stage().scaled(0)


def test_rejects_empty_id():
    with pytest.raises(ValueError, match="stage_id"):
        Stage("", 1.0, 1.0, 1.0)


def test_rejects_negative_input():
    with pytest.raises(ValueError):
        Stage("s", -1.0, 1.0, 1.0)


def test_rejects_zero_rate():
    with pytest.raises(ValueError):
        Stage("s", 1.0, 1.0, 0.0)


def test_rejects_zero_tasks():
    with pytest.raises(ValueError):
        Stage("s", 1.0, 1.0, 1.0, num_tasks=0)


def test_rejects_negative_cv():
    with pytest.raises(ValueError):
        Stage("s", 1.0, 1.0, 1.0, task_cv=-0.1)


def test_zero_input_allowed():
    s = Stage("s", 0.0, 10.0, 1.0)
    assert s.compute_work == 0.0


def test_frozen():
    s = make_stage()
    with pytest.raises(Exception):
        s.input_bytes = 0.0
