"""Trace replay: TraceJob -> Job conversion and simulation."""

import pytest

from repro.cluster import alibaba_sim_cluster
from repro.simulator import simulate_job
from repro.trace import TraceGeneratorConfig, TraceJob, TraceStage, generate_trace, to_job


def test_to_job_preserves_structure():
    tj = TraceJob(
        "t",
        [
            TraceStage("A", 0, 10, input_mb=100, output_mb=50, process_rate_mb=2),
            TraceStage("B", 10, 30, input_mb=50, output_mb=10, process_rate_mb=2),
        ],
        [("A", "B")],
    )
    job = to_job(tj)
    assert job.job_id == "t"
    assert job.edges == [("A", "B")]
    assert job.stage("A").input_bytes == pytest.approx(100 * 1024**2)


def test_to_job_derives_volumes_for_real_trace_stages():
    """Stages parsed from a real trace carry no volumes; replay inverts
    the recorded duration instead."""
    tj = TraceJob("t", [TraceStage("A", 0, 100)], [])
    job = to_job(tj)
    stage = job.stage("A")
    assert stage.input_bytes > 0
    assert stage.process_rate > 0


def test_replayed_standalone_duration_tracks_recorded():
    """A generated stage replayed alone should take roughly its
    recorded duration (the generator inverts with nominal rates)."""
    cfg = TraceGeneratorConfig(num_jobs=20, replay_workers=3)
    trace = generate_trace(cfg, rng=5)
    cluster = alibaba_sim_cluster(
        num_machines=3, storage_nodes=1, nic_mbps_range=(900, 1100), rng=1
    )
    # A chain job's stages run one at a time, so its first stage is a
    # standalone run.  Chains have a linear edge list.
    def is_chain(j):
        return len(j.edges) == j.num_stages - 1 and all(
            a == f"S{i+1}" and b == f"S{i+2}" for i, (a, b) in enumerate(j.edges)
        )

    job = next(j for j in trace if is_chain(j))
    recorded = job.stages[0].duration
    sim = simulate_job(to_job(job), cluster)
    simulated = sim.stage(job.job_id, job.stages[0].stage_id).duration
    assert simulated == pytest.approx(recorded, rel=0.6)


def test_replay_runs_parallel_job():
    cfg = TraceGeneratorConfig(num_jobs=30, replay_workers=3)
    trace = generate_trace(cfg, rng=2)
    cluster = alibaba_sim_cluster(num_machines=3, storage_nodes=1, rng=0)
    tj = next(j for j in trace if j.edges and j.num_stages >= 5)
    res = simulate_job(to_job(tj), cluster)
    assert res.job_completion_time(tj.job_id) > 0
