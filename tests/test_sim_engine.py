"""Fluid engine: exact completion times, timers, stall detection."""

import math

import pytest

from repro.simulator.engine import EngineStalledError, FluidEngine, WorkItem


def constant_rate_allocator(rate: float):
    def allocate(items):
        for item in items:
            item.rate = rate

    return allocate


def test_single_item_completes_exactly():
    done = []
    engine = FluidEngine(constant_rate_allocator(2.0))
    engine.add_item(WorkItem(10.0, on_complete=done.append))
    end = engine.run()
    assert end == pytest.approx(5.0)
    assert done == [pytest.approx(5.0)]


def test_two_items_fair_share():
    """Two items sharing a unit resource: both complete at volume sum."""

    def allocate(items):
        for item in items:
            item.rate = 1.0 / len(items)

    done = []
    engine = FluidEngine(allocate)
    engine.add_item(WorkItem(1.0, on_complete=lambda t: done.append(("a", t))))
    engine.add_item(WorkItem(3.0, on_complete=lambda t: done.append(("b", t))))
    engine.run()
    # Shared until a finishes at t=2 (each at rate .5), then b alone:
    # b has 2 left, rate 1 -> done at 4.
    assert done[0] == ("a", pytest.approx(2.0))
    assert done[1] == ("b", pytest.approx(4.0))


def test_timer_fires_and_adds_work():
    engine = FluidEngine(constant_rate_allocator(1.0))
    done = []
    engine.schedule(3.0, lambda: engine.add_item(WorkItem(2.0, done.append)))
    engine.run()
    assert done == [pytest.approx(5.0)]


def test_timer_ordering_stable():
    order = []
    engine = FluidEngine(constant_rate_allocator(1.0))
    engine.schedule(1.0, lambda: order.append("a"))
    engine.schedule(1.0, lambda: order.append("b"))
    engine.schedule(0.5, lambda: order.append("c"))
    engine.run()
    assert order == ["c", "a", "b"]


def test_zero_volume_completes_instantly():
    engine = FluidEngine(constant_rate_allocator(1.0))
    done = []
    engine.add_item(WorkItem(0.0, done.append))
    assert done == [0.0]
    assert engine.idle


def test_stall_detection():
    engine = FluidEngine(constant_rate_allocator(0.0))
    engine.add_item(WorkItem(1.0))
    with pytest.raises(EngineStalledError):
        engine.run()


def test_negative_volume_rejected():
    with pytest.raises(ValueError):
        WorkItem(-1.0)
    with pytest.raises(ValueError):
        WorkItem(math.nan)


def test_schedule_in_past_rejected():
    engine = FluidEngine(constant_rate_allocator(1.0))
    engine.add_item(WorkItem(5.0))
    engine.schedule(2.0, lambda: None)
    engine.run()
    with pytest.raises(ValueError):
        engine.schedule(engine.now - 1.0, lambda: None)


def test_run_until_stops_early():
    engine = FluidEngine(constant_rate_allocator(1.0))
    engine.add_item(WorkItem(10.0))
    t = engine.run(until=4.0)
    assert t == pytest.approx(4.0)
    assert engine.active_items[0].remaining == pytest.approx(6.0)


def test_observe_intervals_cover_run():
    intervals = []
    engine = FluidEngine(
        constant_rate_allocator(1.0),
        observe=lambda t0, t1, items: intervals.append((t0, t1)),
    )
    engine.add_item(WorkItem(2.0))
    engine.schedule(1.0, lambda: engine.add_item(WorkItem(0.5)))
    engine.run()
    assert intervals[0][0] == 0.0
    # Contiguous coverage without gaps.
    for (a0, a1), (b0, b1) in zip(intervals, intervals[1:]):
        assert a1 == pytest.approx(b0)
    assert intervals[-1][1] == pytest.approx(2.0)


def test_invalid_allocator_rate_detected():
    def bad_allocate(items):
        for item in items:
            item.rate = -1.0

    engine = FluidEngine(bad_allocate)
    engine.add_item(WorkItem(1.0))
    with pytest.raises(ValueError, match="invalid rate"):
        engine.run()


def test_mark_dirty_forces_reallocation():
    calls = []

    def allocate(items):
        calls.append(len(items))
        for item in items:
            item.rate = 1.0

    engine = FluidEngine(allocate)
    engine.add_item(WorkItem(1.0))
    engine.schedule(0.5, engine.mark_dirty)
    engine.run()
    assert len(calls) >= 2
