"""CLI subcommands (python -m repro ...)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_compare_als(capsys):
    assert main(["compare", "--workload", "ALS", "--oracle"]) == 0
    out = capsys.readouterr().out
    assert "spark" in out and "delaystage" in out and "vs spark" in out


def test_schedule_writes_properties(tmp_path, capsys):
    out_file = tmp_path / "metrics.properties"
    code = main([
        "schedule", "--workload", "ALS", "--max-slots", "8",
        "--output", str(out_file),
    ])
    assert code == 0
    assert out_file.exists()
    text = out_file.read_text()
    assert "spark.delaystage.als." in text
    out = capsys.readouterr().out
    assert "predicted makespan" in out


def test_schedule_order_variants(capsys):
    assert main(["schedule", "--workload", "ALS", "--order", "ascending",
                 "--max-slots", "6"]) == 0
    assert "delay (s)" in capsys.readouterr().out


def test_timeline(capsys):
    assert main(["timeline", "--workload", "ALS", "--strategy", "spark"]) == 0
    out = capsys.readouterr().out
    assert "JCT" in out and "S1" in out


def test_trace_stats(capsys):
    assert main(["trace-stats", "--jobs", "80", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "parallel share of stages" in out
    assert "Fig. 2" in out


def test_replay_small(capsys):
    assert main(["replay", "--jobs", "4", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "fuxi" in out and "delaystage" in out and "vs Fuxi" in out


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["compare", "--workload", "WordCount"])


def test_bounds(capsys):
    assert main(["bounds", "--workload", "ALS", "--max-slots", "6"]) == 0
    out = capsys.readouterr().out
    assert "makespan bounds" in out and "critical path" in out and "gap" in out
