"""CLI subcommands (python -m repro ...)."""

import json

import pytest

from repro.cli import build_parser, main


def _json_out(capsys):
    """Parse stdout as JSON — the --json contract says nothing else
    may be printed there (diagnostics go to stderr)."""
    return json.loads(capsys.readouterr().out)


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_compare_als(capsys):
    assert main(["compare", "--workload", "ALS", "--oracle"]) == 0
    out = capsys.readouterr().out
    assert "spark" in out and "delaystage" in out and "vs spark" in out


def test_schedule_writes_properties(tmp_path, capsys):
    out_file = tmp_path / "metrics.properties"
    code = main([
        "schedule", "--workload", "ALS", "--max-slots", "8",
        "--output", str(out_file),
    ])
    assert code == 0
    assert out_file.exists()
    text = out_file.read_text()
    assert "spark.delaystage.als." in text
    out = capsys.readouterr().out
    assert "predicted makespan" in out


def test_schedule_order_variants(capsys):
    assert main(["schedule", "--workload", "ALS", "--order", "ascending",
                 "--max-slots", "6"]) == 0
    assert "delay (s)" in capsys.readouterr().out


def test_timeline(capsys):
    assert main(["timeline", "--workload", "ALS", "--strategy", "spark"]) == 0
    out = capsys.readouterr().out
    assert "JCT" in out and "S1" in out


def test_trace_stats(capsys):
    assert main(["trace-stats", "--jobs", "80", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "parallel share of stages" in out
    assert "Fig. 2" in out


def test_replay_small(capsys):
    assert main(["replay", "--jobs", "4", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "fuxi" in out and "delaystage" in out and "vs Fuxi" in out


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["compare", "--workload", "WordCount"])


def test_bounds(capsys):
    assert main(["bounds", "--workload", "ALS", "--max-slots", "6"]) == 0
    out = capsys.readouterr().out
    assert "makespan bounds" in out and "critical path" in out and "gap" in out


# --------------------------------------------------------------------- #
# --json: machine-readable payloads with manifests
# --------------------------------------------------------------------- #

def test_compare_json(capsys):
    assert main(["compare", "--workload", "ALS", "--oracle", "--json"]) == 0
    payload = _json_out(capsys)
    assert payload["command"] == "compare"
    assert set(payload["runs"]) == {"spark", "aggshuffle", "delaystage"}
    assert payload["runs"]["spark"]["speedup_vs_spark"] == 0.0
    assert payload["runs"]["delaystage"]["counters"]["stages_completed"] == 6
    manifest = payload["manifest"]
    assert manifest["seed"] == 0 and manifest["config_hash"]
    assert "als" in manifest["workloads"]


def test_schedule_json(capsys):
    assert main(["schedule", "--workload", "ALS", "--max-slots", "8",
                 "--json"]) == 0
    payload = _json_out(capsys)
    assert payload["job_id"] == "als"
    assert payload["delays"]
    assert payload["manifest"]["config_hash"]
    assert payload["predicted_makespan_seconds"] <= payload[
        "baseline_makespan_seconds"] + 1e-6


def test_timeline_json(capsys):
    assert main(["timeline", "--workload", "ALS", "--strategy", "spark",
                 "--json"]) == 0
    payload = _json_out(capsys)
    assert len(payload["stages"]) == 6
    assert all(s["submit"] <= s["read_done"] <= s["finish"]
               for s in payload["stages"])
    assert payload["manifest"]["seed"] == 0


def test_bounds_json(capsys):
    assert main(["bounds", "--workload", "ALS", "--max-slots", "6",
                 "--json"]) == 0
    payload = _json_out(capsys)
    assert payload["bounds"]["binding"] in payload["bounds"]
    assert payload["optimality_gap"] >= 0.0


def test_trace_stats_json(capsys):
    assert main(["trace-stats", "--jobs", "60", "--seed", "1", "--json"]) == 0
    payload = _json_out(capsys)
    assert payload["jobs"] == 60
    assert 0.0 < payload["parallel_stage_fraction"] < 1.0
    assert payload["manifest"]["seed"] == 1


def test_replay_json(capsys):
    assert main(["replay", "--jobs", "3", "--seed", "2", "--json"]) == 0
    payload = _json_out(capsys)
    assert set(payload["runs"]) == {"fuxi", "delaystage"}
    assert payload["manifest"]["seed"] == 2
    assert len(payload["manifest"]["workloads"]) == 3


def test_schedule_output_diagnostic_on_stderr(tmp_path, capsys):
    out_file = tmp_path / "metrics.properties"
    assert main(["schedule", "--workload", "ALS", "--max-slots", "8",
                 "--json", "--output", str(out_file)]) == 0
    captured = capsys.readouterr()
    json.loads(captured.out)  # stdout is pure JSON
    assert "delay table written" in captured.err
    assert out_file.exists()


# --------------------------------------------------------------------- #
# --emit-trace / --manifest / inspect
# --------------------------------------------------------------------- #

def test_compare_emit_trace_and_inspect(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert main(["compare", "--workload", "ALS", "--oracle",
                 "--emit-trace", str(trace)]) == 0
    captured = capsys.readouterr()
    assert "trace written" in captured.err
    assert trace.exists()

    assert main(["inspect", str(trace), "--validate"]) == 0
    out = capsys.readouterr().out
    assert "span tree" in out
    assert "decision audit" in out
    assert "shuffle-read" in out and "delay-wait" in out
    assert "delay table for als" in out


def test_inspect_reconstructs_schedule_table(tmp_path, capsys):
    """Acceptance: the delay table recovered from a trace equals the
    table ``repro schedule`` computes for the same workload."""
    trace = tmp_path / "sched.json"
    assert main(["schedule", "--workload", "ALS", "--json",
                 "--emit-trace", str(trace)]) == 0
    scheduled = _json_out(capsys)

    assert main(["inspect", str(trace), "--json", "--validate"]) == 0
    inspected = _json_out(capsys)
    assert inspected["valid"]
    assert inspected["delay_tables"]["als"] == pytest.approx(
        scheduled["delays"])
    assert inspected["manifest"]["config_hash"] == scheduled[
        "manifest"]["config_hash"]
    assert inspected["decision_audits"]


def test_compare_manifest_flag(capsys):
    assert main(["compare", "--workload", "ALS", "--oracle",
                 "--manifest"]) == 0
    out = capsys.readouterr().out
    assert "repro " in out and "seed 0" in out and "config " in out


def test_inspect_missing_file(capsys):
    assert main(["inspect", "/nonexistent/trace.json"]) == 1
    assert "cannot read trace" in capsys.readouterr().err


def test_inspect_validate_rejects_bad_trace(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [], "otherData": {}}))
    assert main(["inspect", str(bad), "--validate"]) == 1
    assert "schema:" in capsys.readouterr().err
    # Without --validate the same trace is summarized best-effort.
    assert main(["inspect", str(bad)]) == 0


# --------------------------------------------------------------------- #
# report / --progress / inspect --counters
# --------------------------------------------------------------------- #

def test_report_text(capsys):
    assert main(["report", "--workload", "ALS", "--oracle"]) == 0
    out = capsys.readouterr().out
    assert "# Interleaving report" in out
    assert "stage overlap ratio" in out
    assert "CPU/net complementarity" in out
    assert "utilization bands" in out
    assert "Delay-wait per execution path" in out


def test_report_json(capsys):
    """Acceptance: the machine payload carries every headline metric."""
    assert main(["report", "--workload", "ALS", "--oracle", "--json"]) == 0
    payload = _json_out(capsys)
    assert payload["command"] == "report"
    assert set(payload["reports"]) == {"fuxi", "spark", "delaystage"}
    ds = payload["reports"]["delaystage"]
    for key in ("stage_overlap_ratio", "cpu_net_complementarity",
                "delay_wait_seconds", "delay_wait_share", "cpu_bands",
                "net_bands", "cluster_cpu_pct", "cluster_net_pct",
                "path_delay_shares", "utilization"):
        assert key in ds, key
    assert ds["delay_wait_seconds"] > 0.0
    assert payload["reports"]["spark"]["delay_wait_seconds"] == 0.0
    assert ds["cpu_bands"]["labels"][0] == "0-10"
    assert payload["manifest"]["seed"] == 0


def test_report_writes_exports(tmp_path, capsys):
    csv_path = tmp_path / "report.csv"
    prom_path = tmp_path / "report.prom"
    assert main(["report", "--workload", "ALS", "--oracle",
                 "--csv", str(csv_path), "--prometheus", str(prom_path)]) == 0
    captured = capsys.readouterr()
    assert "CSV report written" in captured.err
    assert "OpenMetrics report written" in captured.err
    assert csv_path.read_text().startswith("run,jct_seconds")
    prom = prom_path.read_text()
    assert prom.endswith("# EOF\n")
    assert "repro_stage_overlap_ratio" in prom


def test_compare_progress_heartbeat(capsys):
    assert main(["compare", "--workload", "ALS", "--oracle",
                 "--progress"]) == 0
    captured = capsys.readouterr()
    assert "[progress] compare ALS:" in captured.err
    assert "3/3 jobs" in captured.err
    assert "done in" in captured.err


def test_replay_no_progress_means_silent_stderr(capsys):
    assert main(["replay", "--jobs", "3", "--seed", "2"]) == 0
    assert capsys.readouterr().err == ""


def test_replay_progress_parallel_bit_identical(capsys):
    """--progress on the sharded path changes stderr, never the JCTs."""
    assert main(["replay", "--jobs", "4", "--seed", "2", "--json"]) == 0
    quiet = _json_out(capsys)
    assert main(["replay", "--jobs", "4", "--seed", "2", "--parallel", "2",
                 "--progress", "--json"]) == 0
    captured = capsys.readouterr()
    noisy = json.loads(captured.out)
    assert "[progress] replay:" in captured.err
    assert noisy["runs"] == quiet["runs"]


def test_inspect_counters_text(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert main(["compare", "--workload", "ALS", "--oracle",
                 "--emit-trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["inspect", str(trace), "--counters"]) == 0
    out = capsys.readouterr().out
    assert "counter tracks" in out
    assert "node:" in out and "cpu_busy" in out


def test_inspect_counters_json(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert main(["compare", "--workload", "ALS", "--oracle",
                 "--emit-trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["inspect", str(trace), "--counters", "--json"]) == 0
    payload = _json_out(capsys)
    rows = payload["counter_summary"]
    assert rows and {"track", "counter", "min", "mean", "max",
                     "last"} <= set(rows[0])
    assert {r["counter"] for r in rows} >= {"cpu_busy", "net_in"}


def test_replay_no_vector_identical_results(capsys):
    assert main(["replay", "--jobs", "3", "--seed", "2", "--json"]) == 0
    default = _json_out(capsys)["runs"]
    assert main(["replay", "--jobs", "3", "--seed", "2", "--no-vector",
                 "--json"]) == 0
    hatched = _json_out(capsys)["runs"]
    assert hatched == default


def test_compare_no_vector_identical_results(capsys):
    assert main(["compare", "--workload", "ALS", "--oracle", "--json"]) == 0
    default = {name: run["jct_seconds"]
               for name, run in _json_out(capsys)["runs"].items()}
    assert main(["compare", "--workload", "ALS", "--oracle", "--no-vector",
                 "--json"]) == 0
    hatched = {name: run["jct_seconds"]
               for name, run in _json_out(capsys)["runs"].items()}
    assert hatched == default


def test_bench_profile_writes_hotspot_tables(tmp_path, capsys):
    out = tmp_path / "prof"
    assert main(["bench", "--bench", "alg1", "--quick", "--profile",
                 "--out", str(out), "--json"]) == 0
    payload = _json_out(capsys)
    assert payload["profile"] is True
    (entry,) = payload["results"]
    assert entry["name"] == "alg1" and entry["equivalent"]
    # Profiled runs archive hotspot tables, never BENCH json.
    assert payload["written"] == [str(out / "PROFILE_alg1.txt")]
    assert not list(out.glob("BENCH_*.json"))


def test_bench_no_vector_quick(tmp_path, capsys):
    out = tmp_path / "bench"
    assert main(["bench", "--bench", "alg1", "--quick", "--no-vector",
                 "--out", str(out), "--json"]) == 0
    payload = _json_out(capsys)
    assert payload["vector"] is False
    (entry,) = payload["results"]
    assert entry["equivalent"]
    assert entry["config"]["vector"] is False
