"""Max-min fair sharing: network water-filling, executor and disk splits."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Topology, uniform_cluster
from repro.simulator.fairshare import (
    compute_shares,
    disk_shares,
    maxmin_network_rates,
)
from repro.simulator.flows import ComputeDemand, DiskWrite, NetworkFlow


def topo(workers=3, nic=80.0, storage=1):
    cluster = uniform_cluster(workers, nic_mbps=nic * 8 / 1e6 * 2**0, storage_nodes=storage)
    # Build topology with explicit byte/s capacities for readable math.
    t = Topology(cluster)
    t.egress_capacity[:] = nic
    t.ingress_capacity[:] = nic
    return t


def flow(src, dst, cap=math.inf):
    return NetworkFlow(src, dst, volume=1.0, stage_key=("j", "s"), rate_cap=cap)


def test_single_flow_gets_min_endpoint():
    t = topo()
    t.egress_capacity[t.index["hdfs0"]] = 50.0
    rates = maxmin_network_rates([flow("hdfs0", "w0")], t)
    assert rates[0] == pytest.approx(50.0)


def test_two_flows_share_common_egress():
    t = topo()
    rates = maxmin_network_rates([flow("hdfs0", "w0"), flow("hdfs0", "w1")], t)
    assert rates[0] == pytest.approx(40.0)
    assert rates[1] == pytest.approx(40.0)


def test_two_flows_share_common_ingress():
    t = topo()
    rates = maxmin_network_rates([flow("w1", "w0"), flow("w2", "w0")], t)
    assert np.allclose(rates, 40.0)


def test_disjoint_flows_get_full_rate():
    t = topo()
    rates = maxmin_network_rates([flow("w0", "w1"), flow("w2", "hdfs0")], t)
    assert np.allclose(rates, 80.0)


def test_water_filling_redistributes():
    """Three flows from one egress; one also ingress-constrained lower.

    w0 egress 90 shared by 3 flows -> fair 30 each; flow to w1 capped
    at 10 by w1's ingress -> the released 20 goes to the other two.
    """
    t = topo()
    t.egress_capacity[t.index["w0"]] = 90.0
    t.ingress_capacity[t.index["w1"]] = 10.0
    flows = [flow("w0", "w1"), flow("w0", "w2"), flow("w0", "hdfs0")]
    rates = maxmin_network_rates(flows, t)
    assert rates[0] == pytest.approx(10.0)
    assert rates[1] == pytest.approx(40.0)
    assert rates[2] == pytest.approx(40.0)


def test_rate_cap_respected_and_redistributed():
    t = topo()
    flows = [flow("w0", "w1", cap=5.0), flow("w0", "w2")]
    rates = maxmin_network_rates(flows, t)
    assert rates[0] == pytest.approx(5.0)
    assert rates[1] == pytest.approx(75.0)


def test_zero_cap_flow_gets_zero():
    t = topo()
    flows = [flow("w0", "w1", cap=0.0), flow("w0", "w2")]
    rates = maxmin_network_rates(flows, t)
    assert rates[0] == 0.0
    assert rates[1] == pytest.approx(80.0)


def test_empty_flows():
    assert maxmin_network_rates([], topo()).size == 0


def test_pair_capacity_override():
    t = topo()
    t.set_pair_capacity("w0", "w1", 7.0)
    rates = maxmin_network_rates([flow("w0", "w1")], t)
    assert rates[0] == pytest.approx(7.0)


def test_numpy_and_small_paths_agree():
    """The vectorized and dict-based water-filling must match."""
    rng = np.random.default_rng(0)
    t = topo(workers=4)
    nodes = t.node_ids
    flows = []
    for _ in range(40):  # > 32 triggers the numpy path
        a, b = rng.choice(len(nodes), size=2, replace=False)
        cap = math.inf if rng.random() < 0.7 else float(rng.uniform(1, 60))
        flows.append(flow(nodes[a], nodes[b], cap=cap))
    big = maxmin_network_rates(flows, t)
    small = maxmin_network_rates(flows[:20], t)
    from repro.simulator.fairshare import _maxmin_small

    assert np.allclose(big[:0].size, 0) or True
    assert np.allclose(small, _maxmin_small(flows[:20], t), rtol=1e-9)
    assert np.allclose(big, _maxmin_small(flows, t), rtol=1e-9)


@given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_maxmin_feasible_and_saturating(n_flows, seed):
    """Property: allocation never exceeds capacities, and every flow is
    bottlenecked somewhere (cap, egress, or ingress saturated)."""
    rng = np.random.default_rng(seed)
    t = topo(workers=4)
    nodes = t.node_ids
    flows = []
    for _ in range(n_flows):
        a, b = rng.choice(len(nodes), size=2, replace=False)
        cap = math.inf if rng.random() < 0.8 else float(rng.uniform(0.5, 100))
        flows.append(flow(nodes[a], nodes[b], cap=cap))
    rates = maxmin_network_rates(flows, t)

    egress_used = {n: 0.0 for n in nodes}
    ingress_used = {n: 0.0 for n in nodes}
    for f, r in zip(flows, rates):
        assert r >= -1e-9
        assert r <= f.rate_cap + 1e-6
        egress_used[f.src] += r
        ingress_used[f.dst] += r
    for n in nodes:
        assert egress_used[n] <= 80.0 + 1e-6
        assert ingress_used[n] <= 80.0 + 1e-6
    # Bottleneck property: each flow hits its cap or a saturated link.
    for f, r in zip(flows, rates):
        at_cap = r >= f.rate_cap - 1e-6
        egress_sat = egress_used[f.src] >= 80.0 - 1e-6
        ingress_sat = ingress_used[f.dst] >= 80.0 - 1e-6
        assert at_cap or egress_sat or ingress_sat


def test_compute_shares_equal_split():
    demands = [
        ComputeDemand("w0", 100.0, ("j", "a"), process_rate=10.0),
        ComputeDemand("w0", 100.0, ("j", "b"), process_rate=20.0),
    ]
    compute_shares(demands, {"w0": 4})
    assert demands[0].executor_share == pytest.approx(2.0)
    assert demands[0].rate == pytest.approx(20.0)
    assert demands[1].rate == pytest.approx(40.0)


def test_compute_shares_single_stage_gets_all():
    d = ComputeDemand("w0", 100.0, ("j", "a"), process_rate=10.0)
    compute_shares([d], {"w0": 3})
    assert d.rate == pytest.approx(30.0)


def test_compute_shares_unknown_node_raises():
    d = ComputeDemand("w9", 1.0, ("j", "a"), process_rate=1.0)
    with pytest.raises(ValueError, match="no executors"):
        compute_shares([d], {"w0": 2})


def test_disk_shares_split():
    writes = [
        DiskWrite("w0", 10.0, ("j", "a")),
        DiskWrite("w0", 10.0, ("j", "b")),
        DiskWrite("w1", 10.0, ("j", "a")),
    ]
    disk_shares(writes, {"w0": 100.0, "w1": 50.0})
    assert writes[0].rate == pytest.approx(50.0)
    assert writes[1].rate == pytest.approx(50.0)
    assert writes[2].rate == pytest.approx(50.0)


def test_disk_shares_missing_node():
    with pytest.raises(ValueError):
        disk_shares([DiskWrite("w9", 1.0, ("j", "a"))], {"w0": 10.0})
