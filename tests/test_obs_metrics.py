"""Interleaving analytics (repro.obs.metrics): bands, overlap,
complementarity, delay-wait shares, exporters — and the no-drift
contracts tying the report to the Table 3 / Table 4 / Fig. 4 math."""

import math

import numpy as np
import pytest

from repro.analysis.stats import utilization_summary
from repro.obs.metrics import (
    DEFAULT_BAND_EDGES,
    band_fractions,
    fraction_below,
    interleaving_report,
    render_markdown_report,
    reports_to_csv,
    reports_to_openmetrics,
)
from repro.schedulers import (
    DelayStageScheduler,
    StockSparkScheduler,
    compare_schedulers,
)
from repro.simulator import SimulationConfig, simulate_job
from repro.trace.analysis import machine_low_utilization_fraction


# --------------------------------------------------------------------- #
# band_fractions


def test_band_fractions_sum_to_one():
    rng = np.random.default_rng(1)
    v = rng.uniform(-20, 150, 500)
    b = band_fractions(v)
    assert sum(b.fractions) == pytest.approx(1.0, abs=1e-12)
    assert len(b.fractions) == len(DEFAULT_BAND_EDGES) - 1
    assert b.labels()[0] == "0-10"


def test_band_low_fraction_bit_identical_to_mean():
    """The Fig. 4 formula: fractions[0] == np.mean(v < edges[1]), exactly."""
    rng = np.random.default_rng(2)
    for _ in range(5):
        v = rng.uniform(-5, 120, 333)
        assert band_fractions(v).low_fraction == float(np.mean(v < 10.0))
        assert fraction_below(v, 25.0) == float(np.mean(v < 25.0))


def test_band_boundary_values():
    # Values exactly on an edge belong to the right-open band above it;
    # out-of-range values clip into the first/last band.
    b = band_fractions([0.0, 10.0, 100.0, -3.0, 250.0], edges=(0.0, 10.0, 100.0))
    # 0.0 and -3.0 -> band [0,10); 10.0, 100.0, 250.0 -> band [10,100].
    assert b.fractions == (pytest.approx(0.4), pytest.approx(0.6))


def test_band_fractions_empty_and_weighted():
    assert band_fractions([]).fractions == (0.0,) * 5
    b = band_fractions([5.0, 50.0], weights=[1.0, 3.0])
    assert b.fractions[0] == pytest.approx(0.25)
    assert b.fractions[3] == pytest.approx(0.75)
    # Zero total weight -> all-zero fractions, never NaN.
    assert band_fractions([5.0], weights=[0.0]).fractions == (0.0,) * 5


def test_band_fractions_validates_edges_and_weights():
    with pytest.raises(ValueError, match="strictly increasing"):
        band_fractions([1.0], edges=(0.0, 0.0, 10.0))
    with pytest.raises(ValueError, match="at least one band"):
        band_fractions([1.0], edges=(0.0,))
    with pytest.raises(ValueError, match="weights shape"):
        band_fractions([1.0, 2.0], weights=[1.0])


def test_machine_low_utilization_delegates_bit_identically():
    """trace.analysis and the report layer share one formula."""
    rng = np.random.default_rng(7)
    for _ in range(5):
        v = rng.uniform(0, 100, 1440)
        assert machine_low_utilization_fraction(v) == float(np.mean(v < 10.0))
    assert machine_low_utilization_fraction(np.zeros(0)) == 0.0


# --------------------------------------------------------------------- #
# interleaving_report on real runs


@pytest.fixture(scope="module")
def als_runs():
    from repro.cluster import uniform_cluster
    from repro.workloads import workload_by_name

    cluster = uniform_cluster(3, executors_per_worker=2, nic_mbps=450,
                              disk_mb_per_sec=150, storage_nodes=0)
    job = workload_by_name("ALS", 1.0)
    runs = compare_schedulers(
        job,
        cluster,
        [
            StockSparkScheduler(track_metrics=True),
            DelayStageScheduler(profiled=False, track_metrics=True),
        ],
    )
    return job, runs


def test_report_requires_metrics(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster,
                       config=SimulationConfig(track_metrics=False))
    with pytest.raises(ValueError, match="track_metrics"):
        interleaving_report(res)


def test_report_basic_invariants(als_runs):
    job, runs = als_runs
    for name, run in runs.items():
        rep = interleaving_report(run.result, job, label=name)
        assert rep.label == name
        assert rep.jct_seconds == pytest.approx(run.jct)
        assert 0.0 <= rep.stage_overlap_ratio <= 1.0
        assert 0.0 <= rep.cpu_net_complementarity <= 1.0
        assert rep.delay_wait_seconds >= 0.0
        assert sum(rep.cpu_bands.fractions) == pytest.approx(1.0, abs=1e-9)
        assert sum(rep.net_bands.fractions) == pytest.approx(1.0, abs=1e-9)
        d = rep.to_dict()
        assert d["cpu_bands"]["labels"][0] == "0-10"
        assert d["utilization"]["cpu_pct_mean"] > 0


def test_report_shows_the_interleaving_story(als_runs):
    """DelayStage must beat Spark on exactly the quantities the paper
    claims: higher complementarity, higher cluster utilization, and a
    nonzero delay-wait budget that Spark by construction lacks."""
    job, runs = als_runs
    spark = interleaving_report(runs["spark"].result, job, label="spark")
    ds = interleaving_report(runs["delaystage"].result, job, label="delaystage")
    assert spark.delay_wait_seconds == 0.0
    assert ds.delay_wait_seconds > 0.0
    assert ds.cpu_net_complementarity > spark.cpu_net_complementarity
    assert ds.cluster_cpu_pct > spark.cluster_cpu_pct
    assert ds.cluster_net_pct > spark.cluster_net_pct
    # Less time stuck in the lowest CPU band (Fig. 4 / Fig. 12 story).
    assert ds.cpu_bands.low_fraction < spark.cpu_bands.low_fraction


def test_report_path_delay_shares(als_runs):
    job, runs = als_runs
    ds = interleaving_report(runs["delaystage"].result, job)
    assert ds.path_delay_shares  # job given -> paths computed
    total_path_delay = sum(p.delay_seconds for p in ds.path_delay_shares)
    assert total_path_delay > 0
    for p in ds.path_delay_shares:
        assert 0.0 <= p.share <= 1.0
        assert p.stages
    # Without the job, no path decomposition.
    assert interleaving_report(runs["delaystage"].result).path_delay_shares == ()


def test_report_table3_no_drift(als_runs):
    """The embedded utilization summary IS utilization_summary(result)."""
    job, runs = als_runs
    for run in runs.values():
        rep = interleaving_report(run.result, job)
        assert rep.utilization == utilization_summary(run.result)


def test_report_table4_no_drift(als_runs):
    """cluster_cpu_pct/net_pct equal the Table 4 cluster_average math."""
    job, runs = als_runs
    for run in runs.values():
        rep = interleaving_report(run.result, job)
        m = run.result.metrics
        span = run.result.makespan
        assert rep.cluster_cpu_pct == m.cluster_average(
            "cpu_utilization", 0.0, span) * 100.0
        assert rep.cluster_net_pct == m.cluster_average(
            "net_utilization", 0.0, span) * 100.0


def test_overlap_ratio_serial_chain_is_zero(chain_job, small_cluster):
    """A pure chain never has two stages in flight."""
    res = simulate_job(chain_job, small_cluster)
    rep = interleaving_report(res, chain_job)
    assert rep.stage_overlap_ratio == pytest.approx(0.0, abs=1e-12)


def test_overlap_ratio_parallel_stages_positive(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    rep = interleaving_report(res, diamond_job)
    assert rep.stage_overlap_ratio > 0.0


# --------------------------------------------------------------------- #
# exporters


def _two_reports(als_runs):
    job, runs = als_runs
    return {
        name: interleaving_report(run.result, job, label=name)
        for name, run in runs.items()
    }


def test_markdown_report(als_runs):
    md = render_markdown_report(_two_reports(als_runs), title="T")
    assert md.startswith("# T")
    assert "| metric | spark | delaystage |" in md
    assert "stage overlap ratio" in md
    assert "## Delay-wait per execution path" in md
    with pytest.raises(ValueError):
        render_markdown_report({})


def test_openmetrics_export(als_runs):
    om = reports_to_openmetrics(_two_reports(als_runs))
    assert om.endswith("# EOF\n")
    for name in ("repro_stage_overlap_ratio", "repro_cpu_net_complementarity",
                 "repro_delay_wait_share", "repro_utilization_band_fraction"):
        assert f"# TYPE {name} gauge" in om
    assert 'run="delaystage"' in om
    assert 'resource="net"' in om and 'band="0-10"' in om
    # Every sample line parses as "name{labels} float".
    for line in om.splitlines():
        if line.startswith("#") or not line:
            continue
        value = line.rsplit(" ", 1)[1]
        assert math.isfinite(float(value))


def test_csv_export(als_runs):
    csv_text = reports_to_csv(_two_reports(als_runs))
    lines = csv_text.strip().splitlines()
    assert len(lines) == 3  # header + 2 runs
    header = lines[0].split(",")
    assert header[0] == "run"
    assert "cpu_band_0-10" in header and "net_band_75-100" in header
    assert len(lines[1].split(",")) == len(header)
    with pytest.raises(ValueError):
        reports_to_csv({})


# --------------------------------------------------------------------- #
# satellite: timeline rewrite equivalence


def test_utilization_series_bit_identical_to_per_node_sampling(als_runs):
    """The single-pass sample_nodes path must reproduce the old
    NodeSeries.sample loop exactly, for every worker and both metrics."""
    from repro.analysis.timeline import utilization_series

    job, runs = als_runs
    for run in runs.values():
        res = run.result
        for node in res.cluster.worker_ids:
            t, cpu, net = utilization_series(res, node_id=node, step=0.7)
            series = res.metrics.node_series(node)
            assert np.array_equal(cpu, series.sample(t, "cpu_utilization") * 100.0)
            assert np.array_equal(net, series.sample(t, "net_in"))


def test_utilization_series_metric_net_out(als_runs):
    from repro.analysis.timeline import utilization_series

    job, runs = als_runs
    res = runs["spark"].result
    t, cpu, net = utilization_series(res, metric_net="net_out")
    series = res.metrics.node_series(res.cluster.worker_ids[0])
    assert np.array_equal(net, series.sample(t, "net_out"))
