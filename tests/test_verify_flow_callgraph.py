"""Unit tests for the flow analyzer's symbol tables and call graph."""

from __future__ import annotations

import textwrap

from repro.verify.flow import link, summarize_source


def build(modules: dict[str, str]):
    """Summarize + link a dict of ``module name -> source``."""
    summaries = {}
    for name, source in modules.items():
        path = "proj/" + name.split(".", 1)[1].replace(".", "/") + ".py"
        summaries[name] = summarize_source(
            textwrap.dedent(source), module=name, path=path)
    return link(summaries)


class TestSummaryExtraction:
    def test_functions_and_methods_tabulated(self):
        s = summarize_source(textwrap.dedent("""
            def free():
                pass

            class C:
                def meth(self):
                    pass
        """), module="proj.m", path="proj/m.py")
        assert set(s.functions) == {"<module>", "free", "C.meth"}
        assert s.classes["C"].methods == ["meth"]

    def test_import_aliases_resolved(self):
        s = summarize_source(textwrap.dedent("""
            import numpy as np
            from time import perf_counter as tick

            def f():
                tick()
                np.zeros(3)
        """), module="proj.m", path="proj/m.py")
        targets = {c.target for c in s.functions["f"].calls}
        assert "time.perf_counter" in targets
        assert "numpy.zeros" in targets

    def test_relative_import_anchored_on_package(self):
        s = summarize_source(textwrap.dedent("""
            from .sibling import helper

            def f():
                helper()
        """), module="proj.pkg.m", path="proj/pkg/m.py")
        targets = {c.target for c in s.functions["f"].calls}
        assert "proj.pkg.sibling.helper" in targets

    def test_nested_function_facts_accrue_to_parent(self):
        s = summarize_source(textwrap.dedent("""
            import time

            def outer():
                def inner():
                    return time.time()
                return inner
        """), module="proj.m", path="proj/m.py")
        fact = s.functions["outer"]
        assert fact.nested_defs == ["inner"]
        assert [src.rule for src in fact.sources] == ["F001"]


class TestLinking:
    def test_local_call_resolves_within_module(self):
        g = build({"proj.a": """
            def helper():
                pass

            def main():
                helper()
        """})
        assert "proj.a.helper" in g.callees("proj.a.main")

    def test_cross_module_call_resolves_through_import(self):
        g = build({
            "proj.a": """
                def helper():
                    pass
            """,
            "proj.b": """
                from proj.a import helper

                def main():
                    helper()
            """,
        })
        assert "proj.a.helper" in g.callees("proj.b.main")

    def test_constructor_call_edges_to_init(self):
        g = build({
            "proj.a": """
                class Thing:
                    def __init__(self):
                        pass
            """,
            "proj.b": """
                from proj.a import Thing

                def make():
                    return Thing()
            """,
        })
        assert "proj.a.Thing.__init__" in g.callees("proj.b.make")

    def test_self_call_resolves_to_own_method(self):
        g = build({"proj.a": """
            class C:
                def top(self):
                    self.helper()

                def helper(self):
                    pass
        """})
        assert "proj.a.C.helper" in g.callees("proj.a.C.top")

    def test_self_call_resolves_to_inherited_method(self):
        g = build({
            "proj.base": """
                class Base:
                    def helper(self):
                        pass
            """,
            "proj.sub": """
                from proj.base import Base

                class Sub(Base):
                    def top(self):
                        self.helper()
            """,
        })
        assert "proj.base.Base.helper" in g.callees("proj.sub.Sub.top")

    def test_virtual_dispatch_includes_overrides(self):
        g = build({
            "proj.base": """
                class Scheduler:
                    def prepare(self, job):
                        pass
            """,
            "proj.impl": """
                from proj.base import Scheduler

                class Fast(Scheduler):
                    def prepare(self, job):
                        pass
            """,
            "proj.runner": """
                from proj.base import Scheduler

                def run(job, scheduler: Scheduler):
                    return scheduler.prepare(job)
            """,
        })
        callees = g.callees("proj.runner.run")
        assert "proj.base.Scheduler.prepare" in callees
        assert "proj.impl.Fast.prepare" in callees

    def test_string_annotation_dispatch(self):
        g = build({
            "proj.base": """
                class Engine:
                    def step(self):
                        pass
            """,
            "proj.runner": """
                from proj.base import Engine

                def drive(engine: "Engine"):
                    engine.step()
            """,
        })
        assert "proj.base.Engine.step" in g.callees("proj.runner.drive")

    def test_constructor_typed_local_dispatch(self):
        g = build({"proj.a": """
            class Widget:
                def render(self):
                    pass

            def show():
                w = Widget()
                w.render()
        """})
        assert "proj.a.Widget.render" in g.callees("proj.a.show")

    def test_reachability_closure(self):
        g = build({"proj.a": """
            def c():
                pass

            def b():
                c()

            def a():
                b()

            def unrelated():
                pass
        """})
        reach = g.reachable_from(["proj.a.a"])
        assert reach == {"proj.a.a", "proj.a.b", "proj.a.c"}

    def test_callers_index_is_reverse_of_edges(self):
        g = build({"proj.a": """
            def callee():
                pass

            def one():
                callee()

            def two():
                callee()
        """})
        callers = g.callers_index()["proj.a.callee"]
        assert callers == {"proj.a.one", "proj.a.two"}

    def test_edge_lines_recorded(self):
        g = build({"proj.a": """
            def callee():
                pass

            def caller():
                callee()
        """})
        line = g.edge_lines[("proj.a.caller", "proj.a.callee")]
        assert line == 6
