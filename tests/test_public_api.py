"""The public import surface: __all__ resolves everywhere."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.dag",
    "repro.cluster",
    "repro.simulator",
    "repro.model",
    "repro.core",
    "repro.schedulers",
    "repro.workloads",
    "repro.trace",
    "repro.profiling",
    "repro.analysis",
    "repro.obs",
    "repro.service",
    "repro.util",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_resolves(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), name
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_module_docstrings(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 40, name


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_no_duplicate_exports():
    import repro

    assert len(repro.__all__) == len(set(repro.__all__))
