"""Path-ordering variants."""

import pytest

from repro.core import PathOrder, order_paths
from repro.dag.paths import ExecutionPath


def paths():
    return [
        ExecutionPath(("A",), 10.0),
        ExecutionPath(("B",), 30.0),
        ExecutionPath(("C",), 20.0),
    ]


def test_descending():
    out = order_paths(paths(), PathOrder.DESCENDING)
    assert [p.execution_time for p in out] == [30.0, 20.0, 10.0]


def test_ascending():
    out = order_paths(paths(), PathOrder.ASCENDING)
    assert [p.execution_time for p in out] == [10.0, 20.0, 30.0]


def test_random_deterministic_by_seed():
    a = order_paths(paths(), PathOrder.RANDOM, rng=5)
    b = order_paths(paths(), PathOrder.RANDOM, rng=5)
    assert a == b
    assert sorted(p.execution_time for p in a) == [10.0, 20.0, 30.0]


def test_string_order_accepted():
    out = order_paths(paths(), "ascending")
    assert out[0].execution_time == 10.0


def test_invalid_order_rejected():
    with pytest.raises(ValueError):
        order_paths(paths(), "sideways")


def test_tie_broken_by_stages():
    tied = [ExecutionPath(("B",), 10.0), ExecutionPath(("A",), 10.0)]
    out = order_paths(tied, PathOrder.DESCENDING)
    assert [p.stages for p in out] == [("A",), ("B",)]


def test_input_not_mutated():
    original = paths()
    copy = list(original)
    order_paths(original, PathOrder.RANDOM, rng=0)
    assert original == copy
