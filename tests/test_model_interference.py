"""Schedule evaluation under interference + path-time extraction."""

import pytest

from repro.dag import execution_paths, parallel_stage_set
from repro.model import (
    ScheduleEvaluation,
    evaluate_schedule,
    parallel_stage_makespan,
    path_completion_times,
    predicted_path_time,
)
from repro.simulator import FixedDelayPolicy, simulate_job


def test_matches_direct_simulation(fork_join_job, small_cluster):
    delays = {"B": 5.0}
    ev = evaluate_schedule(fork_join_job, small_cluster, delays)
    direct = simulate_job(fork_join_job, small_cluster, FixedDelayPolicy(delays))
    for sid in fork_join_job.stage_ids:
        assert ev.stage_finish[sid] == pytest.approx(
            direct.stage("forkjoin", sid).finish_time, rel=1e-9
        )
        assert ev.stage_times[sid] == pytest.approx(
            direct.stage("forkjoin", sid).duration, rel=1e-9
        )
    assert ev.job_completion_time == pytest.approx(
        direct.job_completion_time("forkjoin"), rel=1e-9
    )


def test_parallel_makespan_excludes_sequential(diamond_job, small_cluster):
    ev = evaluate_schedule(diamond_job, small_cluster, {})
    # members = {S2, S3}; S4 finishes later but is sequential.
    assert ev.parallel_makespan == pytest.approx(
        max(ev.stage_finish["S2"], ev.stage_finish["S3"])
    )
    assert ev.parallel_makespan < ev.stage_finish["S4"]


def test_members_override(diamond_job, small_cluster):
    ev = evaluate_schedule(
        diamond_job, small_cluster, {}, members=frozenset({"S1"})
    )
    assert ev.parallel_makespan == pytest.approx(ev.stage_finish["S1"])


def test_stage_time_accessor(fork_join_job, small_cluster):
    ev = evaluate_schedule(fork_join_job, small_cluster, {})
    assert ev.stage_time("A") == ev.stage_times["A"]


def test_empty_members_zero_makespan(chain_job, small_cluster):
    ev = evaluate_schedule(chain_job, small_cluster, {})
    assert ev.parallel_makespan == 0.0  # no parallel stages


def test_predicted_path_time_eq3():
    from repro.dag.paths import ExecutionPath

    path = ExecutionPath(("A", "B"), 0.0)
    t = predicted_path_time(path, {"A": 2.0}, {"A": 10.0, "B": 20.0})
    assert t == pytest.approx(2.0 + 10.0 + 20.0)


def test_path_completion_and_makespan(fork_join_job, small_cluster):
    ev = evaluate_schedule(fork_join_job, small_cluster, {})
    members = parallel_stage_set(fork_join_job)
    paths = execution_paths(fork_join_job)
    times = path_completion_times(paths, ev.stage_finish)
    assert len(times) == len(paths)
    assert parallel_stage_makespan(paths, ev.stage_finish) == pytest.approx(max(times))
    assert parallel_stage_makespan([], {}) == 0.0
