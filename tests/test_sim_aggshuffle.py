"""AggShuffle pipelined-shuffle semantics in the simulator."""

import pytest

from repro.dag import JobBuilder
from repro.simulator import EventKind, SimulationConfig, simulate_job


def two_stage_job(task_cv=0.6, num_tasks=64, child_input=256.0, parent_out=256.0):
    """Parent -> child with controllable heterogeneity and volumes."""
    return (
        JobBuilder("pipe")
        .stage("P", input_mb=512, output_mb=parent_out, process_rate_mb=10,
               num_tasks=num_tasks, task_cv=task_cv)
        .stage("C", input_mb=child_input, output_mb=64, process_rate_mb=10,
               num_tasks=num_tasks, task_cv=task_cv, parents=["P"])
        .build()
    )


def cfg(**kw):
    return SimulationConfig(pipelined_shuffle=True, track_metrics=False, **kw)


def test_pipelining_shortens_child_read(small_cluster):
    job = two_stage_job(task_cv=0.6, num_tasks=64)
    stock = simulate_job(job, small_cluster)
    agg = simulate_job(job, small_cluster, config=cfg())
    assert agg.stage("pipe", "C").read_time < stock.stage("pipe", "C").read_time
    assert agg.job_completion_time("pipe") < stock.job_completion_time("pipe")


def test_prefetch_events_logged(small_cluster):
    job = two_stage_job()
    res = simulate_job(job, small_cluster, config=cfg())
    prefetches = [e for e in res.events if e.kind == EventKind.PREFETCH_STARTED]
    assert prefetches
    assert all(e.stage_id == "C" for e in prefetches)
    assert all(e.info["from_stage"] == "P" for e in prefetches)


def test_homogeneous_single_wave_no_pipelining(small_cluster):
    """One wave of homogeneous tasks produces output only at stage end
    (the paper's LDA case): AggShuffle gains nothing."""
    # 8 tasks over 4 workers with 2 executors each = exactly one wave.
    job = two_stage_job(task_cv=0.0, num_tasks=8)
    stock = simulate_job(job, small_cluster)
    agg = simulate_job(job, small_cluster, config=cfg())
    assert agg.stage("pipe", "C").read_time == pytest.approx(
        stock.stage("pipe", "C").read_time, rel=1e-6
    )


def test_cpu_penalty_for_expanding_shuffle(small_cluster):
    """Child shuffle-input > parent output (ratio > 1) pays extra CPU
    under AggShuffle (the paper's LDA stage, ratio 1.3)."""
    expanding = two_stage_job(task_cv=0.0, num_tasks=8, child_input=333.0, parent_out=256.0)
    stock = simulate_job(expanding, small_cluster)
    agg = simulate_job(expanding, small_cluster, config=cfg())
    assert agg.stage("pipe", "C").compute_time > stock.stage("pipe", "C").compute_time


def test_no_penalty_when_ratio_at_most_one(small_cluster):
    job = two_stage_job(task_cv=0.0, num_tasks=8, child_input=256.0, parent_out=256.0)
    stock = simulate_job(job, small_cluster)
    agg = simulate_job(job, small_cluster, config=cfg())
    assert agg.stage("pipe", "C").compute_time == pytest.approx(
        stock.stage("pipe", "C").compute_time, rel=1e-6
    )


def test_penalty_disabled_without_pipelining(small_cluster):
    job = two_stage_job(child_input=333.0, parent_out=256.0)
    a = simulate_job(job, small_cluster)
    b = simulate_job(job, small_cluster, config=SimulationConfig(track_metrics=False))
    assert a.stage("pipe", "C").compute_time == pytest.approx(
        b.stage("pipe", "C").compute_time, rel=1e-6
    )


def test_pipelined_volume_conserved(small_cluster):
    """The child reads exactly its input whether pipelined or not: the
    prefetched bytes are credited, not duplicated."""
    job = two_stage_job(task_cv=0.8, num_tasks=64)
    agg = simulate_job(job, small_cluster, config=SimulationConfig(pipelined_shuffle=True))
    m = agg.metrics
    total_in = 0.0
    for node in small_cluster.node_ids:
        s = m.node_series(node)
        total_in += float(((s.t1 - s.t0) * s.net_in).sum())
    workers = len(small_cluster.worker_ids)
    expected = (
        job.stage("P").input_bytes  # root read, storage disjoint
        + job.stage("C").input_bytes * (workers - 1) / workers
    )
    assert total_in == pytest.approx(expected, rel=1e-6)


def test_more_heterogeneity_more_gain(small_cluster):
    """AggShuffle's benefit grows with task-duration variance
    (Sec. 5.2's central observation)."""
    low = two_stage_job(task_cv=0.1, num_tasks=8)
    high = two_stage_job(task_cv=0.9, num_tasks=8)
    gain_low = (
        simulate_job(low, small_cluster).job_completion_time("pipe")
        - simulate_job(low, small_cluster, config=cfg()).job_completion_time("pipe")
    )
    gain_high = (
        simulate_job(high, small_cluster).job_completion_time("pipe")
        - simulate_job(high, small_cluster, config=cfg()).job_completion_time("pipe")
    )
    assert gain_high > gain_low - 1e-9


def test_multi_wave_pipelines_even_homogeneous(small_cluster):
    """Many waves trickle output wave by wave even with cv = 0."""
    job = two_stage_job(task_cv=0.0, num_tasks=64)  # 16/worker vs 2 slots
    stock = simulate_job(job, small_cluster)
    agg = simulate_job(job, small_cluster, config=cfg())
    assert agg.stage("pipe", "C").read_time < stock.stage("pipe", "C").read_time
