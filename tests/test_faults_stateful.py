"""Stateful chaos testing: random fault plans against random jobs.

A :class:`hypothesis.stateful.RuleBasedStateMachine` assembles an
arbitrary (but always *valid*) fault plan step by step — jobs join the
batch, nodes crash, NICs brown out, stragglers appear, shuffle
partitions vanish — then the teardown runs the simulation under the
accumulated plan and checks the global recovery invariants:

* the run terminates (no livelock from requeue/backoff cycles);
* every job either completes or is marked failed, with a finite
  finish time either way;
* fault accounting is consistent (every planned event fired, retries
  match the per-stage books, nothing negative);
* the runtime sanitizer (enabled suite-wide in ``conftest.py``) stays
  silent — no resurrected work on dead nodes, no event-order
  violations.
"""

from __future__ import annotations

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.cluster import uniform_cluster
from repro.faults import (
    FaultPlan,
    LostShufflePartition,
    NicBrownout,
    NodeCrash,
    Straggler,
)
from repro.simulator.simulation import ImmediatePolicy, Simulation, SimulationConfig
from repro.workloads.synthetic import random_job

WORKERS = ("w0", "w1", "w2")

times = st.integers(0, 80).map(lambda n: n / 4.0)
durations = st.integers(1, 40).map(lambda n: n / 2.0)


class FaultMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.events: list = []
        self.crashed: set[str] = set()
        self.jobs: list = []
        self.retry_budget = 3

    @initialize(seed=st.integers(0, 10_000), num_stages=st.integers(2, 5))
    def first_job(self, seed, num_stages):
        self.jobs.append(random_job(num_stages, job_id="j0", rng=seed))

    @rule(seed=st.integers(0, 10_000), num_stages=st.integers(2, 5))
    def add_job(self, seed, num_stages):
        if len(self.jobs) >= 3:
            return
        jid = f"j{len(self.jobs)}"
        self.jobs.append(random_job(num_stages, job_id=jid, rng=seed))

    @rule(time=times, which=st.integers(0, 2))
    def add_crash(self, time, which):
        node = WORKERS[which]
        if node in self.crashed or len(self.crashed) >= 2:
            return  # at least one worker must survive
        self.crashed.add(node)
        self.events.append(NodeCrash(time=time, node=node))

    @rule(start=times, duration=durations, which=st.integers(0, 2),
          factor=st.sampled_from([0.3, 0.5, 0.8]))
    def add_brownout(self, start, duration, which, factor):
        self.events.append(NicBrownout(start=start, end=start + duration,
                                       node=WORKERS[which], factor=factor))

    @rule(time=times, duration=durations, which=st.integers(0, 2),
          factor=st.sampled_from([1.5, 2.0, 4.0]))
    def add_straggler(self, time, duration, which, factor):
        self.events.append(Straggler(time=time, node=WORKERS[which],
                                     factor=factor, until=time + duration))

    @rule(time=times, job_idx=st.integers(0, 2), stage_idx=st.integers(0, 4),
          part=st.integers(0, 2))
    def add_lost_partition(self, time, job_idx, stage_idx, part):
        if not self.jobs:
            return
        job = self.jobs[job_idx % len(self.jobs)]
        stages = sorted(job.stages)  # mapping: stage_id -> Stage
        self.events.append(LostShufflePartition(
            time=time, job=job.job_id,
            stage=stages[stage_idx % len(stages)], part=f"w{part}"))

    @rule(budget=st.sampled_from([0, 1, 3]))
    def set_budget(self, budget):
        self.retry_budget = budget

    def teardown(self):
        if not self.jobs:
            return
        cluster = uniform_cluster(3, executors_per_worker=2, nic_mbps=450,
                                  disk_mb_per_sec=150, storage_nodes=0)
        plan = FaultPlan(events=tuple(self.events),
                         retry_budget=self.retry_budget,
                         backoff_base=0.25, backoff_cap=2.0)
        plan.validate_against(cluster)
        sim = Simulation(cluster, SimulationConfig(track_metrics=False,
                                                   fault_plan=plan))
        for job in self.jobs:
            sim.add_job(job, ImmediatePolicy())
        result = sim.run()  # termination is itself an assertion

        stats = result.faults
        if plan.is_empty:
            assert stats is None
            return
        # every planned fault fired, exactly once
        assert stats.injected == len(plan.events)
        # every job ended, one way or the other, at a finite time
        for jid, rec in result.job_records.items():
            assert math.isfinite(rec.finish_time), jid
        assert set(stats.jobs_failed) <= set(result.job_records)
        # the books balance
        assert stats.retries == sum(stats.stage_retries.values())
        assert stats.work_lost_bytes >= 0
        assert stats.work_recomputed_bytes >= 0
        assert stats.crashes <= len(self.crashed)


FaultMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=10, deadline=None
)

TestFaultMachine = FaultMachine.TestCase
