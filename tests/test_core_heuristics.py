"""The staggered-read analytic heuristic."""

import pytest

from repro.core import (
    DelayStageParams,
    delay_stage_schedule,
    staggered_read_schedule,
)
from repro.dag import JobBuilder, parallel_stage_set
from repro.simulator import FixedDelayPolicy, SimulationConfig, simulate_job
from repro.workloads import cosine_similarity


def contended_job():
    return (
        JobBuilder("h")
        .stage("S1", input_mb=1024, output_mb=512, process_rate_mb=8)
        .stage("S2", input_mb=1024, output_mb=2048, process_rate_mb=8)
        .stage("S3", input_mb=2048, output_mb=512, process_rate_mb=16, parents=["S2"])
        .stage("S4", input_mb=1024, output_mb=128, process_rate_mb=16, parents=["S1", "S3"])
        .build()
    )


def test_covers_parallel_set(small_cluster):
    schedule = staggered_read_schedule(contended_job(), small_cluster)
    assert set(schedule.delays) == parallel_stage_set(contended_job())
    assert all(x >= 0 for x in schedule.delays.values())


def test_longest_path_head_first(small_cluster):
    schedule = staggered_read_schedule(contended_job(), small_cluster)
    head = schedule.paths[0].stages[0]
    assert schedule.delays[head] == 0.0


def test_heads_staggered_by_read_time(small_cluster):
    schedule = staggered_read_schedule(contended_job(), small_cluster)
    heads = [p.stages[0] for p in schedule.paths]
    delays = [schedule.delays[h] for h in dict.fromkeys(heads)]
    assert delays == sorted(delays)
    assert delays[-1] > 0  # later heads actually wait


def test_improves_over_stock(small_cluster):
    job = contended_job()
    cfg = SimulationConfig(track_metrics=False)
    stock = simulate_job(job, small_cluster, config=cfg).job_completion_time("h")
    schedule = staggered_read_schedule(job, small_cluster)
    jct = simulate_job(
        job, small_cluster, FixedDelayPolicy(schedule.delays), cfg
    ).job_completion_time("h")
    assert jct < stock


def test_much_cheaper_than_algorithm_1(small_cluster):
    job = contended_job()
    heuristic = staggered_read_schedule(job, small_cluster)
    greedy = delay_stage_schedule(job, small_cluster, DelayStageParams(max_slots=16))
    assert heuristic.evaluations == 0
    assert heuristic.compute_seconds < greedy.compute_seconds / 5


def test_algorithm_1_at_least_as_good(small_cluster):
    """The fluid-informed greedy never loses to the blind heuristic on
    the workloads it was designed for."""
    from repro.cluster import ec2_m4large_cluster

    cluster = ec2_m4large_cluster()
    job = cosine_similarity()
    cfg = SimulationConfig(track_metrics=False)
    h = staggered_read_schedule(job, cluster)
    g = delay_stage_schedule(job, cluster, DelayStageParams(max_slots=24))
    jh = simulate_job(job, cluster, FixedDelayPolicy(h.delays), cfg).job_completion_time(job.job_id)
    jg = simulate_job(job, cluster, FixedDelayPolicy(g.delays), cfg).job_completion_time(job.job_id)
    assert jg <= jh + 1e-6


def test_sequential_job_empty(chain_job, small_cluster):
    schedule = staggered_read_schedule(chain_job, small_cluster)
    assert schedule.delays == {}
