"""Analysis helpers: CDFs, stats, timelines, text rendering."""

import numpy as np
import pytest

from repro.analysis import (
    GanttRow,
    cdf_at,
    empirical_cdf,
    improvement,
    percentile,
    render_cdf,
    render_series,
    render_table,
    stage_gantt,
    utilization_series,
    utilization_summary,
)
from repro.simulator import SimulationConfig, simulate_job


def test_empirical_cdf():
    x, p = empirical_cdf([3, 1, 2])
    assert list(x) == [1, 2, 3]
    assert list(p) == pytest.approx([100 / 3, 200 / 3, 100.0])
    x0, p0 = empirical_cdf([])
    assert x0.size == p0.size == 0


def test_cdf_at():
    assert cdf_at([1, 2, 3, 4], 2.5) == 0.5
    assert cdf_at([], 1.0) == 0.0


def test_percentile():
    assert percentile([1, 2, 3], 50) == 2.0
    with pytest.raises(ValueError):
        percentile([], 50)


def test_improvement():
    assert improvement(100, 80) == pytest.approx(0.2)
    assert improvement(100, 120) == pytest.approx(-0.2)
    with pytest.raises(ValueError):
        improvement(0, 1)


def test_utilization_summary(fork_join_job, small_cluster):
    res = simulate_job(fork_join_job, small_cluster)
    summary = utilization_summary(res)
    assert summary.net_mb_mean > 0
    assert 0 < summary.cpu_pct_mean <= 100
    assert summary.net_mb_std >= 0


def test_utilization_summary_requires_metrics(fork_join_job, small_cluster):
    res = simulate_job(
        fork_join_job, small_cluster, config=SimulationConfig(track_metrics=False)
    )
    with pytest.raises(ValueError):
        utilization_summary(res)


def test_stage_gantt(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    rows = stage_gantt(res, "diamond")
    assert [r.stage_id for r in rows][0] == "S1"
    for r in rows:
        assert r.submit <= r.read_done <= r.finish
        assert r.read_span == (r.submit, r.read_done)
        assert r.process_span == (r.read_done, r.finish)
        assert r.duration == pytest.approx(r.finish - r.submit)
        assert r.delay >= 0


def test_utilization_series(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    t, cpu, net = utilization_series(res, step=0.5)
    assert len(t) == len(cpu) == len(net)
    assert cpu.max() <= 100.0 + 1e-9
    assert net.max() > 0


def test_render_table_alignment():
    out = render_table(["name", "v"], [["a", 1.0], ["bb", 22.5]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert "----" in lines[2]
    assert "22.5" in lines[-1]


def test_render_series_downsamples():
    x = np.arange(100.0)
    out = render_series(x, {"y": x * 2}, max_points=5, x_label="t")
    rows = out.splitlines()
    assert len(rows) == 2 + 5  # header + separator + 5 samples


def test_render_cdf_percentiles():
    out = render_cdf({"a": [1, 2, 3, 4, 5]}, percentiles=(50, 90))
    assert "p50" in out and "p90" in out
