"""Profiling and measurement substrate (Sec. 4.2)."""

import pytest

from repro.profiling import measure_cluster, profile_job


def test_oracle_profile_recovers_parameters(fork_join_job, small_cluster):
    """With zero noise, profiled volumes match the truth and rates are
    close (the profiling run observes the true processing rate)."""
    report = profile_job(fork_join_job, small_cluster, noise=0.0, rng=0)
    for sid in fork_join_job.stage_ids:
        true = fork_join_job.stage(sid)
        est = report.estimates[sid]
        assert est.input_bytes == pytest.approx(true.input_bytes, rel=1e-6)
        assert est.output_bytes == pytest.approx(true.output_bytes, rel=1e-6)
        assert est.process_rate == pytest.approx(true.process_rate, rel=1e-6)


def test_profile_recovers_dag(fork_join_job, small_cluster):
    report = profile_job(fork_join_job, small_cluster, noise=0.0)
    model = report.to_model_job()
    assert model.edges == fork_join_job.edges
    assert model.stage_ids == fork_join_job.stage_ids


def test_noise_perturbs_estimates(fork_join_job, small_cluster):
    a = profile_job(fork_join_job, small_cluster, noise=0.1, rng=1)
    true = fork_join_job.stage("A").input_bytes
    assert a.estimates["A"].input_bytes != pytest.approx(true, rel=1e-9)


def test_profile_deterministic_by_seed(fork_join_job, small_cluster):
    a = profile_job(fork_join_job, small_cluster, noise=0.1, rng=5)
    b = profile_job(fork_join_job, small_cluster, noise=0.1, rng=5)
    assert a.estimates == b.estimates


def test_profiling_overhead_scales_with_sample(fork_join_job, small_cluster):
    """A 10 % profile runs much faster than a 50 % profile."""
    small = profile_job(fork_join_job, small_cluster, sample_fraction=0.1, noise=0.0)
    large = profile_job(fork_join_job, small_cluster, sample_fraction=0.5, noise=0.0)
    assert small.profiling_seconds < large.profiling_seconds
    assert small.sample_fraction == 0.1


def test_sample_fraction_validated(fork_join_job, small_cluster):
    with pytest.raises(ValueError):
        profile_job(fork_join_job, small_cluster, sample_fraction=0.0)
    with pytest.raises(ValueError):
        profile_job(fork_join_job, small_cluster, sample_fraction=1.5)
    with pytest.raises(ValueError):
        profile_job(fork_join_job, small_cluster, noise=-1)


def test_profile_without_storage_tier(fork_join_job):
    from repro.cluster import uniform_cluster

    cluster = uniform_cluster(3, storage_nodes=0)
    report = profile_job(fork_join_job, cluster, noise=0.0)
    assert report.estimates["A"].input_bytes > 0


def test_measure_cluster_noise():
    from repro.cluster import uniform_cluster

    cluster = uniform_cluster(3, storage_nodes=1)
    measured = measure_cluster(cluster, noise=0.05, rng=0)
    assert measured.node_ids == cluster.node_ids
    changed = [
        measured.node(n).nic_bandwidth != cluster.node(n).nic_bandwidth
        for n in cluster.node_ids
    ]
    assert any(changed)
    # executors observed exactly
    assert all(
        measured.node(n).executors == cluster.node(n).executors
        for n in cluster.node_ids
    )


def test_measure_cluster_zero_noise_identity():
    from repro.cluster import uniform_cluster

    cluster = uniform_cluster(2)
    assert measure_cluster(cluster, noise=0.0) is cluster


def test_measure_cluster_rejects_negative_noise():
    from repro.cluster import uniform_cluster

    with pytest.raises(ValueError):
        measure_cluster(uniform_cluster(1), noise=-0.1)


# --------------------------------------------------------------------- #
# self-profiling (repro bench --profile)


def test_capture_hotspots_runs_and_reports():
    from repro.profiling import capture_hotspots

    def work():
        return sum(i * i for i in range(1000))

    result, report = capture_hotspots(work, name="unit", top=5)
    assert result == sum(i * i for i in range(1000))
    assert report.name == "unit"
    assert report.total_calls > 0
    assert "top 5 by cumulative" in report.text
    assert "top 5 by tottime" in report.text
    assert report.summary().startswith("unit:")


def test_profile_benchmarks_writes_artifacts(tmp_path):
    from repro.bench import profile_benchmarks, write_profiles

    pairs = profile_benchmarks(["alg1"], quick=True)
    (result, report) = pairs[0]
    assert result.equivalent
    assert report.name == "alg1"
    paths = write_profiles([report], str(tmp_path))
    assert paths == [str(tmp_path / "PROFILE_alg1.txt")]
    text = (tmp_path / "PROFILE_alg1.txt").read_text(encoding="utf-8")
    assert "delay_stage_schedule" in text
