"""Helper constructors shared across test modules."""

from __future__ import annotations

from repro.dag import Job, Stage
from repro.util.units import MB


def make_stage(sid: str = "S", input_mb: float = 100, output_mb: float = 50,
               rate_mb: float = 10, **kw) -> Stage:
    """Terse stage constructor for unit tests."""
    return Stage(
        stage_id=sid,
        input_bytes=input_mb * MB,
        output_bytes=output_mb * MB,
        process_rate=rate_mb * MB,
        **kw,
    )


def make_job(job_id: str, edges, n: "int | None" = None) -> Job:
    """Job from an edge list with uniform default stages."""
    ids = []
    for a, b in edges:
        for s in (a, b):
            if s not in ids:
                ids.append(s)
    if n is not None:
        for i in range(len(ids), n):
            ids.append(f"X{i}")
    return Job(job_id, [make_stage(s) for s in ids], edges)
