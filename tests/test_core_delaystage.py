"""Algorithm 1: correctness, invariants, improvement, fallback."""

import pytest

from repro.cluster import uniform_cluster
from repro.core import DelayStageParams, PathOrder, delay_stage_schedule
from repro.dag import JobBuilder, parallel_stage_set
from repro.model import evaluate_schedule
from repro.simulator import FixedDelayPolicy, simulate_job
from repro.workloads import random_job


def contended_job():
    """Two parallel roots + long path: delaying provably helps."""
    return (
        JobBuilder("cj")
        .stage("S1", input_mb=1024, output_mb=512, process_rate_mb=8)
        .stage("S2", input_mb=1024, output_mb=2048, process_rate_mb=8)
        .stage("S3", input_mb=2048, output_mb=512, process_rate_mb=16, parents=["S2"])
        .stage("S4", input_mb=1024, output_mb=128, process_rate_mb=16, parents=["S1", "S3"])
        .build()
    )


def test_delays_only_parallel_stages(small_cluster):
    job = contended_job()
    schedule = delay_stage_schedule(job, small_cluster)
    assert set(schedule.delays) == parallel_stage_set(job)
    assert all(x >= 0 for x in schedule.delays.values())


def test_improves_over_stock(small_cluster):
    job = contended_job()
    schedule = delay_stage_schedule(job, small_cluster)
    base = simulate_job(job, small_cluster).job_completion_time("cj")
    delayed = simulate_job(
        job, small_cluster, FixedDelayPolicy(schedule.delays)
    ).job_completion_time("cj")
    assert delayed < base


def test_predicted_matches_executed_with_oracle_model(small_cluster):
    """Planning on the true job/cluster => prediction equals execution."""
    job = contended_job()
    schedule = delay_stage_schedule(job, small_cluster)
    ev = evaluate_schedule(
        job, small_cluster, schedule.delays, members=parallel_stage_set(job)
    )
    assert schedule.predicted_makespan == pytest.approx(ev.parallel_makespan, rel=1e-9)


def test_long_path_head_not_delayed(small_cluster):
    """The descending order schedules the longest path first, alone in
    the model, so its stages get zero delay."""
    job = contended_job()
    schedule = delay_stage_schedule(job, small_cluster)
    longest = schedule.paths[0]
    assert schedule.delays[longest.stages[0]] == 0.0


def test_never_worse_than_baseline(small_cluster):
    """With the fallback guard the predicted makespan never exceeds the
    all-zero-delays baseline."""
    for seed in range(5):
        job = random_job(10, parallelism=0.7, rng=seed, job_id=f"r{seed}")
        schedule = delay_stage_schedule(
            job, small_cluster, DelayStageParams(max_slots=8)
        )
        assert schedule.predicted_makespan <= schedule.baseline_makespan + 1e-6


def test_fallback_disabled_keeps_delays(small_cluster):
    job = contended_job()
    schedule = delay_stage_schedule(
        job, small_cluster, DelayStageParams(fallback_to_immediate=False)
    )
    assert set(schedule.delays) == parallel_stage_set(job)


def test_sequential_job_gets_empty_schedule(chain_job, small_cluster):
    schedule = delay_stage_schedule(chain_job, small_cluster)
    assert schedule.delays == {}
    assert schedule.paths == ()
    assert schedule.predicted_improvement == 0.0


def test_orders_produce_valid_schedules(small_cluster):
    job = contended_job()
    for order in (PathOrder.DESCENDING, PathOrder.ASCENDING, PathOrder.RANDOM):
        schedule = delay_stage_schedule(
            job, small_cluster, DelayStageParams(order=order, rng=1)
        )
        assert set(schedule.delays) == parallel_stage_set(job)


def test_evaluations_bounded_by_slots(small_cluster):
    job = contended_job()
    params = DelayStageParams(max_slots=8)
    schedule = delay_stage_schedule(job, small_cluster, params)
    k = len(parallel_stage_set(job))
    # <= (max_slots + 1) per stage plus baseline and final evaluations.
    assert schedule.evaluations <= k * (params.max_slots + 2) + 2


def test_compute_seconds_recorded(small_cluster):
    schedule = delay_stage_schedule(contended_job(), small_cluster)
    assert schedule.compute_seconds > 0


def test_slot_granularity_validated():
    with pytest.raises(ValueError):
        DelayStageParams(slot=0)
    with pytest.raises(ValueError):
        DelayStageParams(max_slots=1)


def test_delayed_stages_property(small_cluster):
    schedule = delay_stage_schedule(contended_job(), small_cluster)
    for sid in schedule.delayed_stages:
        assert schedule.delays[sid] > 0


def test_deterministic(small_cluster):
    job = contended_job()
    a = delay_stage_schedule(job, small_cluster)
    b = delay_stage_schedule(job, small_cluster)
    assert a.delays == b.delays
    assert a.predicted_makespan == b.predicted_makespan


def test_refinement_never_hurts(small_cluster):
    """Coordinate-descent refinement keeps strict improvements only."""
    job = contended_job()
    plain = delay_stage_schedule(job, small_cluster, DelayStageParams(max_slots=12))
    refined = delay_stage_schedule(
        job, small_cluster, DelayStageParams(max_slots=12, refine_passes=2)
    )
    assert refined.predicted_makespan <= plain.predicted_makespan + 1e-6
    assert refined.evaluations >= plain.evaluations


def test_refinement_param_validated():
    with pytest.raises(ValueError):
        DelayStageParams(refine_passes=-1)


def test_refinement_improves_or_matches_wide_dag(small_cluster):
    from repro.workloads import random_job

    job = random_job(12, parallelism=0.8, rng=4, job_id="wide")
    plain = delay_stage_schedule(
        job, small_cluster,
        DelayStageParams(max_slots=8, fallback_to_immediate=False),
    )
    refined = delay_stage_schedule(
        job, small_cluster,
        DelayStageParams(max_slots=8, fallback_to_immediate=False, refine_passes=1),
    )
    assert refined.predicted_makespan <= plain.predicted_makespan + 1e-6
