"""Tests for the ``repro verify`` CLI subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.properties import write_metrics_properties


class TestVerifyCommand:
    def test_single_workload_ok(self, capsys):
        assert main(["verify", "--workload", "CosineSimilarity"]) == 0
        out = capsys.readouterr().out
        assert "CosineSimilarity: OK" in out
        assert "no errors" in out

    def test_all_workloads_ok(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        for name in ("ALS", "LDA", "TriangleCount", "PageRank", "StarJoin"):
            assert f"{name}: OK" in out

    def test_schedule_validation(self, capsys):
        assert main(["verify", "--workload", "LDA", "--schedule"]) == 0
        out = capsys.readouterr().out
        assert "LDA: OK" in out

    def test_json_output(self, capsys):
        assert main(["verify", "--workload", "LDA", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["targets"]["LDA"]["counts"]["ERROR"] == 0

    def test_delay_table_validated(self, tmp_path, capsys):
        path = tmp_path / "metrics.properties"
        write_metrics_properties(path, "lda", {"S1": 0.0, "S2": 3.5})
        assert main(["verify", "--workload", "LDA", "--delays", str(path)]) == 0
        assert "LDA: OK" in capsys.readouterr().out

    def test_orphan_delay_table_fails(self, tmp_path, capsys):
        path = tmp_path / "metrics.properties"
        write_metrics_properties(path, "no_such_job", {"S1": 1.0})
        code = main(["verify", "--workload", "LDA", "--delays", str(path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "V000" in out and "ERRORS PRESENT" in out

    def test_exit_1_surfaces_in_json(self, tmp_path, capsys):
        path = tmp_path / "metrics.properties"
        write_metrics_properties(path, "nope", {"S1": 1.0})
        code = main(["verify", "--workload", "LDA", "--delays", str(path), "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["targets"]["delays:nope"]["findings"][0]["rule"] == "V000"

    def test_missing_delay_file_clean_error(self, tmp_path, capsys):
        path = tmp_path / "does_not_exist.properties"
        code = main(["verify", "--workload", "LDA", "--delays", str(path)])
        assert code == 1
        err = capsys.readouterr().err
        assert "cannot read delay table" in err
        assert "Traceback" not in err

    def test_malformed_delay_file_clean_error(self, tmp_path, capsys):
        path = tmp_path / "metrics.properties"
        path.write_text("spark.delaystage.lda.S1=-5.0\n", encoding="utf-8")
        code = main(["verify", "--workload", "LDA", "--delays", str(path)])
        assert code == 1
        err = capsys.readouterr().err
        assert "cannot read delay table" in err

    def test_unknown_workload_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["verify", "--workload", "NotAWorkload"])
