"""Live telemetry plane: registry, bus, hub, HTTP surface, and guards.

Covers the PR's acceptance contract end to end:

* the metrics registry renders valid OpenMetrics and its parser /
  validator catch structural violations;
* the bus delivers a gapless, ordered event stream (``tap``);
* the hub folds publisher events into counters/gauges/histograms and
  per-run snapshots;
* a live HTTP scrape taken *mid-replay* parses as valid OpenMetrics,
  and the post-run scrape is value-identical to the
  ``repro report --prometheus`` exporter for the shared families;
* fault-injection counters on ``/metrics`` match ``FaultStats``;
* results are bit-identical with the server on, and the full plane
  (publisher + hub + server) stays under the 5% overhead guard;
* the flow analyzer still catches F101-class findings seeded inside
  ``obs/live``, while sanctioned thread spawns raise nothing.
"""

from __future__ import annotations

import io
import json
import shutil
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import DelayStageParams
from repro.faults import (
    FaultPlan,
    LostShufflePartition,
    NicBrownout,
    NodeCrash,
    Straggler,
)
from repro.obs.live import (
    LiveHub,
    LiveServer,
    MetricsRegistry,
    StructuredLogger,
    TelemetryBus,
    TelemetryPublisher,
    bus_logger,
)
from repro.obs.live.bus import fault_hook
from repro.obs.live.registry import (
    parse_openmetrics_text,
    validate_openmetrics_text,
)
from repro.obs.live.tail import normalize_url, render_event, tail
from repro.obs.metrics import interleaving_report, reports_to_openmetrics
from repro.schedulers import (
    DelayStageScheduler,
    FuxiScheduler,
    replay_batch,
    run_with_scheduler,
)
from repro.simulator.simulation import (
    ImmediatePolicy,
    Simulation,
    SimulationConfig,
)
from repro.trace import TraceGeneratorConfig, generate_trace, to_job

from .testutil import make_job


def _get(url: str, timeout: float = 10.0) -> "tuple[int, str, str]":
    """(status, content-type, body) for a GET against the live server."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return (response.status, response.headers.get("Content-Type", ""),
                    response.read().decode("utf-8"))
    except urllib.error.HTTPError as err:
        return err.code, err.headers.get("Content-Type", ""), err.read().decode("utf-8")


class _FakeEngine:
    def __init__(self, events_processed, now):
        self.events_processed = events_processed
        self.now = now


# --------------------------------------------------------------------- #
# registry primitives + OpenMetrics round trip


class TestRegistry:
    def test_counter_monotone_and_ratchet(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_live_demo", "demo")
        c.inc(2.0, run="a")
        c.inc(run="a")
        assert c.value(run="a") == 3.0
        c.inc_to(10.0, run="a")
        c.inc_to(4.0, run="a")  # ratchet never goes backwards
        assert c.value(run="a") == 10.0
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_registration_idempotent_and_kind_checked(self):
        reg = MetricsRegistry()
        c1 = reg.counter("repro_live_demo", "demo")
        assert reg.counter("repro_live_demo", "ignored") is c1
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_live_demo", "demo")

    def test_reserved_suffixes_rejected(self):
        reg = MetricsRegistry()
        for bad in ("x_total", "x_bucket", "x_sum", "x_count"):
            with pytest.raises(ValueError, match="reserved"):
                reg.counter(bad, "demo")

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_live_h", "demo", buckets=(1.0, 5.0))
        for v in (0.5, 3.0, 100.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(103.5)
        text = reg.render_openmetrics()
        samples, _, errors = parse_openmetrics_text(text)
        assert not errors
        assert samples[("repro_live_h_bucket", (("le", "1.0"),))] == 1.0
        assert samples[("repro_live_h_bucket", (("le", "5.0"),))] == 2.0
        assert samples[("repro_live_h_bucket", (("le", "+Inf"),))] == 3.0
        assert validate_openmetrics_text(text) == []

    def test_series_is_bounded_and_not_exposed(self):
        reg = MetricsRegistry()
        s = reg.series("repro_live_ts", "demo", maxlen=3)
        for i in range(10):
            s.append(float(i), float(i * 2))
        assert s.points() == [(7.0, 14.0), (8.0, 16.0), (9.0, 18.0)]
        assert s.last() == (9.0, 18.0)
        assert "repro_live_ts" not in reg.render_openmetrics()
        assert reg.snapshot()["repro_live_ts"]["kind"] == "timeseries"

    def test_exposition_round_trips_values(self):
        reg = MetricsRegistry()
        reg.counter("repro_live_a", "a").inc(7.0, run="r", kind='with "quote"')
        reg.gauge("repro_live_b", "b").set(2.5)
        text = reg.render_openmetrics()
        samples, types, errors = parse_openmetrics_text(text)
        assert not errors
        assert types == {"repro_live_a": "counter", "repro_live_b": "gauge"}
        key = ("repro_live_a_total",
               (("kind", 'with "quote"'), ("run", "r")))
        assert samples[key] == 7.0
        assert samples[("repro_live_b", ())] == 2.5

    def test_validator_catches_structural_violations(self):
        assert validate_openmetrics_text("x 1\n") != []  # no EOF, no TYPE
        bad_counter = ("# TYPE c counter\nc 1\n# EOF\n")
        assert any("_total" in e for e in validate_openmetrics_text(bad_counter))
        bad_hist = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\nh_bucket{le="+Inf"} 3\nh_count 3\n# EOF\n'
        )
        assert any("cumulative" in e for e in validate_openmetrics_text(bad_hist))


# --------------------------------------------------------------------- #
# bus + publisher


class TestBus:
    def test_publish_orders_and_bounds_history(self):
        bus = TelemetryBus(history=4)
        for i in range(10):
            bus.publish("tick", i=i)
        events = bus.events_since()
        assert [e["seq"] for e in events] == [7, 8, 9, 10]
        assert bus.last_seq == 10

    def test_tap_is_gapless(self):
        bus = TelemetryBus()
        seen: "list[int]" = []
        bus.publish("tick", i=0)
        backlog = bus.tap(lambda e: seen.append(e["seq"]))
        bus.publish("tick", i=1)
        bus.publish("tick", i=2)
        seqs = [e["seq"] for e in backlog] + seen
        assert seqs == [1, 2, 3]  # no gap, no duplicate

    def test_unsubscribe_stops_delivery(self):
        bus = TelemetryBus()
        seen: "list[dict]" = []
        cb = seen.append
        bus.subscribe(cb)
        bus.publish("tick")
        bus.unsubscribe(cb)
        bus.publish("tick")
        assert len(seen) == 1


class TestPublisher:
    def test_engine_fold_matches_progress_semantics(self):
        pub = TelemetryPublisher(run_id="r")
        first, second = _FakeEngine(100, 1.0), _FakeEngine(40, 2.0)
        pub.engine_tick(first)
        pub.engine_tick(first)
        assert pub.events_total == 100
        pub.engine_tick(second)
        assert pub.events_total == 140
        ticks = [e for e in pub.bus.events_since() if e["type"] == "tick"]
        assert ticks[-1]["events_total"] == 140
        assert ticks[-1]["t_sim"] == 2.0

    def test_close_publishes_run_finished_once(self):
        pub = TelemetryPublisher(run_id="r")
        pub.job_done(jct=12.5)
        pub.close()
        pub.close()
        finished = [e for e in pub.bus.events_since()
                    if e["type"] == "run_finished"]
        assert len(finished) == 1
        assert finished[0]["jobs_done"] == 1

    def test_fault_hook_adapter(self):
        assert fault_hook(None) is None
        pub = TelemetryPublisher(run_id="r")
        hook = fault_hook(pub)
        hook("crash", {"node": "w1"})
        (event,) = [e for e in pub.bus.events_since() if e["type"] == "fault"]
        assert event["kind"] == "crash" and event["node"] == "w1"

    def test_schedule_computed_extracts_delay_summary(self):
        class _Schedule:
            delays = {"A": 0.0, "B": 3.5, "C": 1.5}
            predicted_makespan = 40.0
            baseline_makespan = 52.0

        pub = TelemetryPublisher(run_id="r")
        pub.schedule_computed("delaystage", {"schedule": _Schedule()})
        (event,) = [e for e in pub.bus.events_since()
                    if e["type"] == "schedule"]
        assert event["stages_delayed"] == 2
        assert event["total_delay_s"] == 5.0
        assert event["predicted_makespan"] == 40.0


# --------------------------------------------------------------------- #
# hub aggregation


class TestHub:
    def _plane(self):
        pub = TelemetryPublisher(run_id="replay", total_jobs=2)
        return pub, LiveHub(bus=pub.bus)

    def test_events_fold_into_metrics_and_snapshot(self):
        pub, hub = self._plane()
        pub.run_started(scheduler="fuxi", manifest="abc123")
        pub.engine_tick(_FakeEngine(50_000, 120.0))
        pub.job_done(jct=45.0)
        pub.job_done(jct=700.0)
        pub.close()
        hub.finish_run("replay", {"improvement": 0.38})

        reg = hub.registry
        assert reg.counter("repro_live_jobs_completed", "").value(run="replay") == 2.0
        assert reg.counter("repro_live_engine_events", "").value(run="replay") == 50_000.0
        assert reg.gauge("repro_live_sim_clock_seconds", "").value(run="replay") == 120.0
        jct = reg.histogram("repro_live_job_jct_seconds", "")
        assert jct.count(run="replay") == 2
        assert jct.sum(run="replay") == pytest.approx(745.0)

        snap = hub.run_snapshot("replay")
        assert snap["status"] == "finished"
        assert snap["jobs_done"] == 2
        assert snap["manifest"] == "abc123"
        assert snap["result"] == {"improvement": 0.38}
        assert len(snap["throughput"]) == 2
        assert hub.run_snapshot("nope") is None
        assert hub.run_ids() == ["replay"]

    def test_render_metrics_is_valid_and_merges_reports(self, tiny_cluster):
        pub, hub = self._plane()
        pub.job_done(jct=10.0)
        assert validate_openmetrics_text(hub.render_metrics()) == []

        job = make_job("j", [("A", "B")])
        run = run_with_scheduler(job, tiny_cluster,
                                 FuxiScheduler(track_metrics=True))
        reports = {"fuxi": interleaving_report(run.result, job, label="fuxi")}
        hub.set_reports(reports)
        merged = hub.render_metrics()
        assert validate_openmetrics_text(merged) == []
        assert merged.count("# EOF") == 1
        samples, _, _ = parse_openmetrics_text(merged)
        expected, _, _ = parse_openmetrics_text(reports_to_openmetrics(reports))
        for key, value in expected.items():
            assert samples[key] == value  # report families pass through intact


# --------------------------------------------------------------------- #
# HTTP surface


@pytest.fixture()
def live_plane():
    pub = TelemetryPublisher(run_id="replay", total_jobs=3)
    hub = LiveHub(bus=pub.bus)
    with LiveServer(hub, port=0) as server:
        yield pub, hub, server


class TestServer:
    def test_metrics_endpoint(self, live_plane):
        pub, _, server = live_plane
        pub.job_done(jct=30.0)
        status, ctype, body = _get(server.url + "/metrics")
        assert status == 200
        assert ctype.startswith("application/openmetrics-text")
        assert validate_openmetrics_text(body) == []
        samples, _, _ = parse_openmetrics_text(body)
        assert samples[("repro_live_jobs_completed_total",
                        (("run", "replay"),))] == 1.0

    def test_healthz(self, live_plane):
        pub, _, server = live_plane
        pub.run_started()
        status, _, body = _get(server.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["running"] == 1
        assert isinstance(payload["time"], float)

    def test_runs_index_and_snapshot(self, live_plane):
        pub, _, server = live_plane
        pub.run_started()
        pub.job_done(jct=5.0)
        status, _, body = _get(server.url + "/runs")
        assert status == 200 and json.loads(body)["runs"] == ["replay"]
        status, _, body = _get(server.url + "/runs/replay")
        snap = json.loads(body)
        assert status == 200 and snap["jobs_done"] == 1
        status, _, body = _get(server.url + "/runs/ghost")
        assert status == 404
        assert "unknown run" in json.loads(body)["error"]

    def test_unknown_route_is_404(self, live_plane):
        _, _, server = live_plane
        status, _, _ = _get(server.url + "/nope")
        assert status == 404

    def test_events_replay_without_follow(self, live_plane):
        pub, _, server = live_plane
        for _ in range(5):
            pub.job_done()
        status, ctype, body = _get(server.url + "/events?follow=0&replay=3")
        assert status == 200
        assert ctype.startswith("application/x-ndjson")
        events = [json.loads(line) for line in body.splitlines()]
        assert len(events) == 3
        assert [e["seq"] for e in events] == sorted(e["seq"] for e in events)

    def test_events_follow_honours_max(self, live_plane):
        pub, _, server = live_plane
        pub.job_done()
        pub.job_done()
        status, _, body = _get(server.url + "/events?max=2")
        events = [json.loads(line) for line in body.splitlines()]
        assert status == 200 and len(events) == 2


# --------------------------------------------------------------------- #
# tail client + structured logging


class TestTailAndLogging:
    def test_normalize_url(self):
        assert (normalize_url("127.0.0.1:9464")
                == "http://127.0.0.1:9464/events")
        assert (normalize_url("http://h:1/events?follow=0", max_events=3)
                == "http://h:1/events?follow=0&max=3")
        with pytest.raises(ValueError, match="scheme"):
            normalize_url("ftp://h:1/")

    def test_render_event_formats(self):
        line = render_event({"seq": 7, "type": "tick", "run": "replay",
                             "events_total": 40_000, "t_sim": 99.5,
                             "elapsed_s": 1.25})
        assert line.startswith("#    7 tick")
        assert "run=replay" in line and "t_sim=99.5s" in line
        fault = render_event({"seq": 8, "type": "fault", "kind": "crash",
                              "node": "w2"})
        assert "kind=crash" in fault and "node=w2" in fault

    def test_tail_against_live_server(self, live_plane):
        pub, _, server = live_plane
        pub.run_started()
        pub.job_done(jct=10.0)
        out = io.StringIO()
        count = tail(f"{server.host}:{server.port}", stream=out, max_events=2)
        assert count == 2
        lines = out.getvalue().splitlines()
        assert len(lines) == 2 and "run_started" in lines[0]
        raw = io.StringIO()
        tail(server.url + "/events?follow=0", stream=raw, max_events=1,
             raw=True)
        assert json.loads(raw.getvalue())["type"] == "run_started"

    def test_structured_logger_records(self):
        out = io.StringIO()
        log = StructuredLogger(out, run="replay", manifest="abc")
        log.info("tick", events=100)
        log.bind(shard=3).warning("slow", msg_detail="x")
        records = [json.loads(line) for line in out.getvalue().splitlines()]
        assert records[0]["run"] == "replay"
        assert records[0]["manifest"] == "abc"
        assert records[0]["event"] == "tick" and records[0]["events"] == 100
        assert records[1]["shard"] == 3 and records[1]["level"] == "warning"
        assert all("ts" in r for r in records)
        with pytest.raises(ValueError, match="unknown level"):
            log.log("loud", "boom")

    def test_bus_logger_spans_match_event_seqs(self):
        out = io.StringIO()
        pub = TelemetryPublisher(run_id="replay")
        pub.bus.subscribe(bus_logger(StructuredLogger(out, run="replay")))
        pub.job_done(jct=4.0)
        pub.close()
        records = [json.loads(line) for line in out.getvalue().splitlines()]
        assert [r["span"] for r in records] == [1, 2]
        assert records[0]["event"] == "job" and records[0]["jct"] == 4.0
        # bound fields are not duplicated from the event payload
        assert records[0]["run"] == "replay"


# --------------------------------------------------------------------- #
# fault-injection counters match FaultStats


class TestFaultTelemetry:
    def test_live_counters_match_fault_stats(self, small_cluster):
        plan = FaultPlan(events=(
            NodeCrash(time=1.0, node="w2"),
            NicBrownout(start=0.5, end=6.0, node="w0", factor=0.25),
            Straggler(time=0.5, node="w1", factor=4.0, until=50.0),
            LostShufflePartition(time=8.0, job="j", stage="A", part="w0"),
        ))
        pub = TelemetryPublisher(run_id="faulty")
        hub = LiveHub(bus=pub.bus)
        cfg = SimulationConfig(track_metrics=False, fault_plan=plan)
        sim = Simulation(small_cluster, cfg, fault_hook=fault_hook(pub))
        sim.add_job(make_job("j", [("A", "B"), ("A", "C"), ("B", "D"),
                                   ("C", "D")]),
                    ImmediatePolicy())
        stats = sim.run().faults
        assert stats is not None and stats.injected == 4

        faults = hub.registry.counter("repro_live_faults", "")
        by_kind = {
            "injected": stats.injected,
            "crash": stats.crashes,
            "brownout": stats.brownouts,
            "straggler": stats.stragglers,
            "partition_lost": stats.partitions_lost,
            "retry": stats.retries,
            "replan": stats.replans,
        }
        for kind, expected in by_kind.items():
            assert faults.value(run="faulty", kind=kind) == float(expected), kind
        assert stats.crashes == 1 and stats.retries > 0
        snap_faults = {}
        hub_run = hub.run_snapshot("faulty")
        assert hub_run is not None
        snap_faults = hub_run["faults"]
        assert snap_faults["crash"] == stats.crashes
        assert snap_faults["retry"] == stats.retries

    def test_no_fault_hook_publishes_nothing(self, small_cluster):
        plan = FaultPlan(events=(NodeCrash(time=1.0, node="w2"),))
        cfg = SimulationConfig(track_metrics=False, fault_plan=plan)
        sim = Simulation(small_cluster, cfg)  # fault_hook defaults to None
        sim.add_job(make_job("j", [("A", "B")]), ImmediatePolicy())
        assert sim.run().faults.crashes == 1  # injection unaffected


# --------------------------------------------------------------------- #
# end-to-end: mid-replay scrape, final identity, bit-identity, overhead


def _replay_jobs(n: int = 4):
    trace = generate_trace(
        TraceGeneratorConfig(num_jobs=8, replay_workers=2, max_stages=16),
        rng=3,
    )
    return [to_job(tj) for tj in trace[:n]]


class TestEndToEnd:
    def test_midrun_scrape_is_valid_and_final_matches_reports(
            self, tiny_cluster):
        jobs = _replay_jobs(4)
        pub = TelemetryPublisher(run_id="replay", total_jobs=len(jobs))
        hub = LiveHub(bus=pub.bus)
        mid_scrapes: "list[str]" = []

        def _scrape_midrun(event: dict) -> None:
            # Triggered from inside the replay loop: the request is
            # served by the HTTP thread while jobs are still running,
            # which makes this a genuine mid-run scrape.
            if event["type"] == "job" and not mid_scrapes:
                mid_scrapes.append(_get(server.url + "/metrics")[2])

        with LiveServer(hub, port=0) as server:
            pub.bus.subscribe(_scrape_midrun)
            scheduler = DelayStageScheduler(
                profiled=False, track_metrics=False,
                params=DelayStageParams(max_slots=8))
            replay_batch(jobs, tiny_cluster, scheduler, processes=1,
                         progress=pub)
            pub.close()

            job = make_job("j", [("A", "B")])
            run = run_with_scheduler(job, tiny_cluster,
                                     FuxiScheduler(track_metrics=True))
            reports = {"fuxi": interleaving_report(run.result, job,
                                                   label="fuxi")}
            hub.set_reports(reports)
            final = _get(server.url + "/metrics")[2]

        assert len(mid_scrapes) == 1
        assert validate_openmetrics_text(mid_scrapes[0]) == []
        mid_samples, _, _ = parse_openmetrics_text(mid_scrapes[0])
        done_key = ("repro_live_jobs_completed_total", (("run", "replay"),))
        assert 1.0 <= mid_samples[done_key] < len(jobs)

        # Final scrape: every family the report exporter emits appears
        # with exactly the exporter's values (same objects, same code).
        assert validate_openmetrics_text(final) == []
        final_samples, _, _ = parse_openmetrics_text(final)
        expected, _, _ = parse_openmetrics_text(reports_to_openmetrics(reports))
        assert expected  # non-trivial comparison
        for key, value in expected.items():
            assert final_samples[key] == value
        assert final_samples[done_key] == float(len(jobs))

    def test_results_bit_identical_with_serving_on(self, tiny_cluster):
        jobs = _replay_jobs(4)
        scheduler = DelayStageScheduler(profiled=False, track_metrics=False,
                                        params=DelayStageParams(max_slots=8))
        baseline = replay_batch(jobs, tiny_cluster, scheduler, processes=1)

        pub = TelemetryPublisher(run_id="replay", total_jobs=len(jobs))
        hub = LiveHub(bus=pub.bus)
        with LiveServer(hub, port=0) as server:
            stop = threading.Event()

            def _scrape_loop() -> None:
                while not stop.is_set():
                    _get(server.url + "/metrics")
                    _get(server.url + "/runs/replay")
                    stop.wait(0.005)

            scraper = threading.Thread(target=_scrape_loop, daemon=True)
            scraper.start()
            try:
                served = replay_batch(jobs, tiny_cluster, scheduler,
                                      processes=1, progress=pub)
            finally:
                stop.set()
                scraper.join(timeout=5.0)
            pub.close()
        assert served == baseline  # bit-identical, not approx

    def test_full_plane_overhead_under_five_percent(self, tiny_cluster):
        trace = generate_trace(
            TraceGeneratorConfig(num_jobs=8, replay_workers=2, max_stages=20),
            rng=0,
        )
        jobs = [to_job(tj) for tj in trace[:4]]
        schedulers = [
            FuxiScheduler(track_metrics=False),
            DelayStageScheduler(profiled=False, track_metrics=False,
                                params=DelayStageParams(max_slots=8)),
        ]

        def _once(progress) -> None:
            for job in jobs:
                for scheduler in schedulers:
                    run_with_scheduler(job, tiny_cluster, scheduler,
                                       progress=progress)

        def _best(make_plane) -> float:
            best = float("inf")
            for _ in range(5):
                progress, teardown = make_plane()
                t0 = time.perf_counter()
                _once(progress)
                best = min(best, time.perf_counter() - t0)
                teardown()
            return best

        _once(None)  # warm-up

        t_off = _best(lambda: (None, lambda: None))

        def _serving_plane():
            pub = TelemetryPublisher(run_id="bench",
                                     total_jobs=len(jobs) * 2)
            hub = LiveHub(bus=pub.bus)
            server = LiveServer(hub, port=0).start()
            return pub, server.close

        t_on = _best(_serving_plane)
        assert t_on <= t_off * 1.05 + 0.025, (
            f"live plane overhead too high: on={t_on:.4f}s off={t_off:.4f}s "
            f"({t_on / t_off - 1:.1%})"
        )


# --------------------------------------------------------------------- #
# flow analyzer: thread spawns are understood, F101 still fires inside


class TestFlowLiveRegression:
    @pytest.fixture()
    def repro_copy(self, tmp_path):
        import pathlib

        src = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"
        copy = tmp_path / "repro"
        shutil.copytree(src, copy)
        return copy

    def _analyze(self, root):
        from repro.verify.flow import FlowConfig, analyze_project

        import pathlib

        baseline = (pathlib.Path(__file__).resolve().parents[1]
                    / "tools" / "flow_baseline.json")
        return analyze_project(root, config=FlowConfig(baseline_path=baseline))

    def test_live_module_is_clean_with_sanctioned_suppressions(self):
        import pathlib

        src = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"
        r = self._analyze(src)
        assert r.ok, "\n".join(str(f) for f in r.report)
        live = [s for s in r.suppressed if "obs/live" in s.path]
        assert {(s.rule, s.how) for s in live} == {
            ("F001", "pragma"),     # structured-log timestamps
            ("F001", "baseline"),   # /healthz wall-clock stamp
        }

    def test_injected_global_mutation_in_live_worker_caught(self, repro_copy):
        target = repro_copy / "obs" / "live" / "server.py"
        source = target.read_text(encoding="utf-8")
        injected = source + (
            "\n\n_SCRAPE_LOG = []\n\n\n"
            "def _bad_worker():\n"
            "    _SCRAPE_LOG.append(1)\n\n\n"
            "def _spawn_bad_worker():\n"
            "    threading.Thread(target=_bad_worker).start()\n"
        )
        target.write_text(injected, encoding="utf-8")
        r = self._analyze(repro_copy)
        f101 = [f for f in r.report if f.rule == "F101"]
        assert len(f101) == 1
        assert f101[0].details["path"] == "repro/obs/live/server.py"
        assert f101[0].details["function"] == "_bad_worker"

    def test_thread_lambda_target_raises_no_f103(self, repro_copy):
        target = repro_copy / "obs" / "live" / "server.py"
        source = target.read_text(encoding="utf-8")
        target.write_text(source + (
            "\n\ndef _spawn_noop():\n"
            "    threading.Thread(target=lambda: None).start()\n"
        ), encoding="utf-8")
        r = self._analyze(repro_copy)
        assert r.ok, "\n".join(str(f) for f in r.report)
        assert not [f for f in r.report if f.rule == "F103"]


# --------------------------------------------------------------------- #
# CLI integration: --serve / --log-json / tail


class TestCli:
    def test_replay_serves_and_logs(self, capsys):
        from repro.cli import main

        assert main(["replay", "--jobs", "1", "--serve", "127.0.0.1:0",
                     "--log-json", "--json"]) == 0
        captured = capsys.readouterr()
        assert "live telemetry: http://127.0.0.1:" in captured.err
        payload = json.loads(captured.out)
        manifest_hash = payload["manifest"]["config_hash"]
        records = [json.loads(line) for line in captured.err.splitlines()
                   if line.startswith("{")]
        assert records, "expected --log-json records on stderr"
        assert {r["manifest"] for r in records} == {manifest_hash}
        types = {r["event"] for r in records}
        assert {"run_started", "schedule", "job", "run_finished"} <= types
        assert all(isinstance(r["span"], int) for r in records)

    def test_parse_serve_accepts_host_port(self):
        from repro.cli import _parse_serve

        assert _parse_serve("9464") == ("127.0.0.1", 9464)
        assert _parse_serve("0.0.0.0:80") == ("0.0.0.0", 80)
        with pytest.raises(SystemExit):
            _parse_serve("not-a-port")

    def test_tail_command(self, live_plane, capsys):
        from repro.cli import main

        pub, _, server = live_plane
        pub.run_started()
        pub.job_done(jct=3.0)
        assert main(["tail", server.url + "/events?follow=0", "--max", "2"]) == 0
        captured = capsys.readouterr()
        assert "run_started" in captured.out
        assert "tail: 2 event(s)" in captured.err

    def test_tail_rejects_bad_url(self, capsys):
        from repro.cli import main

        assert main(["tail", "ftp://nope"]) == 2

    def test_tail_connection_error(self, capsys):
        from repro.cli import main

        # Port 1 on loopback is essentially never listening.
        assert main(["tail", "http://127.0.0.1:1/events",
                     "--timeout", "0.2"]) == 1

    def test_tail_reconnect_flag_survives_drop(self, capsys):
        from repro.cli import main

        events = [{"seq": i, "type": "tick", "run": "r",
                   "events_total": i, "t_sim": float(i)}
                  for i in range(1, 4)]
        with _FlakyEventServer(events, per_conn=1) as flaky:
            assert main(["tail", flaky.url, "--max", "3",
                         "--reconnect", "3"]) == 0
        captured = capsys.readouterr()
        assert "tail: 3 event(s)" in captured.err
        assert "reconnect" in captured.err


# --------------------------------------------------------------------- #
# satellite: histogram boundaries and configurable buckets


class TestHistogramBoundaries:
    def test_value_on_bucket_boundary_counts_le(self):
        # OpenMetrics buckets are `value <= le`: a JCT of exactly 60s
        # belongs in the le="60.0" bucket, not the next one up.
        reg = MetricsRegistry()
        h = reg.histogram("repro_live_edge", "demo", buckets=(30.0, 60.0))
        h.observe(60.0)
        samples, _, errors = parse_openmetrics_text(reg.render_openmetrics())
        assert not errors
        assert samples[("repro_live_edge_bucket", (("le", "30.0"),))] == 0.0
        assert samples[("repro_live_edge_bucket", (("le", "60.0"),))] == 1.0
        assert samples[("repro_live_edge_bucket", (("le", "+Inf"),))] == 1.0

    def test_plus_inf_catches_overflow_only_there(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_live_inf", "demo", buckets=(1.0,))
        h.observe(10.0)
        h.observe(float("inf"))
        samples, _, errors = parse_openmetrics_text(reg.render_openmetrics())
        assert not errors
        assert samples[("repro_live_inf_bucket", (("le", "1.0"),))] == 0.0
        assert samples[("repro_live_inf_bucket", (("le", "+Inf"),))] == 2.0
        assert samples[("repro_live_inf_count", ())] == 2.0

    def test_bucket_validation(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("repro_live_bad1", "demo", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("repro_live_bad2", "demo", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("repro_live_bad3", "demo",
                          buckets=(1.0, float("inf")))

    def test_hub_jct_buckets_configurable(self):
        pub = TelemetryPublisher(run_id="r")
        hub = LiveHub(bus=pub.bus, jct_buckets=(1.0, 2.0, 4.0))
        pub.job_done(jct=2.0)
        pub.job_done(jct=3.0)
        text = hub.render_metrics()
        samples, _, errors = parse_openmetrics_text(text)
        assert not errors
        key = "repro_live_job_jct_seconds_bucket"
        assert samples[(key, (("run", "r"), ("le", "1.0")))] == 0.0
        assert samples[(key, (("run", "r"), ("le", "2.0")))] == 1.0
        assert samples[(key, (("run", "r"), ("le", "4.0")))] == 2.0
        assert samples[(key, (("run", "r"), ("le", "+Inf")))] == 2.0

    def test_hub_default_buckets_unchanged(self):
        from repro.obs.live.registry import DEFAULT_JCT_BUCKETS

        pub = TelemetryPublisher(run_id="r")
        hub = LiveHub(bus=pub.bus)
        pub.job_done(jct=10.0)
        text = hub.registry.render_openmetrics()
        for bound in DEFAULT_JCT_BUCKETS:
            assert f'le="{float(bound)}"' in text


# --------------------------------------------------------------------- #
# satellite: OpenMetrics label-value escaping


class TestLabelEscaping:
    AWKWARD = [
        'back\\slash',
        'quo"te',
        'new\nline',
        'all\\three\n"at once"',
        '\\',
        '\n',
    ]

    def test_escape_round_trips_through_parser(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_live_esc", "demo")
        for i, value in enumerate(self.AWKWARD):
            g.set(float(i), label=value)
        text = reg.render_openmetrics()
        samples, _, errors = parse_openmetrics_text(text)
        assert not errors
        for i, value in enumerate(self.AWKWARD):
            assert samples[("repro_live_esc", (("label", value),))] == float(i)

    def test_rendered_exposition_is_one_line_per_sample(self):
        # A raw newline inside a label value would split the sample
        # across lines and corrupt the exposition; escaped it must not.
        reg = MetricsRegistry()
        reg.gauge("repro_live_esc2", "demo").set(1.0, label="a\nb")
        text = reg.render_openmetrics()
        sample_lines = [ln for ln in text.splitlines()
                        if ln.startswith("repro_live_esc2")]
        assert len(sample_lines) == 1
        assert '\\n' in sample_lines[0]
        assert validate_openmetrics_text(text) == []

    def test_escaped_backslash_not_double_unescaped(self):
        # "\\n" (escaped backslash + n) must parse back to a literal
        # backslash followed by 'n', not a newline.
        reg = MetricsRegistry()
        reg.gauge("repro_live_esc3", "demo").set(1.0, label="\\n")
        samples, _, errors = parse_openmetrics_text(reg.render_openmetrics())
        assert not errors
        assert ("repro_live_esc3", (("label", "\\n"),)) in samples


# --------------------------------------------------------------------- #
# satellite: tail reconnect against a connection-dropping server


class _FlakyEventServer:
    """Serves /events but closes the connection after ``per_conn``
    events, recording each connection's ``since=`` cursor.

    HTTP/1.0 with no Content-Length means an abrupt close reads as end
    of stream on the client — exactly what a dying live plane or a
    mid-stream proxy drop looks like to ``repro tail``.
    """

    def __init__(self, events, per_conn=2):
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
        from urllib.parse import parse_qs, urlsplit

        self.events = list(events)
        self.per_conn = per_conn
        self.sinces: "list[int]" = []
        outer = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.0"

            def log_message(self, *args):  # noqa: A003
                pass

            def do_GET(self):  # noqa: N802
                params = parse_qs(urlsplit(self.path).query)
                since = int(params.get("since", ["0"])[0])
                outer.sinces.append(since)
                self.send_response(200)
                self.send_header(
                    "Content-Type", "application/x-ndjson; charset=utf-8")
                self.end_headers()
                pending = [e for e in outer.events if e["seq"] > since]
                for event in pending[: outer.per_conn]:
                    self.wfile.write(
                        (json.dumps(event) + "\n").encode("utf-8"))
                    self.wfile.flush()
                # Fall through without more data: connection closes
                # mid-stream from the client's point of view.

        self._httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True)

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address
        return f"http://{host}:{port}/events"

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._httpd.shutdown()
        self._httpd.server_close()


class TestTailReconnect:
    def _events(self, n):
        return [{"seq": i, "type": "tick", "run": "r",
                 "events_total": i, "t_sim": float(i)}
                for i in range(1, n + 1)]

    def test_resumes_with_since_and_no_duplicates(self):
        from repro.obs.live.tail import iter_events

        sleeps: "list[float]" = []
        with _FlakyEventServer(self._events(5), per_conn=2) as flaky:
            got = list(iter_events(flaky.url, max_events=5, reconnect=3,
                                   sleep=sleeps.append))
        assert [e["seq"] for e in got] == [1, 2, 3, 4, 5]
        # Each reconnect advanced the cursor: the server never replayed
        # an event this client had already seen.
        assert flaky.sinces == [0, 2, 4]
        # Successful events reset the failure count, so every retry
        # waited the initial backoff.
        assert sleeps == [0.5, 0.5]

    def test_no_reconnect_stops_at_first_drop(self):
        from repro.obs.live.tail import iter_events

        with _FlakyEventServer(self._events(5), per_conn=2) as flaky:
            got = list(iter_events(flaky.url, max_events=5, reconnect=0))
        assert [e["seq"] for e in got] == [1, 2]
        assert flaky.sinces == [0]

    def test_budget_exhausted_raises_after_capped_backoff(self):
        from repro.obs.live.tail import (
            INITIAL_BACKOFF_S,
            MAX_BACKOFF_S,
            iter_events,
        )

        sleeps: "list[float]" = []
        attempts: "list[tuple[int, float]]" = []
        # Port 1 on loopback is essentially never listening: every
        # attempt fails, so backoff doubles until the cap.
        with pytest.raises(OSError):
            list(iter_events("http://127.0.0.1:1/events", timeout=0.2,
                             reconnect=5, sleep=sleeps.append,
                             on_reconnect=lambda a, d: attempts.append((a, d))))
        assert sleeps == [0.5, 1.0, 2.0, 4.0, 5.0]
        assert sleeps[0] == INITIAL_BACKOFF_S
        assert max(sleeps) == MAX_BACKOFF_S
        assert [a for a, _ in attempts] == [1, 2, 3, 4, 5]

    def test_tail_helper_reports_reconnects(self, capsys):
        from repro.obs.live.tail import tail as tail_fn

        out = io.StringIO()
        with _FlakyEventServer(self._events(3), per_conn=1) as flaky:
            count = tail_fn(flaky.url, stream=out, max_events=3,
                            reconnect=5, sleep=lambda _s: None)
        assert count == 3
        assert len(out.getvalue().splitlines()) == 3
        err = capsys.readouterr().err
        assert "stream dropped; reconnect" in err

    def test_server_since_param_skips_old_events(self, live_plane):
        pub, _, server = live_plane
        pub.run_started()
        pub.job_done(jct=1.0)
        pub.job_done(jct=2.0)
        status, _, body = _get(server.url + "/events?follow=0&since=1")
        assert status == 200
        seqs = [json.loads(line)["seq"] for line in body.splitlines()]
        assert seqs == [2, 3]
