"""The vector engine is bit-exact: array kernels and object loop agree.

The PR that introduced :class:`~repro.simulator.vector.VectorFluidEngine`
claims the struct-of-arrays hot path is *bit-identical* to the scalar
object engine — same records, same event-log bytes, same metric
segments — under every configuration: healthy runs, fault injection
with replanning, contention penalties, parallel replay shards, and the
committed chaos goldens.  Every comparison below is ``==`` on floats,
never ``pytest.approx``.

The adaptive threshold means a plain run may never actually enter
vector mode (small active sets stay on the scalar path by design), so
``_force_vector`` drops the entry thresholds to zero and disables the
churn guard, making every event from the second onward run on the
array kernels.  Both the natural and the forced policies are tested.
"""

from __future__ import annotations

import contextlib
import dataclasses
import io
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.spec import uniform_cluster
from repro.core.delaystage import DelayStageParams
from repro.faults import generate_plan
from repro.schedulers import DelayStageScheduler, run_with_scheduler
from repro.simulator.engine import FluidEngine, WorkItem
from repro.simulator.eventlog import write_eventlog
from repro.simulator.simulation import (
    ImmediatePolicy,
    Simulation,
    SimulationConfig,
)
from repro.simulator.vector import (
    KIND_DEMAND,
    KIND_FLOW,
    VectorCore,
    VectorFluidEngine,
)
from repro.workloads.synthetic import random_job


def _records_equal(a, b) -> bool:
    """Dataclass equality where NaN == NaN (unset lifecycle fields)."""
    for f in dataclasses.fields(a):
        x, y = getattr(a, f.name), getattr(b, f.name)
        if isinstance(x, float) and math.isnan(x) and math.isnan(y):
            continue
        if x != y:
            return False
    return True


def _cluster():
    return uniform_cluster(
        3, executors_per_worker=2, nic_mbps=450, disk_mb_per_sec=150,
        storage_nodes=0,
    )


def _run(jobs, *, vector: bool, penalty: float = 0.0, incremental: bool = True,
         track_metrics: bool = False):
    cfg = SimulationConfig(
        track_metrics=track_metrics, contention_penalty=penalty,
        incremental=incremental, vector=vector,
    )
    sim = Simulation(_cluster(), cfg)
    for job in jobs:
        sim.add_job(job, ImmediatePolicy())
    return sim.run()


def _assert_results_identical(a, b) -> None:
    assert a.stage_records.keys() == b.stage_records.keys()
    for key in a.stage_records:
        assert _records_equal(a.stage_records[key], b.stage_records[key]), key
    for jid in a.job_records:
        assert _records_equal(a.job_records[jid], b.job_records[jid]), jid
    assert a.events == b.events


_FORCED = {
    "ENTER_VECTOR_N": 1,
    "EXIT_VECTOR_N": 0,
    "CHURN_EXIT_RATIO": math.inf,
    "CHURN_ENTER_RATIO": math.inf,
    "ENTER_CALM_EVENTS": 0,
}


@contextlib.contextmanager
def _forced_vector():
    """Make the adaptive engine enter vector mode immediately and never
    leave: entry floor 1, no exit floor, churn guard off, no calm-streak
    wait.  A context manager rather than a pytest fixture so hypothesis
    tests can use it per-example without the function-scoped-fixture
    health check."""
    saved = {name: getattr(VectorFluidEngine, name) for name in _FORCED}
    for name, value in _FORCED.items():
        setattr(VectorFluidEngine, name, value)
    try:
        yield
    finally:
        for name, value in saved.items():
            setattr(VectorFluidEngine, name, value)


@pytest.fixture
def _force_vector():
    with _forced_vector():
        yield


# --------------------------------------------------------------------- #
# simulation-level bit-identity


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_stages=st.integers(2, 9),
    num_jobs=st.integers(1, 3),
    penalty=st.sampled_from([0.0, 0.5]),
)
def test_vector_engine_bit_identical(seed, num_stages, num_jobs, penalty):
    jobs = [
        random_job(num_stages, job_id=f"J{i}", parallelism=0.6,
                   rng=seed * 7 + i)
        for i in range(num_jobs)
    ]
    scalar = _run(jobs, vector=False, penalty=penalty)
    vector = _run(jobs, vector=True, penalty=penalty)
    _assert_results_identical(vector, scalar)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), num_stages=st.integers(2, 8))
def test_forced_vector_mode_bit_identical(seed, num_stages):
    """Array kernels active from the first event still match the scalar
    engine exactly — the adaptive policy is purely a speed knob."""
    jobs = [random_job(num_stages, job_id="J", parallelism=0.7, rng=seed)]
    scalar = _run(jobs, vector=False)
    with _forced_vector():
        vector = _run(jobs, vector=True)
    _assert_results_identical(vector, scalar)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500))
def test_vector_under_faults_bit_identical(seed):
    """Fault injection cancels items and reads their remaining volumes
    mid-run — the array→object sync points must be exact."""
    cluster = _cluster()
    job = random_job(5, job_id="F", rng=seed)
    plan = generate_plan(cluster, seed, jobs=[job], num_events=3,
                         retry_budget=3, backoff_base=0.25, backoff_cap=2.0)

    def run(vector):
        scheduler = DelayStageScheduler(
            profiled=False, track_metrics=False,
            params=DelayStageParams(max_slots=8),
            fault_plan=plan, replan=True, vector=vector,
        )
        return run_with_scheduler(job, cluster, scheduler).result

    scalar = run(False)
    with _forced_vector():
        vector = run(True)
    _assert_results_identical(vector, scalar)


def test_vector_eventlog_bytes_identical():
    """The serialized eventlog — not just the records — is byte-equal."""
    jobs = [random_job(7, job_id=f"J{i}", parallelism=0.7, rng=11 + i)
            for i in range(2)]
    logs = []
    for vector in (True, False):
        buf = io.StringIO()
        write_eventlog(_run(jobs, vector=vector).events, buf)
        logs.append(buf.getvalue())
    assert logs[0] == logs[1]


def test_vector_chaos_goldens_unchanged():
    """``vector=True`` (the default) keeps reproducing the committed
    chaos fixtures byte-for-byte — the goldens were recorded before the
    vector engine existed, so this pins the whole fault trajectory."""
    from tests.test_faults_golden import SEEDS, _chaos_eventlog, _golden_path

    for seed in SEEDS:
        expected = _golden_path(seed).read_text(encoding="utf-8")
        assert _chaos_eventlog(seed) == expected


def test_vector_metrics_segments_identical(_force_vector):
    """The observe callback sees identical constant-rate segments."""
    jobs = [random_job(6, job_id="M", parallelism=0.7, rng=3)]
    scalar = _run(jobs, vector=False, track_metrics=True)
    vector = _run(jobs, vector=True, track_metrics=True)
    _assert_results_identical(vector, scalar)
    ms, mv = scalar.metrics, vector.metrics
    assert ms._t0 == mv._t0 and ms._t1 == mv._t1
    for name in ("_net_in", "_net_out", "_cpu", "_disk"):
        for a, b in zip(getattr(ms, name), getattr(mv, name)):
            assert np.array_equal(a, b)
    assert scalar.counters == vector.counters


def test_vector_parallel_shards_identical():
    from repro.schedulers.fuxi import FuxiScheduler
    from repro.simulator.parallel import replay_jcts

    jobs = [random_job(5, job_id=f"J{i}", parallelism=0.5, rng=i)
            for i in range(5)]
    cluster = _cluster()
    scalar = replay_jcts(jobs, cluster, FuxiScheduler(track_metrics=False,
                                                      vector=False),
                         processes=1)
    for vector, processes in ((True, 1), (True, 2), (False, 2)):
        sched = FuxiScheduler(track_metrics=False, vector=vector)
        assert replay_jcts(jobs, cluster, sched, processes=processes) == scalar


def test_no_vector_selects_scalar_engine_class():
    sim = Simulation(_cluster(), SimulationConfig(vector=False))
    assert type(sim.engine) is FluidEngine
    sim = Simulation(_cluster(), SimulationConfig())
    assert type(sim.engine) is VectorFluidEngine


# --------------------------------------------------------------------- #
# engine-level behaviour


def _flat_alloc(items):
    for item in items:
        item.rate = 1.0


def _engine(cls=VectorFluidEngine):
    return cls(_flat_alloc)


def test_forced_vector_engine_matches_scalar_trace(_force_vector):
    """Same completion order and times from both engines on a raw
    item soup with distinct volumes."""

    def run(cls):
        eng = cls(_flat_alloc)
        done = []
        for i in range(40):
            volume = 1.0 + i * 0.37
            eng.add_item(WorkItem(volume, lambda t, i=i: done.append((i, t))))
        eng.run()
        return done, eng.now

    assert run(FluidEngine) == run(VectorFluidEngine)


def test_vector_cancel_syncs_remaining(_force_vector):
    """cancel_item must hand back the array-authoritative remaining."""

    def run(cls):
        eng = cls(_flat_alloc)
        victim = WorkItem(100.0)
        eng.add_item(victim)
        for i in range(5):
            eng.add_item(WorkItem(10.0 + i))
        grabbed = []

        def grab():
            assert eng.cancel_item(victim)
            grabbed.append(victim.remaining)

        eng.schedule(3.5, grab)
        eng.run()
        return grabbed

    assert run(VectorFluidEngine) == run(FluidEngine) == [100.0 - 3.5]


def test_vector_active_items_syncs_remaining(_force_vector):
    eng = _engine()
    items = [WorkItem(10.0 + i) for i in range(4)]
    for item in items:
        eng.add_item(item)
    eng.run(until=2.0)
    # While in vector mode the arrays are authoritative; active_items
    # must surface the advanced values on the objects.
    assert eng._vmode
    for item in eng.active_items:
        assert item.remaining == (10.0 + item._pos) - 2.0


def test_vector_batch_remove_matches_sequential(_force_vector):
    """A mass completion (many items with the same volume) exercises
    the deferred batch row moves; survivors keep exact state."""

    def run(cls):
        eng = cls(_flat_alloc)
        order = []
        # 10 items completing together, interleaved with 10 survivors.
        for i in range(20):
            volume = 5.0 if i % 2 == 0 else 50.0 + i
            eng.add_item(WorkItem(volume, lambda t, i=i: order.append((i, t))))
        eng.run(until=30.0)
        survivors = sorted((it._pos, it.remaining) for it in eng.active_items)
        return order, survivors, eng.now

    assert run(VectorFluidEngine) == run(FluidEngine)


def test_vector_zero_volume_item_completes_instantly():
    eng = _engine()
    fired = []
    eng.add_item(WorkItem(0.0, fired.append))
    assert fired == [0.0]
    assert eng.idle


def test_vector_stall_raises_with_synced_state(_force_vector):
    from repro.simulator.engine import EngineStalledError

    def alloc(items):
        for item in items:
            item.rate = 0.0

    eng = VectorFluidEngine(alloc)
    item = WorkItem(5.0)
    eng.add_item(item)
    with pytest.raises(EngineStalledError):
        eng.run()
    assert item.remaining == 5.0


def test_adaptive_engine_stays_scalar_when_small():
    """Below ENTER_VECTOR_N the engine never pays for the arrays."""
    eng = _engine()
    for i in range(5):
        eng.add_item(WorkItem(1.0 + i))
    eng.run()
    assert not eng._vmode
    assert not eng.core.active


def test_total_events_counter_accumulates():
    before = FluidEngine.TOTAL_EVENTS
    for cls in (FluidEngine, VectorFluidEngine):
        eng = cls(_flat_alloc)
        eng.add_item(WorkItem(1.0))
        eng.run()
    assert FluidEngine.TOTAL_EVENTS >= before + 2


# --------------------------------------------------------------------- #
# VectorCore unit behaviour


def test_core_grow_preserves_rows():
    core = VectorCore(capacity=4)
    core.remaining[:4] = [1.0, 2.0, 3.0, 4.0]
    core.rate[:4] = [0.1, 0.2, 0.3, 0.4]
    core.grow(9)
    assert core.capacity == 16
    assert core.remaining[:4].tolist() == [1.0, 2.0, 3.0, 4.0]
    assert core.rate[:4].tolist() == [0.1, 0.2, 0.3, 0.4]


def test_core_rebuild_and_partition():
    from repro.simulator.flows import ComputeDemand, NetworkFlow

    flow = NetworkFlow("a", "b", 5.0, ("J", "s1"))
    demand = ComputeDemand("a", 3.0, ("J", "s1"), 1.0)
    items = [flow, demand]
    for pos, item in enumerate(items):
        item._pos = pos
    core = VectorCore()
    core.rebuild(items, eps=1e-9)
    assert core.kind[0] == KIND_FLOW and core.kind[1] == KIND_DEMAND
    assert list(core.flows) == [flow]
    assert list(core.demands_at["a"]) == [demand]
    assert core.flows_in_engine_order(items) == [flow]
    core.untrack(flow)
    assert core.flows_in_engine_order(items) == []


def test_core_thresh_follows_rate_rule():
    """thresh rows cache EPS * rate if rate > 1.0 else EPS exactly."""
    eps = FluidEngine.EPS
    items = [WorkItem(10.0) for _ in range(3)]
    for pos, (item, rate) in enumerate(zip(items, (0.5, 1.0, 250.0))):
        item.rate = rate
        item._pos = pos
    core = VectorCore()
    core.rebuild(items, eps)
    assert core.thresh[:3].tolist() == [eps, eps, eps * 250.0]


def test_vector_live_metrics_scrape_identical():
    """The post-run /metrics scrape (bus events folded into the live
    hub) is text-identical vector vs scalar — telemetry only reads
    simulation state, so the hatch cannot leak into the scrape."""
    from repro.obs.live.bus import TelemetryPublisher
    from repro.obs.live.hub import LiveHub
    from repro.schedulers.fuxi import FuxiScheduler

    def scrape(vector):
        pub = TelemetryPublisher(run_id="eq", total_jobs=1)
        hub = LiveHub(bus=pub.bus)
        job = random_job(7, job_id="T", parallelism=0.7, rng=9)
        run_with_scheduler(job, _cluster(),
                           FuxiScheduler(track_metrics=False, vector=vector),
                           progress=pub)
        pub.close()
        return hub.render_metrics()

    with _forced_vector():
        vec = scrape(True)
    assert vec == scrape(False)
