"""Unit conversions: every factor in one place, every factor tested."""

import pytest

from repro.util.units import (
    GB,
    KB,
    MB,
    bytes_to_mb,
    gbps_to_bytes_per_sec,
    mb_per_sec,
    mbps_to_bytes_per_sec,
)


def test_binary_prefixes():
    assert KB == 1024
    assert MB == 1024**2
    assert GB == 1024**3


def test_mbps_uses_decimal_megabits():
    # 8 Mbps == 1 decimal megabyte/s == 1e6 bytes/s
    assert mbps_to_bytes_per_sec(8) == pytest.approx(1e6)


def test_gbps_is_thousand_mbps():
    assert gbps_to_bytes_per_sec(1) == pytest.approx(mbps_to_bytes_per_sec(1000))


def test_bytes_to_mb_roundtrip():
    assert bytes_to_mb(5 * MB) == pytest.approx(5.0)


def test_mb_per_sec_roundtrip():
    assert mb_per_sec(3 * MB) == pytest.approx(3.0)


def test_typical_nic_rate():
    # 450 Mbps (the EC2 default) is about 56.25 decimal MB/s.
    assert mbps_to_bytes_per_sec(450) == pytest.approx(56.25e6)
