"""Job construction, validation, and structure queries."""

import pytest

from repro.dag import Job

from testutil import make_job, make_stage


def test_parents_children(diamond_job):
    assert diamond_job.parents("S4") == {"S2", "S3"}
    assert diamond_job.children("S1") == {"S2", "S3"}
    assert diamond_job.parents("S1") == frozenset()
    assert diamond_job.children("S4") == frozenset()


def test_roots_and_leaves(diamond_job):
    assert diamond_job.roots == ["S1"]
    assert diamond_job.leaves == ["S4"]


def test_multiple_roots(fork_join_job):
    assert sorted(fork_join_job.roots) == ["A", "B", "C"]
    assert fork_join_job.leaves == ["D"]


def test_edges_deterministic(diamond_job):
    assert diamond_job.edges == [("S1", "S2"), ("S1", "S3"), ("S2", "S4"), ("S3", "S4")]


def test_cycle_detection():
    with pytest.raises(ValueError, match="cycle"):
        make_job("cyclic", [("A", "B"), ("B", "C"), ("C", "A")])


def test_self_loop_rejected():
    with pytest.raises(ValueError, match="self-loop"):
        make_job("loop", [("A", "A")])


def test_unknown_edge_endpoint_rejected():
    with pytest.raises(ValueError, match="unknown"):
        Job("j", [make_stage("A")], [("A", "B")])


def test_duplicate_stage_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        Job("j", [make_stage("A"), make_stage("A")])


def test_empty_job_rejected():
    with pytest.raises(ValueError, match="at least one"):
        Job("j", [])


def test_empty_job_id_rejected():
    with pytest.raises(ValueError, match="job_id"):
        Job("", [make_stage("A")])


def test_stage_lookup_error_mentions_job():
    job = make_job("named", [("A", "B")])
    with pytest.raises(KeyError, match="named"):
        job.stage("Z")


def test_iteration_and_len(diamond_job):
    assert len(diamond_job) == 4
    assert {s.stage_id for s in diamond_job} == {"S1", "S2", "S3", "S4"}
    assert "S1" in diamond_job
    assert "nope" not in diamond_job


def test_total_input_bytes(diamond_job):
    assert diamond_job.total_input_bytes == sum(s.input_bytes for s in diamond_job)


def test_scaled_preserves_structure(diamond_job):
    scaled = diamond_job.scaled(0.5)
    assert scaled.edges == diamond_job.edges
    assert scaled.stage("S1").input_bytes == pytest.approx(
        diamond_job.stage("S1").input_bytes * 0.5
    )
    # Default id records the factor; explicit id wins.
    assert scaled.job_id == "diamond-x0.5"
    assert diamond_job.scaled(0.5, job_id="z").job_id == "z"


def test_parents_of_unknown_stage_raises(diamond_job):
    with pytest.raises(KeyError):
        diamond_job.parents("Z")
