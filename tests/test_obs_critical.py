"""Critical-path blame engine (repro.obs.critical) contracts.

The load-bearing invariant is the *blame identity*: for every finished
job, the seven category seconds sum bit-for-bit (``==`` on floats, no
tolerance) to the measured JCT, and the makespan decomposition sums to
the measured makespan.  The identity is property-tested over random
DAGs and must survive fault injection.

The second contract is observational purity: computing blame changes
nothing about the run.  Demand accounting rides the ``track_events``
flag, and stage/job records are bit-identical with it on or off.
"""

import dataclasses
import json
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import uniform_cluster
from repro.core import DelayStageParams
from repro.faults import generate_plan
from repro.obs.critical import (
    CATEGORIES,
    blame_diff,
    blames_to_openmetrics_lines,
    render_blame_markdown,
    render_diff_markdown,
    run_blame,
    validate_blame_payload,
)
from repro.obs.metrics import interleaving_report, reports_to_csv
from repro.schedulers import (
    DelayStageScheduler,
    FuxiScheduler,
    StockSparkScheduler,
    compare_schedulers,
    run_with_scheduler,
)
from repro.simulator import Simulation
from repro.workloads import workload_by_name
from repro.workloads.synthetic import random_job


def _als():
    job = workload_by_name("ALS", 1.0)
    cluster = uniform_cluster(3, executors_per_worker=2, nic_mbps=450,
                              disk_mb_per_sec=150, storage_nodes=0)
    return job, cluster


def _assert_identity(blame):
    """The identity must be float-==, not approx: Fraction arithmetic
    telescopes exactly, so any drift is a real accounting bug."""
    assert blame.identity_exact
    total = float(sum(blame.exact.values(), Fraction(0)))
    assert total == blame.makespan_seconds
    for jid, jb in blame.jobs.items():
        assert jb.identity_exact, jid
        assert jb.total_seconds == jb.jct_seconds, jid
        assert set(jb.categories) == set(CATEGORIES)
        for stage in jb.stages:
            for sec in stage.seconds.values():
                assert sec >= -1e-12


class TestBlameIdentity:
    @pytest.mark.parametrize("make_scheduler", [
        lambda: FuxiScheduler(track_metrics=False),
        lambda: StockSparkScheduler(track_metrics=False),
        lambda: DelayStageScheduler(profiled=True, track_metrics=False),
    ], ids=["fuxi", "spark", "delaystage"])
    def test_als_identity_bit_exact(self, make_scheduler):
        job, cluster = _als()
        run = run_with_scheduler(job, cluster, make_scheduler())
        blame = run_blame(run.result, job, label=run.scheduler_name,
                          delays=run.delay_table)
        _assert_identity(blame)
        # Something real was attributed: the path does actual compute.
        assert blame.categories["compute"] > 0.0

    def test_fixture_jobs_identity(self, small_cluster, diamond_job,
                                   fork_join_job, chain_job):
        for job in (diamond_job, fork_join_job, chain_job):
            run = run_with_scheduler(
                job, small_cluster, StockSparkScheduler(track_metrics=False))
            _assert_identity(run_blame(run.result, job))

    def test_chain_critical_path_is_the_chain(self, small_cluster, chain_job):
        run = run_with_scheduler(
            chain_job, small_cluster, StockSparkScheduler(track_metrics=False))
        blame = run_blame(run.result, chain_job)
        jb = blame.jobs[chain_job.job_id]
        # A linear chain has exactly one path; the walker must find all
        # stages of it, in topological order.
        assert [s.stage_id for s in jb.stages] == ["S1", "S2", "S3"]
        # Stock Spark never delays, so no delay-wait on the path.
        assert jb.categories["delay_wait"] == 0.0

    def test_delay_wait_matches_records(self, small_cluster, diamond_job):
        sched = DelayStageScheduler(profiled=True, track_metrics=False,
                                    params=DelayStageParams(max_slots=8))
        run = run_with_scheduler(diamond_job, small_cluster, sched)
        blame = run_blame(run.result, diamond_job, delays=run.delay_table)
        jb = blame.jobs[diamond_job.job_id]
        records = run.result.stage_records
        expected = sum(
            (Fraction(records[(s.job_id, s.stage_id)].submit_time)
             - Fraction(records[(s.job_id, s.stage_id)].ready_time))
            for s in jb.stages
        )
        assert jb.categories["delay_wait"] == float(expected)
        # Cross-link: stages the schedule delayed carry the chosen value.
        for stage in jb.stages:
            chosen = run.delay_table.get(stage.stage_id)
            if chosen:
                assert stage.chosen_delay == pytest.approx(chosen)

    def test_makespan_counts_submission_offset(self, tiny_cluster):
        # Two jobs, the second submitted at t=30: the makespan blame
        # must include that offset (as dependency wait) to reach the
        # measured makespan exactly.
        jobs = [random_job(4, parallelism=0.5, rng=1, job_id="a"),
                random_job(4, parallelism=0.5, rng=2, job_id="b")]
        sched = StockSparkScheduler(track_metrics=False)
        sim = None
        for offset, job in zip((0.0, 30.0), jobs):
            prepared = sched.prepare(job, tiny_cluster)
            if sim is None:
                sim = Simulation(tiny_cluster, prepared.config)
            sim.add_job(job, prepared.policy, submit_time=offset)
        result = sim.run()
        blame = run_blame(result, jobs)
        _assert_identity(blame)
        mk = result.job_records[blame.makespan_job]
        if mk.submit_time > 0:
            assert blame.categories["dependency"] >= mk.submit_time


class TestBlameProperty:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 12),
           parallelism=st.sampled_from([0.3, 0.7, 1.0]))
    def test_identity_over_random_dags(self, seed, n, parallelism):
        cluster = uniform_cluster(2, executors_per_worker=2,
                                  nic_mbps=480, disk_mb_per_sec=150)
        job = random_job(n, parallelism=parallelism, rng=seed,
                         job_id=f"r{seed}")
        for sched in (StockSparkScheduler(track_metrics=False),
                      DelayStageScheduler(profiled=True,
                                          track_metrics=False)):
            run = run_with_scheduler(job, cluster, sched)
            blame = run_blame(run.result, job, delays=run.delay_table)
            _assert_identity(blame)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1_000))
    def test_identity_under_fault_injection(self, seed):
        cluster = uniform_cluster(2, executors_per_worker=2, nic_mbps=480,
                                  disk_mb_per_sec=150, storage_nodes=1)
        job = random_job(6, parallelism=0.6, rng=seed, job_id=f"f{seed}")
        plan = generate_plan(cluster, seed, jobs=[job], num_events=4,
                             horizon=80.0)
        run = run_with_scheduler(
            job, cluster,
            FuxiScheduler(track_metrics=False, fault_plan=plan))
        blame = run_blame(run.result, job)
        _assert_identity(blame)

    def test_fault_retry_category_appears(self, tiny_cluster):
        # Sweep seeds until a plan actually causes retries on the
        # critical path; the category must then be charged.
        for seed in range(40):
            job = random_job(6, parallelism=0.6, rng=seed, job_id="f")
            plan = generate_plan(tiny_cluster, seed, jobs=[job],
                                 num_events=4, horizon=80.0)
            run = run_with_scheduler(
                job, tiny_cluster,
                FuxiScheduler(track_metrics=False, fault_plan=plan))
            blame = run_blame(run.result, job)
            _assert_identity(blame)
            jb = blame.jobs["f"]
            if any(s.retries > 0 for s in jb.stages):
                assert jb.categories["fault_retry"] > 0.0
                return
        pytest.skip("no seed produced a critical-path retry")


class TestObservationalPurity:
    def test_records_bit_identical_with_tracking_off(self, small_cluster,
                                                     fork_join_job):
        sched = StockSparkScheduler(track_metrics=False)
        results = {}
        for track in (True, False):
            prepared = sched.prepare(fork_join_job, small_cluster)
            config = dataclasses.replace(prepared.config, track_events=track)
            sim = Simulation(small_cluster, config)
            sim.add_job(fork_join_job, prepared.policy)
            results[track] = sim.run()
        on, off = results[True], results[False]
        assert on.demands is not None and off.demands is None
        assert set(on.stage_records) == set(off.stage_records)
        for sid, rec_on in on.stage_records.items():
            rec_off = off.stage_records[sid]
            for field in ("ready_time", "submit_time", "read_done_time",
                          "compute_done_time", "finish_time"):
                assert getattr(rec_on, field) == getattr(rec_off, field), sid
        for jid, jrec in on.job_records.items():
            assert jrec.submit_time == off.job_records[jid].submit_time
            assert jrec.finish_time == off.job_records[jid].finish_time

    def test_run_blame_does_not_mutate_result(self, small_cluster,
                                              diamond_job):
        run = run_with_scheduler(
            diamond_job, small_cluster, StockSparkScheduler(track_metrics=False))
        before = repr(sorted(run.result.stage_records.items()))
        demands_before = run.result.demands
        events_before = len(run.result.events)
        run_blame(run.result, diamond_job)
        assert repr(sorted(run.result.stage_records.items())) == before
        assert run.result.demands is demands_before
        assert len(run.result.events) == events_before

    def test_blame_without_demands_still_exact(self, small_cluster,
                                               diamond_job):
        # Demand accounting off (track_events=False): phases fall back
        # to their nominal categories, the identity still holds.
        sched = StockSparkScheduler(track_metrics=False)
        prepared = sched.prepare(diamond_job, small_cluster)
        config = dataclasses.replace(prepared.config, track_events=False)
        sim = Simulation(small_cluster, config)
        sim.add_job(diamond_job, prepared.policy)
        result = sim.run()
        blame = run_blame(result, diamond_job)
        _assert_identity(blame)
        # Without demand data there is no ideal-rate baseline to split
        # contention out of, so none may be charged.
        assert blame.categories["contention"] == 0.0


class TestDiffAndReportConsistency:
    @pytest.fixture(scope="class")
    def als_runs(self):
        job, cluster = _als()
        runs = compare_schedulers(job, cluster, [
            FuxiScheduler(track_metrics=True),
            DelayStageScheduler(profiled=True, track_metrics=True),
        ])
        blames = {
            name: run_blame(run.result, job, label=name,
                            delays=run.delay_table)
            for name, run in runs.items()
        }
        return job, runs, blames

    def test_diff_reports_positive_recovery(self, als_runs):
        _, _, blames = als_runs
        diff = blame_diff(blames["fuxi"], blames["delaystage"])
        # The paper's story on ALS: DelayStage invests delay to recover
        # more contention/serial time than it costs.
        assert diff.makespan_saved > 0.0
        assert diff.recovery_seconds > 0.0
        assert diff.saved["contention"] > 0.0
        assert diff.delay_invested >= 0.0
        assert diff.recovery_seconds > diff.delay_invested

    def test_diff_sign_matches_overlap_ratio(self, als_runs):
        job, runs, blames = als_runs
        reports = {
            name: interleaving_report(run.result, job, label=name)
            for name, run in runs.items()
        }
        diff = blame_diff(blames["fuxi"], blames["delaystage"])
        # Positive contention recovery must agree with the report's
        # interleaving view: DelayStage runs fewer stages concurrently
        # (lower stage-time overlap — that is what was contending) while
        # overlapping *resource phases* more (higher CPU+NIC
        # complementarity, the paper's actual interleaving goal).
        assert diff.saved["contention"] > 0.0
        assert (reports["delaystage"].stage_overlap_ratio
                < reports["fuxi"].stage_overlap_ratio)
        assert (reports["delaystage"].cpu_net_complementarity
                > reports["fuxi"].cpu_net_complementarity)

    def test_report_blame_matches_run_blame(self, als_runs):
        job, runs, blames = als_runs
        rep = interleaving_report(runs["fuxi"].result, job, label="fuxi")
        assert rep.blame is not None
        for cat in CATEGORIES:
            assert rep.blame[cat] == blames["fuxi"].categories[cat]

    def test_csv_delay_wait_columns_cross_check(self, als_runs):
        job, runs, blames = als_runs
        reports = {
            name: interleaving_report(run.result, job, label=name)
            for name, run in runs.items()
        }
        rows = [line.split(",") for line in
                reports_to_csv(reports).strip().splitlines()]
        header, body = rows[0], rows[1:]
        assert header[0] == "run"
        delay_cols = {name: i for i, name in enumerate(header)
                      if name.startswith("delay_wait_")
                      and name not in ("delay_wait_seconds",
                                       "delay_wait_share")}
        blame_cols = {name: i for i, name in enumerate(header)
                      if name.startswith("blame_")}
        assert delay_cols and blame_cols
        assert set(blame_cols) == {f"blame_{c}" for c in CATEGORIES}
        for row in body:
            assert len(row) == len(header)
            name = row[0]
            records = runs[name].result.stage_records
            # Per-stage CSV columns reproduce the records exactly.
            for col, i in delay_cols.items():
                sid = col[len("delay_wait_"):]
                rec = records[(job.job_id, sid)]
                assert float(row[i]) == pytest.approx(
                    max(rec.submit_time - rec.ready_time, 0.0))
            # The blame column family reproduces run_blame.
            for cat in CATEGORIES:
                assert float(row[blame_cols[f"blame_{cat}"]]) == (
                    pytest.approx(blames[name].categories[cat]))
            # Blame delay-wait only counts critical-path stages, so it
            # is bounded by the per-stage total.
            total_delay = sum(
                max(rec.submit_time - rec.ready_time, 0.0)
                for rec in records.values())
            assert (blames[name].categories["delay_wait"]
                    <= total_delay + 1e-9)

    def test_renderers_and_openmetrics_lines(self, als_runs):
        _, _, blames = als_runs
        md = render_blame_markdown(blames)
        assert "delaystage" in md and "contention" in md
        diff_md = render_diff_markdown(
            blame_diff(blames["fuxi"], blames["delaystage"]))
        assert "fuxi" in diff_md and "delaystage" in diff_md
        lines = blames_to_openmetrics_lines(blames)
        text = "\n".join(lines)
        assert "repro_blame_seconds" in text
        assert 'category="contention"' in text


class TestPayloadValidation:
    def _payload(self, als_runs=None):
        job, cluster = _als()
        runs = compare_schedulers(job, cluster, [
            FuxiScheduler(track_metrics=False),
            DelayStageScheduler(profiled=True, track_metrics=False),
        ])
        blames = {
            name: run_blame(run.result, job, label=name,
                            delays=run.delay_table)
            for name, run in runs.items()
        }
        diff = blame_diff(blames["fuxi"], blames["delaystage"])
        return {
            "blames": {k: v.to_dict() for k, v in blames.items()},
            "diff": diff.to_dict(),
        }

    def test_valid_payload_passes(self):
        payload = self._payload()
        # Round-trip through JSON like the CLI does.
        payload = json.loads(json.dumps(payload))
        assert validate_blame_payload(payload) == []

    def test_broken_payloads_rejected(self):
        payload = json.loads(json.dumps(self._payload()))

        missing = json.loads(json.dumps(payload))
        del missing["blames"]["fuxi"]["categories"]["compute"]
        assert validate_blame_payload(missing)

        unknown = json.loads(json.dumps(payload))
        unknown["blames"]["fuxi"]["categories"]["gremlins"] = 1.0
        assert validate_blame_payload(unknown)

        broken = json.loads(json.dumps(payload))
        broken["blames"]["fuxi"]["identity_exact"] = False
        assert validate_blame_payload(broken)

        nodiff = json.loads(json.dumps(payload))
        del nodiff["diff"]["saved"]
        assert validate_blame_payload(nodiff)

        assert validate_blame_payload({}) != []

    def test_run_blame_rejects_unknown_jobs(self, small_cluster,
                                            diamond_job, chain_job):
        run = run_with_scheduler(
            diamond_job, small_cluster, StockSparkScheduler(track_metrics=False))
        with pytest.raises(ValueError, match="without DAG structure"):
            run_blame(run.result, chain_job)
        with pytest.raises(ValueError, match="non-empty"):
            run_blame(run.result, [])


class TestOverheadGuard:
    REPEATS = 5

    def test_blame_cost_under_five_percent_of_simulation(self):
        # "Enabling critical-path analysis" adds exactly two pieces of
        # work: the post-run demand accounting inside Simulation.run()
        # and the run_blame() walk.  Best-of-N both against the
        # simulation itself; together they must stay under 5% (plus a
        # small absolute slack for timer noise on loaded CI machines).
        import time as _time

        job, cluster = _als()
        sched = FuxiScheduler(track_metrics=False)
        prepared = sched.prepare(job, cluster)

        def _run_once():
            sim = Simulation(cluster, prepared.config)
            sim.add_job(job, prepared.policy)
            t0 = _time.perf_counter()
            result = sim.run()
            return _time.perf_counter() - t0, sim, result

        _run_once()  # warm-up
        best_sim = float("inf")
        best_analysis = float("inf")
        for _ in range(self.REPEATS):
            t_sim, sim, result = _run_once()
            t0 = _time.perf_counter()
            sim._demand_accounting(result)
            run_blame(result, job)
            t_analysis = _time.perf_counter() - t0
            best_sim = min(best_sim, t_sim)
            best_analysis = min(best_analysis, t_analysis)
        assert best_analysis <= best_sim * 0.05 + 0.025, (
            f"blame overhead too high: analysis={best_analysis:.4f}s "
            f"sim={best_sim:.4f}s ({best_analysis / best_sim:.1%})"
        )


class TestWhyCli:
    def test_why_json_diff_payload_validates(self, capsys):
        from repro.cli import main

        assert main(["why", "--workload", "ALS", "--oracle",
                     "--diff", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "why"
        assert validate_blame_payload(payload) == []
        assert set(payload["blames"]) == {"fuxi", "spark", "delaystage"}
        assert payload["diff"]["baseline"] == "fuxi"
        assert payload["diff"]["candidate"] == "delaystage"
        assert payload["diff"]["recovery_seconds"] > 0.0
        assert "manifest" in payload

    def test_why_markdown_and_human_output(self, capsys):
        from repro.cli import main

        assert main(["why", "--workload", "ALS", "--oracle", "--md"]) == 0
        md = capsys.readouterr().out
        assert "critical chain" in md.lower()
        assert "contention" in md
        assert main(["why", "--workload", "ALS", "--oracle",
                     "--job", "als"]) == 0
        human = capsys.readouterr().out
        assert "als" in human

    def test_why_unknown_job_exits_2(self, capsys):
        from repro.cli import main

        assert main(["why", "--workload", "ALS", "--oracle",
                     "--job", "nope"]) == 2
