"""Failure injection: dynamic node degradation during a run."""

import pytest

from repro.dag import JobBuilder
from repro.simulator import Simulation, SimulationConfig


def job():
    return (
        JobBuilder("d")
        .stage("A", input_mb=1024, output_mb=512, process_rate_mb=10)
        .stage("B", input_mb=512, output_mb=64, process_rate_mb=10, parents=["A"])
        .build()
    )


def run(cluster, injections=(), config=None):
    sim = Simulation(cluster, config or SimulationConfig(track_metrics=False))
    for inj in injections:
        sim.inject_degradation(**inj)
    sim.add_job(job())
    return sim.run()


def test_degradation_slows_job(small_cluster):
    healthy = run(small_cluster).job_completion_time("d")
    degraded = run(
        small_cluster,
        [dict(node_id="w0", time=5.0, nic_factor=0.2, executor_factor=0.5)],
    ).job_completion_time("d")
    assert degraded > healthy


def test_degradation_after_job_end_is_harmless(small_cluster):
    healthy = run(small_cluster).job_completion_time("d")
    late = run(
        small_cluster,
        [dict(node_id="w0", time=healthy + 100, nic_factor=0.01)],
    ).job_completion_time("d")
    assert late == pytest.approx(healthy, rel=1e-9)


def test_degradations_compound(small_cluster):
    once = run(
        small_cluster, [dict(node_id="w0", time=1.0, nic_factor=0.5)]
    ).job_completion_time("d")
    twice = run(
        small_cluster,
        [
            dict(node_id="w0", time=1.0, nic_factor=0.5),
            dict(node_id="w0", time=2.0, nic_factor=0.5),
        ],
    ).job_completion_time("d")
    assert twice > once


def test_disk_degradation(small_cluster):
    healthy = run(small_cluster).job_completion_time("d")
    slow_disk = run(
        small_cluster, [dict(node_id="w1", time=0.0, disk_factor=0.05)]
    ).job_completion_time("d")
    assert slow_disk > healthy


def test_validation(small_cluster):
    sim = Simulation(small_cluster, SimulationConfig(track_metrics=False))
    with pytest.raises(KeyError):
        sim.inject_degradation("nope", 1.0)
    with pytest.raises(ValueError, match="> 0"):
        sim.inject_degradation("w0", 1.0, nic_factor=0.0)
    with pytest.raises(ValueError, match=">= 0"):
        sim.inject_degradation("w0", -1.0)


def test_injection_after_run_rejected(small_cluster):
    sim = Simulation(small_cluster, SimulationConfig(track_metrics=False))
    sim.add_job(job())
    sim.run()
    with pytest.raises(RuntimeError):
        sim.inject_degradation("w0", 1.0, nic_factor=0.5)


def test_executor_degradation_requires_fluid_mode(small_cluster):
    sim = Simulation(
        small_cluster, SimulationConfig(track_metrics=False, task_granular=True)
    )
    with pytest.raises(ValueError, match="fluid"):
        sim.inject_degradation("w0", 1.0, executor_factor=0.5)
    # NIC degradation is fine in task mode.
    sim.inject_degradation("w0", 1.0, nic_factor=0.5)


def test_delay_schedule_robust_to_straggler(small_cluster):
    """A schedule planned on the healthy cluster still helps when one
    node degrades mid-run."""
    from repro.core import delay_stage_schedule
    from repro.simulator import FixedDelayPolicy

    contended = (
        JobBuilder("r")
        .stage("S1", input_mb=1024, output_mb=512, process_rate_mb=8)
        .stage("S2", input_mb=1024, output_mb=2048, process_rate_mb=8)
        .stage("S3", input_mb=2048, output_mb=512, process_rate_mb=16, parents=["S2"])
        .stage("S4", input_mb=1024, output_mb=128, process_rate_mb=16, parents=["S1", "S3"])
        .build()
    )
    schedule = delay_stage_schedule(contended, small_cluster)

    def run_with(policy):
        sim = Simulation(small_cluster, SimulationConfig(track_metrics=False))
        sim.inject_degradation("w0", 20.0, nic_factor=0.4)
        sim.add_job(contended, policy)
        return sim.run().job_completion_time("r")

    stock = run_with(None)
    delayed = run_with(FixedDelayPolicy(schedule.delays))
    assert delayed < stock * 1.02  # at worst break-even under failure
