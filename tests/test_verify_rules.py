"""Per-rule tests for the static validators: one passing and one
violating fixture for every rule.

Valid ``Job``/``Stage``/``NodeSpec`` objects cannot be *constructed* in
a broken state (their constructors validate), so the violating fixtures
corrupt them after construction — exactly the failure mode the
validators exist to catch (in-place mutation, deserialization from
external traces).
"""

from __future__ import annotations

import math

import pytest

from repro.cluster.spec import ClusterSpec, NodeSpec, uniform_cluster
from repro.core.delaystage import delay_stage_schedule
from repro.core.schedule import DelaySchedule
from repro.dag import JobBuilder
from repro.dag.paths import ExecutionPath, execution_paths
from repro.verify import (
    Severity,
    all_rules,
    rule,
    rules_for,
    validate_cluster,
    validate_delay_table,
    validate_job,
    validate_schedule,
)


def by_rule(report, rule_id):
    return [f for f in report if f.rule == rule_id]


def make_schedule(job, delays, **overrides):
    kwargs = dict(
        job_id=job.job_id,
        delays=delays,
        predicted_makespan=10.0,
        baseline_makespan=10.0,
        paths=tuple(execution_paths(job)),
        standalone_times={},
    )
    kwargs.update(overrides)
    return DelaySchedule(**kwargs)


# ------------------------------------------------------------------ #
# registry
# ------------------------------------------------------------------ #

class TestRegistry:
    def test_all_targets_populated(self):
        assert {r.rule_id for r in rules_for("job")} == {
            "J001", "J002", "J003", "J004", "J005"}
        assert {r.rule_id for r in rules_for("schedule")} == {
            "S001", "S002", "S003", "S004", "S005"}
        assert {r.rule_id for r in rules_for("cluster")} == {
            "C001", "C002", "C003"}
        assert len(all_rules()) == 13

    def test_duplicate_rule_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate rule id"):
            rule("J001", "dup", target="job")(lambda job: iter(()))

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown rule target"):
            rule("X001", "bad", target="nonsense")(lambda x: iter(()))

    def test_crashing_rule_contained_as_error(self, diamond_job):
        # Forge a cycle: every job rule that walks the DAG must either
        # report it or have its crash converted into an ERROR finding.
        diamond_job._children["S4"].add("S1")
        diamond_job._parents["S1"].add("S4")
        report = validate_job(diamond_job)
        assert not report.ok
        assert by_rule(report, "J001")


# ------------------------------------------------------------------ #
# job rules
# ------------------------------------------------------------------ #

class TestJobRules:
    def test_valid_jobs_pass(self, diamond_job, fork_join_job, chain_job):
        for job in (diamond_job, fork_join_job, chain_job):
            report = validate_job(job)
            assert report.ok, report.render()
            assert len(report) == 0

    def test_j001_cycle(self, diamond_job):
        diamond_job._children["S4"].add("S1")
        diamond_job._parents["S1"].add("S4")
        findings = by_rule(validate_job(diamond_job), "J001")
        assert findings and findings[0].severity == Severity.ERROR
        assert "cycle" in findings[0].message

    def test_j002_no_roots(self):
        job = (JobBuilder("tworing")
               .stage("S1", input_mb=10, output_mb=10, process_rate_mb=10)
               .stage("S2", input_mb=10, output_mb=10, process_rate_mb=10,
                      parents=["S1"])
               .build())
        job._parents["S1"].add("S2")
        job._children["S2"].add("S1")
        findings = by_rule(validate_job(job), "J002")
        assert any("no root stages" in f.message for f in findings)
        assert all(f.severity == Severity.ERROR for f in findings)

    def test_j002_unreachable(self):
        job = (JobBuilder("part")
               .stage("A", input_mb=10, output_mb=10, process_rate_mb=10)
               .stage("B", input_mb=10, output_mb=10, process_rate_mb=10)
               .stage("C", input_mb=10, output_mb=10, process_rate_mb=10,
                      parents=["B"])
               .build())
        # Close B<->C into a cycle detached from root A.
        job._parents["B"].add("C")
        job._children["C"].add("B")
        findings = by_rule(validate_job(job), "J002")
        unreachable = {f.subject for f in findings
                       if "unreachable" in f.message}
        assert unreachable == {"job:part/stage:B", "job:part/stage:C"}

    def test_j002_isolated_stage_warns(self):
        job = (JobBuilder("iso")
               .stage("S1", input_mb=10, output_mb=10, process_rate_mb=10)
               .stage("S2", input_mb=10, output_mb=5, process_rate_mb=10,
                      parents=["S1"])
               .stage("S3", input_mb=10, output_mb=5, process_rate_mb=10)
               .build())
        findings = by_rule(validate_job(job), "J002")
        assert [f.severity for f in findings] == [Severity.WARNING]
        assert "isolated" in findings[0].message

    @pytest.mark.parametrize("field,value", [
        ("input_bytes", -5.0),
        ("input_bytes", math.nan),
        ("output_bytes", math.inf),
        ("process_rate", 0.0),
        ("task_cv", -0.1),
        ("num_tasks", 0),
    ])
    def test_j003_bad_stage_parameters(self, diamond_job, field, value):
        object.__setattr__(diamond_job._stages["S2"], field, value)
        findings = by_rule(validate_job(diamond_job), "J003")
        assert findings and all(f.severity == Severity.ERROR for f in findings)
        assert any(f.details.get("field") == field for f in findings)

    def test_j004_excess_shuffle_warns(self):
        job = (JobBuilder("blowup")
               .stage("P", input_mb=100, output_mb=10, process_rate_mb=10)
               .stage("Q", input_mb=100, output_mb=10, process_rate_mb=10,
                      parents=["P"])
               .build())
        findings = by_rule(validate_job(job), "J004")
        assert [f.severity for f in findings] == [Severity.WARNING]
        assert findings[0].details["ratio"] == pytest.approx(10.0)

    def test_j004_modest_excess_is_info(self):
        job = (JobBuilder("lda_like")
               .stage("P", input_mb=100, output_mb=10, process_rate_mb=10)
               .stage("Q", input_mb=13, output_mb=5, process_rate_mb=10,
                      parents=["P"])
               .build())
        findings = by_rule(validate_job(job), "J004")
        assert [f.severity for f in findings] == [Severity.INFO]
        assert findings[0].details["ratio"] == pytest.approx(1.3)

    def test_j004_parents_produce_nothing(self):
        job = (JobBuilder("dry")
               .stage("P", input_mb=100, output_mb=0, process_rate_mb=10)
               .stage("Q", input_mb=50, output_mb=5, process_rate_mb=10,
                      parents=["P"])
               .build())
        findings = by_rule(validate_job(job), "J004")
        assert [f.severity for f in findings] == [Severity.WARNING]
        assert "produce no output" in findings[0].message

    def test_j005_invalid_path_time(self, diamond_job):
        # NaN rate poisons the standalone time of every path through S2.
        object.__setattr__(diamond_job._stages["S2"], "process_rate", math.nan)
        findings = by_rule(validate_job(diamond_job), "J005")
        assert findings and all(f.severity == Severity.ERROR for f in findings)


# ------------------------------------------------------------------ #
# schedule rules
# ------------------------------------------------------------------ #

class TestScheduleRules:
    def test_algorithm1_output_passes(self, diamond_job, small_cluster):
        schedule = delay_stage_schedule(diamond_job, small_cluster)
        report = validate_schedule(schedule, diamond_job)
        assert report.ok, report.render()
        assert len(report) == 0

    def test_delay_table_roundtrip_passes(self, diamond_job, small_cluster):
        schedule = delay_stage_schedule(diamond_job, small_cluster)
        report = validate_delay_table(diamond_job, schedule.delays)
        assert report.ok, report.render()

    @pytest.mark.parametrize("bad", [-1.0, math.nan, math.inf])
    def test_s001_bad_delay(self, diamond_job, bad):
        schedule = make_schedule(diamond_job, {"S2": bad, "S3": 0.0})
        findings = by_rule(validate_schedule(schedule, diamond_job), "S001")
        assert [f.severity for f in findings] == [Severity.ERROR]

    def test_s002_unknown_stage(self, diamond_job):
        schedule = make_schedule(diamond_job, {"S2": 0.0, "S3": 0.0, "ZZ": 1.0})
        findings = by_rule(validate_schedule(schedule, diamond_job), "S002")
        assert [f.severity for f in findings] == [Severity.ERROR]
        assert findings[0].details["stage"] == "ZZ"

    def test_s002_sequential_stage_delayed(self, chain_job):
        # A pure chain has an empty parallel-stage set K.
        schedule = make_schedule(chain_job, {"S2": 5.0})
        findings = by_rule(validate_schedule(schedule, chain_job), "S002")
        assert [f.severity for f in findings] == [Severity.ERROR]
        assert "sequential stage" in findings[0].message

    def test_s002_sequential_stage_at_zero_is_info(self, chain_job):
        schedule = make_schedule(chain_job, {"S2": 0.0})
        findings = by_rule(validate_schedule(schedule, chain_job), "S002")
        assert [f.severity for f in findings] == [Severity.INFO]

    def test_s002_missing_member_warns(self, diamond_job):
        schedule = make_schedule(diamond_job, {"S2": 0.0})  # S3 missing
        findings = by_rule(validate_schedule(schedule, diamond_job), "S002")
        assert [f.severity for f in findings] == [Severity.WARNING]
        assert findings[0].subject.endswith("stage:S3")

    def test_s003_delay_beyond_upper_bound(self, diamond_job):
        schedule = make_schedule(
            diamond_job, {"S2": 1e6, "S3": 0.0},
            predicted_makespan=100.0, baseline_makespan=100.0,
        )
        findings = by_rule(validate_schedule(schedule, diamond_job), "S003")
        assert [f.severity for f in findings] == [Severity.WARNING]

    def test_s004_foreign_path(self, diamond_job, fork_join_job):
        schedule = make_schedule(
            diamond_job, {"S2": 0.0, "S3": 0.0},
            paths=tuple(execution_paths(fork_join_job)),
        )
        findings = by_rule(validate_schedule(schedule, diamond_job), "S004")
        assert findings and all(f.severity == Severity.ERROR for f in findings)
        assert any("absent from job" in f.message for f in findings)

    def test_s004_inverted_path(self, diamond_job):
        bad_path = ExecutionPath(stages=("S4", "S2"), execution_time=1.0)
        schedule = make_schedule(
            diamond_job, {"S2": 0.0, "S3": 0.0}, paths=(bad_path,),
        )
        findings = by_rule(validate_schedule(schedule, diamond_job), "S004")
        assert [f.severity for f in findings] == [Severity.ERROR]
        assert "does not depend on" in findings[0].message

    @pytest.mark.parametrize("overrides", [
        {"predicted_makespan": -1.0},
        {"baseline_makespan": math.nan},
        {"compute_seconds": math.inf},
        {"evaluations": -1},
        {"standalone_times": {"S2": math.nan}},
    ])
    def test_s005_bad_metrics(self, diamond_job, overrides):
        schedule = make_schedule(diamond_job, {"S2": 0.0, "S3": 0.0}, **overrides)
        findings = by_rule(validate_schedule(schedule, diamond_job), "S005")
        assert [f.severity for f in findings] == [Severity.ERROR]

    def test_s005_regression_vs_baseline_warns(self, diamond_job):
        schedule = make_schedule(
            diamond_job, {"S2": 0.0, "S3": 0.0},
            predicted_makespan=200.0, baseline_makespan=100.0,
        )
        findings = by_rule(validate_schedule(schedule, diamond_job), "S005")
        assert [f.severity for f in findings] == [Severity.WARNING]
        assert "fallback" in findings[0].message


# ------------------------------------------------------------------ #
# cluster rules
# ------------------------------------------------------------------ #

class TestClusterRules:
    def test_valid_clusters_pass(self, small_cluster, tiny_cluster):
        for cluster in (small_cluster, tiny_cluster):
            report = validate_cluster(cluster)
            assert report.ok, report.render()
            assert len(report) == 0

    @pytest.mark.parametrize("field,value", [
        ("nic_bandwidth", 0.0),
        ("nic_bandwidth", math.nan),
        ("disk_bandwidth", -1.0),
        ("disk_bandwidth", math.inf),
    ])
    def test_c001_bad_capacity(self, small_cluster, field, value):
        object.__setattr__(small_cluster.nodes[0], field, value)
        findings = by_rule(validate_cluster(small_cluster), "C001")
        assert [f.severity for f in findings] == [Severity.ERROR]

    def test_c001_worker_without_executors(self, small_cluster):
        object.__setattr__(small_cluster.nodes[0], "executors", 0)
        findings = by_rule(validate_cluster(small_cluster), "C001")
        assert any("no executors" in f.message for f in findings)

    def test_c001_storage_with_executors_warns(self, small_cluster):
        storage = [n for n in small_cluster.nodes if n.is_storage][0]
        object.__setattr__(storage, "executors", 4)
        findings = by_rule(validate_cluster(small_cluster), "C001")
        assert [f.severity for f in findings] == [Severity.WARNING]

    def test_c002_no_workers(self):
        # The constructor refuses worker-free clusters, so demote the
        # only worker to storage after the fact.
        cluster = uniform_cluster(1)
        object.__setattr__(cluster.nodes[0], "is_storage", True)
        findings = by_rule(validate_cluster(cluster), "C002")
        assert [f.severity for f in findings] == [Severity.ERROR]
        assert "no worker nodes" in findings[0].message

    def test_c002_zero_total_executors(self):
        cluster = uniform_cluster(1)
        object.__setattr__(cluster.nodes[0], "executors", 0)
        findings = by_rule(validate_cluster(cluster), "C002")
        assert any("zero total executors" in f.message for f in findings)

    def test_c003_nic_spread_warns(self):
        cluster = ClusterSpec([
            NodeSpec("w0", executors=2, nic_bandwidth=1e5, disk_bandwidth=1e5),
            NodeSpec("w1", executors=2, nic_bandwidth=1e9, disk_bandwidth=1e8),
        ])
        findings = by_rule(validate_cluster(cluster), "C003")
        assert any("spreads" in f.message for f in findings)
        assert all(f.severity == Severity.WARNING for f in findings)

    def test_c003_nic_disk_imbalance_warns(self):
        cluster = ClusterSpec([
            NodeSpec("w0", executors=2, nic_bandwidth=2e12, disk_bandwidth=1e9),
        ])
        findings = by_rule(validate_cluster(cluster), "C003")
        assert any("faster than the local disk" in f.message for f in findings)


# ------------------------------------------------------------------ #
# report plumbing
# ------------------------------------------------------------------ #

class TestReportOutput:
    def test_json_round_trip(self, diamond_job):
        import json

        object.__setattr__(diamond_job._stages["S2"], "input_bytes", -1.0)
        report = validate_job(diamond_job)
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        assert payload["counts"]["ERROR"] >= 1
        assert payload["findings"][0]["rule"].startswith("J")

    def test_raise_if_errors(self, diamond_job):
        from repro.verify import ValidationError

        validate_job(diamond_job).raise_if_errors()  # clean job: no raise
        object.__setattr__(diamond_job._stages["S2"], "process_rate", -1.0)
        with pytest.raises(ValidationError, match="ERROR finding"):
            validate_job(diamond_job).raise_if_errors()
