"""metrics.properties persistence of the delay table (Sec. 4.2)."""

import pytest

from repro.core import read_metrics_properties, write_metrics_properties


def test_roundtrip(tmp_path):
    path = tmp_path / "metrics.properties"
    delays = {"S1": 12.5, "S2": 0.0, "S3": 107.0}
    write_metrics_properties(path, "job1", delays)
    loaded = read_metrics_properties(path)
    assert loaded == {"job1": pytest.approx(delays)}


def test_append_multiple_jobs(tmp_path):
    path = tmp_path / "metrics.properties"
    write_metrics_properties(path, "a", {"S1": 1.0})
    write_metrics_properties(path, "b", {"S1": 2.0}, append=True)
    loaded = read_metrics_properties(path)
    assert set(loaded) == {"a", "b"}
    assert loaded["b"]["S1"] == 2.0


def test_overwrite_without_append(tmp_path):
    path = tmp_path / "metrics.properties"
    write_metrics_properties(path, "a", {"S1": 1.0})
    write_metrics_properties(path, "b", {"S1": 2.0})
    assert set(read_metrics_properties(path)) == {"b"}


def test_job_filter(tmp_path):
    path = tmp_path / "metrics.properties"
    write_metrics_properties(path, "a", {"S1": 1.0})
    write_metrics_properties(path, "b", {"S2": 2.0}, append=True)
    assert read_metrics_properties(path, "a") == {"a": {"S1": 1.0}}
    assert read_metrics_properties(path, "zzz") == {"zzz": {}}


def test_ignores_unrelated_properties(tmp_path):
    path = tmp_path / "metrics.properties"
    path.write_text(
        "# spark metrics config\n"
        "*.sink.csv.period=1\n"
        "\n"
        "! another comment style\n"
        "spark.delaystage.j.S1=4.25\n"
    )
    assert read_metrics_properties(path) == {"j": {"S1": 4.25}}


def test_malformed_delay_rejected(tmp_path):
    path = tmp_path / "metrics.properties"
    path.write_text("spark.delaystage.j.S1=abc\n")
    with pytest.raises(ValueError, match="non-numeric"):
        read_metrics_properties(path)


def test_negative_delay_rejected(tmp_path):
    path = tmp_path / "metrics.properties"
    path.write_text("spark.delaystage.j.S1=-3\n")
    with pytest.raises(ValueError, match="negative"):
        read_metrics_properties(path)


def test_missing_stage_id_rejected(tmp_path):
    path = tmp_path / "metrics.properties"
    path.write_text("spark.delaystage.justjob=1\n")
    with pytest.raises(ValueError, match="malformed"):
        read_metrics_properties(path)
