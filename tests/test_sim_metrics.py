"""Metrics collection: exact integration, sampling, occupancy."""

import numpy as np
import pytest

from repro.dag import JobBuilder
from repro.simulator import SimulationConfig, simulate_job
from repro.util.units import MB


def job():
    return (
        JobBuilder("m")
        .stage("A", input_mb=256, output_mb=128, process_rate_mb=10)
        .stage("B", input_mb=256, output_mb=64, process_rate_mb=10, parents=["A"])
        .build()
    )


def test_metrics_disabled(small_cluster):
    res = simulate_job(job(), small_cluster, config=SimulationConfig(track_metrics=False))
    assert res.metrics is None


def test_segments_cover_run(small_cluster):
    res = simulate_job(job(), small_cluster)
    s = res.metrics.node_series("w0")
    assert s.t0[0] == pytest.approx(0.0)
    assert s.t1[-1] == pytest.approx(res.makespan)
    assert np.all(s.t1 >= s.t0)
    # Contiguous.
    assert np.allclose(s.t0[1:], s.t1[:-1])


def test_cpu_busy_bounded_by_executors(small_cluster):
    res = simulate_job(job(), small_cluster)
    for node in small_cluster.worker_ids:
        s = res.metrics.node_series(node)
        assert np.all(s.cpu_busy <= s.executors + 1e-9)
        assert np.all(s.cpu_busy >= 0)


def test_network_bounded_by_nic(small_cluster):
    res = simulate_job(job(), small_cluster)
    for node in small_cluster.node_ids:
        s = res.metrics.node_series(node)
        assert np.all(s.net_in <= s.nic_bandwidth + 1e-6)
        assert np.all(s.net_out <= s.nic_bandwidth + 1e-6)


def test_average_matches_manual_integration(small_cluster):
    res = simulate_job(job(), small_cluster)
    s = res.metrics.node_series("w0")
    manual = float((s.net_in * (s.t1 - s.t0)).sum()) / res.makespan
    assert s.average("net_in", 0.0, res.makespan) == pytest.approx(manual, rel=1e-9)


def test_average_window_clipping(small_cluster):
    res = simulate_job(job(), small_cluster)
    s = res.metrics.node_series("w0")
    full = s.average("cpu_utilization")
    half = s.average("cpu_utilization", 0.0, res.makespan / 2)
    assert 0.0 <= half <= 1.0
    assert 0.0 <= full <= 1.0


def test_std_zero_for_constant(small_cluster):
    """A metric that is identically zero has zero std."""
    res = simulate_job(job(), small_cluster)
    s = res.metrics.node_series("hdfs0")  # storage node never computes
    assert s.std("cpu_busy") == pytest.approx(0.0, abs=1e-12)


def test_sample_matches_segments(small_cluster):
    res = simulate_job(job(), small_cluster)
    s = res.metrics.node_series("w0")
    mid = (s.t0[0] + s.t1[0]) / 2
    assert s.sample([mid], "net_in")[0] == pytest.approx(s.net_in[0])
    # Past the end -> 0.
    assert s.sample([res.makespan + 100], "net_in")[0] == 0.0


def test_unknown_metric_rejected(small_cluster):
    res = simulate_job(job(), small_cluster)
    with pytest.raises(ValueError, match="unknown metric"):
        res.metrics.node_series("w0").average("bogus")


def test_cluster_average(small_cluster):
    res = simulate_job(job(), small_cluster)
    avg = res.metrics.cluster_average("cpu_utilization")
    assert 0.0 < avg <= 1.0


def test_occupancy_requires_flag(small_cluster):
    res = simulate_job(job(), small_cluster)
    with pytest.raises(RuntimeError):
        res.metrics.stage_occupancy_series(("m", "A"))


def test_occupancy_series(small_cluster):
    res = simulate_job(
        job(), small_cluster, config=SimulationConfig(track_occupancy=True)
    )
    t0, t1, occ = res.metrics.stage_occupancy_series(("m", "A"))
    assert occ.max() > 0
    # Occupancy never exceeds the cluster's executors.
    assert occ.max() <= small_cluster.total_executors + 1e-9
    # Stage A occupies nothing after it finished.
    fin = res.stage("m", "A").finish_time
    after = occ[t0 >= fin]
    assert np.all(after == 0)


def _series(nic=1e6, n_segments=0):
    """Hand-built NodeSeries for edge-case probing."""
    from repro.simulator import NodeSeries

    t = np.arange(n_segments, dtype=float)
    return NodeSeries(
        node_id="x", executors=2, nic_bandwidth=nic, disk_bandwidth=1e6,
        t0=t, t1=t + 1.0, net_in=np.full(n_segments, 10.0),
        net_out=np.zeros(n_segments), cpu_busy=np.ones(n_segments),
        disk=np.zeros(n_segments),
    )


def test_empty_series_statistics_are_zero():
    """No observed segments -> 0.0, never 0/0 -> NaN."""
    s = _series(n_segments=0)
    for metric in ("net_in", "cpu_utilization", "net_utilization"):
        assert s.average(metric) == 0.0
        assert s.std(metric) == 0.0
    assert s.average("net_in", 5.0, 10.0) == 0.0


def test_empty_clip_window_is_zero():
    s = _series(n_segments=3)
    assert s.average("net_in", 2.0, 2.0) == 0.0
    assert s.std("net_in", 2.0, 2.0) == 0.0
    # Window entirely past the data: span clips to <= 0.
    assert s.average("net_in", 99.0, 100.0) == 0.0
    assert s.std("net_in", 99.0, 100.0) == 0.0


def test_zero_nic_bandwidth_utilization_is_zero():
    s = _series(nic=0.0, n_segments=2)
    assert s.average("net_utilization") == 0.0
    assert s.std("net_utilization") == 0.0
    assert not np.isnan(s.average("net_utilization"))


def test_cluster_average_with_no_observations(small_cluster):
    from repro.simulator import MetricsCollector

    collector = MetricsCollector(small_cluster)
    assert collector.cluster_average("cpu_utilization") == 0.0


def test_zero_duration_segments_are_harmless():
    from repro.simulator import NodeSeries

    s = NodeSeries(
        node_id="x", executors=2, nic_bandwidth=1e6, disk_bandwidth=1e6,
        t0=np.array([0.0, 1.0]), t1=np.array([0.0, 1.0]),
        net_in=np.array([10.0, 10.0]), net_out=np.zeros(2),
        cpu_busy=np.ones(2), disk=np.zeros(2),
    )
    assert s.average("net_in") == 0.0
    assert s.std("net_in") == 0.0


def test_sample_empty_series_is_zero():
    s = _series(n_segments=0)
    out = s.sample([0.0, 1.0, 5.0], "net_in")
    assert out.shape == (3,)
    assert np.all(out == 0.0)


def test_sample_outside_window_is_zero():
    s = _series(n_segments=3)  # segments cover [0, 3)
    out = s.sample([-1.0, -0.001, 3.0, 42.0], "net_in")
    assert np.all(out == 0.0)
    # Boundary semantics: segments are right-open, so t1 of the last
    # segment samples to 0 while any interior point samples its segment.
    assert s.sample([2.999], "net_in")[0] == pytest.approx(10.0)


def test_sample_zero_width_segments_are_skipped():
    from repro.simulator import NodeSeries

    # Middle segment [1, 1) is degenerate; samples at t=1 must fall
    # through to the covering segment's value, not the degenerate one.
    s = NodeSeries(
        node_id="x", executors=2, nic_bandwidth=1e6, disk_bandwidth=1e6,
        t0=np.array([0.0, 1.0, 1.0]), t1=np.array([1.0, 1.0, 2.0]),
        net_in=np.array([10.0, 99.0, 20.0]), net_out=np.zeros(3),
        cpu_busy=np.ones(3), disk=np.zeros(3),
    )
    assert s.sample([1.0], "net_in")[0] == pytest.approx(20.0)
    assert s.sample([0.5], "net_in")[0] == pytest.approx(10.0)
    assert s.sample([2.0], "net_in")[0] == 0.0


def test_observe_ignores_zero_width_interval(small_cluster):
    from repro.simulator import MetricsCollector

    collector = MetricsCollector(small_cluster)
    collector.observe(1.0, 1.0, [])
    collector.observe(2.0, 1.0, [])  # inverted: also no integral mass
    assert len(collector.node_series("w0").t0) == 0


def test_sample_nodes_bit_identical_to_per_node_loop(small_cluster):
    """The one-pass fan-out equals NodeSeries.sample exactly."""
    res = simulate_job(job(), small_cluster)
    m = res.metrics
    t = np.linspace(-1.0, res.makespan + 1.0, 257)
    metrics = ["net_in", "net_out", "cpu_busy", "disk",
               "cpu_utilization", "net_utilization"]
    sampled = m.sample_nodes(t, metrics)
    for name in metrics:
        assert sampled[name].shape == (len(small_cluster.node_ids), len(t))
        for r, node in enumerate(small_cluster.node_ids):
            expected = m.node_series(node).sample(t, name)
            assert np.array_equal(sampled[name][r], expected), (name, node)


def test_sample_nodes_subset_and_unknown_metric(small_cluster):
    res = simulate_job(job(), small_cluster)
    m = res.metrics
    sampled = m.sample_nodes([0.0, 1.0], ["cpu_busy"], nodes=["w1"])
    assert sampled["cpu_busy"].shape == (1, 2)
    with pytest.raises(ValueError, match="unknown metric"):
        m.sample_nodes([0.0], ["bogus"])


def test_sample_nodes_empty_collector(small_cluster):
    from repro.simulator import MetricsCollector

    collector = MetricsCollector(small_cluster)
    sampled = collector.sample_nodes([0.0, 5.0], ["net_utilization"])
    assert np.all(sampled["net_utilization"] == 0.0)


def test_occupancy_series_unknown_stage_is_zero(small_cluster):
    """A stage key that never ran yields the full grid at zero."""
    res = simulate_job(
        job(), small_cluster, config=SimulationConfig(track_occupancy=True)
    )
    t0, t1, occ = res.metrics.stage_occupancy_series(("m", "nope"))
    assert len(t0) == len(t1) == len(occ)
    assert len(occ) > 0
    assert np.all(occ == 0)


def test_occupancy_node_filter_partitions_total(small_cluster):
    """Per-node occupancy sums back to the cluster-wide series."""
    res = simulate_job(
        job(), small_cluster, config=SimulationConfig(track_occupancy=True)
    )
    _, _, total = res.metrics.stage_occupancy_series(("m", "A"))
    parts = np.zeros_like(total)
    for node in small_cluster.node_ids:
        _, _, occ = res.metrics.stage_occupancy_series(("m", "A"), node_id=node)
        parts = parts + occ
    assert np.allclose(parts, total)


def test_readers_occupy_idle_executors(small_cluster):
    """While a stage shuffle-reads alone, it holds the idle slots
    (Fig. 13's behaviour)."""
    res = simulate_job(
        job(), small_cluster, config=SimulationConfig(track_occupancy=True)
    )
    rec = res.stage("m", "A")
    t0, t1, occ = res.metrics.stage_occupancy_series(("m", "A"), node_id="w0")
    during_read = occ[(t0 >= rec.submit_time) & (t1 <= rec.read_done_time)]
    executors = small_cluster.node("w0").executors
    assert np.all(during_read == pytest.approx(executors))
