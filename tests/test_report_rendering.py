"""Text rendering: gantts, event log records, cosmetic reprs."""

import pytest

from repro.analysis import GanttRow, render_gantt, stage_gantt
from repro.simulator import EventKind, SimEvent, simulate_job


def rows():
    return [
        GanttRow("S1", ready=0.0, submit=0.0, read_done=10.0, finish=30.0),
        GanttRow("S2", ready=0.0, submit=15.0, read_done=25.0, finish=50.0),
    ]


def test_render_gantt_contains_blocks_and_times():
    out = render_gantt(rows(), title="demo")
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert "▒" in lines[1] and "█" in lines[1]
    assert "[   0.0 →   30.0]" in lines[1]
    assert "(+15s delay)" in lines[2]


def test_render_gantt_width_scaling():
    narrow = render_gantt(rows(), width=20)
    wide = render_gantt(rows(), width=100)
    assert max(len(l) for l in wide.splitlines()) > max(
        len(l) for l in narrow.splitlines()
    )


def test_render_gantt_empty():
    assert render_gantt([], title="t") == "t"


def test_render_gantt_from_simulation(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    out = render_gantt(stage_gantt(res, "diamond"))
    assert out.count("|") == 4  # one bar per stage


def test_sim_event_str():
    e = SimEvent(12.5, EventKind.STAGE_SUBMITTED, "job", "S1", {"k": 1})
    s = str(e)
    assert "12.5" in s and "stage_submitted" in s and "job/S1" in s
    bare = str(SimEvent(0.0, EventKind.JOB_COMPLETED, "job"))
    assert "{"  not in bare  # empty info not rendered


def test_stage_repr_mentions_sizes():
    from testutil import make_stage

    s = str(make_stage("S9", input_mb=100, output_mb=50, rate_mb=2.5))
    assert "S9" in s and "100MB" in s


def test_job_and_cluster_repr(diamond_job, small_cluster):
    assert "diamond" in repr(diamond_job)
    assert "stages=4" in repr(diamond_job)
    assert "workers=4" in repr(small_cluster)
