"""Dataset scaling sweeps and result comparison helpers."""

import pytest

from repro.analysis import compare_results
from repro.dag import JobBuilder
from repro.simulator import FixedDelayPolicy, simulate_job
from repro.workloads import scaling_sweep


def small_workload(scale: float = 1.0):
    g = 256 * scale
    return (
        JobBuilder("sw")
        .stage("A", input_mb=2 * g, output_mb=g, process_rate_mb=8)
        .stage("B", input_mb=2 * g, output_mb=4 * g, process_rate_mb=8)
        .stage("C", input_mb=4 * g, output_mb=g, process_rate_mb=16, parents=["B"])
        .stage("D", input_mb=2 * g, output_mb=g / 4, process_rate_mb=16, parents=["A", "C"])
        .build()
    )


# ------------------------------ scaling -------------------------------- #


def test_sweep_monotone_jct(small_cluster):
    points = scaling_sweep(small_workload, small_cluster, scales=(0.5, 1.0, 2.0))
    stocks = [p.stock_jct for p in points]
    assert stocks == sorted(stocks)  # bigger data, longer job
    assert [p.scale for p in points] == [0.5, 1.0, 2.0]


def test_sweep_gain_positive(small_cluster):
    points = scaling_sweep(small_workload, small_cluster, scales=(1.0,))
    assert points[0].gain > 0
    assert points[0].delaystage_jct < points[0].stock_jct


def test_sweep_rejects_empty(small_cluster):
    with pytest.raises(ValueError):
        scaling_sweep(small_workload, small_cluster, scales=())


# ------------------------------ compare -------------------------------- #


def test_compare_results_deltas(small_cluster):
    job = small_workload()
    a = simulate_job(job, small_cluster)
    b = simulate_job(job, small_cluster, FixedDelayPolicy({"A": 12.0}))
    cmp = compare_results(a, b)
    assert cmp.job_id == "sw"
    delta_a = next(d for d in cmp.stages if d.stage_id == "A")
    assert delta_a.submit == pytest.approx(12.0, abs=1e-6)
    # The delayed stage ranks among the biggest submission movers
    # (downstream stages can cascade even further).
    assert "A" in {d.stage_id for d in cmp.most_shifted(2)}
    assert cmp.jct_delta == pytest.approx(cmp.jct_b - cmp.jct_a)


def test_compare_identical_runs(small_cluster):
    job = small_workload()
    a = simulate_job(job, small_cluster)
    b = simulate_job(job, small_cluster)
    cmp = compare_results(a, b)
    assert cmp.improvement == pytest.approx(0.0, abs=1e-12)
    assert all(d.finish == pytest.approx(0.0, abs=1e-9) for d in cmp.stages)


def test_compare_requires_common_job(small_cluster):
    a = simulate_job(small_workload(), small_cluster)
    other = (
        JobBuilder("different")
        .stage("X", input_mb=64, output_mb=16, process_rate_mb=10)
        .build()
    )
    b = simulate_job(other, small_cluster)
    with pytest.raises(ValueError):
        compare_results(a, b)
    with pytest.raises(KeyError):
        compare_results(a, b, job_id="sw")
