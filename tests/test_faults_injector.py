"""Fault injection and recovery semantics (repro.faults.injector)."""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.cluster import uniform_cluster
from repro.core.delayer import StageDelayer
from repro.faults import (
    FaultPlan,
    LostShufflePartition,
    NicBrownout,
    NodeCrash,
    Straggler,
)
from repro.simulator.events import EventKind
from repro.simulator.simulation import ImmediatePolicy, Simulation, SimulationConfig

from .testutil import make_job


def _cluster(workers: int = 3):
    return uniform_cluster(workers, executors_per_worker=2, nic_mbps=450,
                           disk_mb_per_sec=150, storage_nodes=0)


def _run(job, plan=None, *, policy=None, workers: int = 3, cluster=None):
    cfg = SimulationConfig(track_metrics=False, fault_plan=plan)
    sim = Simulation(cluster or _cluster(workers), cfg)
    sim.add_job(job, policy or ImmediatePolicy())
    return sim.run()


def _makespan(result) -> float:
    return max(r.finish_time for r in result.job_records.values())


def _chain():
    return make_job("j", [("A", "B")])


# --------------------------------------------------------------------- #
# installation


def test_empty_plan_installs_nothing():
    result = _run(_chain(), FaultPlan())
    assert result.faults is None


def test_incompatible_modes_rejected():
    plan = FaultPlan(events=(NodeCrash(time=1.0, node="w0"),))
    for flag in ("pipelined_shuffle", "task_granular"):
        with pytest.raises(ValueError, match="fault"):
            SimulationConfig(track_metrics=False, fault_plan=plan, **{flag: True})


def test_run_truncated_rejected():
    plan = FaultPlan(events=(NodeCrash(time=1.0, node="w1"),))
    sim = Simulation(_cluster(), SimulationConfig(track_metrics=False,
                                                  fault_plan=plan))
    sim.add_job(_chain(), ImmediatePolicy())
    with pytest.raises(RuntimeError, match="fault plan"):
        sim.run_truncated(5.0)


# --------------------------------------------------------------------- #
# node crash


def test_crash_requeues_onto_survivors():
    healthy = _run(_chain())
    mid = _makespan(healthy) / 3
    plan = FaultPlan(events=(NodeCrash(time=mid, node="w2"),),
                     retry_budget=3, backoff_base=0.25, backoff_cap=2.0)
    result = _run(_chain(), plan)
    stats = result.faults
    assert stats is not None
    assert stats.crashes == 1 and stats.injected == 1
    assert stats.dead_nodes == {"w2": mid}
    assert stats.retries >= 1
    assert stats.work_lost_bytes > 0
    assert not stats.jobs_failed
    assert math.isfinite(_makespan(result))
    assert _makespan(result) > _makespan(healthy)
    kinds = [e.kind for e in result.events]
    assert EventKind.NODE_CRASHED in kinds
    assert EventKind.TASK_RETRY in kinds
    assert EventKind.JOB_COMPLETED in kinds


def test_crash_at_time_zero_still_completes():
    plan = FaultPlan(events=(NodeCrash(time=0.0, node="w2"),))
    result = _run(_chain(), plan)
    assert not result.faults.jobs_failed
    assert math.isfinite(_makespan(result))
    # Two survivors do the same work slower.
    assert _makespan(result) > _makespan(_run(_chain()))


def test_crash_is_idempotent():
    plan = FaultPlan(events=(NodeCrash(time=1.0, node="w2"),
                             NodeCrash(time=1.5, node="w2")))
    result = _run(_chain(), plan)
    assert result.faults.crashes == 1
    assert not result.faults.jobs_failed


def test_retry_budget_exhaustion_fails_job():
    # t=1.0 is mid-compute of stage A, so the crash kills a live part.
    plan = FaultPlan(events=(NodeCrash(time=1.0, node="w2"),), retry_budget=0)
    result = _run(_chain(), plan)
    stats = result.faults
    assert stats.jobs_failed == ["j"]
    rec = result.job_records["j"]
    assert rec.finish_time == 1.0  # time-to-failure, kept finite
    kinds = [e.kind for e in result.events]
    assert EventKind.JOB_FAILED in kinds
    assert EventKind.JOB_COMPLETED not in kinds


# --------------------------------------------------------------------- #
# brownout / straggler


def test_brownout_slows_the_read_phase():
    healthy = _run(_chain())
    end = _makespan(healthy)
    plan = FaultPlan(events=(NicBrownout(start=0.0, end=end, node="w0",
                                         factor=0.2),))
    result = _run(_chain(), plan)
    assert result.faults.brownouts == 1
    assert not result.faults.jobs_failed
    assert _makespan(result) > _makespan(healthy)


def test_straggler_window_slows_compute():
    healthy = _run(_chain())
    plan = FaultPlan(events=(Straggler(time=0.0, node="w0", factor=4.0,
                                       until=_makespan(healthy)),))
    result = _run(_chain(), plan)
    assert result.faults.stragglers == 1
    assert not result.faults.jobs_failed
    assert _makespan(result) > _makespan(healthy)


def test_degradation_on_dead_node_has_no_effect():
    crash_only = FaultPlan(events=(NodeCrash(time=1.0, node="w2"),),
                           backoff_base=0.25, backoff_cap=1.0)
    with_straggler = FaultPlan(events=(
        NodeCrash(time=1.0, node="w2"),
        Straggler(time=2.0, node="w2", factor=8.0, until=100.0),
    ), backoff_base=0.25, backoff_cap=1.0)
    a = _run(_chain(), crash_only)
    b = _run(_chain(), with_straggler)
    assert b.faults.crashes == 1 and b.faults.stragglers == 1
    assert not b.faults.jobs_failed
    # The event fires (and is counted) but a dead node cannot slow down.
    assert _makespan(b) == pytest.approx(_makespan(a), rel=1e-9)


# --------------------------------------------------------------------- #
# lost shuffle partition


def _delayed_chain_run(lost_time: float, *, delay: float = 30.0):
    plan = FaultPlan(
        events=(LostShufflePartition(time=lost_time, job="j", stage="A",
                                     part="w0"),),
        backoff_base=0.25, backoff_cap=1.0,
    )
    policy = StageDelayer({"j": {"B": delay}})
    return _run(_chain(), plan, policy=policy)


def test_lost_partition_forces_parent_recompute():
    healthy = _run(_chain(), policy=StageDelayer({"j": {"B": 30.0}}))
    a_finish = healthy.stage_records[("j", "A")].finish_time
    result = _delayed_chain_run(a_finish + 1.0)
    stats = result.faults
    assert stats.partitions_lost == 1
    assert stats.work_recomputed_bytes > 0
    assert not stats.jobs_failed
    # A completes twice; B waits for the recomputed partition.
    a_completions = [e.time for e in result.events
                     if e.kind is EventKind.STAGE_COMPLETED
                     and e.stage_id == "A"]
    assert len(a_completions) == 2
    b = result.stage_records[("j", "B")]
    assert b.submit_time >= a_completions[-1]


def test_lost_partition_single_resubmission_after_regate():
    """Regression: a regate/re-ready cycle leaves two pending submission
    timers for the child; exactly one may submit (the second must be a
    stale no-op), otherwise the child's work items are duplicated."""
    healthy = _run(_chain(), policy=StageDelayer({"j": {"B": 30.0}}))
    a_finish = healthy.stage_records[("j", "A")].finish_time
    result = _delayed_chain_run(a_finish + 1.0)
    b_submissions = [e for e in result.events
                     if e.kind is EventKind.STAGE_SUBMITTED
                     and e.stage_id == "B"]
    assert len(b_submissions) == 1


def test_lost_partition_after_consumption_is_noop():
    # With no delay, B is submitted the instant A finishes — losing A's
    # output afterwards harms nobody (the data was already consumed).
    healthy = _run(_chain())
    a_finish = healthy.stage_records[("j", "A")].finish_time
    plan = FaultPlan(events=(LostShufflePartition(
        time=a_finish + 0.5, job="j", stage="A", part="w0"),))
    result = _run(_chain(), plan)
    assert result.faults.partitions_lost == 0
    assert result.faults.injected == 1
    assert _makespan(result) == pytest.approx(_makespan(healthy), rel=1e-9)


def test_lost_partition_unknown_target_is_noop():
    plan = FaultPlan(events=(LostShufflePartition(
        time=1.0, job="other", stage="Z", part="w9"),))
    result = _run(_chain(), plan)
    assert result.faults.partitions_lost == 0
    assert not result.faults.jobs_failed


# --------------------------------------------------------------------- #
# stats


def test_stats_to_dict():
    plan = FaultPlan(events=(NodeCrash(time=1.0, node="w2"),),
                     backoff_base=0.25, backoff_cap=1.0)
    stats = _run(_chain(), plan).faults
    data = stats.to_dict()
    for key in ("crashes", "retries", "work_lost_bytes",
                "work_recomputed_bytes", "jobs_failed", "dead_nodes",
                "stage_retries"):
        assert key in data
    assert data["crashes"] == 1


def test_counters_exported():
    plan = FaultPlan(events=(NodeCrash(time=1.0, node="w2"),),
                     backoff_base=0.25, backoff_cap=1.0)
    cfg = SimulationConfig(track_metrics=False, fault_plan=plan)
    sim = Simulation(_cluster(), cfg)
    sim.add_job(_chain(), ImmediatePolicy())
    result = sim.run()
    assert result.counters["faults.crashes"] == 1.0
    assert result.counters["faults.retries"] >= 1.0


# --------------------------------------------------------------------- #
# availability rows


def test_availability_row_and_rendering():
    from repro.faults import (
        availability_report,
        availability_row,
        render_availability,
    )

    healthy = _run(_chain())
    plan = FaultPlan(events=(NodeCrash(time=1.0, node="w2"),),
                     backoff_base=0.25, backoff_cap=1.0)
    faulty = _run(_chain(), plan)
    rows = availability_report({"x": healthy}, {"x": faulty, "extra": faulty})
    assert [r.scheduler for r in rows] == ["x"]
    row = rows[0]
    assert row.jct_inflation > 0
    assert row.retries >= 1 and row.jobs_failed == 0
    assert row.to_dict()["work_lost_mb"] == pytest.approx(
        faulty.faults.work_lost_bytes / 1e6)
    text = render_availability(rows)
    assert "x" in text and "inflation" in text
    assert render_availability([]) == "(no availability data)"

    with pytest.raises(ValueError, match="no fault stats"):
        availability_row("x", healthy, healthy)


def test_availability_row_rejects_nonfinite():
    from repro.faults import availability_row

    healthy = _run(_chain())
    plan = FaultPlan(events=(NodeCrash(time=1.0, node="w2"),),
                     backoff_base=0.25, backoff_cap=1.0)
    faulty = _run(_chain(), plan)
    broken = dataclasses.replace(healthy)
    broken.job_records = {"j": dataclasses.replace(
        healthy.job_records["j"], finish_time=math.nan)}
    with pytest.raises(ValueError, match="non-finite"):
        availability_row("x", broken, faulty)


# --------------------------------------------------------------------- #
# satellite: degradation at an exact stage boundary (audit found the
# factor applied exactly once; these pin that down either way)


def _boundary_run(boundary: float, *, incremental: bool):
    cfg = SimulationConfig(track_metrics=False, incremental=incremental)
    sim = Simulation(_cluster(), cfg)
    sim.inject_degradation("w0", boundary, nic_factor=0.5)
    sim.add_job(_chain(), ImmediatePolicy())
    return sim, sim.run()


def test_degradation_at_exact_stage_boundary_applied_once():
    healthy = _run(_chain())
    boundary = healthy.stage_records[("j", "A")].finish_time
    sim, result = _boundary_run(boundary, incremental=True)
    idx = sim.topology.index["w0"]
    fresh = Simulation(_cluster(), SimulationConfig(track_metrics=False))
    original = fresh.topology.egress_capacity[idx]
    # 0.5 applied once, not compounded by the realloc at the boundary.
    assert sim.topology.egress_capacity[idx] == pytest.approx(0.5 * original)
    assert math.isfinite(_makespan(result))


def test_degradation_at_stage_boundary_incremental_matches_full():
    healthy = _run(_chain())
    boundary = healthy.stage_records[("j", "A")].finish_time
    _, inc = _boundary_run(boundary, incremental=True)
    _, full = _boundary_run(boundary, incremental=False)
    assert inc.stage_records.keys() == full.stage_records.keys()
    for key, rec in inc.stage_records.items():
        other = full.stage_records[key]
        for f in dataclasses.fields(rec):
            x, y = getattr(rec, f.name), getattr(other, f.name)
            if isinstance(x, float) and math.isnan(x) and math.isnan(y):
                continue
            assert x == y, (key, f.name)
    assert inc.events == full.events
