"""Closed-form Eq. (1)/(2) must match the simulator for isolated stages."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import uniform_cluster
from repro.dag import Job, JobBuilder
from repro.model import (
    standalone_read_time,
    standalone_stage_time,
    standalone_stage_times,
    standalone_task_time,
)
from repro.simulator import simulate_job
from repro.util.units import MB

from testutil import make_stage


def single(input_mb, output_mb, rate_mb):
    return (
        JobBuilder("solo")
        .stage("S", input_mb=input_mb, output_mb=output_mb, process_rate_mb=rate_mb)
        .build()
    )


@pytest.mark.parametrize("workers,storage", [(1, 1), (2, 1), (4, 2), (8, 3)])
def test_matches_simulator_root_stage(workers, storage):
    cluster = uniform_cluster(workers, storage_nodes=storage)
    job = single(512, 128, 15)
    predicted = standalone_stage_time(job, "S", cluster)
    simulated = simulate_job(job, cluster).stage("solo", "S").duration
    assert predicted == pytest.approx(simulated, rel=1e-9)


def test_matches_simulator_no_storage():
    cluster = uniform_cluster(3, storage_nodes=0)
    job = single(512, 128, 15)
    predicted = standalone_stage_time(job, "S", cluster)
    simulated = simulate_job(job, cluster).stage("solo", "S").duration
    assert predicted == pytest.approx(simulated, rel=1e-9)


def test_matches_simulator_shuffle_stage(small_cluster):
    """For a chain, each stage runs alone, so per-stage durations match
    the closed form including the shuffle (worker-to-worker) case."""
    job = (
        JobBuilder("chain2")
        .stage("A", input_mb=256, output_mb=256, process_rate_mb=20)
        .stage("B", input_mb=256, output_mb=64, process_rate_mb=20, parents=["A"])
        .build()
    )
    res = simulate_job(job, small_cluster)
    times = standalone_stage_times(job, small_cluster)
    for sid in ("A", "B"):
        assert times[sid] == pytest.approx(res.stage("chain2", sid).duration, rel=1e-9)


@given(
    st.floats(min_value=1.0, max_value=4096.0),
    st.floats(min_value=0.0, max_value=2048.0),
    st.floats(min_value=0.5, max_value=100.0),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_property_model_equals_simulator(input_mb, output_mb, rate_mb, workers):
    cluster = uniform_cluster(workers, storage_nodes=2)
    job = single(input_mb, output_mb, rate_mb)
    predicted = standalone_stage_time(job, "S", cluster)
    simulated = simulate_job(job, cluster).stage("solo", "S").duration
    assert predicted == pytest.approx(simulated, rel=1e-6, abs=1e-9)


def test_read_time_zero_for_empty_input():
    cluster = uniform_cluster(2, storage_nodes=1)
    stage = make_stage("S", input_mb=0)
    assert standalone_read_time(stage, cluster, cluster.storage_ids) == 0.0


def test_task_time_terms_additive(small_cluster):
    """Eq. (1): task time = read + compute + write, each checkable."""
    job = single(512, 256, 20)
    stage = job.stage("S")
    t = standalone_task_time(stage, small_cluster, small_cluster.storage_ids, "w0")
    read = standalone_read_time(stage, small_cluster, small_cluster.storage_ids)
    compute = (512 / 4) * MB / (2 * 20 * MB)
    write = (256 / 4) * MB / small_cluster.node("w0").disk_bandwidth
    assert t == pytest.approx(read + compute + write, rel=1e-9)


def test_stage_time_is_max_over_workers():
    """Eq. (2): with one slow worker, it determines the stage time."""
    from repro.cluster import ClusterSpec, NodeSpec
    from repro.util.units import mbps_to_bytes_per_sec

    nodes = [
        NodeSpec("fast", 4, mbps_to_bytes_per_sec(1000), 150 * MB),
        NodeSpec("slow", 1, mbps_to_bytes_per_sec(1000), 150 * MB),
        NodeSpec("store", 0, mbps_to_bytes_per_sec(2000), 150 * MB, is_storage=True),
    ]
    cluster = ClusterSpec(nodes)
    job = single(512, 128, 10)
    slow = standalone_task_time(job.stage("S"), cluster, ["store"], "slow")
    fast = standalone_task_time(job.stage("S"), cluster, ["store"], "fast")
    assert slow > fast
    assert standalone_stage_time(job, "S", cluster) == pytest.approx(slow)
