"""RNG plumbing: determinism and input normalization."""

import numpy as np
import pytest

from repro.util.rng import resolve_rng, spawn_rngs


def test_resolve_from_seed_is_deterministic():
    a = resolve_rng(42).random(5)
    b = resolve_rng(42).random(5)
    assert np.array_equal(a, b)


def test_resolve_passes_generator_through():
    gen = np.random.default_rng(1)
    assert resolve_rng(gen) is gen


def test_resolve_none_gives_generator():
    assert isinstance(resolve_rng(None), np.random.Generator)


def test_resolve_rejects_strings():
    with pytest.raises(TypeError):
        resolve_rng("seed")


def test_resolve_accepts_numpy_integer():
    a = resolve_rng(np.int64(7)).random()
    b = resolve_rng(7).random()
    assert a == b


def test_spawn_rngs_are_independent_and_deterministic():
    first = [g.random() for g in spawn_rngs(3, 4)]
    second = [g.random() for g in spawn_rngs(3, 4)]
    assert first == second
    assert len(set(first)) == 4  # streams differ from each other


def test_spawn_count():
    assert len(spawn_rngs(0, 7)) == 7
