"""Event-log serialization (the simulated Spark eventlog)."""

import io
import json

import pytest

from repro.simulator import (
    EVENTLOG_SCHEMA_VERSION,
    EventKind,
    read_eventlog,
    simulate_job,
    stage_timings_from_eventlog,
    write_eventlog,
)


def test_roundtrip(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    buf = io.StringIO()
    n = write_eventlog(res.events, buf)
    assert n == len(res.events)

    buf.seek(0)
    back = read_eventlog(buf)
    assert back == res.events


def test_file_roundtrip(diamond_job, small_cluster, tmp_path):
    res = simulate_job(diamond_job, small_cluster)
    path = tmp_path / "eventlog.jsonl"
    write_eventlog(res.events, path)
    assert read_eventlog(path) == res.events


def test_blank_lines_skipped():
    assert read_eventlog(io.StringIO("\n\n")) == []


def test_malformed_line_reported():
    with pytest.raises(ValueError, match="line 2"):
        read_eventlog(io.StringIO('{"Event": "job_submitted", "Timestamp": 0, "Job ID": "j"}\nnot json\n'))


def test_unknown_event_kind_rejected():
    bad = '{"Event": "warp_drive", "Timestamp": 0, "Job ID": "j"}\n'
    with pytest.raises(ValueError):
        read_eventlog(io.StringIO(bad))


def test_schema_header_written_first(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    buf = io.StringIO()
    n = write_eventlog(res.events, buf)
    lines = buf.getvalue().splitlines()
    header = json.loads(lines[0])
    assert header["Event"] == "repro.eventlog.header"
    assert header["Schema Version"] == EVENTLOG_SCHEMA_VERSION
    # The header is not counted and not parsed back as an event.
    assert len(lines) == n + 1


def test_future_schema_header_ignored():
    log = (
        '{"Event": "repro.eventlog.header", "Schema Version": 999}\n'
        '{"Event": "job_submitted", "Timestamp": 0, "Job ID": "j"}\n'
    )
    events = read_eventlog(io.StringIO(log))
    assert len(events) == 1
    assert events[0].job_id == "j"


def test_all_malformed_lines_reported():
    log = (
        '{"Event": "job_submitted", "Timestamp": 0, "Job ID": "j"}\n'
        "not json\n"
        '{"Event": "job_submitted", "Timestamp": 0, "Job ID": "j"}\n'
        '{"Event": "warp_drive", "Timestamp": 0, "Job ID": "j"}\n'
    )
    with pytest.raises(ValueError) as exc_info:
        read_eventlog(io.StringIO(log))
    message = str(exc_info.value)
    assert "2 malformed" in message
    assert "line 2" in message and "line 4" in message


def test_malformed_file_error_names_the_file(tmp_path):
    path = tmp_path / "broken.jsonl"
    path.write_text("garbage\n")
    with pytest.raises(ValueError, match="broken.jsonl"):
        read_eventlog(path)


def test_stage_timings_extraction(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    timings = stage_timings_from_eventlog(res.events)
    rec = res.stage("diamond", "S1")
    t = timings[("diamond", "S1")]
    assert t[EventKind.STAGE_SUBMITTED.value] == pytest.approx(rec.submit_time)
    assert t[EventKind.STAGE_COMPLETED.value] == pytest.approx(rec.finish_time)
    assert t[EventKind.STAGE_READ_DONE.value] == pytest.approx(rec.read_done_time)
