"""Event-log serialization (the simulated Spark eventlog)."""

import io

import pytest

from repro.simulator import (
    EventKind,
    read_eventlog,
    simulate_job,
    stage_timings_from_eventlog,
    write_eventlog,
)


def test_roundtrip(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    buf = io.StringIO()
    n = write_eventlog(res.events, buf)
    assert n == len(res.events)

    buf.seek(0)
    back = read_eventlog(buf)
    assert back == res.events


def test_file_roundtrip(diamond_job, small_cluster, tmp_path):
    res = simulate_job(diamond_job, small_cluster)
    path = tmp_path / "eventlog.jsonl"
    write_eventlog(res.events, path)
    assert read_eventlog(path) == res.events


def test_blank_lines_skipped():
    assert read_eventlog(io.StringIO("\n\n")) == []


def test_malformed_line_reported():
    with pytest.raises(ValueError, match="line 2"):
        read_eventlog(io.StringIO('{"Event": "job_submitted", "Timestamp": 0, "Job ID": "j"}\nnot json\n'))


def test_unknown_event_kind_rejected():
    bad = '{"Event": "warp_drive", "Timestamp": 0, "Job ID": "j"}\n'
    with pytest.raises(ValueError):
        read_eventlog(io.StringIO(bad))


def test_stage_timings_extraction(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    timings = stage_timings_from_eventlog(res.events)
    rec = res.stage("diamond", "S1")
    t = timings[("diamond", "S1")]
    assert t[EventKind.STAGE_SUBMITTED.value] == pytest.approx(rec.submit_time)
    assert t[EventKind.STAGE_COMPLETED.value] == pytest.approx(rec.finish_time)
    assert t[EventKind.STAGE_READ_DONE.value] == pytest.approx(rec.read_done_time)
