"""Edge cases across modules that the mainline tests don't reach."""

import math

import pytest

from repro.dag import JobBuilder
from repro.cluster import uniform_cluster
from repro.simulator import (
    FixedDelayPolicy,
    Simulation,
    SimulationConfig,
    simulate_job,
)
from repro.simulator.engine import FluidEngine, WorkItem
from repro.trace import TraceGeneratorConfig, generate_trace
from repro.trace.analysis import job_parallel_fraction, stage_runtime_range


# ------------------------------- engine -------------------------------- #


def test_engine_item_without_callback():
    engine = FluidEngine(lambda items: [setattr(i, "rate", 1.0) for i in items])
    engine.add_item(WorkItem(2.0))  # no on_complete
    assert engine.run() == pytest.approx(2.0)


def test_engine_add_items_bulk():
    done = []
    engine = FluidEngine(lambda items: [setattr(i, "rate", 1.0) for i in items])
    engine.add_items([WorkItem(1.0, done.append), WorkItem(2.0, done.append)])
    engine.run()
    assert len(done) == 2


def test_engine_event_fuse():
    """The livelock fuse trips instead of spinning forever."""

    def allocate(items):
        for item in items:
            item.rate = 1.0

    engine = FluidEngine(allocate, max_events=10)

    def respawn():
        engine.add_item(WorkItem(0.5))
        engine.schedule(engine.now + 0.1, respawn)

    respawn()
    with pytest.raises(RuntimeError, match="exceeded"):
        engine.run()


# ----------------------------- simulation ------------------------------ #


def test_storage_nodes_never_compute(small_cluster, diamond_job):
    res = simulate_job(diamond_job, small_cluster)
    for sid in small_cluster.storage_ids:
        series = res.metrics.node_series(sid)
        assert series.cpu_busy.max() == 0.0
        assert series.net_out.max() > 0  # they do serve data


def test_fanin_larger_than_sources(small_cluster):
    job = (
        JobBuilder("f")
        .stage("A", input_mb=256, output_mb=64, process_rate_mb=10)
        .build()
    )
    # fanin 99 > 2 storage nodes: clamps to all sources.
    res = simulate_job(job, small_cluster, config=SimulationConfig(fanin=99))
    base = simulate_job(job, small_cluster)
    assert res.stage("f", "A").duration == pytest.approx(
        base.stage("f", "A").duration, rel=1e-9
    )


def test_multi_job_makespan(small_cluster):
    sim = Simulation(small_cluster, SimulationConfig(track_metrics=False))
    a = JobBuilder("a").stage("S", input_mb=128, output_mb=32, process_rate_mb=10).build()
    b = JobBuilder("b").stage("S", input_mb=128, output_mb=32, process_rate_mb=10).build()
    sim.add_job(a)
    sim.add_job(b, submit_time=500.0)
    res = sim.run()
    assert res.makespan == pytest.approx(
        res.job_records["b"].finish_time
    )
    assert res.job_records["b"].completion_time < 500.0


def test_negative_submit_time_rejected(small_cluster, diamond_job):
    sim = Simulation(small_cluster)
    with pytest.raises(ValueError):
        sim.add_job(diamond_job, submit_time=-1.0)


def test_nan_delay_rejected():
    with pytest.raises(ValueError):
        FixedDelayPolicy({"A": math.nan})


def test_record_properties(small_cluster, diamond_job):
    res = simulate_job(diamond_job, small_cluster, FixedDelayPolicy({"S2": 3.0}))
    rec = res.stage("diamond", "S2")
    assert rec.delay == pytest.approx(3.0)
    assert rec.duration == pytest.approx(
        rec.read_time + rec.compute_time + rec.write_time, rel=1e-9
    )


def test_parallel_stage_makespan_empty_members(small_cluster, diamond_job):
    res = simulate_job(diamond_job, small_cluster)
    assert res.parallel_stage_makespan("diamond", frozenset()) == 0.0


# ------------------------------- trace --------------------------------- #


def test_job_parallel_fraction_empty():
    assert job_parallel_fraction([]) == 0.0


def test_stage_runtime_range_empty():
    lo, hi, arr = stage_runtime_range([])
    assert lo == hi == 0.0
    assert arr.size == 0


def test_trace_tiny_config():
    jobs = generate_trace(TraceGeneratorConfig(num_jobs=3, max_stages=6), rng=0)
    assert len(jobs) == 3
    assert all(j.num_stages <= 6 for j in jobs)


# ----------------------------- heterogeneous --------------------------- #


def test_heterogeneous_workers_slowest_determines_stage():
    from repro.cluster import ClusterSpec, NodeSpec
    from repro.util.units import mbps_to_bytes_per_sec, MB

    nodes = [
        NodeSpec("fast", 4, mbps_to_bytes_per_sec(1000), 200 * MB),
        NodeSpec("slow", 1, mbps_to_bytes_per_sec(200), 50 * MB),
        NodeSpec("store", 0, mbps_to_bytes_per_sec(2000), 200 * MB, is_storage=True),
    ]
    cluster = ClusterSpec(nodes)
    job = (
        JobBuilder("het")
        .stage("A", input_mb=512, output_mb=128, process_rate_mb=10)
        .build()
    )
    res = simulate_job(job, cluster)
    # The slow node's part is the last to finish: the stage ends when a
    # compute/write completes there, not on the fast node.
    rec = res.stage("het", "A")
    assert rec.duration > 0
    m = res.metrics.node_series("slow")
    busy_end = m.t1[m.cpu_busy > 0].max() if (m.cpu_busy > 0).any() else 0
    assert busy_end == pytest.approx(rec.compute_done_time, abs=m.t1[-1] * 0.1)
