"""Interop: networkx conversion and trace CSV export round-trips."""

import io

import networkx as nx
import pytest

from repro.dag import Job, from_networkx, parallel_stage_set, to_networkx
from repro.trace import (
    TraceGeneratorConfig,
    export_batch_task_csv,
    generate_trace,
    parse_batch_task_csv,
)
from repro.workloads import lda, triangle_count


# ----------------------------- networkx -------------------------------- #


def test_networkx_roundtrip_exact():
    job = triangle_count()
    back = from_networkx(to_networkx(job))
    assert back.job_id == job.job_id
    assert sorted(back.edges) == sorted(job.edges)
    for sid in job.stage_ids:
        a, b = job.stage(sid), back.stage(sid)
        assert b.input_bytes == a.input_bytes
        assert b.output_bytes == a.output_bytes
        assert b.process_rate == a.process_rate
        assert b.num_tasks == a.num_tasks
        assert b.task_cv == a.task_cv


def test_networkx_graph_usable():
    graph = to_networkx(lda())
    assert nx.is_directed_acyclic_graph(graph)
    assert graph.graph["job_id"] == "lda"
    # networkx agrees with our parallel-stage definition via reachability.
    tc = nx.transitive_closure_dag(graph)
    parallel = {
        n for n in graph.nodes
        if any(
            m != n and not tc.has_edge(n, m) and not tc.has_edge(m, n)
            for m in graph.nodes
        )
    }
    assert parallel == set(parallel_stage_set(lda()))


def test_from_networkx_defaults_and_overrides():
    g = nx.DiGraph()
    g.add_edge("a", "b")
    job = from_networkx(g, job_id="structural")
    assert job.job_id == "structural"
    assert job.stage("a").input_bytes > 0  # defaults applied
    assert job.parents("b") == {"a"}


def test_from_networkx_rejects_cycles():
    g = nx.DiGraph([("a", "b"), ("b", "a")])
    with pytest.raises(ValueError, match="cycle"):
        from_networkx(g)


# ---------------------------- trace export ----------------------------- #


def test_export_parse_roundtrip_structure():
    trace = generate_trace(TraceGeneratorConfig(num_jobs=40), rng=6)
    buf = io.StringIO()
    rows = export_batch_task_csv(trace, buf)
    assert rows == sum(j.num_stages for j in trace)

    buf.seek(0)
    parsed = {j.job_id: j for j in parse_batch_task_csv(buf)}
    assert len(parsed) == len(trace)
    for original in trace:
        back = parsed[original.job_id]
        assert back.num_stages == original.num_stages
        # Edge structure survives the name-encoding round trip.
        assert len(back.edges) == len(original.edges)
        assert back.duration == pytest.approx(original.duration, abs=1.5)


def test_export_to_file(tmp_path):
    trace = generate_trace(TraceGeneratorConfig(num_jobs=5), rng=0)
    path = tmp_path / "batch_task.csv"
    rows = export_batch_task_csv(trace, path)
    assert rows > 0
    parsed = parse_batch_task_csv(path)
    assert len(parsed) == 5
