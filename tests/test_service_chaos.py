"""Chaos coverage for the service: faults mid-service stay consistent.

Injector crash/straggler/brownout events firing inside dispatched
jobs' simulations must leave the telemetry plane coherent: the
``/runs/<id>`` snapshot's fault counts equal the per-job ``FaultStats``
sums recorded in the lifecycle records, failed jobs are typed
``failed`` (never ``completed``), and the whole trajectory is a pure
function of the chaos seed.

Golden seed-stability (the PR-5 pattern): committed fixtures pin the
drained service state — every lifecycle record with its JCT, retries,
and per-job fault summary, plus the final counters — for seeded chaos
runs.  The same seed must keep producing the same drained snapshot,
byte for byte.  Regenerate (only after an *intentional* semantics
change) with:

    PYTHONPATH=src python -m tests.test_service_chaos
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cluster import uniform_cluster
from repro.faults import generate_plan
from repro.obs.live.bus import TelemetryBus, TelemetryPublisher
from repro.obs.live.hub import LiveHub
from repro.schedulers import FuxiScheduler
from repro.service import AdmissionConfig, RejectedSubmission, ServiceCore
from repro.workloads.synthetic import random_job

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
SEEDS = (1, 2)
NUM_JOBS = 4


def _golden_path(seed: int) -> pathlib.Path:
    return GOLDEN_DIR / f"service_chaos_seed{seed}.json"


def _chaos_service_run(seed: int):
    """Run the canonical seeded chaos service; returns (core, hub, bus)."""
    cluster = uniform_cluster(3, executors_per_worker=2, nic_mbps=450,
                              disk_mb_per_sec=150, storage_nodes=0)
    jobs = [random_job(4, job_id=f"c{seed}-{i}", rng=seed * 100 + i)
            for i in range(NUM_JOBS)]
    plan = generate_plan(cluster, seed, jobs=jobs, num_events=4,
                         retry_budget=1, backoff_base=0.25, backoff_cap=1.0)
    scheduler = FuxiScheduler(track_metrics=False, fault_plan=plan)
    bus = TelemetryBus()
    publisher = TelemetryPublisher(bus, label="serve", run_id="serve")
    hub = LiveHub(bus=bus)
    core = ServiceCore(cluster, scheduler, slots=2, publisher=publisher,
                       admission=AdmissionConfig(max_pending=8))
    for i, job in enumerate(jobs):
        core.advance_to(10.0 * i)
        try:
            core.submit(job)
        except RejectedSubmission:  # pragma: no cover - queue is large enough
            pass
    core.drain()
    core.run_until_idle()
    return core, hub, bus


def _drained_snapshot(core: ServiceCore) -> dict:
    """The golden payload: stable fields of the drained service."""
    stats = core.stats()
    return {
        "counters": stats["counters"],
        "states": stats["states"],
        "jobs": [r.to_dict() for r in core.jobs_snapshot()],
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_service_matches_golden_snapshot(seed):
    expected = json.loads(_golden_path(seed).read_text(encoding="utf-8"))
    core, _, _ = _chaos_service_run(seed)
    assert _drained_snapshot(core) == expected


@pytest.mark.parametrize("seed", SEEDS)
def test_fault_stats_consistent_with_hub(seed):
    """Hub fault counts == sum of per-job FaultStats; states typed."""
    core, hub, bus = _chaos_service_run(seed)
    snap = hub.run_snapshot("serve")
    records = core.jobs_snapshot()
    # every dispatched job carries its FaultStats summary
    per_job = [r.extra["faults"] for r in records if "faults" in r.extra]
    assert per_job, "chaos plan must have touched at least one job"
    injected = sum(f["injected"] for f in per_job)
    assert injected > 0
    # bus fault events == total injections + retries + replans etc.;
    # at minimum every *injection* published one event per kind
    fault_events = [e for e in bus.events_since() if e["type"] == "fault"]
    assert len(fault_events) >= injected
    assert sum(snap["faults"].values()) == len(fault_events)
    # failed jobs report typed failure, never a JCT
    for record in records:
        if record.state.value == "failed":
            assert record.jct is None
            assert record.failure_time is not None
        if record.state.value == "completed":
            assert record.jct is not None
    # the service snapshot agrees with the core's books
    svc = snap["service"]
    assert svc["submitted"] == core.stats()["counters"]["admitted"]
    assert svc["failed"] == core.stats()["counters"]["failed"]
    assert svc["drained"] is True


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_service_is_seed_stable_in_process(seed):
    """Two in-process runs of the same seed are identical, field by field."""
    first = _drained_snapshot(_chaos_service_run(seed)[0])
    second = _drained_snapshot(_chaos_service_run(seed)[0])
    assert first == second


def _regenerate() -> None:  # pragma: no cover - maintenance entry point
    GOLDEN_DIR.mkdir(exist_ok=True)
    for seed in SEEDS:
        core, _, _ = _chaos_service_run(seed)
        path = _golden_path(seed)
        path.write_text(
            json.dumps(_drained_snapshot(core), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
