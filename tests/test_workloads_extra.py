"""Bonus workloads: PageRank (chain) and StarJoin (wide parallel)."""

import pytest

from repro.dag import parallel_stage_set
from repro.workloads import EXTRA_WORKLOADS, pagerank, star_join


def test_pagerank_is_a_chain():
    job = pagerank()
    assert parallel_stage_set(job) == frozenset()
    assert job.num_stages == 2 + 2 * 4  # load + 4*(contrib, update) + rank


def test_pagerank_iterations_parameter():
    assert pagerank(iterations=2).num_stages == 6
    with pytest.raises(ValueError):
        pagerank(iterations=0)


def test_star_join_parallel_width():
    job = star_join(num_dimensions=4)
    members = parallel_stage_set(job)
    # fact + every scan + every build run in parallel; probe is sequential.
    assert len(members) == 9
    assert "probe" not in members
    assert job.parents("probe") == {"fact", "build0", "build1", "build2", "build3"}


def test_star_join_dimensions_parameter():
    assert star_join(num_dimensions=2).num_stages == 6
    with pytest.raises(ValueError):
        star_join(num_dimensions=1)


def test_extra_workloads_registry():
    assert set(EXTRA_WORKLOADS) == {"PageRank", "StarJoin"}
    for ctor in EXTRA_WORKLOADS.values():
        job = ctor(scale=0.5)
        assert job.num_stages > 0


def test_scaling():
    a = star_join(scale=1.0)
    b = star_join(scale=2.0)
    assert b.stage("fact").input_bytes == pytest.approx(2 * a.stage("fact").input_bytes)
    with pytest.raises(ValueError):
        pagerank(scale=0)


def test_delaystage_noop_on_pagerank(small_cluster):
    """A pure chain gives DelayStage nothing to do (the structural
    limit the paper's ConnectedComponents discussion points toward)."""
    from repro.core import delay_stage_schedule

    schedule = delay_stage_schedule(pagerank(scale=0.1), small_cluster)
    assert schedule.delays == {}
