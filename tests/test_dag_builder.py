"""JobBuilder and job_from_edges constructors."""

import pytest

from repro.dag import JobBuilder, job_from_edges
from repro.util.units import MB


def test_builder_units_are_mb():
    job = (
        JobBuilder("j")
        .stage("A", input_mb=10, output_mb=5, process_rate_mb=2)
        .build()
    )
    stage = job.stage("A")
    assert stage.input_bytes == 10 * MB
    assert stage.output_bytes == 5 * MB
    assert stage.process_rate == 2 * MB


def test_builder_parents_shortcut():
    job = (
        JobBuilder("j")
        .stage("A", input_mb=1, output_mb=1, process_rate_mb=1)
        .stage("B", input_mb=1, output_mb=1, process_rate_mb=1, parents=["A"])
        .build()
    )
    assert job.parents("B") == {"A"}


def test_builder_explicit_edge():
    job = (
        JobBuilder("j")
        .stage("A", input_mb=1, output_mb=1, process_rate_mb=1)
        .stage("B", input_mb=1, output_mb=1, process_rate_mb=1)
        .edge("A", "B")
        .build()
    )
    assert job.children("A") == {"B"}


def test_builder_forward_parent_rejected_at_build():
    builder = (
        JobBuilder("j")
        .stage("A", input_mb=1, output_mb=1, process_rate_mb=1, parents=["Z"])
    )
    with pytest.raises(ValueError, match="unknown"):
        builder.build()


def test_builder_extra_stage_params():
    job = (
        JobBuilder("j")
        .stage("A", input_mb=1, output_mb=1, process_rate_mb=1,
               num_tasks=99, task_cv=0.7, name="mapper")
        .build()
    )
    stage = job.stage("A")
    assert stage.num_tasks == 99
    assert stage.task_cv == 0.7
    assert stage.name == "mapper"


def test_job_from_edges_defaults():
    job = job_from_edges("j", [("A", "B"), ("B", "C")])
    assert job.stage_ids == ["A", "B", "C"]
    assert job.stage("A").input_bytes == 512 * MB


def test_job_from_edges_overrides():
    job = job_from_edges(
        "j",
        [("A", "B")],
        stage_params={"A": {"input_mb": 64, "num_tasks": 8, "task_cv": 0.2}},
    )
    assert job.stage("A").input_bytes == 64 * MB
    assert job.stage("A").num_tasks == 8
    assert job.stage("B").input_bytes == 512 * MB


def test_job_from_edges_empty_rejected():
    with pytest.raises(ValueError, match="empty"):
        job_from_edges("j", [])
