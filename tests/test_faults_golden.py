"""Golden seed-stability: chaos runs reproduce byte-for-byte.

Three committed event-log fixtures pin down the full fault trajectory
(injection, retries, replans, completions) of seeded chaos runs.  The
same ``--chaos-seed`` must keep producing the same event log, byte for
byte, forever — any diff means fault handling became nondeterministic
or silently changed semantics, both of which break replayability.

Regenerate (only after an *intentional* semantics change) with:

    PYTHONPATH=src python -m tests.test_faults_golden
"""

from __future__ import annotations

import io
import pathlib

import pytest

from repro.cluster import uniform_cluster
from repro.core.delaystage import DelayStageParams
from repro.faults import generate_plan
from repro.schedulers import DelayStageScheduler, run_with_scheduler
from repro.simulator.eventlog import write_eventlog
from repro.workloads.synthetic import random_job

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
SEEDS = (1, 2, 3)


def _golden_path(seed: int) -> pathlib.Path:
    return GOLDEN_DIR / f"fault_events_seed{seed}.log"


def _chaos_eventlog(seed: int) -> str:
    """The event log of the canonical chaos run for ``seed``."""
    cluster = uniform_cluster(3, executors_per_worker=2, nic_mbps=450,
                              disk_mb_per_sec=150, storage_nodes=0)
    job = random_job(5, job_id=f"golden{seed}", rng=seed)
    plan = generate_plan(cluster, seed, jobs=[job], num_events=4,
                         retry_budget=3, backoff_base=0.25, backoff_cap=2.0)
    scheduler = DelayStageScheduler(
        profiled=False, track_metrics=False,
        params=DelayStageParams(max_slots=8),
        fault_plan=plan, replan=True,
    )
    result = run_with_scheduler(job, cluster, scheduler).result
    buffer = io.StringIO()
    write_eventlog(result.events, buffer)
    return buffer.getvalue()


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_run_matches_golden_eventlog(seed):
    expected = _golden_path(seed).read_text(encoding="utf-8")
    assert _chaos_eventlog(seed) == expected


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_run_is_internally_reproducible(seed):
    assert _chaos_eventlog(seed) == _chaos_eventlog(seed)


def test_goldens_exercise_fault_machinery():
    """The fixtures must actually contain fault events, or they pin
    nothing interesting."""
    text = "".join(_golden_path(s).read_text(encoding="utf-8") for s in SEEDS)
    assert '"fault_injected"' in text


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    GOLDEN_DIR.mkdir(exist_ok=True)
    for s in SEEDS:
        _golden_path(s).write_text(_chaos_eventlog(s), encoding="utf-8")
        print(f"wrote {_golden_path(s)}")
