"""Property-based tests: random DAGs and their DelayStage schedules
always satisfy the static validators."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.spec import uniform_cluster
from repro.core.delaystage import DelayStageParams, delay_stage_schedule
from repro.verify import validate_job, validate_schedule
from repro.workloads.library import EXTRA_WORKLOADS, WORKLOADS, als
from repro.workloads.synthetic import random_job

CLUSTER = uniform_cluster(3, executors_per_worker=2, nic_mbps=400,
                          disk_mb_per_sec=100, storage_nodes=1)

FAST = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def jobs(draw):
    num_stages = draw(st.integers(min_value=1, max_value=12))
    parallelism = draw(st.floats(min_value=0.0, max_value=1.0))
    fanin = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_job(num_stages, parallelism=parallelism,
                      max_fanin=fanin, rng=seed)


@FAST
@given(jobs())
def test_random_jobs_validate(job):
    report = validate_job(job)
    assert report.ok, report.render()


@FAST
@given(jobs(), st.sampled_from(["descending", "random", "ascending"]))
def test_delaystage_schedules_validate(job, order):
    schedule = delay_stage_schedule(
        job, CLUSTER, DelayStageParams(order=order, max_slots=8)
    )
    report = validate_schedule(schedule, job)
    assert report.ok, report.render()


def test_all_library_workloads_and_schedules_error_free():
    """Acceptance check: every library workload (paper + bonus) and the
    DelayStage schedule computed on it yield zero ERROR findings."""
    factories = {**WORKLOADS, **EXTRA_WORKLOADS, "ALS": als}
    cluster = uniform_cluster(8, executors_per_worker=4)
    for name, factory in factories.items():
        job = factory(1.0)
        job_report = validate_job(job)
        assert job_report.ok, f"{name}: {job_report.render()}"
        schedule = delay_stage_schedule(job, cluster)
        sched_report = validate_schedule(schedule, job)
        assert sched_report.ok, f"{name}: {sched_report.render()}"
