"""Trace exporters: Chrome trace-event schema and JSON-lines spans.

Includes the hypothesis round-trip / schema properties the CI job
relies on: any tracer content exports to a document that passes
:func:`validate_chrome_trace` (valid structure, monotone ``ts``,
pid/tid consistent with the name metadata) and spans survive the
JSON-lines round trip exactly.
"""

import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    Span,
    Tracer,
    build_manifest,
    read_spans_jsonl,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)

T = ("sim", "job:j")

names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=12,
)
times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False)
tracks = st.tuples(names, names)


@st.composite
def spans(draw):
    return Span(
        span_id=draw(st.integers(min_value=1, max_value=10**6)),
        name=draw(names),
        ts=draw(times),
        dur=draw(times),
        track=draw(tracks),
        cat=draw(names),
        parent_id=draw(st.integers(min_value=0, max_value=10**6)),
        args=draw(st.dictionaries(names, st.integers() | names, max_size=3)),
    )


@st.composite
def tracers(draw):
    tr = Tracer()
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        tr.add_span(draw(names), draw(times), draw(times),
                    track=draw(tracks), cat=draw(names))
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        tr.instant(draw(names), draw(times), track=draw(tracks))
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        tr.sample(draw(names), draw(times),
                  draw(st.floats(-1e9, 1e9, allow_nan=False)),
                  track=draw(tracks))
    return tr


@given(spans())
@settings(max_examples=50, deadline=None)
def test_span_json_roundtrip(span):
    wire = json.loads(json.dumps(span.to_dict()))
    assert Span.from_dict(wire) == span


@given(tracers())
@settings(max_examples=40, deadline=None)
def test_chrome_export_always_validates(tracer):
    doc = to_chrome_trace(tracer, build_manifest(seed=0))
    # Survives JSON serialization unchanged in validity.
    doc = json.loads(json.dumps(doc))
    assert validate_chrome_trace(doc) == []


@given(tracers())
@settings(max_examples=40, deadline=None)
def test_chrome_export_monotone_and_consistent(tracer):
    doc = to_chrome_trace(tracer)
    procs = {e["pid"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    threads = {(e["pid"], e["tid"]) for e in doc["traceEvents"]
               if e["ph"] == "M" and e["name"] == "thread_name"}
    prev = None
    for ev in doc["traceEvents"]:
        if ev["ph"] == "M":
            continue
        assert ev["ts"] >= 0
        if prev is not None:
            assert ev["ts"] >= prev
        prev = ev["ts"]
        assert ev["pid"] in procs
        if ev["ph"] == "X":
            assert (ev["pid"], ev["tid"]) in threads


def test_write_and_read_chrome_trace(tmp_path):
    tr = Tracer()
    root = tr.add_span("job", 0.0, 10.0, track=T, cat="job")
    tr.add_span("compute", 2.0, 3.0, track=T, cat="phase", parent=root,
                args={"stage_id": "S1"})
    tr.counters.inc("stages", 1)
    path = tmp_path / "trace.json"
    doc = write_chrome_trace(path, tr, build_manifest(seed=1))
    assert validate_chrome_trace(doc) == []
    loaded = json.loads(path.read_text())
    assert loaded == doc
    assert loaded["otherData"]["manifest"]["seed"] == 1
    assert loaded["otherData"]["counters"]["counters"]["stages"] == 1


def test_validation_catches_corruption():
    tr = Tracer()
    tr.add_span("s", 0.0, 1.0, track=T)
    doc = to_chrome_trace(tr)

    bad = json.loads(json.dumps(doc))
    del bad["otherData"]["manifest"]
    assert any("manifest" in e for e in validate_chrome_trace(bad))

    bad = json.loads(json.dumps(doc))
    bad["otherData"]["schema_version"] = 99
    assert any("schema_version" in e for e in validate_chrome_trace(bad))

    bad = json.loads(json.dumps(doc))
    bad["traceEvents"].append({"ph": "Z", "name": "x", "ts": 0, "pid": 1})
    assert any("unsupported phase" in e for e in validate_chrome_trace(bad))

    bad = json.loads(json.dumps(doc))
    bad["traceEvents"].append(
        {"ph": "X", "name": "x", "ts": -5, "dur": 1, "pid": 1, "tid": 1})
    assert any("bad ts" in e for e in validate_chrome_trace(bad))

    assert validate_chrome_trace([]) == ["document is not a JSON object"]
    assert validate_chrome_trace({}) == ["missing or non-list 'traceEvents'"]


def test_validation_catches_unsorted_and_undeclared():
    doc = {
        "traceEvents": [
            {"ph": "M", "pid": 1, "tid": 0, "ts": 0, "name": "process_name",
             "args": {"name": "p"}},
            {"ph": "i", "s": "t", "name": "late", "ts": 10, "pid": 1, "args": {}},
            {"ph": "i", "s": "t", "name": "early", "ts": 5, "pid": 2, "args": {}},
        ],
        "otherData": {"schema_version": 1,
                      "manifest": {"seed": 0, "config_hash": "x"}},
    }
    errors = validate_chrome_trace(doc)
    assert any("not sorted" in e for e in errors)
    assert any("no process_name" in e for e in errors)


def test_spans_jsonl_roundtrip():
    tr = Tracer()
    a = tr.add_span("outer", 0.0, 5.0, track=T)
    tr.add_span("inner", 1.0, 2.0, track=T, parent=a, args={"k": "v"})
    tr.counters.set_gauge("g", 1.5)
    buf = io.StringIO()
    n = write_spans_jsonl(buf, tr, build_manifest(seed=4, config={"c": 1}))
    assert n == 2
    buf.seek(0)
    manifest, spans_back = read_spans_jsonl(buf)
    assert manifest is not None and manifest.seed == 4
    assert spans_back == sorted(tr.spans, key=lambda s: (s.ts, s.span_id))


def test_spans_jsonl_file_roundtrip(tmp_path):
    tr = Tracer()
    tr.add_span("s", 0.0, 1.0, track=T)
    path = tmp_path / "spans.jsonl"
    assert write_spans_jsonl(path, tr) == 1
    manifest, spans_back = read_spans_jsonl(path)
    assert manifest is not None  # auto-built even when not passed
    assert len(spans_back) == 1


def test_spans_jsonl_malformed_line_reported():
    with pytest.raises(ValueError, match="line 2"):
        read_spans_jsonl(io.StringIO('{"type": "counters"}\n{oops\n'))
    with pytest.raises(ValueError, match="line 1"):
        read_spans_jsonl(io.StringIO('{"type": "mystery"}\n'))
