"""Decision audit and simulator span instrumentation.

The acceptance contract: a trace records *why* Algorithm 1 picked each
delay (bounds, every candidate evaluated, predicted makespans, chosen
delay), the reconstructed delay tables equal the
:class:`~repro.core.schedule.DelaySchedule` the caller got, and the
simulator emits one span per stage with the paper's Eq. (1) phase
children.
"""

import pytest

from repro.core import delay_stage_schedule
from repro.obs import (
    Tracer,
    build_manifest,
    decision_audits,
    delay_tables,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.schedulers import (
    DelayStageScheduler,
    StockSparkScheduler,
    compare_schedulers,
)
from repro.simulator import simulate_job


def _schedule_instants(doc):
    return [
        ev for ev in doc["traceEvents"]
        if ev.get("ph") in ("i", "I") and ev.get("name") == "schedule"
    ]


def test_audit_reconstructs_delay_table(diamond_job, small_cluster):
    tracer = Tracer()
    schedule = delay_stage_schedule(diamond_job, small_cluster, tracer=tracer)
    doc = to_chrome_trace(tracer, build_manifest(seed=0, jobs=[diamond_job]))
    assert validate_chrome_trace(doc) == []
    tables = delay_tables(doc)
    assert set(tables) == {"diamond"}
    assert tables["diamond"] == pytest.approx(schedule.delays)


@pytest.mark.parametrize("fixture", ["diamond_job", "fork_join_job"])
def test_audited_chosen_delay_matches_algorithm(fixture, request, small_cluster):
    """Paper-shape DAGs: each scan's chosen delay is the table entry."""
    job = request.getfixturevalue(fixture)
    tracer = Tracer()
    schedule = delay_stage_schedule(job, small_cluster, tracer=tracer)
    doc = to_chrome_trace(tracer)
    audits = decision_audits(doc)
    assert audits, "parallel stages must produce decision audits"
    (final,) = _schedule_instants(doc)
    assert final["args"]["delays"] == pytest.approx(schedule.delays)
    assert final["args"]["predicted_makespan"] == pytest.approx(
        schedule.predicted_makespan)
    if not final["args"]["fallback_applied"]:
        for audit in audits:
            assert schedule.delays[audit["stage_id"]] == pytest.approx(
                audit["chosen_delay"])


def test_audit_scan_internals(fork_join_job, small_cluster):
    tracer = Tracer()
    delay_stage_schedule(fork_join_job, small_cluster, tracer=tracer)
    for audit in decision_audits(to_chrome_trace(tracer)):
        lo, hi = audit["bounds"]
        assert lo <= audit["chosen_delay"] <= hi
        assert len(audit["candidates"]) == len(audit["predicted_makespans"])
        assert audit["candidates"], "at least one candidate is evaluated"
        assert audit["pruned"] >= 0
        assert audit["chosen_delay"] in audit["candidates"]
        assert audit["best_makespan"] == pytest.approx(
            min(audit["predicted_makespans"]))
    assert tracer.counters.get("alg1.scans") == len(
        decision_audits(to_chrome_trace(tracer)))


def test_sequential_job_audits_empty_table(chain_job, small_cluster):
    tracer = Tracer()
    schedule = delay_stage_schedule(chain_job, small_cluster, tracer=tracer)
    assert all(x == 0.0 for x in schedule.delays.values())
    doc = to_chrome_trace(tracer)
    assert decision_audits(doc) == []
    assert delay_tables(doc) == {"chain": {}}


def test_simulation_emits_phase_spans(diamond_job, small_cluster):
    tracer = Tracer()
    res = simulate_job(diamond_job, small_cluster, tracer=tracer)

    job_spans = [s for s in tracer.spans if s.cat == "job"]
    assert len(job_spans) == 1
    assert job_spans[0].dur == pytest.approx(res.makespan)

    stage_spans = {s.name: s for s in tracer.spans if s.cat == "stage"}
    assert set(stage_spans) == {"S1", "S2", "S3", "S4"}
    for sid, span in stage_spans.items():
        rec = res.stage("diamond", sid)
        assert span.parent_id == job_spans[0].span_id
        assert span.ts == pytest.approx(rec.ready_time)
        children = {c.name: c for c in tracer.spans
                    if c.parent_id == span.span_id}
        assert set(children) == {"delay-wait", "shuffle-read", "compute",
                                 "disk-write"}
        assert children["shuffle-read"].ts == pytest.approx(rec.submit_time)
        assert children["shuffle-read"].dur == pytest.approx(
            rec.read_done_time - rec.submit_time)
        assert children["compute"].dur == pytest.approx(
            rec.compute_done_time - rec.read_done_time)
        assert children["disk-write"].dur == pytest.approx(
            rec.finish_time - rec.compute_done_time)
        assert children["delay-wait"].dur == pytest.approx(
            rec.submit_time - rec.ready_time)


def test_simulation_emits_node_counter_tracks(diamond_job, small_cluster):
    tracer = Tracer()
    simulate_job(diamond_job, small_cluster, tracer=tracer)
    sample_procs = {s.track[0] for s in tracer.samples}
    for node_id in small_cluster.worker_ids:
        assert f"sim/node:{node_id}" in sample_procs
    assert {s.name for s in tracer.samples} >= {"cpu_busy", "net_in"}


def test_result_counters_always_present(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    assert res.counters["jobs_completed"] == 1
    assert res.counters["stages_completed"] == 4
    assert res.counters["engine_events"] > 0
    assert res.counters["makespan_seconds"] == pytest.approx(res.makespan)
    assert 0.0 < res.counters["busy_fraction.cpu"] <= 1.0


def test_compare_shares_one_trace(diamond_job, small_cluster):
    tracer = Tracer()
    runs = compare_schedulers(
        diamond_job,
        small_cluster,
        [StockSparkScheduler(track_metrics=False),
         DelayStageScheduler(profiled=False, track_metrics=False)],
        tracer=tracer,
    )
    doc = to_chrome_trace(tracer, build_manifest(seed=0, jobs=[diamond_job]))
    assert validate_chrome_trace(doc) == []
    # Each strategy's run lands on its own scope; the decision audit is
    # DelayStage's alone, and its table equals the prepared schedule.
    procs = {s.track[0] for s in tracer.spans}
    assert {"spark", "delaystage", "scheduler"} <= procs
    expected = runs["delaystage"].info["schedule"].delays
    assert delay_tables(doc)["diamond"] == pytest.approx(expected)


def test_untraced_runs_record_nothing(diamond_job, small_cluster):
    res = simulate_job(diamond_job, small_cluster)
    assert res.counters  # counters are free and always on
    schedule = delay_stage_schedule(diamond_job, small_cluster)
    assert schedule.delays  # tracing off changes no behaviour
