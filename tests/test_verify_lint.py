"""Tests for the custom AST lint (repro.verify.lint)."""

from __future__ import annotations

import json
import pathlib
import textwrap

from repro.verify.lint import lint_paths, lint_source, main

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def rules_in(source, path="src/repro/x.py"):
    return [f.rule for f in lint_source(textwrap.dedent(source), path)]


# ------------------------------------------------------------------ #
# L001 determinism
# ------------------------------------------------------------------ #

class TestDeterminism:
    def test_stdlib_random_flagged(self):
        assert rules_in("""
            import random
            x = random.randint(0, 10)
        """) == ["L001"]

    def test_random_import_alias_tracked(self):
        assert rules_in("""
            import random as rnd
            rnd.shuffle([1, 2])
        """) == ["L001"]

    def test_from_random_import_flagged(self):
        assert "L001" in rules_in("""
            from random import randint
        """)

    def test_time_time_flagged(self):
        assert rules_in("""
            import time
            t = time.time()
        """) == ["L001"]

    def test_perf_counter_allowed(self):
        assert rules_in("""
            import time
            t = time.perf_counter()
        """) == []

    def test_datetime_now_flagged(self):
        assert rules_in("""
            from datetime import datetime
            d = datetime.now()
        """) == ["L001"]

    def test_legacy_numpy_random_flagged(self):
        assert rules_in("""
            import numpy as np
            np.random.seed(0)
        """) == ["L001"]

    def test_default_rng_allowed(self):
        assert rules_in("""
            import numpy as np
            gen = np.random.default_rng(0)
        """) == []

    def test_rng_module_exempt(self):
        assert rules_in("""
            import random
            x = random.random()
        """, path="src/repro/util/rng.py") == []

    def test_noqa_suppresses(self):
        assert rules_in("""
            import time
            t = time.time()  # noqa: L001
        """) == []

    def test_noqa_other_rule_does_not_suppress(self):
        assert rules_in("""
            import time
            t = time.time()  # noqa: L002
        """) == ["L001"]


# ------------------------------------------------------------------ #
# L002-L004
# ------------------------------------------------------------------ #

class TestOtherRules:
    def test_mutable_default_list(self):
        assert rules_in("def f(x=[]):\n    return x\n") == ["L002"]

    def test_mutable_default_dict_call(self):
        assert rules_in("def f(*, x=dict()):\n    return x\n") == ["L002"]

    def test_none_default_ok(self):
        assert rules_in("def f(x=None):\n    return x\n") == []

    def test_bare_except(self):
        assert rules_in("""
            try:
                pass
            except:
                pass
        """) == ["L003"]

    def test_typed_except_ok(self):
        assert rules_in("""
            try:
                pass
            except ValueError:
                pass
        """) == []

    def test_float_eq_in_simulator(self):
        src = "if x != 1.0:\n    pass\n"
        assert rules_in(src, path="src/repro/simulator/foo.py") == ["L004"]
        assert rules_in(src, path="src/repro/model/foo.py") == ["L004"]

    def test_float_eq_outside_scoped_dirs_ok(self):
        assert rules_in("if x != 1.0:\n    pass\n",
                        path="src/repro/core/foo.py") == []

    def test_float_inequality_comparisons_ok(self):
        assert rules_in("if x > 1.0:\n    pass\n",
                        path="src/repro/simulator/foo.py") == []

    def test_syntax_error_reported(self):
        assert rules_in("def broken(:\n") == ["L000"]


# ------------------------------------------------------------------ #
# tree walking + CLI
# ------------------------------------------------------------------ #

class TestTree:
    def test_src_repro_is_clean(self):
        findings = lint_paths([SRC_ROOT])
        assert findings == [], "\n".join(map(str, findings))

    def test_directory_walk_finds_violations(self, tmp_path):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "good.py").write_text("x = 1\n")
        findings = lint_paths([tmp_path])
        assert [f.rule for f in findings] == ["L001"]

    def test_main_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "L002" in out and "1 finding(s)" in out
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good)]) == 0

    def test_main_json_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        assert main(["--json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "L002"
        assert payload[0]["line"] == 1

    def test_main_missing_path_clean_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "no_such_file.py")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err

    def test_tools_entry_point_runs(self, tmp_path):
        import subprocess
        import sys

        repo = SRC_ROOT.parent.parent
        proc = subprocess.run(
            [sys.executable, str(repo / "tools" / "lint_repro.py"),
             str(repo / "src" / "repro")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
