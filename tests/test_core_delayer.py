"""StageDelayer: the prototype's submission-postponing module."""

import pytest

from repro.core import StageDelayer, write_metrics_properties
from repro.core.schedule import DelaySchedule


def schedule(job_id="j", delays=None):
    return DelaySchedule(
        job_id=job_id,
        delays=delays or {"S1": 3.0, "S2": 0.0},
        predicted_makespan=10.0,
        baseline_makespan=12.0,
        paths=(),
    )


def test_from_schedule(diamond_job):
    d = StageDelayer.from_schedule(schedule("diamond", {"S2": 4.0}))
    assert d.delay(diamond_job, "S2", 0.0) == 4.0
    assert d.delay(diamond_job, "S3", 0.0) == 0.0  # untabulated
    assert "diamond" in d


def test_unknown_job_not_delayed(diamond_job):
    d = StageDelayer.from_schedule(schedule("other"))
    assert d.delay(diamond_job, "S1", 0.0) == 0.0


def test_from_schedules(diamond_job):
    d = StageDelayer.from_schedules([schedule("a"), schedule("b")])
    assert "a" in d and "b" in d


def test_from_properties(tmp_path, diamond_job):
    path = tmp_path / "metrics.properties"
    write_metrics_properties(path, "diamond", {"S3": 9.0})
    d = StageDelayer.from_properties(path)
    assert d.delay(diamond_job, "S3", 0.0) == 9.0


def test_negative_delay_rejected():
    with pytest.raises(ValueError, match="negative"):
        StageDelayer({"j": {"S1": -1.0}})


def test_table_copy_isolated():
    d = StageDelayer({"j": {"S1": 1.0}})
    table = d.table("j")
    table["S1"] = 99.0
    assert d.table("j")["S1"] == 1.0
    assert d.table("missing") == {}


def test_schedule_predicted_improvement():
    s = schedule()
    assert s.predicted_improvement == pytest.approx(1 - 10.0 / 12.0)
    zero = DelaySchedule("j", {}, 0.0, 0.0, ())
    assert zero.predicted_improvement == 0.0


def test_schedule_as_mapping_and_delayed_stages():
    s = schedule(delays={"A": 0.0, "B": 2.0, "C": 1.0})
    assert s.delayed_stages == ["B", "C"]
    assert dict(s.as_mapping()) == {"A": 0.0, "B": 2.0, "C": 1.0}
