"""Tracing overhead guard: the replay path stays within 10%.

Span emission happens once per run from the stage records (never
inside the event loop), so tracing-on should cost almost nothing over
tracing-off.  This test makes that a contract: best-of-N timing of a
trace-replay-shaped workload with tracing on must stay within 10% of
tracing off (plus a small absolute slack to absorb timer noise on
loaded CI machines).
"""

import time

from repro.core import DelayStageParams
from repro.obs import Tracer
from repro.schedulers import DelayStageScheduler, FuxiScheduler, run_with_scheduler
from repro.trace import TraceGeneratorConfig, generate_trace, to_job

REPEATS = 5


def _replay_once(jobs, cluster, schedulers, tracer):
    for job in jobs:
        for scheduler in schedulers:
            run_with_scheduler(job, cluster, scheduler, tracer)


def _best_time(jobs, cluster, schedulers, make_tracer):
    best = float("inf")
    for _ in range(REPEATS):
        tracer = make_tracer()
        t0 = time.perf_counter()
        _replay_once(jobs, cluster, schedulers, tracer)
        best = min(best, time.perf_counter() - t0)
    return best


def test_tracing_overhead_under_ten_percent(tiny_cluster):
    trace = generate_trace(
        TraceGeneratorConfig(num_jobs=8, replay_workers=2, max_stages=20),
        rng=0,
    )
    jobs = [to_job(tj) for tj in trace[:4]]
    schedulers = [
        FuxiScheduler(track_metrics=False),
        DelayStageScheduler(profiled=False, track_metrics=False,
                            params=DelayStageParams(max_slots=8)),
    ]

    # Warm-up removes import/JIT-cache effects from the measurement.
    _replay_once(jobs, tiny_cluster, schedulers, None)

    t_off = _best_time(jobs, tiny_cluster, schedulers, lambda: None)
    t_on = _best_time(jobs, tiny_cluster, schedulers, Tracer)

    # The 25 ms absolute slack covers scheduler jitter when t_off is
    # tiny; the 1.10 factor is the contract for realistic run lengths.
    assert t_on <= t_off * 1.10 + 0.025, (
        f"tracing overhead too high: on={t_on:.4f}s off={t_off:.4f}s "
        f"({t_on / t_off - 1:.1%})"
    )


def test_traced_replay_records_all_runs(tiny_cluster):
    trace = generate_trace(
        TraceGeneratorConfig(num_jobs=4, replay_workers=2, max_stages=12),
        rng=1,
    )
    jobs = [to_job(tj) for tj in trace[:2]]
    tracer = Tracer()
    scheduler = DelayStageScheduler(profiled=False, track_metrics=False,
                                    params=DelayStageParams(max_slots=8))
    for job in jobs:
        run_with_scheduler(job, tiny_cluster, scheduler, tracer)
    job_spans = [s for s in tracer.spans if s.cat == "job"]
    assert {s.name for s in job_spans} == {j.job_id for j in jobs}
