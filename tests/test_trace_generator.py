"""Statistical twin: the published Alibaba-trace marginals must hold.

These are the load-bearing tests of the substitution argument in
DESIGN.md — each asserts one statistic the paper reports.
"""

import numpy as np
import pytest

from repro.trace import (
    TraceGeneratorConfig,
    generate_machine_usage,
    generate_trace,
    parallel_makespan_fraction,
    stage_count_summary,
    stage_runtime_range,
)
from repro.trace.analysis import machine_low_utilization_fraction


@pytest.fixture(scope="module")
def trace():
    return generate_trace(TraceGeneratorConfig(num_jobs=1500), rng=42)


@pytest.fixture(scope="module")
def summary(trace):
    return stage_count_summary(trace)


def test_fraction_jobs_with_parallel_stages(summary):
    """Paper Sec. 2.1: 68.6 % of jobs have parallel stages."""
    assert summary.fraction_jobs_with_parallel == pytest.approx(0.686, abs=0.05)


def test_parallel_stage_fraction(summary):
    """Paper Sec. 2.1: parallel stages are ~79.1 % of all stages."""
    assert summary.parallel_stage_fraction == pytest.approx(0.791, abs=0.06)


def test_ninety_percent_under_15_parallel(summary):
    """Paper Sec. 4.1: ~90 % of jobs have < 15 parallel stages."""
    p90 = np.percentile(summary.parallel_per_job, 90)
    assert p90 < 15


def test_stage_counts_span(summary):
    """Paper Sec. 5.3: stage counts reach into the 4-186 range."""
    assert summary.stages_per_job.max() > 50
    assert summary.stages_per_job.max() <= 186
    assert summary.stages_per_job.min() >= 1


def test_stage_runtimes_mostly_10_to_3000(trace):
    p01, p99, durations = stage_runtime_range(trace)
    # Parallel-branch stages are clipped to [10, 3000]; sequential
    # head/tail stages are scaled shorter, sibling jitter is +-10%.
    assert durations.min() >= 3.0
    assert durations.max() <= 3300.0
    assert p99 > 500.0  # heavy tail present


def test_parallel_makespan_dominates(trace):
    """Paper Fig. 3: makespan of parallel stages > 60 % of JCT for over
    80 % of (parallel) jobs; average ~82.3 %."""
    fr = np.array([f for f in (parallel_makespan_fraction(j) for j in trace) if f > 0])
    assert np.mean(fr > 0.6) > 0.80
    assert fr.mean() == pytest.approx(0.823, abs=0.07)


def test_jobs_deterministic_by_seed():
    a = generate_trace(TraceGeneratorConfig(num_jobs=50), rng=9)
    b = generate_trace(TraceGeneratorConfig(num_jobs=50), rng=9)
    assert [j.num_stages for j in a] == [j.num_stages for j in b]
    assert a[0].stages[0].input_mb == b[0].stages[0].input_mb


def test_arrivals_within_span(trace):
    span = TraceGeneratorConfig().span_seconds
    assert all(0 <= j.submit_time <= span for j in trace)
    submits = [j.submit_time for j in trace]
    assert submits == sorted(submits)


def test_volumes_attached_for_replay(trace):
    for job in trace[:20]:
        for s in job.stages:
            assert s.input_mb >= 1.0
            assert s.output_mb >= 1.0
            assert s.process_rate_mb > 0


def test_edges_reference_known_stages(trace):
    for job in trace[:100]:
        ids = {s.stage_id for s in job.stages}
        for a, b in job.edges:
            assert a in ids and b in ids


# --------------------------- machine usage ---------------------------- #


@pytest.fixture(scope="module")
def usage():
    return generate_machine_usage(num_machines=80, span_seconds=2 * 86400, rng=7)


def test_cluster_cpu_band(usage):
    """Paper Fig. 4(a): cluster-average CPU roughly 20-50 %."""
    _t, cpu, _net = usage
    avg = cpu.mean(axis=0)
    assert 15.0 < avg.mean() < 50.0
    assert avg.min() > 10.0
    assert avg.max() < 65.0


def test_cluster_net_band(usage):
    """Paper Fig. 4(a): cluster-average network roughly 30-45 %."""
    _t, _cpu, net = usage
    avg = net.mean(axis=0)
    assert 25.0 < avg.mean() < 50.0


def test_single_machine_fluctuates(usage):
    """Paper Fig. 4(b): an individual machine swings between idle and
    high utilization."""
    _t, cpu, _net = usage
    assert cpu[0].max() > 45.0
    assert cpu[0].min() < 10.0


def test_low_utilization_fraction(usage):
    """Paper Sec. 2.1: a worker spends ~39 % of time below 10 % CPU."""
    _t, cpu, _net = usage
    fracs = [machine_low_utilization_fraction(cpu[i]) for i in range(cpu.shape[0])]
    assert np.mean(fracs) == pytest.approx(0.39, abs=0.12)


def test_usage_shapes(usage):
    t, cpu, net = usage
    assert cpu.shape == net.shape == (80, len(t))
    assert np.all((cpu >= 0) & (cpu <= 100))
    assert np.all((net >= 0) & (net <= 100))
