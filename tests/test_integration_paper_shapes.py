"""End-to-end shape assertions against the paper's headline claims.

These run the real workloads on the paper's cluster configurations, so
they are the slowest tests in the suite (a few seconds each).  Each
assertion is deliberately a *band*, not a point estimate — the paper's
absolute numbers came from EC2 hardware; what must reproduce is who
wins and by roughly what factor (see EXPERIMENTS.md).
"""

import pytest

from repro.cluster import ec2_m4large_cluster, uniform_cluster
from repro.dag import parallel_stage_set
from repro.schedulers import (
    AggShuffleScheduler,
    DelayStageScheduler,
    StockSparkScheduler,
    compare_schedulers,
    run_with_scheduler,
)
from repro.workloads import WORKLOADS, als


@pytest.fixture(scope="module")
def ec2():
    return ec2_m4large_cluster()


@pytest.fixture(scope="module")
def workload_runs(ec2):
    """All four workloads under the three schedulers (computed once)."""
    runs = {}
    for name, ctor in WORKLOADS.items():
        runs[name] = compare_schedulers(
            ctor(),
            ec2,
            [
                StockSparkScheduler(track_metrics=False),
                AggShuffleScheduler(track_metrics=False),
                DelayStageScheduler(profiled=False, track_metrics=False),
            ],
        )
    return runs


def test_delaystage_beats_spark_on_every_workload(workload_runs):
    """Fig. 10: DelayStage reduces JCT by 17.5-41.3 % vs stock Spark."""
    for name, runs in workload_runs.items():
        gain = 1 - runs["delaystage"].jct / runs["spark"].jct
        assert 0.10 < gain < 0.50, f"{name}: gain {gain:.1%} out of band"


def test_delaystage_beats_aggshuffle(workload_runs):
    """Fig. 10: DelayStage also beats AggShuffle on every workload."""
    for name, runs in workload_runs.items():
        assert runs["delaystage"].jct < runs["aggshuffle"].jct, name


def test_aggshuffle_between_spark_and_delaystage_on_shuffle_heavy(workload_runs):
    """AggShuffle helps the heterogeneous-task, shuffle-heavy graph
    workloads but not LDA (Sec. 5.2)."""
    for name in ("CosineSimilarity", "TriangleCount", "ConnectedComponents"):
        runs = workload_runs[name]
        assert runs["aggshuffle"].jct < runs["spark"].jct, name
    lda_runs = workload_runs["LDA"]
    lda_gain = 1 - lda_runs["aggshuffle"].jct / lda_runs["spark"].jct
    assert lda_gain < 0.05  # trivial or negative, per the paper


def test_connected_components_smallest_gain(workload_runs):
    """The paper's explanation: sequential stages dominate
    ConnectedComponents, so it benefits least."""
    gains = {
        name: 1 - runs["delaystage"].jct / runs["spark"].jct
        for name, runs in workload_runs.items()
    }
    assert min(gains, key=gains.get) == "ConnectedComponents"


def test_triangle_count_largest_gain(workload_runs):
    gains = {
        name: 1 - runs["delaystage"].jct / runs["spark"].jct
        for name, runs in workload_runs.items()
    }
    assert max(gains, key=gains.get) == "TriangleCount"


def test_delayed_stages_match_paper(workload_runs):
    """The paper names the delayed stages: S1 for ConnectedComponents,
    S1 (+S2) for CosineSimilarity, S1/S2-side for LDA."""
    con = workload_runs["ConnectedComponents"]["delaystage"].info["schedule"]
    assert "S1" in con.delayed_stages
    cos = workload_runs["CosineSimilarity"]["delaystage"].info["schedule"]
    assert "S1" in cos.delayed_stages
    # The long path's stages are never delayed.
    assert con.delays.get("S2", 0.0) == 0.0
    assert cos.delays.get("S3", 0.0) == 0.0


def test_als_motivation_example():
    """Figs. 5-6: ALS on a 3-node cluster; delaying Stages 2 and 3
    shortens the job by roughly the paper's 133 s -> 104 s."""
    cluster = uniform_cluster(3, executors_per_worker=2, nic_mbps=450,
                              disk_mb_per_sec=150, storage_nodes=0)
    job = als()
    runs = compare_schedulers(
        job,
        cluster,
        [StockSparkScheduler(track_metrics=False),
         DelayStageScheduler(profiled=False, track_metrics=False)],
    )
    spark, ds = runs["spark"].jct, runs["delaystage"].jct
    assert 100 < spark < 170  # paper: 133 s
    gain = 1 - ds / spark
    assert 0.10 < gain < 0.35  # paper: ~22 %
    delayed = runs["delaystage"].info["schedule"].delayed_stages
    assert set(delayed) == {"S2", "S3"}


def test_profiled_pipeline_close_to_oracle(ec2):
    """Planning on 10 %-sample profiles (3 % noise) should land near
    the oracle planner's result — the paper's 9.1 % model error does
    not destroy the schedule."""
    job = WORKLOADS["LDA"]()
    oracle = run_with_scheduler(
        job, ec2, DelayStageScheduler(profiled=False, track_metrics=False)
    ).jct
    profiled = run_with_scheduler(
        job, ec2, DelayStageScheduler(profiled=True, rng=0, track_metrics=False)
    ).jct
    assert profiled == pytest.approx(oracle, rel=0.15)
    spark = run_with_scheduler(job, ec2, StockSparkScheduler(track_metrics=False)).jct
    assert profiled < spark
