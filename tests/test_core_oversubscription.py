"""Oversubscribed-core network model."""

import numpy as np
import pytest

from repro.cluster import Topology, uniform_cluster
from repro.dag import JobBuilder
from repro.simulator import Simulation, SimulationConfig
from repro.simulator.fairshare import maxmin_network_rates
from repro.simulator.flows import NetworkFlow


def topo_with_core(core_mb=50e6, nic_mbps=800):
    cluster = uniform_cluster(4, nic_mbps=nic_mbps)
    topo = Topology(cluster)
    topo.set_core_oversubscription(
        {"w0": 0, "w1": 0, "w2": 1, "w3": 1}, core_capacity=core_mb
    )
    return cluster, topo


def flow(src, dst):
    return NetworkFlow(src, dst, 1.0, ("j", "s"))


def test_cross_rack_flows_share_core():
    _c, topo = topo_with_core(core_mb=50e6)
    rates = maxmin_network_rates([flow("w0", "w2"), flow("w1", "w3")], topo)
    assert rates[0] + rates[1] == pytest.approx(50e6)
    assert rates[0] == pytest.approx(rates[1])


def test_intra_rack_unconstrained():
    # Wide NICs so only the core binds: the cross-rack flow is capped at
    # the core while the intra-rack flow keeps its NIC share.
    _c, topo = topo_with_core(core_mb=50e6, nic_mbps=1600)
    rates = maxmin_network_rates(
        [flow("w0", "w2"), flow("w1", "w0")], topo
    )
    assert rates[0] == pytest.approx(50e6)
    assert rates[1] > rates[0]


def test_core_wider_than_nics_is_noop():
    cluster = uniform_cluster(4, nic_mbps=100)
    topo_plain = Topology(cluster)
    topo_core = Topology(cluster)
    topo_core.set_core_oversubscription(
        {"w0": 0, "w1": 0, "w2": 1, "w3": 1}, core_capacity=1e12
    )
    flows = [flow("w0", "w2"), flow("w1", "w3"), flow("w0", "w1")]
    a = maxmin_network_rates(flows, topo_plain)
    b = maxmin_network_rates(
        [flow("w0", "w2"), flow("w1", "w3"), flow("w0", "w1")], topo_core
    )
    assert np.allclose(a, b)


def test_released_core_capacity_redistributed():
    """A cap-limited cross-rack flow frees core capacity for others."""
    _c, topo = topo_with_core(core_mb=50e6)
    capped = NetworkFlow("w0", "w2", 1.0, ("j", "s"), rate_cap=10e6)
    other = flow("w1", "w3")
    rates = maxmin_network_rates([capped, other], topo)
    assert rates[0] == pytest.approx(10e6)
    assert rates[1] == pytest.approx(40e6)


def test_racks_must_cover_all_nodes():
    cluster = uniform_cluster(2)
    topo = Topology(cluster)
    with pytest.raises(ValueError, match="missing"):
        topo.set_core_oversubscription({"w0": 0}, core_capacity=1.0)
    with pytest.raises(ValueError):
        topo.set_core_oversubscription({"w0": 0, "w1": 1}, core_capacity=0.0)


def test_simulation_with_oversubscribed_core():
    """End to end: a tighter core slows the shuffle-bound job."""
    cluster = uniform_cluster(4, storage_nodes=0, nic_mbps=800)
    job = (
        JobBuilder("c")
        .stage("A", input_mb=512, output_mb=1024, process_rate_mb=50)
        .stage("B", input_mb=1024, output_mb=64, process_rate_mb=50, parents=["A"])
        .build()
    )
    racks = {"w0": 0, "w1": 0, "w2": 1, "w3": 1}

    def run(core_mbps):
        sim = Simulation(cluster, SimulationConfig(track_metrics=False))
        if core_mbps is not None:
            sim.topology.set_core_oversubscription(racks, core_mbps * 1e6 / 8)
        sim.add_job(job)
        return sim.run().job_completion_time("c")

    open_core = run(None)
    tight = run(100)
    assert tight > open_core
