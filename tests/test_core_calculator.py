"""DelayTimeCalculator: the full profile -> plan -> persist pipeline."""

import pytest

from repro.core import DelayTimeCalculator, StageDelayer, read_metrics_properties
from repro.core.delaystage import DelayStageParams
from repro.dag import parallel_stage_set
from repro.simulator import FixedDelayPolicy, simulate_job


def test_compute_produces_schedule(fork_join_job, small_cluster):
    calc = DelayTimeCalculator(small_cluster, rng=0)
    schedule = calc.compute(fork_join_job)
    assert set(schedule.delays) == parallel_stage_set(fork_join_job)
    assert calc.last_profile is not None


def test_oracle_calculator_improves_contended_job(small_cluster):
    from repro.dag import JobBuilder

    job = (
        JobBuilder("cal")
        .stage("S1", input_mb=1024, output_mb=512, process_rate_mb=8)
        .stage("S2", input_mb=1024, output_mb=2048, process_rate_mb=8)
        .stage("S3", input_mb=2048, output_mb=512, process_rate_mb=16, parents=["S2"])
        .stage("S4", input_mb=1024, output_mb=128, process_rate_mb=16, parents=["S1", "S3"])
        .build()
    )
    calc = DelayTimeCalculator(
        small_cluster, profiling_noise=0.0, measurement_noise=0.0, rng=0
    )
    schedule = calc.compute(job)
    base = simulate_job(job, small_cluster).job_completion_time("cal")
    delayed = simulate_job(
        job, small_cluster, FixedDelayPolicy(schedule.delays)
    ).job_completion_time("cal")
    assert delayed < base


def test_compute_with_cached_profile(fork_join_job, small_cluster):
    calc = DelayTimeCalculator(small_cluster, rng=0)
    profile = calc.profile(fork_join_job)
    schedule = calc.compute(fork_join_job, profile=profile)
    assert set(schedule.delays) == parallel_stage_set(fork_join_job)


def test_compute_and_store_roundtrips(fork_join_job, small_cluster, tmp_path):
    path = tmp_path / "metrics.properties"
    calc = DelayTimeCalculator(small_cluster, rng=0)
    schedule = calc.compute_and_store(fork_join_job, path)
    loaded = read_metrics_properties(path)
    assert loaded["forkjoin"] == pytest.approx(schedule.delays)
    delayer = StageDelayer.from_properties(path)
    for sid, x in schedule.delays.items():
        assert delayer.delay(fork_join_job, sid, 0.0) == pytest.approx(x)


def test_noisy_calculator_is_deterministic_by_seed(fork_join_job, small_cluster):
    a = DelayTimeCalculator(small_cluster, rng=11).compute(fork_join_job)
    b = DelayTimeCalculator(small_cluster, rng=11).compute(fork_join_job)
    assert a.delays == b.delays


def test_custom_params_forwarded(fork_join_job, small_cluster):
    params = DelayStageParams(max_slots=4)
    calc = DelayTimeCalculator(small_cluster, params=params, rng=0)
    schedule = calc.compute(fork_join_job)
    k = len(parallel_stage_set(fork_join_job))
    assert schedule.evaluations <= k * (params.max_slots + 2) + 2
