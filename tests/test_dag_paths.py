"""Execution-path decomposition (paper Fig. 7 semantics)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dag import ExecutionPath, Job, execution_paths, parallel_stage_set
from repro.workloads import random_job

from testutil import make_job, make_stage


def fig7_job():
    """The paper's Fig. 7: S1->S3, S2->S3, S4 parallel, S5 after all."""
    return make_job(
        "fig7",
        [("S1", "S3"), ("S2", "S3"), ("S3", "S5"), ("S4", "S5")],
    )


def test_fig7_decomposition():
    job = fig7_job()
    times = {"S1": 20.0, "S2": 10.0, "S3": 30.0, "S4": 20.0}
    paths = execution_paths(job, times)
    as_sets = [p.stages for p in paths]
    # P1 = {S1, S3}, P2 = {S2, S3} (S3 shared), P3 = {S4}; S5 excluded.
    assert ("S1", "S3") in as_sets
    assert ("S2", "S3") in as_sets
    assert ("S4",) in as_sets
    assert len(paths) == 3


def test_fig7_path_times_and_order():
    job = fig7_job()
    times = {"S1": 20.0, "S2": 10.0, "S3": 30.0, "S4": 20.0}
    paths = execution_paths(job, times)
    assert [p.execution_time for p in paths] == [50.0, 40.0, 20.0]
    assert paths[0].stages == ("S1", "S3")


def test_stage5_not_in_any_path():
    job = fig7_job()
    paths = execution_paths(job, {"S1": 1, "S2": 1, "S3": 1, "S4": 1})
    assert all("S5" not in p for p in paths)


def test_chain_job_has_no_paths(chain_job):
    assert execution_paths(chain_job) == []


def test_single_parallel_pair(diamond_job):
    paths = execution_paths(diamond_job)
    assert sorted(p.stages for p in paths) == [("S2",), ("S3",)]


def test_default_times_use_compute_work(fork_join_job):
    paths = execution_paths(fork_join_job)
    # A and C have equal work > B; deterministic tiebreak by stages.
    assert paths[0].execution_time >= paths[-1].execution_time


def test_missing_stage_times_rejected(diamond_job):
    with pytest.raises(ValueError, match="missing"):
        execution_paths(diamond_job, {"S2": 1.0})


def test_execution_path_dunder():
    p = ExecutionPath(("A", "B"), 3.0)
    assert len(p) == 2
    assert list(p) == ["A", "B"]
    assert "A" in p and "C" not in p


def test_greedy_cover_on_wide_dag():
    """With a tiny max_paths budget the cover must still hit every
    parallel stage."""
    edges = []
    for i in range(6):
        edges.append((f"A{i}", "J"))
        edges.append((f"B{i}", f"A{i}"))
    job = make_job("wide", edges)
    members = parallel_stage_set(job)
    paths = execution_paths(job, {m: 1.0 for m in members}, max_paths=2)
    covered = {sid for p in paths for sid in p}
    assert covered == members


@given(
    st.integers(min_value=2, max_value=18),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_paths_cover_parallel_set_and_respect_edges(n, seed):
    job = random_job(n, parallelism=0.6, rng=seed)
    members = parallel_stage_set(job)
    paths = execution_paths(job)
    covered = {sid for p in paths for sid in p}
    assert covered == members
    # Each path is a dependency chain: consecutive stages are connected.
    for p in paths:
        for a, b in zip(p.stages, p.stages[1:]):
            assert b in job.children(a)


@given(
    st.integers(min_value=2, max_value=18),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_paths_sorted_descending(n, seed):
    job = random_job(n, parallelism=0.6, rng=seed)
    paths = execution_paths(job)
    times = [p.execution_time for p in paths]
    assert times == sorted(times, reverse=True)
