"""Topology: index mapping, capacities, pair overrides."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Topology, uniform_cluster
from repro.core import read_metrics_properties, write_metrics_properties
from repro.simulator.fairshare import maxmin_network_rates
from repro.simulator.flows import NetworkFlow


def test_index_covers_all_nodes():
    cluster = uniform_cluster(3, storage_nodes=2)
    topo = Topology(cluster)
    assert set(topo.index) == set(cluster.node_ids)
    assert topo.num_nodes == 5
    assert len(topo.egress_capacity) == 5


def test_capacities_match_spec():
    cluster = uniform_cluster(2, nic_mbps=100)
    topo = Topology(cluster)
    assert topo.egress_capacity[topo.index["w0"]] == pytest.approx(
        cluster.node("w0").nic_bandwidth
    )
    assert np.array_equal(topo.egress_capacity, topo.ingress_capacity)


def test_pair_capacity_lookup():
    cluster = uniform_cluster(2, storage_nodes=1)
    topo = Topology(cluster)
    base = topo.pair_capacity(topo.index["w0"], topo.index["w1"])
    topo.set_pair_capacity("w0", "w1", base / 10)
    assert topo.pair_capacity(topo.index["w0"], topo.index["w1"]) == pytest.approx(base / 10)
    # Other direction unaffected.
    assert topo.pair_capacity(topo.index["w1"], topo.index["w0"]) == pytest.approx(base)


def test_pair_capacity_validation():
    topo = Topology(uniform_cluster(2))
    with pytest.raises(ValueError):
        topo.set_pair_capacity("w0", "w1", 0.0)
    with pytest.raises(KeyError):
        topo.set_pair_capacity("zzz", "w1", 1.0)


def test_pair_cap_array_with_overrides():
    cluster = uniform_cluster(3)
    topo = Topology(cluster)
    topo.set_pair_capacity("w0", "w1", 5.0)
    src = np.array([topo.index["w0"], topo.index["w1"]])
    dst = np.array([topo.index["w1"], topo.index["w2"]])
    caps = topo.pair_cap_array(src, dst)
    assert caps[0] == pytest.approx(5.0)
    assert caps[1] == pytest.approx(cluster.node("w1").nic_bandwidth)


def test_pair_caps_respected_by_waterfilling():
    cluster = uniform_cluster(3)
    topo = Topology(cluster)
    topo.set_pair_capacity("w0", "w1", 1000.0)
    flows = [
        NetworkFlow("w0", "w1", 1.0, ("j", "s")),
        NetworkFlow("w0", "w2", 1.0, ("j", "s")),
    ]
    rates = maxmin_network_rates(flows, topo)
    assert rates[0] == pytest.approx(1000.0)
    assert rates[1] > rates[0]  # freed capacity goes to the other flow


# Bonus hypothesis round-trip on the properties format with odd ids.
@given(
    st.dictionaries(
        st.text(
            alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters="-_"),
            min_size=1,
            max_size=12,
        ),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=0,
        max_size=8,
    )
)
@settings(max_examples=30, deadline=None)
def test_properties_roundtrip_hypothesis(tmp_path_factory, delays):
    path = tmp_path_factory.mktemp("props") / "metrics.properties"
    write_metrics_properties(path, "job", delays)
    loaded = read_metrics_properties(path, "job")["job"]
    assert set(loaded) == set(delays)
    for sid, x in delays.items():
        assert loaded[sid] == pytest.approx(x, abs=1e-6)
