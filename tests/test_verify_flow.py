"""Golden-findings tests for the whole-program flow analyzer."""

from __future__ import annotations

import json
import pathlib
import shutil
import subprocess
import sys
import textwrap

import pytest

from repro.verify.flow import (
    Baseline,
    BaselineEntry,
    FlowConfig,
    analyze_project,
)

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC_REPRO = REPO / "src" / "repro"
BASELINE = REPO / "tools" / "flow_baseline.json"


def write_project(tmp_path, files: dict[str, str]) -> pathlib.Path:
    """Materialize a synthetic package under ``tmp_path / proj``."""
    proj = tmp_path / "proj"
    for rel, source in files.items():
        path = proj / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        init = path.parent / "__init__.py"
        if not init.exists():
            init.write_text("")
    if not (proj / "__init__.py").exists():
        (proj / "__init__.py").write_text("")
    return proj


def analyze(tmp_path, files, **cfg):
    cfg.setdefault("critical_zones", ("scheduler", "simulator"))
    proj = write_project(tmp_path, files)
    return analyze_project(proj, config=FlowConfig(**cfg))


def findings_of(result, rule=None):
    fs = list(result.report)
    if rule is not None:
        fs = [f for f in fs if f.rule == rule]
    return fs


# ------------------------------------------------------------------ #
# taint sources: one golden fixture per rule class
# ------------------------------------------------------------------ #


class TestTaintSources:
    def test_wallclock_f001_with_location(self, tmp_path):
        r = analyze(tmp_path, {"mod.py": """
            import time

            def stamp():
                return time.time()
        """})
        (f,) = findings_of(r, "F001")
        assert f.details["path"] == "proj/mod.py"
        assert f.details["line"] == 5
        assert f.details["function"] == "stamp"

    def test_perf_counter_sanctioned(self, tmp_path):
        r = analyze(tmp_path, {"mod.py": """
            import time

            def tick():
                return time.perf_counter()
        """})
        assert findings_of(r) == []

    def test_datetime_now_f001(self, tmp_path):
        r = analyze(tmp_path, {"mod.py": """
            from datetime import datetime

            def stamp():
                return datetime.now()
        """})
        assert [f.rule for f in findings_of(r)] == ["F001"]

    def test_stdlib_random_f002(self, tmp_path):
        r = analyze(tmp_path, {"mod.py": """
            import random

            def draw():
                return random.random()
        """})
        (f,) = findings_of(r, "F002")
        assert f.details["line"] == 5

    def test_numpy_legacy_f002(self, tmp_path):
        r = analyze(tmp_path, {"mod.py": """
            import numpy as np

            def draw():
                return np.random.rand(3)
        """})
        assert [f.rule for f in findings_of(r)] == ["F002"]

    def test_unseeded_default_rng_f002(self, tmp_path):
        r = analyze(tmp_path, {"mod.py": """
            import numpy as np

            def gen():
                return np.random.default_rng()
        """})
        assert [f.rule for f in findings_of(r)] == ["F002"]

    def test_seeded_default_rng_clean(self, tmp_path):
        r = analyze(tmp_path, {"mod.py": """
            import numpy as np

            def gen(seed):
                return np.random.default_rng(seed)
        """})
        assert findings_of(r) == []

    def test_rng_module_exempt(self, tmp_path):
        r = analyze(tmp_path, {"util/rng.py": """
            import numpy as np

            def resolve_rng(rng):
                if rng is None:
                    return np.random.default_rng()
                return np.random.default_rng(int(rng))
        """}, exempt_suffixes=("util/rng.py",))
        assert findings_of(r) == []

    def test_listdir_f003(self, tmp_path):
        r = analyze(tmp_path, {"mod.py": """
            import os

            def names(d):
                return os.listdir(d)
        """})
        assert [f.rule for f in findings_of(r)] == ["F003"]

    def test_sorted_listdir_sanctioned(self, tmp_path):
        r = analyze(tmp_path, {"mod.py": """
            import os
            import glob

            def names(d):
                return sorted(os.listdir(d)) + sorted(glob.glob(d))
        """})
        assert findings_of(r) == []

    def test_rglob_f003_and_sorted_sanctioned(self, tmp_path):
        r = analyze(tmp_path, {"mod.py": """
            def walk(root):
                return list(root.rglob("*.py"))

            def walk_ok(root):
                return sorted(root.rglob("*.py"))
        """})
        fs = findings_of(r, "F003")
        assert [f.details["function"] for f in fs] == ["walk"]

    def test_environ_f004(self, tmp_path):
        r = analyze(tmp_path, {"mod.py": """
            import os

            def debug():
                return os.environ.get("DEBUG", "")

            def home():
                return os.environ["HOME"]
        """})
        assert [f.rule for f in findings_of(r)] == ["F004", "F004"]

    def test_set_iteration_escape_f005(self, tmp_path):
        r = analyze(tmp_path, {"mod.py": """
            def leak(items):
                out = []
                for x in set(items):
                    out.append(x)
                return out
        """})
        assert [f.rule for f in findings_of(r)] == ["F005"]

    def test_sorted_set_iteration_sanctioned(self, tmp_path):
        r = analyze(tmp_path, {"mod.py": """
            def ordered(items):
                out = []
                for x in sorted(set(items)):
                    out.append(x)
                return out

            def aggregate(items):
                total = 0
                for x in set(items):
                    total += x
                return total
        """})
        assert findings_of(r) == []

    def test_id_keyed_f006(self, tmp_path):
        r = analyze(tmp_path, {"mod.py": """
            def key_by_identity(objs):
                return {id(o): o for o in objs}
        """})
        assert [f.rule for f in findings_of(r)] == ["F006"]


# ------------------------------------------------------------------ #
# interprocedural taint (F007)
# ------------------------------------------------------------------ #


class TestInterprocedural:
    def test_taint_chain_reaches_critical_zone(self, tmp_path):
        r = analyze(tmp_path, {
            "util/clock.py": """
                import time

                def now():
                    return time.time()
            """,
            "scheduler/plan.py": """
                from proj.util.clock import now

                def plan(job):
                    return now() + 1.0
            """,
        })
        rules = sorted(f.rule for f in findings_of(r))
        assert rules == ["F001", "F007"]
        (f7,) = findings_of(r, "F007")
        assert f7.details["path"] == "proj/scheduler/plan.py"
        assert f7.details["chain"] == [
            "proj.scheduler.plan.plan", "proj.util.clock.now"]
        assert f7.details["source_symbol"] == "time.time"

    def test_method_dispatch_taints_through_hierarchy(self, tmp_path):
        r = analyze(tmp_path, {
            "scheduler/base.py": """
                class Scheduler:
                    def prepare(self, job):
                        raise NotImplementedError
            """,
            "scheduler/bad.py": """
                import time
                from proj.scheduler.base import Scheduler

                class BadScheduler(Scheduler):
                    def prepare(self, job):
                        return time.time()
            """,
            "scheduler/runner.py": """
                def run(job, scheduler: "Scheduler"):
                    return scheduler.prepare(job)
            """ .replace("Scheduler", "proj.scheduler.base.Scheduler"),
        })
        f7 = findings_of(r, "F007")
        assert any(f.details["function"] == "run" for f in f7), [
            str(f) for f in findings_of(r)]

    def test_taint_outside_zone_not_reported(self, tmp_path):
        r = analyze(tmp_path, {
            "util/clock.py": """
                import time

                def now():
                    return time.time()
            """,
            "analysis/report.py": """
                from proj.util.clock import now

                def header():
                    return str(now())
            """,
        })
        assert [f.rule for f in findings_of(r)] == ["F001"]
        assert r.taint.classification["proj.analysis.report.header"] == "tainted"


# ------------------------------------------------------------------ #
# concurrency rules
# ------------------------------------------------------------------ #

POOL_MODULE = """
    from concurrent.futures import ProcessPoolExecutor, as_completed

    STATE = {}

    def worker(x):
        STATE[x] = x * 2
        return x

    def run(items):
        with ProcessPoolExecutor() as pool:
            futs = [pool.submit(worker, i) for i in items]
            out = []
            for f in as_completed(futs):
                out.append(f.result())
        return out
"""


class TestConcurrency:
    def test_worker_mutation_and_merge_order(self, tmp_path):
        r = analyze(tmp_path, {"simulator/pool.py": POOL_MODULE})
        rules = sorted(f.rule for f in findings_of(r))
        assert rules == ["F101", "F102"]
        (f101,) = findings_of(r, "F101")
        assert f101.details["line"] == 7  # the STATE[x] write
        (f102,) = findings_of(r, "F102")
        assert f102.details["line"] == 15  # the out.append

    def test_index_scatter_merge_is_sanctioned(self, tmp_path):
        r = analyze(tmp_path, {"simulator/pool.py": """
            from concurrent.futures import ProcessPoolExecutor, as_completed

            def worker(pair):
                idx, x = pair
                return idx, x * 2

            def run(items):
                merged = [None] * len(items)
                with ProcessPoolExecutor() as pool:
                    futs = [pool.submit(worker, (i, x))
                            for i, x in enumerate(items)]
                    for f in as_completed(futs):
                        idx, val = f.result()
                        merged[idx] = val
                return merged
        """})
        assert findings_of(r) == []

    def test_lambda_submit_f103(self, tmp_path):
        r = analyze(tmp_path, {"simulator/pool.py": """
            from concurrent.futures import ProcessPoolExecutor

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(lambda x: x, i) for i in items]
        """})
        assert [f.rule for f in findings_of(r)] == ["F103"]

    def test_nested_worker_f103(self, tmp_path):
        r = analyze(tmp_path, {"simulator/pool.py": """
            from concurrent.futures import ProcessPoolExecutor

            def run(items):
                def work(x):
                    return x * 2
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(work, i) for i in items]
        """})
        assert [f.rule for f in findings_of(r)] == ["F103"]

    def test_worker_reachable_callee_mutation_found(self, tmp_path):
        # The mutation sits one call below the submitted worker.
        r = analyze(tmp_path, {"simulator/pool.py": """
            from concurrent.futures import ProcessPoolExecutor

            CACHE = {}

            def helper(x):
                CACHE[x] = x
                return x

            def worker(x):
                return helper(x)

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(worker, i) for i in items]
        """})
        (f,) = findings_of(r, "F101")
        assert f.details["function"] == "helper"
        assert f.details["worker_root"] == "proj.simulator.pool.worker"


# ------------------------------------------------------------------ #
# suppression: pragmas + baseline
# ------------------------------------------------------------------ #


class TestSuppression:
    def test_pragma_suppresses_and_stops_propagation(self, tmp_path):
        r = analyze(tmp_path, {
            "scheduler/plan.py": """
                import time

                def now():
                    return time.time()  # flow: allow[F001] startup stamp only

                def plan(job):
                    return now() + 1.0
            """,
        })
        assert findings_of(r) == []
        assert [(s.rule, s.how) for s in r.suppressed] == [("F001", "pragma")]
        # sanctioned source does not taint callers
        assert r.taint.classification["proj.scheduler.plan.plan"] != "tainted"

    def test_pragma_wrong_rule_does_not_suppress(self, tmp_path):
        r = analyze(tmp_path, {"scheduler/plan.py": """
            import time

            def now():
                return time.time()  # flow: allow[F002]
        """})
        assert [f.rule for f in findings_of(r)] == ["F001"]

    def test_pragma_star_suppresses_any_rule(self, tmp_path):
        r = analyze(tmp_path, {"scheduler/plan.py": """
            import time

            def now():
                return time.time()  # flow: allow[*]
        """})
        assert findings_of(r) == []

    def test_baseline_suppresses_by_rule_path_symbol(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(Baseline([BaselineEntry(
            rule="F001", path="proj/scheduler/plan.py", symbol="now",
            reason="test")]).to_json())
        r = analyze(tmp_path, {"scheduler/plan.py": """
            import time

            def now():
                return time.time()
        """}, baseline_path=baseline)
        assert findings_of(r) == []
        assert [(s.rule, s.how) for s in r.suppressed] == [
            ("F001", "baseline")]

    def test_baseline_other_symbol_does_not_match(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(Baseline([BaselineEntry(
            rule="F001", path="proj/scheduler/plan.py",
            symbol="other")]).to_json())
        r = analyze(tmp_path, {"scheduler/plan.py": """
            import time

            def now():
                return time.time()
        """}, baseline_path=baseline)
        assert [f.rule for f in findings_of(r)] == ["F001"]

    def test_suppressed_sites_are_auditable_in_payload(self, tmp_path):
        r = analyze(tmp_path, {"scheduler/plan.py": """
            import time

            def now():
                return time.time()  # flow: allow[F001]
        """})
        payload = r.to_payload()
        assert payload["ok"] is True
        assert payload["suppressed"][0]["rule"] == "F001"
        assert payload["suppressed"][0]["how"] == "pragma"


# ------------------------------------------------------------------ #
# the real package: clean on main, caught when violations are injected
# ------------------------------------------------------------------ #


class TestRealPackage:
    def test_src_repro_has_no_unsuppressed_findings(self):
        r = analyze_project(SRC_REPRO,
                            config=FlowConfig(baseline_path=BASELINE))
        assert r.ok, "\n".join(str(f) for f in r.report)
        # both suppression mechanisms are exercised on main
        hows = {s.how for s in r.suppressed}
        assert hows == {"pragma", "baseline"}

    def test_src_repro_analysis_is_fast(self):
        r = analyze_project(SRC_REPRO,
                            config=FlowConfig(baseline_path=BASELINE))
        assert r.elapsed_s < 10.0
        assert r.files >= 80
        assert len(r.graph.functions) > 500

    @pytest.fixture()
    def repro_copy(self, tmp_path):
        copy = tmp_path / "repro"
        shutil.copytree(SRC_REPRO, copy)
        return copy

    def test_injected_wallclock_in_scheduler_caught(self, repro_copy):
        target = repro_copy / "schedulers" / "delaystage.py"
        source = target.read_text(encoding="utf-8")
        marker = "import "
        injected = ("import time as _wall\n_T0 = _wall.time()\n"
                    + source)
        target.write_text(injected, encoding="utf-8")
        assert marker in source
        r = analyze_project(repro_copy,
                            config=FlowConfig(baseline_path=BASELINE))
        f001 = [f for f in r.report if f.rule == "F001"]
        assert len(f001) == 1
        assert f001[0].details["path"] == "repro/schedulers/delaystage.py"
        assert f001[0].details["line"] == 2
        assert f001[0].details["function"] == "<module>"

    def test_injected_global_rng_in_scheduler_caught(self, repro_copy):
        target = repro_copy / "schedulers" / "fuxi.py"
        source = target.read_text(encoding="utf-8")
        target.write_text(
            source + "\n\ndef _jitter():\n"
                     "    import random\n"
                     "    return random.random()\n",
            encoding="utf-8")
        line = 1 + next(
            i for i, text in enumerate(
                target.read_text(encoding="utf-8").splitlines())
            if "return random.random()" in text)
        r = analyze_project(repro_copy,
                            config=FlowConfig(baseline_path=BASELINE))
        f002 = [f for f in r.report if f.rule == "F002"]
        assert len(f002) == 1
        assert f002[0].details["path"] == "repro/schedulers/fuxi.py"
        assert f002[0].details["line"] == line

    def test_injected_worker_closure_mutation_caught(self, repro_copy):
        target = repro_copy / "simulator" / "parallel.py"
        source = target.read_text(encoding="utf-8")
        needle = "    shard, cluster, scheduler, seed = payload\n"
        assert needle in source
        injected = source.replace(
            needle,
            needle + "    _SHARD_LOG.append(len(shard))\n",
            1,
        ).replace(
            "import os\n",
            "import os\n\n_SHARD_LOG = []\n",
            1,
        )
        target.write_text(injected, encoding="utf-8")
        r = analyze_project(repro_copy,
                            config=FlowConfig(baseline_path=BASELINE))
        f101 = [f for f in r.report if f.rule == "F101"]
        assert len(f101) == 1
        assert f101[0].details["path"] == "repro/simulator/parallel.py"
        assert f101[0].details["function"] == "_replay_shard"

    def test_injected_taint_propagates_to_runner(self, repro_copy):
        # A wall-clock read planted inside DelayStage.prepare must taint
        # the generic scheduler driver through virtual dispatch.
        target = repro_copy / "schedulers" / "delaystage.py"
        source = target.read_text(encoding="utf-8")
        needle = "    def prepare(\n"
        assert needle in source
        target.write_text(
            source.replace(
                "from __future__ import annotations\n",
                "from __future__ import annotations\n\nimport time\n", 1
            ).replace(
                needle, needle.rstrip("\n") + "\n", 1
            ),
            encoding="utf-8")
        # plant the call on the first line of prepare's body
        text = target.read_text(encoding="utf-8").splitlines(keepends=True)
        for i, line in enumerate(text):
            if line.startswith("    def prepare("):
                j = i
                while not text[j].rstrip().endswith(":"):
                    j += 1
                text.insert(j + 1, "        _t = time.time()\n")
                break
        target.write_text("".join(text), encoding="utf-8")
        r = analyze_project(repro_copy,
                            config=FlowConfig(baseline_path=BASELINE))
        tainted = {q for q, c in r.taint.classification.items()
                   if c == "tainted"}
        assert "repro.schedulers.runner.run_with_scheduler" in tainted
        f007_fns = {f.details["function"] for f in r.report
                    if f.rule == "F007"}
        assert "run_with_scheduler" in f007_fns


# ------------------------------------------------------------------ #
# CLI + tools entry points
# ------------------------------------------------------------------ #


class TestEntryPoints:
    def test_repro_verify_flow_cli(self, capsys):
        from repro.cli import main

        assert main(["verify", "--flow"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_repro_verify_flow_json(self, capsys):
        from repro.cli import main

        assert main(["verify", "--flow", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["classification_counts"]["tainted"] == 0

    def test_repro_verify_flow_nonzero_on_findings(self, tmp_path, capsys):
        from repro.cli import main

        proj = write_project(tmp_path, {"mod.py": """
            import time

            def stamp():
                return time.time()
        """})
        code = main(["verify", "--flow", "--flow-root", str(proj),
                     "--flow-baseline", str(tmp_path / "missing.json")])
        assert code == 1
        assert "F001" in capsys.readouterr().out

    def test_flow_cache_reuse(self, tmp_path):
        cache = tmp_path / "cache"
        cfg = FlowConfig(baseline_path=BASELINE, cache_dir=cache)
        r1 = analyze_project(SRC_REPRO, config=cfg)
        r2 = analyze_project(SRC_REPRO, config=cfg)
        assert r1.cache_hits == 0
        assert r2.cache_hits == r2.files
        assert [str(f) for f in r1.report] == [str(f) for f in r2.report]
        assert r1.taint.counts() == r2.taint.counts()

    def test_lint_repro_tool_flags(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "lint_repro.py"),
             "--flow-only", "--json"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["ok"] is True
        assert payload["lint"] == []
        assert payload["flow"]["ok"] is True
