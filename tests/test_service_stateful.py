"""Stateful service testing: random interleavings never break invariants.

A :class:`hypothesis.stateful.RuleBasedStateMachine` fires arbitrary
interleavings of the service's whole control surface — submit, status,
cancel (queued, running, terminal, unknown), time advance, and drain —
against a :class:`~repro.service.core.ServiceCore` whose scheduler
carries a seeded chaos fault plan, so dispatched jobs can also *fail*
mid-interleaving.  After every rule and at teardown the machine checks
the global invariants the PR-10 issue pins down:

* **no lost job** — every admitted submission is accounted for:
  ``admitted == queued + running + completed + failed + cancelled``;
* **no double completion** — a service id reaches at most one terminal
  state, and the ``job`` (completion) event count equals the completed
  counter;
* **cancelled jobs never report JCTs** — ``jct is None`` whenever a
  record says cancelled, even if its simulation already ran;
* occupancy bounds hold (queue ≤ max_pending, running ≤ slots) and
  time is monotone along each lifecycle.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.cluster import uniform_cluster
from repro.faults import generate_plan
from repro.obs.live.bus import TelemetryBus, TelemetryPublisher
from repro.schedulers import FuxiScheduler
from repro.service import (
    AdmissionConfig,
    JobState,
    RejectedSubmission,
    ServiceCore,
)
from repro.workloads.synthetic import random_job

MAX_PENDING = 3
SLOTS = 2

advances = st.integers(1, 2400).map(lambda n: n / 4.0)


class ServiceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = uniform_cluster(
            3, executors_per_worker=2, nic_mbps=450,
            disk_mb_per_sec=150, storage_nodes=0,
        )
        self.bus = TelemetryBus()
        self.publisher = TelemetryPublisher(self.bus, label="svc",
                                            run_id="svc")
        self.core = None
        self.submitted_ids: "list[str]" = []
        self.terminal_seen: "dict[str, str]" = {}
        self.next_id = 0

    @initialize(chaos_seed=st.integers(0, 6))
    def boot(self, chaos_seed):
        # chaos_seed 0: healthy service; otherwise a seeded fault plan
        # rides on every dispatched job's simulation.
        plan = None
        if chaos_seed:
            plan = generate_plan(self.cluster, chaos_seed, num_events=3,
                                 retry_budget=1, backoff_base=0.25,
                                 backoff_cap=1.0)
        scheduler = FuxiScheduler(track_metrics=False, fault_plan=plan)
        self.core = ServiceCore(
            self.cluster, scheduler, slots=SLOTS,
            admission=AdmissionConfig(max_pending=MAX_PENDING),
            publisher=self.publisher,
        )

    # -- rules ---------------------------------------------------------- #

    @rule(seed=st.integers(0, 10_000), num_stages=st.integers(2, 4))
    def submit(self, seed, num_stages):
        sid = f"job{self.next_id}"
        self.next_id += 1
        job = random_job(num_stages, job_id=sid, rng=seed)
        try:
            record = self.core.submit(job)
        except RejectedSubmission as exc:
            assert exc.rejection.reason in (
                "queue_full", "draining", "duplicate", "too_large"
            )
            return
        assert record.state is JobState.QUEUED
        self.submitted_ids.append(sid)

    @rule(seed=st.integers(0, 10_000))
    def submit_duplicate(self, seed):
        if not self.submitted_ids:
            return
        sid = self.submitted_ids[seed % len(self.submitted_ids)]
        if self.core.status(sid) is None:
            return  # evicted: the id is genuinely forgotten
        job = random_job(3, job_id=sid, rng=seed)
        try:
            self.core.submit(job)
        except RejectedSubmission as exc:
            assert exc.rejection.reason == "duplicate"
        else:  # pragma: no cover - would be the bug itself
            raise AssertionError("duplicate submission was admitted")

    @rule(dt=advances)
    def advance(self, dt):
        self.core.advance_to(self.core.now + dt)

    @rule(pick=st.integers(0, 10_000))
    def cancel(self, pick):
        if not self.submitted_ids:
            return
        sid = self.submitted_ids[pick % len(self.submitted_ids)]
        before = self.core.status(sid)
        record = self.core.cancel(sid)
        if before is None:
            assert record is None
            return
        if before.terminal:
            # cancelling a finished job is a no-op, not a transition
            assert record.state is before.state
        else:
            assert record.state is JobState.CANCELLED
            assert record.jct is None

    @rule()
    def cancel_unknown(self):
        assert self.core.cancel("never-submitted") is None

    @rule(pick=st.integers(0, 10_000))
    def status(self, pick):
        if not self.submitted_ids:
            return
        sid = self.submitted_ids[pick % len(self.submitted_ids)]
        record = self.core.status(sid)
        if record is None:
            return
        if record.state is JobState.CANCELLED:
            assert record.jct is None
        if record.state is JobState.COMPLETED:
            assert record.jct is not None and record.jct >= 0

    @rule()
    def drain(self):
        self.core.drain()
        assert self.core.draining

    # -- invariants ----------------------------------------------------- #

    @invariant()
    def books_balance(self):
        if self.core is None:
            return
        s = self.core.stats()
        live = s["queue_depth"] + s["running"]
        terminal = (s["counters"]["completed"] + s["counters"]["failed"]
                    + s["counters"]["cancelled"])
        # no lost job, no double completion
        assert s["counters"]["admitted"] == live + terminal
        assert s["counters"]["submitted"] == (
            s["counters"]["admitted"] + s["counters"]["rejected"]
        )
        assert 0 <= s["queue_depth"] <= MAX_PENDING
        assert 0 <= s["running"] <= SLOTS

    @invariant()
    def terminal_states_are_sticky(self):
        if self.core is None:
            return
        for record in self.core.jobs_snapshot():
            if record.terminal:
                seen = self.terminal_seen.setdefault(
                    record.service_id, record.state.value
                )
                assert seen == record.state.value, (
                    f"{record.service_id} changed terminal state "
                    f"{seen} -> {record.state.value}"
                )
                if record.state is not JobState.COMPLETED:
                    assert record.jct is None
            if record.dispatch_t is not None:
                assert record.dispatch_t >= record.submit_t
            if record.finish_t is not None and record.dispatch_t is not None:
                assert record.finish_t >= record.dispatch_t

    def teardown(self):
        if self.core is None:
            return
        self.core.drain()
        self.core.run_until_idle()
        s = self.core.stats()
        assert s["drained"], "drain + run_until_idle must quiesce"
        terminal = (s["counters"]["completed"] + s["counters"]["failed"]
                    + s["counters"]["cancelled"])
        assert s["counters"]["admitted"] == terminal
        # completion events on the bus match the completed counter
        events = self.bus.events_since()
        job_events = [e for e in events if e["type"] == "job"]
        assert len(job_events) == s["counters"]["completed"]
        # exactly one terminal drained event; anything after it can only
        # be load-shedding (the service admits nothing once drained)
        drained = [e for e in events if e["type"] == "drained"]
        assert len(drained) == 1
        after = [e for e in events if e["seq"] > drained[0]["seq"]]
        assert all(e["type"] == "rejected" for e in after)
        # cancelled jobs never contributed a JCT
        cancelled_ids = {
            r.service_id for r in self.core.jobs_snapshot()
            if r.state is JobState.CANCELLED
        }
        for event in job_events:
            assert event.get("jct") is None or event["jct"] >= 0
        for record in self.core.jobs_snapshot():
            if record.service_id in cancelled_ids:
                assert record.jct is None


ServiceMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)

TestServiceMachine = ServiceMachine.TestCase
