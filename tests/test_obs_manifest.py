"""Run manifests: determinism, hashing, fingerprints."""

from repro.dag import JobBuilder
from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    build_manifest,
    canonical_json,
    config_hash,
    workload_fingerprint,
)


def job(mb=256):
    return (
        JobBuilder("m")
        .stage("A", input_mb=mb, output_mb=128, process_rate_mb=10)
        .stage("B", input_mb=256, output_mb=64, process_rate_mb=10, parents=["A"])
        .build()
    )


def test_config_hash_key_order_independent():
    assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})


def test_config_hash_sensitive_to_values():
    assert config_hash({"a": 1}) != config_hash({"a": 2})
    assert config_hash({}) != config_hash({"a": 1})


def test_canonical_json_deterministic():
    assert canonical_json({"b": [1, 2], "a": None}) == '{"a":null,"b":[1,2]}'


def test_workload_fingerprint_stable_and_sensitive():
    assert workload_fingerprint(job()) == workload_fingerprint(job())
    assert workload_fingerprint(job()) != workload_fingerprint(job(mb=257))


def test_build_manifest_deterministic():
    a = build_manifest(seed=3, config={"x": 1}, jobs=[job()])
    b = build_manifest(seed=3, config={"x": 1}, jobs=[job()])
    assert a.to_dict() == b.to_dict()


def test_manifest_roundtrip():
    m = build_manifest(seed=5, config={"w": "ALS"}, jobs=[job()],
                       extra={"note": "t"})
    back = RunManifest.from_dict(m.to_dict())
    assert back == m
    assert back.schema_version == MANIFEST_SCHEMA_VERSION


def test_manifest_fields():
    m = build_manifest(seed=7, config={"k": 1}, jobs=[job()])
    d = m.to_dict()
    assert d["seed"] == 7
    assert d["config_hash"] == config_hash({"k": 1})
    assert d["workloads"] == {"m": workload_fingerprint(job())}
    assert d["version"]
    assert d["python"]
    assert "seed 7" in m.summary()
    assert d["config_hash"][:12] in m.summary()
