"""Task-granular execution mode (discrete tasks, waves, stragglers)."""

import pytest

from repro.dag import JobBuilder
from repro.cluster import uniform_cluster
from repro.simulator import SimulationConfig, simulate_job


def job(task_cv=0.5, num_tasks=32):
    return (
        JobBuilder("tg")
        .stage("A", input_mb=1024, output_mb=512, process_rate_mb=10,
               num_tasks=num_tasks, task_cv=task_cv)
        .stage("B", input_mb=512, output_mb=128, process_rate_mb=10,
               num_tasks=num_tasks, task_cv=task_cv, parents=["A"])
        .build()
    )


def cfg(**kw):
    return SimulationConfig(task_granular=True, track_metrics=False, **kw)


def test_runs_and_completes(small_cluster):
    res = simulate_job(job(), small_cluster, config=cfg())
    assert res.job_completion_time("tg") > 0
    for rec in res.stage_records.values():
        assert rec.read_done_time <= rec.compute_done_time <= rec.finish_time


def test_deterministic(small_cluster):
    a = simulate_job(job(), small_cluster, config=cfg())
    b = simulate_job(job(), small_cluster, config=cfg())
    assert a.job_completion_time("tg") == b.job_completion_time("tg")


def test_matches_fluid_for_uniform_single_wave(small_cluster):
    """One wave of homogeneous tasks is exactly the fluid result: every
    executor processes volume/(executors) at rate R."""
    # 8 tasks over 4 workers = 2 per worker = exactly the 2 slots.
    j = job(task_cv=0.0, num_tasks=8)
    fluid = simulate_job(j, small_cluster, config=SimulationConfig(track_metrics=False))
    task = simulate_job(j, small_cluster, config=cfg())
    assert task.stage("tg", "A").compute_time == pytest.approx(
        fluid.stage("tg", "A").compute_time, rel=1e-9
    )


def test_wave_quantization_slows_uneven_counts(small_cluster):
    """3 homogeneous tasks on 2 slots take 2 waves: the second wave
    runs one task while a slot idles, unlike the fluid model."""
    j = job(task_cv=0.0, num_tasks=12)  # 3 per worker on 2 slots
    fluid = simulate_job(j, small_cluster, config=SimulationConfig(track_metrics=False))
    task = simulate_job(j, small_cluster, config=cfg())
    assert task.stage("tg", "A").compute_time > fluid.stage("tg", "A").compute_time


def test_stragglers_lengthen_stage(small_cluster):
    """Higher task-size dispersion -> longer stage (last straggler)."""
    uniform = simulate_job(job(task_cv=0.0), small_cluster, config=cfg())
    skewed = simulate_job(job(task_cv=1.0), small_cluster, config=cfg())
    assert (
        skewed.stage("tg", "A").compute_time
        > uniform.stage("tg", "A").compute_time
    )


def test_slots_never_oversubscribed(small_cluster):
    """Executor occupancy never exceeds the slot count."""
    res = simulate_job(
        job(), small_cluster,
        config=SimulationConfig(task_granular=True, track_metrics=True),
    )
    for w in small_cluster.worker_ids:
        series = res.metrics.node_series(w)
        assert series.cpu_busy.max() <= series.executors + 1e-9


def test_fair_dispatch_between_stages(small_cluster):
    """Two parallel stages submitting together share slots fairly: both
    finish close together rather than one starving."""
    j = (
        JobBuilder("fair")
        .stage("A", input_mb=512, output_mb=64, process_rate_mb=10, num_tasks=32)
        .stage("B", input_mb=512, output_mb=64, process_rate_mb=10, num_tasks=32)
        .build()
    )
    res = simulate_job(j, small_cluster, config=cfg())
    fa = res.stage("fair", "A").finish_time
    fb = res.stage("fair", "B").finish_time
    assert abs(fa - fb) < 0.25 * max(fa, fb)


def test_compute_work_conserved_task_mode(small_cluster):
    j = job(task_cv=0.7)
    res = simulate_job(
        j, small_cluster,
        config=SimulationConfig(task_granular=True, track_metrics=True),
    )
    total_busy = 0.0
    for node in small_cluster.worker_ids:
        s = res.metrics.node_series(node)
        total_busy += float(((s.t1 - s.t0) * s.cpu_busy).sum())
    expected = sum(stage.input_bytes / stage.process_rate for stage in j)
    assert total_busy == pytest.approx(expected, rel=1e-6)


def test_delays_still_apply(small_cluster):
    from repro.simulator import FixedDelayPolicy

    res = simulate_job(job(), small_cluster, FixedDelayPolicy({"A": 9.0}), cfg())
    assert res.stage("tg", "A").submit_time == pytest.approx(9.0)


def test_aggshuffle_composes_with_task_mode(small_cluster):
    j = job(task_cv=0.6, num_tasks=64)
    stock = simulate_job(j, small_cluster, config=cfg())
    agg = simulate_job(
        j, small_cluster,
        config=SimulationConfig(task_granular=True, pipelined_shuffle=True,
                                track_metrics=False),
    )
    assert agg.stage("tg", "B").read_time <= stock.stage("tg", "B").read_time + 1e-9
