"""Span tracer: records, validation, counters, and the null object."""

import pytest

from repro.obs import (
    NULL_TRACER,
    CounterRegistry,
    CounterSample,
    NullTracer,
    Span,
    Tracer,
)

T = ("proc", "thread")


def test_span_ids_increment_and_parent_link():
    tr = Tracer()
    root = tr.add_span("root", 0.0, 10.0, track=T)
    child = tr.add_span("child", 1.0, 2.0, track=T, parent=root)
    assert root == 1 and child == 2
    assert tr.spans[1].parent_id == root
    assert tr.num_events == 2


def test_span_rejects_bad_times():
    with pytest.raises(ValueError):
        Span(1, "s", ts=-1.0, dur=0.0, track=T)
    with pytest.raises(ValueError):
        Span(1, "s", ts=0.0, dur=float("nan"), track=T)
    with pytest.raises(ValueError):
        Span(1, "s", ts=float("inf"), dur=0.0, track=T)


def test_span_dict_roundtrip():
    span = Span(7, "compute", ts=1.5, dur=2.25, track=T, cat="phase",
                parent_id=3, args={"stage_id": "S1"})
    assert Span.from_dict(span.to_dict()) == span


def test_instant_and_sample_recorded():
    tr = Tracer()
    tr.instant("schedule", 0.0, track=T, args={"job_id": "j"})
    tr.sample("cpu", 1.0, 3.5, track=T)
    assert tr.instants[0].args == {"job_id": "j"}
    assert tr.samples[0].value == 3.5
    assert tr.num_events == 2


def test_counter_sample_rejects_non_finite_value():
    with pytest.raises(ValueError):
        CounterSample("cpu", 0.0, float("nan"), T)


def test_counter_registry():
    reg = CounterRegistry()
    reg.inc("scans")
    reg.inc("scans", 2.0)
    reg.set_gauge("makespan", 12.5)
    assert reg.get("scans") == 3.0
    assert reg.get("makespan") == 12.5
    assert reg.get("missing", -1.0) == -1.0
    assert len(reg) == 2
    assert reg.as_dict() == {"counters": {"scans": 3.0},
                             "gauges": {"makespan": 12.5}}


def test_counter_registry_merge():
    a, b = CounterRegistry(), CounterRegistry()
    a.inc("x", 1.0)
    b.inc("x", 2.0)
    b.set_gauge("g", 9.0)
    a.merge(b)
    assert a.get("x") == 3.0
    assert a.get("g") == 9.0


def test_tracks_first_appearance_order():
    tr = Tracer()
    tr.add_span("a", 0.0, 1.0, track=("p2", "t"))
    tr.instant("b", 0.0, track=("p1", "t"))
    tr.sample("c", 0.0, 1.0, track=("p2", "t"))
    assert tr.tracks() == [("p2", "t"), ("p1", "t")]


def test_null_tracer_is_inert():
    tr = NullTracer()
    assert not tr.enabled
    assert tr.add_span("s", 0.0, 1.0, track=T) == 0
    tr.instant("i", 0.0, track=T)
    tr.sample("c", 0.0, 1.0, track=T)
    tr.counters.inc("x")
    tr.counters.set_gauge("g", 1.0)
    assert tr.num_events == 0
    assert len(tr.counters) == 0


def test_null_tracer_singleton_shared():
    assert isinstance(NULL_TRACER, NullTracer)
    NULL_TRACER.add_span("s", 0.0, 1.0, track=T)
    assert NULL_TRACER.num_events == 0
