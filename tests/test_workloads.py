"""Workload library: structure matches the paper, scaling behaves."""

import pytest

from repro.dag import execution_paths, parallel_stage_set, sequential_stage_set
from repro.workloads import (
    WORKLOADS,
    als,
    connected_components,
    cosine_similarity,
    lda,
    random_job,
    triangle_count,
    workload_by_name,
)


def test_stage_counts_match_paper():
    """Sec. 5.1: ConnectedComponents 5, TriangleCount 11,
    CosineSimilarity 5, LDA 5; Fig. 1: ALS 6."""
    assert als().num_stages == 6
    assert connected_components().num_stages == 5
    assert cosine_similarity().num_stages == 5
    assert lda().num_stages == 5
    assert triangle_count().num_stages == 11


def test_als_paths_match_fig1():
    job = als()
    paths = execution_paths(job)
    stage_sets = {p.stages for p in paths}
    assert ("S1", "S4") in stage_sets
    assert ("S2", "S4") in stage_sets
    assert ("S3",) in stage_sets


def test_connected_components_structure():
    """{S2, S3} is the longest path; S1 parallel; S4, S5 sequential."""
    job = connected_components()
    assert parallel_stage_set(job) == {"S1", "S2", "S3"}
    assert sequential_stage_set(job) == {"S4", "S5"}
    paths = execution_paths(job)
    assert paths[0].stages == ("S2", "S3")


def test_cosine_similarity_structure():
    """Paths {S1}, {S2}, {S3,S4}; S5 sequential (Fig. 11)."""
    job = cosine_similarity()
    assert parallel_stage_set(job) == {"S1", "S2", "S3", "S4"}
    paths = execution_paths(job)
    assert paths[0].stages == ("S3", "S4")  # the long path


def test_lda_structure():
    """Paths {S1}, {S2,S3}, {S4}; S5 blocked by all (Fig. 11)."""
    job = lda()
    assert parallel_stage_set(job) == {"S1", "S2", "S3", "S4"}
    assert sequential_stage_set(job) == {"S5"}
    stage_sets = {p.stages for p in execution_paths(job)}
    assert ("S2", "S3") in stage_sets
    assert ("S1",) in stage_sets
    assert ("S4",) in stage_sets


def test_lda_aggshuffle_pathology_parameters():
    """LDA's stages are near-homogeneous and S3 expands its input 1.3x
    over S2's output (the paper's AggShuffle-hostile properties)."""
    job = lda()
    assert all(s.task_cv <= 0.05 for s in job)
    ratio = job.stage("S3").input_bytes / job.stage("S2").output_bytes
    assert ratio == pytest.approx(1.3)


def test_triangle_count_structure():
    job = triangle_count()
    members = parallel_stage_set(job)
    assert members == {f"S{i}" for i in range(1, 10)}  # S1..S9
    assert sequential_stage_set(job) == {"S10", "S11"}
    paths = execution_paths(job)
    assert paths[0].stages == ("S2", "S4", "S5", "S9")


def test_scaling_volumes_linear():
    a = cosine_similarity(1.0)
    b = cosine_similarity(2.0)
    for sid in a.stage_ids:
        assert b.stage(sid).input_bytes == pytest.approx(2 * a.stage(sid).input_bytes)
        assert b.stage(sid).process_rate == a.stage(sid).process_rate


def test_scale_validation():
    for ctor in (als, connected_components, cosine_similarity, lda, triangle_count):
        with pytest.raises(ValueError):
            ctor(0)


def test_workload_by_name():
    assert workload_by_name("ALS").job_id == "als"
    assert workload_by_name("LDA").job_id == "lda"
    with pytest.raises(KeyError, match="unknown workload"):
        workload_by_name("WordCount")
    assert set(WORKLOADS) == {
        "ConnectedComponents",
        "CosineSimilarity",
        "LDA",
        "TriangleCount",
    }


# ------------------------- synthetic generator ------------------------- #


def test_random_job_size_and_determinism():
    a = random_job(12, rng=7)
    b = random_job(12, rng=7)
    assert a.num_stages == 12
    assert a.edges == b.edges
    assert [s.input_bytes for s in a] == [s.input_bytes for s in b]


def test_random_job_zero_parallelism_is_chainlike():
    job = random_job(10, parallelism=0.0, rng=0)
    assert parallel_stage_set(job) == frozenset()


def test_random_job_high_parallelism_has_parallel_stages():
    job = random_job(10, parallelism=1.0, rng=0)
    assert len(parallel_stage_set(job)) > 0


def test_random_job_validation():
    with pytest.raises(ValueError):
        random_job(0)
    with pytest.raises(ValueError):
        random_job(3, parallelism=1.5)
    with pytest.raises(ValueError):
        random_job(3, median_input_mb=0)
