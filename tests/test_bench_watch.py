"""Regression watchdog: fixture-driven verdicts and the CLI gate.

The acceptance contract: ``repro bench --compare`` must exit non-zero
for an injected 2x slowdown and for an equivalence mismatch, and exit
zero against healthy baselines (including CI's quick-vs-full config
mismatch, where only the equivalence bit is comparable).
"""

import json

import pytest

from repro.bench.harness import BenchResult
from repro.bench.watch import (
    WatchFinding,
    comparable_configs,
    compare_to_baselines,
    has_failures,
    load_baselines,
    render_findings,
)
from repro.cli import main


def _result(name="replay", wall_s=1.0, equivalent=True, config=None):
    return BenchResult(
        name=name,
        wall_s=wall_s,
        baseline_wall_s=wall_s * 2,
        jobs_per_s=10.0,
        events_per_s=1e5,
        equivalent=equivalent,
        manifest_hash="deadbeef",
        config=dict(config if config is not None else {"jobs": 100, "seed": 7}),
    )


def _baseline(name="replay", wall_s=1.0, equivalent=True, config=None):
    return _result(name, wall_s, equivalent, config).to_dict()


# --------------------------------------------------------------------- #
# verdict matrix


def test_identical_run_is_ok():
    findings = compare_to_baselines([_result()], {"replay": _baseline()})
    assert not has_failures(findings)
    assert [f.severity for f in findings] == ["info"]
    assert "within noise" in findings[0].message


def test_injected_2x_slowdown_fails():
    findings = compare_to_baselines(
        [_result(wall_s=2.0)], {"replay": _baseline(wall_s=1.0)}
    )
    assert has_failures(findings)
    (finding,) = findings
    assert finding.severity == "fail"
    assert "regressed 2.00x" in finding.message


def test_equivalence_break_fails_even_without_baseline():
    findings = compare_to_baselines([_result(equivalent=False)], {})
    assert has_failures(findings)
    assert findings[0].message.startswith("optimized path")
    assert findings[1].severity == "info"  # missing baseline never gates


def test_large_improvement_is_info_not_fail():
    findings = compare_to_baselines(
        [_result(wall_s=0.25)], {"replay": _baseline(wall_s=1.0)}
    )
    assert not has_failures(findings)
    assert "consider refreshing" in findings[0].message


def test_quick_vs_full_config_mismatch_skips_wall():
    """CI's --quick run against full-size baselines: info, never fail."""
    fresh = _result(wall_s=50.0, config={"jobs": 8, "quick": True, "seed": 7})
    base = _baseline(wall_s=1.0, config={"jobs": 1000, "quick": False, "seed": 7})
    findings = compare_to_baselines([fresh], {"replay": base})
    assert not has_failures(findings)
    assert "wall comparison skipped, equivalence checked" in findings[0].message


def test_volatile_config_keys_do_not_block_comparison():
    fresh = _result(config={"jobs": 100, "engine_events": 123, "repeats": 3})
    base = _baseline(config={"jobs": 100, "engine_events": 456, "repeats": 5})
    assert comparable_configs(fresh.config, base["config"])
    findings = compare_to_baselines([fresh], {"replay": base})
    assert "within noise" in findings[0].message


def test_non_equivalent_baseline_skips_wall():
    findings = compare_to_baselines(
        [_result(wall_s=10.0)], {"replay": _baseline(equivalent=False)}
    )
    assert not has_failures(findings)
    assert "baseline itself" in findings[0].message


def test_threshold_validation():
    with pytest.raises(ValueError, match="exceed 1.0"):
        compare_to_baselines([_result()], {}, wall_threshold=0.9)


def test_render_findings_verdict():
    ok = render_findings([WatchFinding("replay", "info", "fine")])
    assert ok.endswith("watchdog verdict: ok")
    bad = render_findings([WatchFinding("replay", "fail", "slow")])
    assert bad.endswith("watchdog verdict: FAIL")
    assert "[fail] replay: slow" in bad
    assert render_findings([]) == "watchdog: nothing to compare"


# --------------------------------------------------------------------- #
# baseline loading


def test_load_baselines_skips_malformed(tmp_path):
    good = tmp_path / "BENCH_replay.json"
    good.write_text(json.dumps(_baseline()), encoding="utf-8")
    (tmp_path / "BENCH_broken.json").write_text("{not json", encoding="utf-8")
    (tmp_path / "BENCH_nameless.json").write_text("{}", encoding="utf-8")
    (tmp_path / "unrelated.json").write_text("{}", encoding="utf-8")
    baselines = load_baselines(str(tmp_path))
    assert list(baselines) == ["replay"]
    # And the string form of compare_to_baselines loads the directory.
    findings = compare_to_baselines([_result()], str(tmp_path))
    assert "within noise" in findings[0].message


# --------------------------------------------------------------------- #
# CLI gate (monkeypatched harness keeps this fast and deterministic)


def _patch_bench(monkeypatch, results):
    # cmd_bench lazily does `from repro.bench import run_benchmarks`, so
    # patching the package attribute substitutes the harness.
    import repro.bench

    monkeypatch.setattr(
        repro.bench, "run_benchmarks", lambda *a, **kw: list(results)
    )


def test_cli_compare_ok(tmp_path, monkeypatch, capsys):
    (tmp_path / "BENCH_replay.json").write_text(
        json.dumps(_baseline()), encoding="utf-8"
    )
    _patch_bench(monkeypatch, [_result()])
    rc = main(["bench", "--quick", "--out", "", "--compare", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "watchdog verdict: ok" in out


def test_cli_compare_fails_on_slowdown(tmp_path, monkeypatch, capsys):
    (tmp_path / "BENCH_replay.json").write_text(
        json.dumps(_baseline(wall_s=0.5)), encoding="utf-8"
    )
    _patch_bench(monkeypatch, [_result(wall_s=1.1)])
    rc = main(["bench", "--quick", "--out", "", "--compare", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "watchdog verdict: FAIL" in out


def test_cli_compare_fails_on_equivalence_break(tmp_path, monkeypatch, capsys):
    (tmp_path / "BENCH_replay.json").write_text(
        json.dumps(_baseline()), encoding="utf-8"
    )
    _patch_bench(monkeypatch, [_result(equivalent=False)])
    rc = main(["bench", "--quick", "--out", "", "--compare", str(tmp_path)])
    assert rc == 1


def test_cli_compare_json_payload(tmp_path, monkeypatch, capsys):
    (tmp_path / "BENCH_replay.json").write_text(
        json.dumps(_baseline()), encoding="utf-8"
    )
    _patch_bench(monkeypatch, [_result()])
    rc = main(["bench", "--quick", "--out", "", "--compare", str(tmp_path),
               "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    watchdog = payload["watchdog"]
    assert watchdog["baseline_dir"] == str(tmp_path)
    assert watchdog["threshold"] == pytest.approx(1.5)
    assert watchdog["findings"][0]["severity"] == "info"
