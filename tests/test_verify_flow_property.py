"""Property-based tests for flow-analyzer suppression semantics.

The contract under test: pragma suppression is *surgical*.  Adding
``# flow: allow[rule]`` to a finding's line removes exactly that
finding (plus any findings derived from it, e.g. F007 taint
propagated from a sanctioned source) — it never creates findings, and
suppressing every finding always yields the all-clear exit code.
"""

from __future__ import annotations

import textwrap

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.verify.flow import FlowConfig, analyze_project

FAST = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

#: Violation snippet templates; {i} keeps function names unique.
VIOLATIONS = [
    "def wall{i}():\n    return time.time()\n",
    "def draw{i}():\n    return random.random()\n",
    "def ls{i}(d):\n    return os.listdir(d)\n",
    "def env{i}():\n    return os.environ.get('X', '')\n",
    ("def leak{i}(xs):\n    out = []\n"
     "    for x in set(xs):\n        out.append(x)\n    return out\n"),
    "def ident{i}(objs):\n    return {{id(o): o for o in objs}}\n",
]

#: Clean snippets interleaved to shift line numbers around.
CLEAN = [
    "def ok{i}(x):\n    return x + 1\n",
    "def tick{i}():\n    return time.perf_counter()\n",
    "def srt{i}(d):\n    return sorted(os.listdir(d))\n",
]

HEADER = "import os\nimport random\nimport time\n\n"


def compose(picks: "list[tuple[bool, int]]") -> tuple[str, int]:
    """Build module source from (is_violation, template_index) picks.

    Returns (source, expected_finding_count).
    """
    parts = [HEADER]
    expected = 0
    for i, (is_violation, idx) in enumerate(picks):
        pool = VIOLATIONS if is_violation else CLEAN
        parts.append(pool[idx % len(pool)].format(i=i) + "\n")
        if is_violation:
            expected += 1
    return "".join(parts), expected


def run(tmp_dir, source: str):
    proj = tmp_dir / "proj"
    proj.mkdir(exist_ok=True)
    (proj / "__init__.py").write_text("")
    (proj / "mod.py").write_text(source, encoding="utf-8")
    return analyze_project(proj, config=FlowConfig(
        critical_zones=("proj",)))


def exit_code(result) -> int:
    """The CLI contract: 0 iff no unsuppressed findings."""
    return 0 if result.ok else 1


picks_strategy = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=9)),
    min_size=1, max_size=8)


@FAST
@given(picks_strategy)
def test_every_violation_found_exactly_once(tmp_path_factory, picks):
    tmp = tmp_path_factory.mktemp("flow")
    source, expected = compose(picks)
    result = run(tmp, source)
    assert len(result.report) == expected
    assert exit_code(result) == (1 if expected else 0)


@FAST
@given(picks_strategy, st.integers(min_value=0, max_value=2**31 - 1))
def test_pragma_subset_is_surgical(tmp_path_factory, picks, subset_seed):
    tmp = tmp_path_factory.mktemp("flow")
    source, _ = compose(picks)
    result = run(tmp, source)
    findings = list(result.report)

    # choose a deterministic subset of findings to suppress
    chosen = [f for i, f in enumerate(findings)
              if (subset_seed >> (i % 31)) & 1]
    lines = source.splitlines()
    for f in chosen:
        idx = f.details["line"] - 1
        lines[idx] += f"  # flow: allow[{f.rule}]"
    suppressed_keys = {(f.rule, f.details["line"]) for f in chosen}

    after = run(tmp, "\n".join(lines) + "\n")
    after_keys = {(f.rule, f.details["line"]) for f in after.report}
    before_keys = {(f.rule, f.details["line"]) for f in findings}

    # suppression removed the chosen findings ...
    assert after_keys.isdisjoint(suppressed_keys)
    # ... changed nothing else, and never created findings
    assert after_keys == before_keys - suppressed_keys
    assert len(after.report) == len(findings) - len(chosen)
    # suppressed sites remain auditable
    assert {(s.rule, s.line) for s in after.suppressed} == suppressed_keys
    # exit code only flips to 0 when *everything* is suppressed
    assert exit_code(after) == (0 if len(chosen) == len(findings) else 1)


@FAST
@given(picks_strategy)
def test_suppressing_everything_gives_all_clear(tmp_path_factory, picks):
    tmp = tmp_path_factory.mktemp("flow")
    source, _ = compose(picks)
    result = run(tmp, source)
    lines = source.splitlines()
    for f in result.report:
        lines[f.details["line"] - 1] += "  # flow: allow[*]"
    after = run(tmp, "\n".join(lines) + "\n")
    assert exit_code(after) == 0
    assert len(after.report) == 0
    assert len(after.suppressed) == len(result.report)


@FAST
@given(picks_strategy)
def test_pragmas_on_clean_lines_change_nothing(tmp_path_factory, picks):
    tmp = tmp_path_factory.mktemp("flow")
    source, _ = compose(picks)
    before = run(tmp, source)
    finding_lines = {f.details["line"] for f in before.report}
    lines = source.splitlines()
    decorated = [
        text + "  # flow: allow[*]"
        if (i + 1) not in finding_lines and text.strip() else text
        for i, text in enumerate(lines)
    ]
    after = run(tmp, "\n".join(decorated) + "\n")
    assert [str(f) for f in after.report] == [str(f) for f in before.report]
    assert exit_code(after) == exit_code(before)


def test_sanctioned_source_stops_interprocedural_taint(tmp_path):
    """Deterministic companion: pragma on a source un-taints callers."""
    proj = tmp_path / "proj"
    sched = proj / "sched"
    sched.mkdir(parents=True)
    (proj / "__init__.py").write_text("")
    (sched / "__init__.py").write_text("")
    (sched / "mod.py").write_text(textwrap.dedent("""
        import time

        def now():
            return time.time()

        def plan():
            return now() + 1
    """), encoding="utf-8")
    tainted = analyze_project(proj, config=FlowConfig(
        critical_zones=("sched",)))
    assert {f.rule for f in tainted.report} == {"F001", "F007"}

    source = (sched / "mod.py").read_text(encoding="utf-8").replace(
        "return time.time()",
        "return time.time()  # flow: allow[F001] sanctioned")
    (sched / "mod.py").write_text(source, encoding="utf-8")
    clean = analyze_project(proj, config=FlowConfig(
        critical_zones=("sched",)))
    assert len(clean.report) == 0
    assert clean.taint.classification["proj.sched.mod.plan"] != "tainted"
