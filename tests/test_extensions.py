"""The paper's Sec. 6 extensions: geo-distributed clusters and
multi-job scheduling."""

import pytest

from repro.cluster import geo_cluster
from repro.core import DelayStageParams, delay_stage_schedule
from repro.dag import JobBuilder
from repro.schedulers import (
    DelayStageScheduler,
    StockSparkScheduler,
    run_jobs_with_scheduler,
)
from repro.simulator import FixedDelayPolicy, Simulation, SimulationConfig


def geo_job(job_id="g"):
    return (
        JobBuilder(job_id)
        .stage("S1", input_mb=2048, output_mb=2048, process_rate_mb=8)
        .stage("S2", input_mb=2048, output_mb=4096, process_rate_mb=8)
        .stage("S3", input_mb=4096, output_mb=1024, process_rate_mb=20, parents=["S2"])
        .stage("S4", input_mb=3072, output_mb=256, process_rate_mb=20, parents=["S1", "S3"])
        .build()
    )


# ------------------------------- geo ---------------------------------- #


def test_geo_cluster_shape():
    geo = geo_cluster(2, 3, storage_per_dc=1)
    assert geo.spec.num_workers == 6
    assert len(geo.spec.storage_ids) == 2
    assert len(geo.datacenters) == 2
    assert geo.dc_of("dc0-w0") == 0
    assert geo.dc_of("dc1-store0") == 1
    with pytest.raises(KeyError):
        geo.dc_of("nowhere")


def test_geo_cluster_pair_caps_only_cross_dc():
    geo = geo_cluster(2, 2, inter_dc_mbps=100)
    for (src, dst) in geo.pair_capacities:
        assert geo.dc_of(src) != geo.dc_of(dst)
    # Both directions present.
    assert ("dc0-w0", "dc1-w0") in geo.pair_capacities
    assert ("dc1-w0", "dc0-w0") in geo.pair_capacities


def test_geo_cluster_validation():
    with pytest.raises(ValueError, match="at least 2"):
        geo_cluster(1)
    with pytest.raises(ValueError, match="must not exceed"):
        geo_cluster(2, 2, intra_dc_mbps=100, inter_dc_mbps=200)


def _run_geo(geo, job, delays):
    sim = Simulation(
        geo.spec,
        SimulationConfig(track_metrics=False),
        pair_capacities=geo.pair_capacities,
    )
    sim.add_job(job, FixedDelayPolicy(delays))
    return sim.run().job_completion_time(job.job_id)


def test_wan_caps_slow_the_job():
    job = geo_job()
    fast = geo_cluster(2, 3, inter_dc_mbps=900, intra_dc_mbps=1000)
    slow = geo_cluster(2, 3, inter_dc_mbps=60, intra_dc_mbps=1000)
    assert _run_geo(slow, job, {}) > _run_geo(fast, job, {})


def test_delaystage_helps_on_geo_cluster():
    geo = geo_cluster(2, 3, inter_dc_mbps=120)
    job = geo_job()
    stock = _run_geo(geo, job, {})
    schedule = delay_stage_schedule(
        job, geo.spec, DelayStageParams(max_slots=16),
        pair_capacities=geo.pair_capacities,
    )
    delayed = _run_geo(geo, job, schedule.delays)
    assert delayed < stock


def test_wan_aware_planning_not_worse_than_blind():
    geo = geo_cluster(2, 3, inter_dc_mbps=120)
    job = geo_job()
    blind = delay_stage_schedule(job, geo.spec, DelayStageParams(max_slots=16))
    aware = delay_stage_schedule(
        job, geo.spec, DelayStageParams(max_slots=16),
        pair_capacities=geo.pair_capacities,
    )
    assert _run_geo(geo, job, aware.delays) <= _run_geo(geo, job, blind.delays) + 1e-6


# ----------------------------- multi-job ------------------------------- #


def test_run_jobs_with_scheduler_basic(small_cluster):
    jobs = [geo_job("a"), geo_job("b")]
    res = run_jobs_with_scheduler(jobs, small_cluster, StockSparkScheduler(track_metrics=False))
    assert set(res.job_records) == {"a", "b"}
    assert all(r.completion_time > 0 for r in res.job_records.values())


def test_multi_job_delaystage_beats_stock(small_cluster):
    """Two concurrent contended jobs: per-job DelayStage plans still
    reduce the average completion time (the paper's Sec. 5.3 claim)."""
    jobs = [geo_job("a"), geo_job("b")]
    stock = run_jobs_with_scheduler(
        jobs, small_cluster, StockSparkScheduler(track_metrics=False)
    )
    ds = run_jobs_with_scheduler(
        jobs,
        small_cluster,
        DelayStageScheduler(profiled=False, track_metrics=False),
    )
    mean_stock = sum(r.completion_time for r in stock.job_records.values()) / 2
    mean_ds = sum(r.completion_time for r in ds.job_records.values()) / 2
    assert mean_ds < mean_stock * 1.02  # never meaningfully worse
    # And the combined makespan does not regress either.
    assert ds.makespan < stock.makespan * 1.05


def test_run_jobs_validation(small_cluster):
    with pytest.raises(ValueError, match="non-empty"):
        run_jobs_with_scheduler([], small_cluster, StockSparkScheduler())
    with pytest.raises(ValueError, match="match"):
        run_jobs_with_scheduler(
            [geo_job("a")], small_cluster, StockSparkScheduler(), submit_times=[0.0, 1.0]
        )


def test_staggered_arrivals(small_cluster):
    jobs = [geo_job("a"), geo_job("b")]
    res = run_jobs_with_scheduler(
        jobs, small_cluster, StockSparkScheduler(track_metrics=False),
        submit_times=[0.0, 50.0],
    )
    assert res.job_records["b"].submit_time == 50.0
