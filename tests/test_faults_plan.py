"""Fault-plan declaration, serialization, and chaos generation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster import uniform_cluster
from repro.faults import (
    FaultPlan,
    LostShufflePartition,
    NicBrownout,
    NodeCrash,
    Straggler,
    generate_plan,
)
from repro.workloads.synthetic import random_job


def _plan() -> FaultPlan:
    return FaultPlan(
        events=(
            NodeCrash(time=30.0, node="w2"),
            NicBrownout(start=10.0, end=20.0, node="w1", factor=0.4),
            Straggler(time=5.0, node="w0", factor=1.5, until=40.0),
            LostShufflePartition(time=12.0, job="j0", stage="S1", part="p0"),
        ),
        retry_budget=2,
        backoff_base=0.5,
        backoff_cap=4.0,
    )


# --------------------------------------------------------------------- #
# declaration


def test_event_validation():
    with pytest.raises(ValueError):
        NodeCrash(time=-1.0, node="w0")
    with pytest.raises(ValueError):
        NodeCrash(time=0.0, node="")
    with pytest.raises(ValueError):
        NicBrownout(start=5.0, end=5.0, node="w0", factor=0.5)
    with pytest.raises(ValueError):
        NicBrownout(start=0.0, end=5.0, node="w0", factor=1.5)
    with pytest.raises(ValueError):
        Straggler(time=0.0, node="w0", factor=0.5, until=5.0)
    with pytest.raises(ValueError):
        Straggler(time=5.0, node="w0", factor=2.0, until=5.0)
    with pytest.raises(ValueError):
        LostShufflePartition(time=0.0, job="", stage="S", part="p")


def test_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(retry_budget=-1)
    with pytest.raises(ValueError):
        FaultPlan(backoff_base=-0.5)
    with pytest.raises(TypeError):
        FaultPlan(events=("not an event",))


def test_plan_is_frozen():
    plan = _plan()
    with pytest.raises(dataclasses.FrozenInstanceError):
        plan.retry_budget = 9


def test_backoff_is_capped_exponential():
    plan = FaultPlan(backoff_base=0.5, backoff_cap=3.0)
    assert plan.backoff(1) == 0.5
    assert plan.backoff(2) == 1.0
    assert plan.backoff(3) == 2.0
    assert plan.backoff(4) == 3.0  # capped, 4.0 uncapped
    assert plan.backoff(10) == 3.0
    with pytest.raises(ValueError):
        plan.backoff(0)


def test_brownout_time_aliases_start():
    event = NicBrownout(start=7.0, end=9.0, node="w0", factor=0.5)
    assert event.time == 7.0


# --------------------------------------------------------------------- #
# cluster validation


def test_validate_against_cluster():
    cluster = uniform_cluster(3, executors_per_worker=2, nic_mbps=450,
                              disk_mb_per_sec=150, storage_nodes=1)
    _plan().validate_against(cluster)  # w0..w2 all exist

    unknown = FaultPlan(events=(NodeCrash(time=1.0, node="nope"),))
    with pytest.raises(ValueError, match="unknown node"):
        unknown.validate_against(cluster)

    storage = FaultPlan(events=(NodeCrash(time=1.0, node="hdfs0"),))
    with pytest.raises(ValueError, match="worker nodes"):
        storage.validate_against(cluster)

    total = FaultPlan(events=tuple(
        NodeCrash(time=float(i + 1), node=f"w{i}") for i in range(3)
    ))
    with pytest.raises(ValueError, match="nothing survives"):
        total.validate_against(cluster)


# --------------------------------------------------------------------- #
# serialization


def test_round_trip_json():
    plan = _plan()
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_save_load(tmp_path):
    plan = _plan()
    path = tmp_path / "plan.json"
    plan.save(path)
    assert FaultPlan.load(path) == plan


def test_from_dict_rejects_garbage():
    with pytest.raises(ValueError, match="unknown kind"):
        FaultPlan.from_dict({"events": [{"kind": "meteor_strike"}]})
    with pytest.raises(ValueError, match="schema"):
        FaultPlan.from_dict({"schema": 99})
    with pytest.raises(ValueError, match="must be an object"):
        FaultPlan.from_dict({"events": ["x"]})
    with pytest.raises(ValueError):
        FaultPlan.from_dict([])


# --------------------------------------------------------------------- #
# chaos generation


def test_generate_plan_deterministic():
    cluster = uniform_cluster(3, executors_per_worker=2, nic_mbps=450,
                              disk_mb_per_sec=150, storage_nodes=0)
    job = random_job(4, job_id="j0", rng=0)
    a = generate_plan(cluster, 42, jobs=[job], num_events=4)
    b = generate_plan(cluster, 42, jobs=[job], num_events=4)
    assert a == b
    assert a.to_json() == b.to_json()
    c = generate_plan(cluster, 43, jobs=[job], num_events=4)
    assert a != c


def test_generate_plan_never_kills_last_worker():
    cluster = uniform_cluster(1, executors_per_worker=2, nic_mbps=450,
                              disk_mb_per_sec=150, storage_nodes=1)
    for seed in range(8):
        plan = generate_plan(cluster, seed, num_events=5)
        assert not plan.crashes
        plan.validate_against(cluster)


def test_generate_plan_validates():
    cluster = uniform_cluster(4, executors_per_worker=2, nic_mbps=450,
                              disk_mb_per_sec=150, storage_nodes=1)
    for seed in range(5):
        plan = generate_plan(cluster, seed, num_events=6)
        plan.validate_against(cluster)
        assert all(e.time >= 0 for e in plan.events)
