"""Progress heartbeat: content, bit-identity, and the <5% overhead guard.

The ``--progress`` contract has three legs: the heartbeat must say
something useful (jobs, events, rates, ETA), it must never change the
simulation (parallel replay stays bit-identical with it on), and it
must cost less than 5% wall time on a replay-shaped workload (same
best-of-N methodology as ``tests/test_obs_overhead.py``).
"""

import io
import time

from repro.core import DelayStageParams
from repro.obs.progress import ProgressReporter, engine_hook
from repro.schedulers import (
    DelayStageScheduler,
    FuxiScheduler,
    replay_batch,
    run_with_scheduler,
)
from repro.trace import TraceGeneratorConfig, generate_trace, to_job

REPEATS = 5


class _FakeEngine:
    """Just the telemetry surface engine_tick reads."""

    def __init__(self, events_processed, now):
        self.events_processed = events_processed
        self.now = now


# --------------------------------------------------------------------- #
# reporter unit behaviour


def test_heartbeat_line_content():
    out = io.StringIO()
    rep = ProgressReporter("replay", total_jobs=4, stream=out, min_interval_s=0.0)
    rep.engine_tick(_FakeEngine(20_000, 123.4))
    rep.job_done()
    lines = out.getvalue().splitlines()
    assert lines[0].startswith("[progress] replay: 0/4 jobs, 2e+04 events")
    assert "t_sim=123.4s" in lines[0]
    assert "1/4 jobs" in lines[1]
    assert "eta" in lines[1]  # one job done -> ETA becomes available
    rep.close()
    assert "done in" in out.getvalue().splitlines()[-1]


def test_heartbeat_throttles():
    out = io.StringIO()
    rep = ProgressReporter("r", stream=out, min_interval_s=3600.0)
    rep._last_emit = time.perf_counter()  # consume the initial credit
    for _ in range(100):
        rep.engine_tick(_FakeEngine(1, 0.0))
    assert out.getvalue() == ""  # all ticks inside the interval
    rep.shard_done(5)  # force-emits regardless of the throttle
    assert out.getvalue().count("\n") == 1
    assert "5 jobs" in out.getvalue()


def test_events_fold_across_engines():
    """Engines are recreated per job; totals must accumulate."""
    rep = ProgressReporter("r", stream=io.StringIO(), min_interval_s=3600.0)
    first, second = _FakeEngine(100, 1.0), _FakeEngine(40, 2.0)
    rep.engine_tick(first)
    rep.engine_tick(first)  # same engine again: not double-counted
    assert rep.events_total == 100
    rep.engine_tick(second)  # new identity: previous total folds in
    assert rep.events_total == 140


def test_close_is_silent_when_nothing_happened():
    out = io.StringIO()
    ProgressReporter("r", stream=out).close()
    assert out.getvalue() == ""


def test_engine_hook_none_when_off():
    assert engine_hook(None) is None
    rep = ProgressReporter("r", stream=io.StringIO())
    assert engine_hook(rep) == rep.engine_tick


# --------------------------------------------------------------------- #
# bit-identity and zero-output-when-off


def _replay_jobs():
    trace = generate_trace(
        TraceGeneratorConfig(num_jobs=8, replay_workers=2, max_stages=16),
        rng=3,
    )
    return [to_job(tj) for tj in trace[:6]]


def test_parallel_replay_bit_identical_with_progress(tiny_cluster):
    jobs = _replay_jobs()
    scheduler = DelayStageScheduler(profiled=False, track_metrics=False,
                                    params=DelayStageParams(max_slots=8))
    baseline = replay_batch(jobs, tiny_cluster, scheduler, processes=1)
    out = io.StringIO()
    rep = ProgressReporter("replay", total_jobs=len(jobs), stream=out,
                           min_interval_s=0.0)
    parallel = replay_batch(jobs, tiny_cluster, scheduler, processes=3,
                            progress=rep)
    rep.close()
    assert parallel == baseline  # bit-identical, not approx
    assert f"{len(jobs)}/{len(jobs)} jobs" in out.getvalue()


def test_no_stderr_without_progress(tiny_cluster, capsys):
    jobs = _replay_jobs()[:2]
    scheduler = FuxiScheduler(track_metrics=False)
    replay_batch(jobs, tiny_cluster, scheduler, processes=1)
    run_with_scheduler(jobs[0], tiny_cluster, scheduler)
    captured = capsys.readouterr()
    assert captured.err == ""


# --------------------------------------------------------------------- #
# overhead guard (< 5%)


def _replay_once(jobs, cluster, schedulers, progress):
    for job in jobs:
        for scheduler in schedulers:
            run_with_scheduler(job, cluster, scheduler, progress=progress)


def _best_time(jobs, cluster, schedulers, make_progress):
    best = float("inf")
    for _ in range(REPEATS):
        progress = make_progress()
        t0 = time.perf_counter()
        _replay_once(jobs, cluster, schedulers, progress)
        best = min(best, time.perf_counter() - t0)
    return best


def test_progress_overhead_under_five_percent(tiny_cluster):
    trace = generate_trace(
        TraceGeneratorConfig(num_jobs=8, replay_workers=2, max_stages=20),
        rng=0,
    )
    jobs = [to_job(tj) for tj in trace[:4]]
    schedulers = [
        FuxiScheduler(track_metrics=False),
        DelayStageScheduler(profiled=False, track_metrics=False,
                            params=DelayStageParams(max_slots=8)),
    ]

    # Warm-up removes import/JIT-cache effects from the measurement.
    _replay_once(jobs, tiny_cluster, schedulers, None)

    t_off = _best_time(jobs, tiny_cluster, schedulers, lambda: None)
    t_on = _best_time(
        jobs, tiny_cluster, schedulers,
        lambda: ProgressReporter("bench", total_jobs=len(jobs) * 2,
                                 stream=io.StringIO()),
    )

    # The 25 ms absolute slack covers scheduler jitter when t_off is
    # tiny; the 1.05 factor is the ISSUE's <5% contract.
    assert t_on <= t_off * 1.05 + 0.025, (
        f"progress overhead too high: on={t_on:.4f}s off={t_off:.4f}s "
        f"({t_on / t_off - 1:.1%})"
    )
