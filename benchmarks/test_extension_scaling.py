"""Extension — dataset-size scaling of the DelayStage benefit.

Not a paper figure: sweeps each workload's dataset scale and reports
how the improvement moves.  The interleaving benefit should persist
across sizes (it is structural, not volume-specific).
"""

import pytest

from repro.analysis import render_table
from repro.workloads import WORKLOADS, scaling_sweep


def run(ec2):
    rows = []
    gains = {}
    for name in ("LDA", "CosineSimilarity"):
        points = scaling_sweep(WORKLOADS[name], ec2, scales=(0.5, 1.0, 1.5))
        gains[name] = [p.gain for p in points]
        for p in points:
            rows.append([name, p.scale, f"{p.stock_jct:.1f}",
                         f"{p.delaystage_jct:.1f}", f"{p.gain:.1%}"])
    return rows, gains


def test_extension_scaling(benchmark, ec2, artifact):
    rows, gains = benchmark.pedantic(run, args=(ec2,), rounds=1, iterations=1)

    text = render_table(
        ["workload", "scale", "stock JCT (s)", "delaystage JCT (s)", "gain"],
        rows,
        title="Extension — DelayStage benefit across dataset scales",
    )
    artifact("extension_scaling", text)

    for name, gs in gains.items():
        # The benefit persists at every scale.
        assert min(gs) > 0.10, name
        # And stays in the same regime (no wild swings).
        assert max(gs) - min(gs) < 0.15, name
