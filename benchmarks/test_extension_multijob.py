"""Extension — DelayStage in a multi-job environment (paper Sec. 6).

The paper argues DelayStage "can be easily extended to reducing the
average job completion time in the multi-job environment".  This bench
runs batches of concurrent workload jobs on one cluster: each job's
delay table is planned independently (exactly what the per-job
prototype would do) and all jobs execute together.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.cluster import uniform_cluster
from repro.schedulers import (
    DelayStageScheduler,
    StockSparkScheduler,
    run_jobs_with_scheduler,
)
from repro.workloads import lda


def run_batches():
    cluster = uniform_cluster(12, executors_per_worker=2, nic_mbps=480,
                              disk_mb_per_sec=150, storage_nodes=3)
    rows = []
    means = {}
    for batch_size in (1, 2, 3):
        jobs = [lda(scale=0.5).scaled(1.0, job_id=f"lda{i}") for i in range(batch_size)]
        arrivals = [i * 30.0 for i in range(batch_size)]
        stock = run_jobs_with_scheduler(
            jobs, cluster, StockSparkScheduler(track_metrics=False), arrivals
        )
        ds = run_jobs_with_scheduler(
            jobs, cluster,
            DelayStageScheduler(profiled=False, track_metrics=False),
            arrivals,
        )
        mean_stock = float(np.mean([r.completion_time for r in stock.job_records.values()]))
        mean_ds = float(np.mean([r.completion_time for r in ds.job_records.values()]))
        means[batch_size] = (mean_stock, mean_ds)
        rows.append([batch_size, f"{mean_stock:.1f}", f"{mean_ds:.1f}",
                     f"{1 - mean_ds / mean_stock:.1%}"])
    return rows, means


def test_extension_multijob(benchmark, artifact):
    rows, means = benchmark.pedantic(run_batches, rounds=1, iterations=1)

    text = render_table(
        ["concurrent jobs", "stock mean JCT (s)", "delaystage mean JCT (s)", "gain"],
        rows,
        title=(
            "Extension — concurrent LDA jobs on a shared cluster "
            "(per-job DelayStage planning, joint execution)"
        ),
    )
    artifact("extension_multijob", text)

    for batch_size, (stock, ds) in means.items():
        # Per-job planning keeps its benefit (or at worst breaks even)
        # when jobs share the cluster.
        assert ds <= stock * 1.03, f"batch {batch_size}"
    assert means[1][1] < means[1][0]  # the single-job case clearly wins
