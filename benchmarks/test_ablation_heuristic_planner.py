"""Ablation — Algorithm 1 vs the O(|K|) staggered-read heuristic.

The heuristic serializes path-head reads analytically (no fluid
evaluation).  This quantifies the planning-cost/quality trade: the
heuristic captures most of the interleaving benefit in milliseconds;
the fluid-informed greedy recovers the rest.
"""

import pytest

from repro.analysis import render_table
from repro.core import (
    DelayStageParams,
    delay_stage_schedule,
    staggered_read_schedule,
)
from repro.simulator import FixedDelayPolicy, SimulationConfig, simulate_job
from repro.workloads import WORKLOADS


def run(ec2):
    cfg = SimulationConfig(track_metrics=False)
    rows = []
    stats = {}
    for name, ctor in WORKLOADS.items():
        job = ctor()
        stock = simulate_job(job, ec2, config=cfg).job_completion_time(job.job_id)
        h = staggered_read_schedule(job, ec2)
        g = delay_stage_schedule(job, ec2, DelayStageParams(max_slots=24))
        jh = simulate_job(job, ec2, FixedDelayPolicy(h.delays), cfg).job_completion_time(job.job_id)
        jg = simulate_job(job, ec2, FixedDelayPolicy(g.delays), cfg).job_completion_time(job.job_id)
        stats[name] = (stock, jh, jg, h.compute_seconds, g.compute_seconds)
        rows.append([
            name,
            f"{1 - jh / stock:.1%} ({h.compute_seconds * 1000:.0f} ms)",
            f"{1 - jg / stock:.1%} ({g.compute_seconds * 1000:.0f} ms)",
        ])
    return rows, stats


def test_ablation_heuristic_planner(benchmark, ec2, artifact):
    rows, stats = benchmark.pedantic(run, args=(ec2,), rounds=1, iterations=1)

    text = render_table(
        ["workload", "staggered-read heuristic (gain, plan time)",
         "Algorithm 1 (gain, plan time)"],
        rows,
        title="Ablation — analytic heuristic vs fluid-informed greedy",
    )
    artifact("ablation_heuristic_planner", text)

    for name, (stock, jh, jg, th, tg) in stats.items():
        # The heuristic captures a real share of the benefit...
        assert 1 - jh / stock > 0.05, name
        # ...but the greedy is at least as good on every workload...
        assert jg <= jh + 1e-6, name
        # ...while the heuristic plans orders of magnitude faster.
        assert th < tg / 10, name
