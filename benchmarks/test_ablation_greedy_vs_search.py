"""Ablation — Algorithm 1's greedy vs brute-force random search.

Quantifies what the paper's greedy structure (descending path order,
one stage at a time, slotted scan) gives up against a far more
expensive random search over full delay vectors, and how far both sit
above the provable lower bound.
"""

import pytest

from repro.analysis import render_table
from repro.core import (
    DelayStageParams,
    delay_stage_schedule,
    makespan_bounds,
    optimality_gap,
    random_search_schedule,
)
from repro.workloads import WORKLOADS


def run(ec2):
    rows = []
    stats = {}
    for name in ("CosineSimilarity", "LDA"):
        job = WORKLOADS[name]()
        bounds = makespan_bounds(job, ec2)
        greedy = delay_stage_schedule(job, ec2, DelayStageParams(max_slots=24))
        search = random_search_schedule(job, ec2, samples=120, rng=0)
        stats[name] = (greedy, search, bounds)
        rows.append([
            name,
            f"{bounds.bound:.1f} ({bounds.binding})",
            f"{greedy.predicted_makespan:.1f} ({greedy.evaluations} ev)",
            f"{search.predicted_makespan:.1f} ({search.evaluations} ev)",
            f"{optimality_gap(greedy.predicted_makespan, bounds):.1%}",
        ])
    return rows, stats


def test_ablation_greedy_vs_search(benchmark, ec2, artifact):
    rows, stats = benchmark.pedantic(run, args=(ec2,), rounds=1, iterations=1)

    text = render_table(
        ["workload", "lower bound (s)", "Algorithm 1 makespan", "random search (120)", "greedy gap"],
        rows,
        title=(
            "Ablation — greedy vs random search vs lower bound "
            "(parallel-stage makespan under the fluid model)"
        ),
    )
    artifact("ablation_greedy_vs_search", text)

    for name, (greedy, search, bounds) in stats.items():
        # The linear-cost greedy matches or beats the expensive search.
        assert greedy.predicted_makespan <= search.predicted_makespan * 1.05, name
        # And sits within 60 % of the (loose) lower bound.
        assert optimality_gap(greedy.predicted_makespan, bounds) < 0.6, name
        # While spending an order of magnitude fewer evaluations than a
        # search of comparable quality would need.
        assert greedy.evaluations < search.evaluations
