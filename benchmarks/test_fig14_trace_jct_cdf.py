"""Fig. 14 — JCT CDF of trace jobs under Alibaba Fuxi and the three
DelayStage path-order variants (default/descending, random,
ascending).

Paper claims reproduced: all DelayStage variants beat Fuxi (the paper
measures mean JCTs of 871 / 945 / 996 s vs Fuxi's 1,373 s, i.e.
−36.6 % / −31.2 % / −27.5 %), and the default descending order is the
best of the three.

The replay follows the paper's even-partitioning simplification: each
job runs on a small per-job slice of the simulated cluster; the
contention-inefficiency knob (``contention_penalty``) models the
overheads real clusters exhibit beyond ideal processor sharing.
"""

import numpy as np
import pytest

from repro import DelayStageScheduler, FuxiScheduler, alibaba_sim_cluster
from repro.analysis import render_cdf
from repro.core import DelayStageParams, PathOrder
from repro.schedulers import run_with_scheduler
from repro.trace import TraceGeneratorConfig, generate_trace, to_job

PENALTY = 0.5
NUM_JOBS = 70


def replay():
    cluster = alibaba_sim_cluster(
        num_machines=3, storage_nodes=1, nic_mbps_range=(600, 2000), rng=0
    )
    trace = generate_trace(
        TraceGeneratorConfig(num_jobs=120, replay_workers=3, max_stages=60,
                             replay_read_mb_per_sec=85.0),
        rng=3,
    )
    jobs = [to_job(tj) for tj in trace[:NUM_JOBS]]

    def ds(order, rng=0):
        return DelayStageScheduler(
            profiled=False, track_metrics=False, contention_penalty=PENALTY,
            params=DelayStageParams(order=order, max_slots=12, rng=rng),
        )

    schedulers = {
        "fuxi": FuxiScheduler(track_metrics=False, contention_penalty=PENALTY),
        "default": ds(PathOrder.DESCENDING),
        "random": ds(PathOrder.RANDOM, rng=7),
        "ascending": ds(PathOrder.ASCENDING),
    }
    jcts = {name: [] for name in schedulers}
    for job in jobs:
        for name, sched in schedulers.items():
            jcts[name].append(run_with_scheduler(job, cluster, sched).jct)
    return {name: np.array(v) for name, v in jcts.items()}


def test_fig14_trace_jct_cdf(benchmark, artifact):
    jcts = benchmark.pedantic(replay, rounds=1, iterations=1)

    means = {name: float(v.mean()) for name, v in jcts.items()}
    header = (
        "Fig. 14 — trace-job JCT CDF by strategy "
        f"(means: fuxi {means['fuxi']:.0f}s, default {means['default']:.0f}s, "
        f"random {means['random']:.0f}s, ascending {means['ascending']:.0f}s; "
        "paper: 1373 / 871 / 945 / 996 s)\n"
    )
    text = header + render_cdf(jcts, percentiles=(10, 25, 50, 75, 90, 99))
    artifact("fig14_trace_jct_cdf", text)

    # Every DelayStage variant beats Fuxi; default is (essentially) the
    # best variant — allow a 2 % sampling tolerance on this job sample.
    for variant in ("default", "random", "ascending"):
        assert means[variant] < means["fuxi"], variant
    best_other = min(means["random"], means["ascending"])
    assert means["default"] <= best_other * 1.02
    # The headline factor: default cuts mean JCT by >20 % (paper 36.6 %).
    assert 1 - means["default"] / means["fuxi"] > 0.20
