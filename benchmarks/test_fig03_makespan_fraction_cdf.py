"""Fig. 3 — CDF of parallel-stage makespan over job execution time.

Paper claims reproduced: the makespan of parallel stages exceeds 60 %
of job completion time for over 80 % of jobs; the average proportion
is 82.3 %.
"""

import numpy as np
import pytest

from repro.analysis import render_cdf
from repro.trace import TraceGeneratorConfig, generate_trace, parallel_makespan_fraction


@pytest.fixture(scope="module")
def trace():
    return generate_trace(TraceGeneratorConfig(num_jobs=1200), rng=42)


def compute_fractions(trace):
    return np.array([f for f in map(parallel_makespan_fraction, trace) if f > 0])


def test_fig03_makespan_fraction_cdf(benchmark, trace, artifact):
    fractions = benchmark.pedantic(compute_fractions, args=(trace,), rounds=1, iterations=1)

    text = render_cdf(
        {"T(parallel)/T(job) %": fractions * 100},
        title=(
            "Fig. 3 — parallel-stage makespan as a fraction of JCT "
            f"(mean {fractions.mean():.1%} [paper 82.3%]; "
            f">60% for {np.mean(fractions > 0.6):.1%} of jobs [paper >80%])"
        ),
        percentiles=(10, 20, 50, 80, 90),
    )
    artifact("fig03_makespan_fraction_cdf", text)

    assert np.mean(fractions > 0.6) > 0.80
    assert fractions.mean() == pytest.approx(0.823, abs=0.07)
