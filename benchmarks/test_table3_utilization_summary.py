"""Table 3 — average (std) worker network throughput and CPU
utilization for the four workloads under Spark vs DelayStage.

Paper claims reproduced: DelayStage raises the average network
throughput by 18.3-81.8 % and CPU utilization by 7.2-28.1 %, with
smaller standard deviations (steadier resource usage).
"""

import pytest

from repro.analysis import render_table
from repro.obs import interleaving_report


def test_table3_utilization_summary(benchmark, workload_runs, artifact):
    def build():
        rows = []
        stats = {}
        for name, runs in workload_runs.items():
            # Read the Table 3 numbers off the interleaving report; its
            # embedded summary IS utilization_summary(result) (no-drift
            # contract, tests/test_obs_metrics.py).
            spark = interleaving_report(runs["spark"].result).utilization
            ds = interleaving_report(runs["delaystage"].result).utilization
            stats[name] = (spark, ds)
            rows.append([
                name,
                f"{spark.net_mb_mean:.1f} ({spark.net_mb_std:.1f})",
                f"{ds.net_mb_mean:.1f} ({ds.net_mb_std:.1f})",
                f"{spark.cpu_pct_mean:.1f} ({spark.cpu_pct_std:.1f})",
                f"{ds.cpu_pct_mean:.1f} ({ds.cpu_pct_std:.1f})",
            ])
        return rows, stats

    rows, stats = benchmark.pedantic(build, rounds=1, iterations=1)
    text = render_table(
        ["workload", "net spark MB/s", "net delaystage", "cpu spark %", "cpu delaystage"],
        rows,
        title=(
            "Table 3 — worker utilization mean (std): Spark vs DelayStage "
            "(paper: net +18.3%…+81.8%, cpu +7.2%…+28.1%)"
        ),
    )
    artifact("table3_utilization_summary", text)

    net_gains, cpu_gains = [], []
    for name, (spark, ds) in stats.items():
        assert ds.net_mb_mean > spark.net_mb_mean, name
        assert ds.cpu_pct_mean > spark.cpu_pct_mean, name
        # Steadier usage: the coefficient of variation shrinks (the
        # paper reports smaller deviations alongside higher means).
        assert (ds.net_mb_std / ds.net_mb_mean) < (
            spark.net_mb_std / spark.net_mb_mean
        ), name
        assert (ds.cpu_pct_std / ds.cpu_pct_mean) < (
            spark.cpu_pct_std / spark.cpu_pct_mean
        ), name
        net_gains.append(ds.net_mb_mean / spark.net_mb_mean - 1)
        cpu_gains.append(ds.cpu_pct_mean / spark.cpu_pct_mean - 1)
    # Band check on the spread of improvements (paper: up to ~82 % net).
    assert max(net_gains) > 0.18
    assert max(cpu_gains) > 0.07
