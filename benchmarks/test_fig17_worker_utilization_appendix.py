"""Fig. 17 (Appendix A.3) — worker network throughput and CPU
utilization for ConnectedComponents and LDA, Spark vs DelayStage.

Paper claims reproduced: DelayStage fills the stock schedule's idle
network and CPU periods for both workloads (higher average
throughput/utilization on the same worker).
"""

import pytest

from repro.analysis import render_series, utilization_series


def test_fig17_worker_utilization_appendix(benchmark, workload_runs, artifact):
    def build():
        sections = []
        stats = {}
        for name, job_id in (
            ("ConnectedComponents", "connectedcomponents"),
            ("LDA", "lda"),
        ):
            runs = workload_runs[name]
            for strategy in ("spark", "delaystage"):
                run = runs[strategy]
                t, cpu, net = utilization_series(run.result, "w0", step=2.0)
                net_mb = net / 2**20
                stats[(name, strategy)] = (
                    cpu[t < run.jct].mean(),
                    net_mb[t < run.jct].mean(),
                )
                sections.append(render_series(
                    t,
                    {"CPU %": cpu, "net MB/s": net_mb},
                    title=f"{name} / {strategy} (JCT {run.jct:.0f} s)",
                    x_label="t(s)",
                    max_points=14,
                ))
        return "\n\n".join(sections), stats

    text, stats = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact(
        "fig17_worker_utilization_appendix",
        "Fig. 17 — worker w0 utilization (appendix workloads)\n" + text,
    )

    for name in ("ConnectedComponents", "LDA"):
        cpu_spark, net_spark = stats[(name, "spark")]
        cpu_ds, net_ds = stats[(name, "delaystage")]
        assert cpu_ds > cpu_spark, name
        assert net_ds > net_spark, name
