"""Appendix A.2 — prediction accuracy of the performance model.

Paper claims reproduced: planning on profiled parameters, the model
predicts per-stage execution times within single-digit percent error
(the paper reports 1.6 %-9.1 % for LDA).  Here the "real cluster" is
the ground-truth simulation and the model runs on 10 %-sample profiled
parameters with measurement noise, so the error isolates the
profiling/measurement pipeline exactly as Sec. 4.2 describes.
"""

import numpy as np
import pytest

from repro import DelayTimeCalculator, FixedDelayPolicy, lda, simulate_job
from repro.analysis import render_table
from repro.model import evaluate_schedule


def measure(ec2):
    job = lda()
    calc = DelayTimeCalculator(
        ec2, sample_fraction=0.1, profiling_noise=0.03, measurement_noise=0.02, rng=0
    )
    schedule = calc.compute(job)
    model_job = calc.last_profile.to_model_job()

    # Model prediction of per-stage times under the chosen schedule...
    predicted = evaluate_schedule(model_job, ec2, schedule.delays)
    # ...versus the ground-truth execution.
    actual = simulate_job(job, ec2, FixedDelayPolicy(schedule.delays))

    rows = []
    errors = []
    for sid in job.stage_ids:
        t_pred = predicted.stage_times[sid]
        t_real = actual.stage(job.job_id, sid).duration
        err = abs(t_pred - t_real) / t_real
        errors.append(err)
        rows.append([sid, f"{t_pred:.1f}", f"{t_real:.1f}", f"{err:.1%}"])
    return rows, np.array(errors)


def test_appendix_a2_model_accuracy(benchmark, ec2, artifact):
    rows, errors = benchmark.pedantic(measure, args=(ec2,), rounds=1, iterations=1)

    text = render_table(
        ["stage", "predicted t_k (s)", "measured t_k (s)", "error"],
        rows,
        title=(
            "Appendix A.2 — model-predicted vs executed stage times for LDA "
            f"(mean error {errors.mean():.1%}; paper: 1.6%-9.1%)"
        ),
    )
    artifact("appendix_a2_model_accuracy", text)

    assert errors.mean() < 0.12
    assert errors.max() < 0.25
