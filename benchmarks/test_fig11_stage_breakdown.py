"""Fig. 11 — stage execution breakdown for CosineSimilarity and LDA
under Spark, AggShuffle, and DelayStage.

Paper claims reproduced: stock Spark's resource contention prolongs
the long execution path (~29 % for CosineSimilarity, ~24 % for LDA);
DelayStage postpones Stages 1-2 and restores near-standalone path
times; AggShuffle lengthens LDA's expanding-shuffle stage.
"""

import pytest

from repro.analysis import stage_gantt
from repro.dag import execution_paths
from repro.workloads import cosine_similarity, lda


def _breakdown_text(workload_name, job_id, runs):
    lines = [f"{workload_name}:"]
    for strategy in ("spark", "aggshuffle", "delaystage"):
        result = runs[strategy].result
        lines.append(f"  {strategy}:")
        for row in stage_gantt(result, job_id):
            delay = f" (delayed {row.delay:.0f}s)" if row.delay > 0.5 else ""
            lines.append(
                f"    {row.stage_id:4s} submit {row.submit:7.1f}  "
                f"read {row.read_done - row.submit:6.1f}s  "
                f"proc+write {row.finish - row.read_done:6.1f}s  "
                f"finish {row.finish:7.1f}{delay}"
            )
    return "\n".join(lines)


def _long_path_completion(job, result):
    paths = execution_paths(job)
    long_path = paths[0]
    return max(result.stage(job.job_id, sid).finish_time for sid in long_path)


def test_fig11_stage_breakdown(benchmark, workload_runs, artifact):
    cos_runs = workload_runs["CosineSimilarity"]
    lda_runs = workload_runs["LDA"]

    def build():
        return (
            _breakdown_text("CosineSimilarity", "cosinesimilarity", cos_runs)
            + "\n\n"
            + _breakdown_text("LDA", "lda", lda_runs)
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact("fig11_stage_breakdown", "Fig. 11 — stage execution breakdown\n" + text)

    # The long path completes substantially earlier under DelayStage.
    for job, runs in ((cosine_similarity(), cos_runs), (lda(), lda_runs)):
        stock_path = _long_path_completion(job, runs["spark"].result)
        ds_path = _long_path_completion(job, runs["delaystage"].result)
        shrink = 1 - ds_path / stock_path
        assert 0.10 < shrink < 0.5, f"{job.job_id}: long path shrink {shrink:.1%}"

    # DelayStage delays Stage 1 (and 2) in both workloads, per the paper.
    for runs in (cos_runs, lda_runs):
        delayed = runs["delaystage"].info["schedule"].delayed_stages
        assert "S1" in delayed

    # AggShuffle prolongs LDA's expanding-shuffle stage S3 (ratio 1.3).
    lda_spark_s3 = lda_runs["spark"].result.stage("lda", "S3").compute_time
    lda_agg_s3 = lda_runs["aggshuffle"].result.stage("lda", "S3").compute_time
    assert lda_agg_s3 > lda_spark_s3
