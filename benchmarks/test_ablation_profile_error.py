"""Ablation — sensitivity to profiling/measurement error.

Sec. 4.2 plans on parameters estimated from a 10 % sample plus noisy
bandwidth measurements.  This ablation sweeps the noise level: the
schedule quality must degrade gracefully (the paper's ~9 % model error
leaves most of the gain intact).
"""

import numpy as np
import pytest

from repro import DelayTimeCalculator, StockSparkScheduler, triangle_count
from repro.analysis import render_table
from repro.schedulers import run_with_scheduler
from repro.simulator import FixedDelayPolicy, simulate_job


def sweep(ec2):
    job = triangle_count()
    spark = run_with_scheduler(job, ec2, StockSparkScheduler(track_metrics=False)).jct
    rows = []
    gains = {}
    for noise in (0.0, 0.05, 0.15, 0.30):
        jcts = []
        seeds = (0,) if noise == 0.0 else (0, 1, 2)
        for seed in seeds:
            calc = DelayTimeCalculator(
                ec2,
                profiling_noise=noise,
                measurement_noise=noise / 2,
                rng=seed,
            )
            schedule = calc.compute(job)
            jct = simulate_job(
                job, ec2, FixedDelayPolicy(schedule.delays)
            ).job_completion_time(job.job_id)
            jcts.append(jct)
        mean_jct = float(np.mean(jcts))
        gains[noise] = 1 - mean_jct / spark
        rows.append([f"{noise:.2f}", f"{mean_jct:.1f}", f"{gains[noise]:.1%}"])
    return rows, gains, spark


def test_ablation_profile_error(benchmark, ec2, artifact):
    rows, gains, spark = benchmark.pedantic(sweep, args=(ec2,), rounds=1, iterations=1)

    text = render_table(
        ["noise sigma", "mean JCT (s)", "gain vs spark"],
        rows,
        title=(
            f"Ablation — profiling-noise sensitivity on TriangleCount "
            f"(stock Spark {spark:.1f} s; paper's observed model error ≤ 9.1 %)"
        ),
    )
    artifact("ablation_profile_error", text)

    # Oracle-grade profiling achieves the full gain...
    assert gains[0.0] > 0.25
    # ...and even 30 % parameter noise keeps a solid improvement.
    assert gains[0.30] > 0.10
    # Degradation is monotone-ish: heavy noise never beats the oracle.
    assert gains[0.30] <= gains[0.0] + 0.02
