"""Fig. 13 — executor occupation by stage for CosineSimilarity under
stock Spark vs DelayStage.

Paper claims reproduced: with Stage 1's submission delayed, Stage 3
gets the executors to itself during its long shuffle read (occupying
all 60 executors from t = 0), and the job's executor timeline
compresses overall.
"""

import numpy as np
import pytest

from repro import DelayStageScheduler, StockSparkScheduler, compare_schedulers, cosine_similarity
from repro.analysis import render_series


def run_with_occupancy(ec2):
    return compare_schedulers(
        cosine_similarity(),
        ec2,
        [
            StockSparkScheduler(track_occupancy=True),
            DelayStageScheduler(profiled=False, track_occupancy=True),
        ],
    )


def _occupancy_table(result, job_id, stage_ids, step=10.0):
    makespan = result.makespan
    t = np.arange(0.0, makespan, step)
    series = {}
    for sid in stage_ids:
        t0, t1, occ = result.metrics.stage_occupancy_series((job_id, sid))
        values = np.zeros(len(t))
        if len(t0):
            idx = np.searchsorted(t0, t, side="right") - 1
            valid = (idx >= 0) & (t < t1[np.clip(idx, 0, len(t1) - 1)])
            values[valid] = occ[idx[valid]]
        series[sid] = values
    return t, series


def test_fig13_executor_occupation(benchmark, ec2, artifact):
    runs = benchmark.pedantic(run_with_occupancy, args=(ec2,), rounds=1, iterations=1)
    stage_ids = ["S1", "S2", "S3", "S4", "S5"]

    sections = []
    for strategy in ("spark", "delaystage"):
        result = runs[strategy].result
        t, series = _occupancy_table(result, "cosinesimilarity", stage_ids)
        sections.append(render_series(
            t,
            {sid: v for sid, v in series.items()},
            title=f"{strategy}: executors occupied per stage (total 60)",
            x_label="t(s)",
            max_points=14,
        ))
    artifact(
        "fig13_executor_occupation",
        "Fig. 13 — executor occupation across CosineSimilarity stages\n"
        + "\n\n".join(sections),
    )

    # Under DelayStage, Stage 3 holds (nearly) all executors early while
    # it shuffle-reads (Stage 1 is delayed out of its way).
    ds = runs["delaystage"].result
    t0, t1, occ = ds.metrics.stage_occupancy_series(("cosinesimilarity", "S3"))
    early = occ[(t0 < 50.0) & (t1 > 5.0)]  # segments overlapping [5, 50] s
    assert early.size and early.min() > 40.0  # of 60 executors

    # The delayed schedule finishes earlier overall.
    assert runs["delaystage"].jct < runs["spark"].jct
