"""Sec. 5.4 — DelayStage's runtime overhead: profiling time and
strategy computation time for the four workloads.

Paper claims reproduced: profiling a 10 % sample takes tens of
(simulated) seconds per job — 45-164 s on EC2 — and is needed only
once per recurring job; strategy computation is sub-second for
typical jobs (the paper's 58-164 ms; Python pays a constant factor).
"""

import pytest

from repro import DelayTimeCalculator, WORKLOADS
from repro.analysis import render_table
from repro.core import DelayStageParams


def measure(ec2):
    rows = []
    for name, ctor in WORKLOADS.items():
        job = ctor()
        calc = DelayTimeCalculator(ec2, params=DelayStageParams(max_slots=24), rng=0)
        profile = calc.profile(job)
        schedule = calc.compute(job, profile=profile)
        rows.append([
            name,
            f"{profile.profiling_seconds:.0f}",
            f"{schedule.compute_seconds * 1000:.0f}",
            schedule.evaluations,
        ])
    return rows


def test_sec54_runtime_overhead(benchmark, ec2, artifact):
    rows = benchmark.pedantic(measure, args=(ec2,), rounds=1, iterations=1)

    text = render_table(
        ["workload", "profiling (sim-s)", "strategy (wall-ms)", "evaluations"],
        rows,
        title=(
            "Sec. 5.4 — runtime overhead "
            "(paper: profiling 45-164 s, strategy 58-164 ms on EC2 hardware)"
        ),
    )
    artifact("sec54_runtime_overhead", text)

    for name, prof_s, strat_ms, _evals in rows:
        # The sampled profiling run is bounded work done once per
        # recurring job.  Our calibrated workloads carry much larger
        # intermediate volumes than the paper's (see EXPERIMENTS.md),
        # so the single-executor profile is proportionally longer than
        # the paper's 45-164 s; the one-off-and-bounded property is
        # what must hold.
        assert 5.0 < float(prof_s) < 5000.0, name
        # Strategy computation stays interactive (seconds in Python vs
        # the paper's 58-164 ms in C++/Scala — a constant factor).
        assert float(strat_ms) < 20_000.0, name
