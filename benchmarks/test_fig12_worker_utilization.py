"""Fig. 12 — worker network throughput and CPU utilization running
CosineSimilarity and TriangleCount under stock Spark vs DelayStage.

Paper claims reproduced: DelayStage fills the idle periods, raising a
worker's average network throughput and CPU utilization.
"""

import pytest

from repro.analysis import render_series, utilization_series


def test_fig12_worker_utilization(benchmark, workload_runs, artifact):
    def build():
        sections = []
        stats = {}
        for name, job_id in (
            ("CosineSimilarity", "cosinesimilarity"),
            ("TriangleCount", "trianglecount"),
        ):
            runs = workload_runs[name]
            for strategy in ("spark", "delaystage"):
                run = runs[strategy]
                t, cpu, net = utilization_series(run.result, "w0", step=2.0)
                net_mb = net / 2**20
                stats[(name, strategy)] = (
                    cpu[t < run.jct].mean(),
                    net_mb[t < run.jct].mean(),
                )
                sections.append(render_series(
                    t,
                    {"CPU %": cpu, "net MB/s": net_mb},
                    title=f"{name} / {strategy} (JCT {run.jct:.0f} s)",
                    x_label="t(s)",
                    max_points=14,
                ))
        return "\n\n".join(sections), stats

    text, stats = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact("fig12_worker_utilization", "Fig. 12 — worker w0 utilization\n" + text)

    for name in ("CosineSimilarity", "TriangleCount"):
        cpu_spark, net_spark = stats[(name, "spark")]
        cpu_ds, net_ds = stats[(name, "delaystage")]
        assert cpu_ds > cpu_spark, f"{name}: CPU util must improve"
        assert net_ds > net_spark, f"{name}: network throughput must improve"
