"""Table 4 — average worker CPU and network utilization during trace
replay under Fuxi and the DelayStage variants.

Paper claims reproduced: the default DelayStage raises average CPU
utilization from 36.2 % to 45.4 % and network utilization from 42.7 %
to 53.3 % versus Fuxi, with random/ascending in between.
"""

import numpy as np
import pytest

from repro import DelayStageScheduler, FuxiScheduler, alibaba_sim_cluster
from repro.analysis import render_table
from repro.core import DelayStageParams, PathOrder
from repro.obs import interleaving_report
from repro.schedulers import run_with_scheduler
from repro.trace import TraceGeneratorConfig, generate_trace, to_job

PENALTY = 0.5
NUM_JOBS = 25


def replay_with_metrics():
    cluster = alibaba_sim_cluster(
        num_machines=3, storage_nodes=1, nic_mbps_range=(600, 2000), rng=0
    )
    trace = generate_trace(
        TraceGeneratorConfig(num_jobs=60, replay_workers=3, max_stages=40,
                             replay_read_mb_per_sec=85.0),
        rng=3,
    )
    jobs = [to_job(tj) for tj in trace[:NUM_JOBS] if tj.num_stages >= 2]

    def ds(order, rng=0):
        return DelayStageScheduler(
            profiled=False, track_metrics=True, contention_penalty=PENALTY,
            params=DelayStageParams(order=order, max_slots=10, rng=rng),
        )

    schedulers = {
        "fuxi": FuxiScheduler(track_metrics=True, contention_penalty=PENALTY),
        "random": ds(PathOrder.RANDOM, rng=7),
        "ascending": ds(PathOrder.ASCENDING),
        "default": ds(PathOrder.DESCENDING),
    }
    utilization = {}
    for name, sched in schedulers.items():
        cpu, net = [], []
        for job in jobs:
            run = run_with_scheduler(job, cluster, sched)
            # Table 4's numbers come straight off the interleaving
            # report (cluster_average over the makespan, in percent).
            rep = interleaving_report(run.result)
            cpu.append(rep.cluster_cpu_pct)
            net.append(rep.cluster_net_pct)
        utilization[name] = (float(np.mean(cpu)), float(np.mean(net)))
    return utilization


def test_table4_trace_utilization(benchmark, artifact):
    utilization = benchmark.pedantic(replay_with_metrics, rounds=1, iterations=1)

    rows = [
        [name, f"{cpu:.1f}", f"{net:.1f}"]
        for name, (cpu, net) in utilization.items()
    ]
    text = render_table(
        ["strategy", "CPU %", "network %"],
        rows,
        title=(
            "Table 4 — average worker utilization during trace replay "
            "(paper: Fuxi 36.2/42.7, random 43.4/49.1, ascending 42.2/48.3, "
            "default 45.4/53.3)"
        ),
    )
    artifact("table4_trace_utilization", text)

    fuxi_cpu, fuxi_net = utilization["fuxi"]
    for variant in ("default", "random", "ascending"):
        cpu, net = utilization[variant]
        assert cpu > fuxi_cpu, variant
        assert net > fuxi_net, variant
    # Default is the most utilization-efficient variant (paper's Table 4).
    assert utilization["default"][0] >= max(
        utilization["random"][0], utilization["ascending"][0]
    ) - 1.5
