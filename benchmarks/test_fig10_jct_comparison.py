"""Fig. 10 — JCT of the four workloads under Spark, AggShuffle, and
DelayStage on 30 EC2 nodes.

Paper claims reproduced: DelayStage cuts JCT by 17.5-41.3 % vs stock
Spark and 4.2-17.4 % vs AggShuffle; ConnectedComponents gains least
(sequential stages dominate), TriangleCount most (widest parallel
set).
"""

import pytest

from repro.analysis import render_table


def test_fig10_jct_comparison(benchmark, workload_runs, artifact):
    # The heavy simulations live in the shared session fixture; the
    # benchmarked unit is the table assembly over their results.
    def build_rows():
        rows = []
        for name, runs in workload_runs.items():
            spark = runs["spark"].jct
            agg = runs["aggshuffle"].jct
            ds = runs["delaystage"].jct
            rows.append([
                name, spark, agg, ds,
                f"{1 - ds / spark:.1%}", f"{1 - ds / agg:.1%}",
            ])
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    text = render_table(
        ["workload", "spark(s)", "aggshuffle(s)", "delaystage(s)",
         "vs spark", "vs aggshuffle"],
        rows,
        title=(
            "Fig. 10 — job completion time by strategy "
            "(paper: DelayStage −17.5%…−41.3% vs Spark, −4.2%…−17.4% vs AggShuffle)"
        ),
    )
    artifact("fig10_jct_comparison", text)

    gains = {}
    for name, runs in workload_runs.items():
        spark, agg, ds = (runs[k].jct for k in ("spark", "aggshuffle", "delaystage"))
        gains[name] = 1 - ds / spark
        assert ds < agg < spark or (name == "LDA" and ds < agg)  # ordering
        assert 0.10 < gains[name] < 0.50
    assert min(gains, key=gains.get) == "ConnectedComponents"
    assert max(gains, key=gains.get) == "TriangleCount"
