"""Ablation — candidate-delay slot granularity.

The paper slots the delay scan at one second (Sec. 4.1); this
reproduction caps the slot count per stage (``max_slots``) to bound
Python runtime.  The ablation sweeps the cap on CosineSimilarity:
coarser scans must degrade the schedule only gracefully, and finer
scans must cost proportionally more evaluations.
"""

import pytest

from repro import StockSparkScheduler, cosine_similarity
from repro.analysis import render_table
from repro.core import DelayStageParams, delay_stage_schedule
from repro.schedulers import run_with_scheduler
from repro.simulator import FixedDelayPolicy, simulate_job


def sweep(ec2):
    job = cosine_similarity()
    spark = run_with_scheduler(job, ec2, StockSparkScheduler(track_metrics=False)).jct
    rows = []
    for max_slots in (6, 12, 24, 48):
        schedule = delay_stage_schedule(
            job, ec2, DelayStageParams(max_slots=max_slots)
        )
        jct = simulate_job(
            job, ec2, FixedDelayPolicy(schedule.delays)
        ).job_completion_time(job.job_id)
        rows.append([
            max_slots,
            schedule.evaluations,
            f"{schedule.compute_seconds:.2f}",
            f"{jct:.1f}",
            f"{1 - jct / spark:.1%}",
        ])
    return rows, spark


def test_ablation_slot_granularity(benchmark, ec2, artifact):
    rows, spark = benchmark.pedantic(sweep, args=(ec2,), rounds=1, iterations=1)

    text = render_table(
        ["max_slots", "evaluations", "plan time (s)", "JCT (s)", "gain vs spark"],
        rows,
        title=(
            f"Ablation — delay-scan granularity on CosineSimilarity "
            f"(stock Spark {spark:.1f} s)"
        ),
    )
    artifact("ablation_slot_granularity", text)

    gains = [float(r[4].rstrip("%")) for r in rows]
    evals = [r[1] for r in rows]
    # Finer scans never evaluate fewer candidates.
    assert evals == sorted(evals)
    # Every granularity still beats stock Spark by a clear margin...
    assert min(gains) > 10.0
    # ...and the coarsest scan is within a few points of the finest.
    assert max(gains) - gains[0] < 12.0
