"""Ablation — fluid vs task-granular execution fidelity.

The headline experiments use the fluid model (the paper's Sec. 3
equal-share assumption).  This ablation re-runs the Fig. 10 comparison
for two workloads under discrete-task execution (waves, stragglers,
slot-limited CPUs) and checks the conclusions survive: DelayStage's
plans — computed against the fluid model — still beat stock scheduling
when executed task-granularly, and the two models' stock JCTs agree
within a modest band.
"""

import pytest

from repro.analysis import render_table
from repro.core import DelayStageParams, delay_stage_schedule
from repro.simulator import FixedDelayPolicy, SimulationConfig, simulate_job
from repro.workloads import WORKLOADS


def run(ec2):
    rows = []
    stats = {}
    for name in ("CosineSimilarity", "LDA"):
        job = WORKLOADS[name]()
        schedule = delay_stage_schedule(job, ec2, DelayStageParams(max_slots=24))

        def jct(config, delays=None):
            policy = FixedDelayPolicy(delays or {})
            return simulate_job(job, ec2, policy, config).job_completion_time(job.job_id)

        fluid_cfg = SimulationConfig(track_metrics=False)
        task_cfg = SimulationConfig(track_metrics=False, task_granular=True)
        stock_fluid = jct(fluid_cfg)
        stock_task = jct(task_cfg)
        ds_task = jct(task_cfg, schedule.delays)
        stats[name] = (stock_fluid, stock_task, ds_task)
        rows.append([
            name,
            f"{stock_fluid:.1f}",
            f"{stock_task:.1f}",
            f"{ds_task:.1f}",
            f"{1 - ds_task / stock_task:.1%}",
        ])
    return rows, stats


def test_ablation_task_granularity(benchmark, ec2, artifact):
    rows, stats = benchmark.pedantic(run, args=(ec2,), rounds=1, iterations=1)

    text = render_table(
        ["workload", "stock fluid (s)", "stock task-granular (s)",
         "delaystage task-granular (s)", "gain (task mode)"],
        rows,
        title=(
            "Ablation — execution-model fidelity: plans computed on the "
            "fluid model, executed with discrete tasks"
        ),
    )
    artifact("ablation_task_granularity", text)

    for name, (stock_fluid, stock_task, ds_task) in stats.items():
        # The two execution models agree on stock JCT within 20 %.
        assert stock_task == pytest.approx(stock_fluid, rel=0.20), name
        # Fluid-planned delays keep a solid gain under task execution.
        assert 1 - ds_task / stock_task > 0.10, name
