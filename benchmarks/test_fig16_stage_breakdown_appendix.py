"""Fig. 16 (Appendix A.1) — stage execution breakdown for
ConnectedComponents and TriangleCount.

Paper claims reproduced: DelayStage delays Stage 1 of
ConnectedComponents and a set of parallel stages of TriangleCount,
shortening the longest execution path by ~28.2 % and ~42.0 %
respectively (bands asserted: >10 % and >25 %).
"""

import pytest

from repro.analysis import stage_gantt
from repro.dag import execution_paths
from repro.workloads import connected_components, triangle_count


def _long_path_completion(job, result):
    long_path = execution_paths(job)[0]
    return max(result.stage(job.job_id, sid).finish_time for sid in long_path)


def _breakdown(job_id, runs):
    lines = []
    for strategy in ("spark", "delaystage"):
        lines.append(f"  {strategy}:")
        for row in stage_gantt(runs[strategy].result, job_id):
            delay = f" (delayed {row.delay:.0f}s)" if row.delay > 0.5 else ""
            lines.append(
                f"    {row.stage_id:4s} submit {row.submit:7.1f}  "
                f"read {row.read_done - row.submit:6.1f}s  "
                f"proc+write {row.finish - row.read_done:6.1f}s  "
                f"finish {row.finish:7.1f}{delay}"
            )
    return "\n".join(lines)


def test_fig16_stage_breakdown_appendix(benchmark, workload_runs, artifact):
    con_runs = workload_runs["ConnectedComponents"]
    tri_runs = workload_runs["TriangleCount"]

    def build():
        return (
            "ConnectedComponents:\n" + _breakdown("connectedcomponents", con_runs)
            + "\n\nTriangleCount:\n" + _breakdown("trianglecount", tri_runs)
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact(
        "fig16_stage_breakdown_appendix",
        "Fig. 16 — stage execution breakdown (appendix workloads)\n" + text,
    )

    # ConnectedComponents: Stage 1 is the delayed stage (paper A.1/A.3).
    con_delayed = con_runs["delaystage"].info["schedule"].delayed_stages
    assert "S1" in con_delayed
    # TriangleCount: several parallel stages are delayed.
    tri_delayed = tri_runs["delaystage"].info["schedule"].delayed_stages
    assert len(tri_delayed) >= 2

    # Longest-path compression bands.
    con_shrink = 1 - _long_path_completion(connected_components(), con_runs["delaystage"].result) / \
        _long_path_completion(connected_components(), con_runs["spark"].result)
    tri_shrink = 1 - _long_path_completion(triangle_count(), tri_runs["delaystage"].result) / \
        _long_path_completion(triangle_count(), tri_runs["spark"].result)
    assert con_shrink > 0.10  # paper: 28.2 %
    assert tri_shrink > 0.25  # paper: 42.0 %
    assert tri_shrink > con_shrink
