"""Extension — DelayStage on a geo-distributed cluster (paper Sec. 6).

The paper plans to "extend DelayStage to the geo-distributed setting
and examine its effectiveness"; this bench runs that experiment on the
WAN-constrained substrate: cross-datacenter shuffle reads become long
network phases, and WAN-aware Algorithm 1 still interleaves them with
computation.
"""

import pytest

from repro.analysis import render_table
from repro.cluster import geo_cluster
from repro.core import DelayStageParams, delay_stage_schedule
from repro.dag import JobBuilder
from repro.simulator import FixedDelayPolicy, Simulation, SimulationConfig


def geo_workload():
    return (
        JobBuilder("geojob")
        .stage("S1", input_mb=3072, output_mb=3072, process_rate_mb=8)
        .stage("S2", input_mb=3072, output_mb=6144, process_rate_mb=8)
        .stage("S3", input_mb=6144, output_mb=2048, process_rate_mb=20, parents=["S2"])
        .stage("S4", input_mb=5120, output_mb=512, process_rate_mb=20, parents=["S1", "S3"])
        .build()
    )


def run_sweep():
    job = geo_workload()
    rows = []
    for wan_mbps in (600, 240, 120):
        geo = geo_cluster(2, 3, inter_dc_mbps=wan_mbps, intra_dc_mbps=1000)

        def run(delays):
            sim = Simulation(
                geo.spec,
                SimulationConfig(track_metrics=False),
                pair_capacities=geo.pair_capacities,
            )
            sim.add_job(job, FixedDelayPolicy(delays))
            return sim.run().job_completion_time("geojob")

        stock = run({})
        schedule = delay_stage_schedule(
            job, geo.spec, DelayStageParams(max_slots=16),
            pair_capacities=geo.pair_capacities,
        )
        delayed = run(schedule.delays)
        rows.append([wan_mbps, f"{stock:.1f}", f"{delayed:.1f}",
                     f"{1 - delayed / stock:.1%}"])
    return rows


def test_extension_geo(benchmark, artifact):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    text = render_table(
        ["WAN Mbps/pair", "stock JCT (s)", "delaystage JCT (s)", "gain"],
        rows,
        title=(
            "Extension — DelayStage across two datacenters "
            "(the paper's Sec. 6 geo-distributed future work)"
        ),
    )
    artifact("extension_geo", text)

    gains = [float(r[3].rstrip("%")) for r in rows]
    # DelayStage helps at every WAN bandwidth.
    assert min(gains) > 3.0
    # Tighter WAN links slow the job overall (sanity on the substrate).
    stocks = [float(r[1]) for r in rows]
    assert stocks == sorted(stocks)
