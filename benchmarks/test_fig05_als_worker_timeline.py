"""Fig. 5 — one worker's CPU utilization and network throughput while
running ALS on a three-node stock Spark cluster.

Paper claims reproduced: the resources oscillate between fully used
and idle — network saturates during shuffle reads while the CPU sits
idle, then the CPU saturates while the network idles.
"""

import numpy as np
import pytest

from repro import StockSparkScheduler, als, uniform_cluster
from repro.analysis import render_series, utilization_series
from repro.schedulers import run_with_scheduler


def run_stock_als():
    cluster = uniform_cluster(
        3, executors_per_worker=2, nic_mbps=450, disk_mb_per_sec=150, storage_nodes=0
    )
    return run_with_scheduler(als(), cluster, StockSparkScheduler())


def test_fig05_als_worker_timeline(benchmark, artifact):
    run = benchmark.pedantic(run_stock_als, rounds=1, iterations=1)
    t, cpu, net = utilization_series(run.result, "w0", step=1.0)
    net_mb = net / 2**20

    text = render_series(
        t,
        {"CPU %": cpu, "net MB/s": net_mb},
        title=(
            f"Fig. 5 — worker w0 during stock-Spark ALS (JCT {run.jct:.1f} s, "
            "paper ~133 s; full-or-idle oscillation)"
        ),
        x_label="t(s)",
        max_points=22,
    )
    artifact("fig05_als_worker_timeline", text)

    assert run.jct == pytest.approx(133.0, rel=0.2)
    # The oscillation: both resources hit (near-)full and (near-)idle.
    assert cpu.max() == pytest.approx(100.0, abs=1e-6)
    assert net_mb.max() > 30.0  # paper's peak ~45-50 MB/s
    # Network-busy implies CPU-idle early on (phases are synchronized).
    net_busy = net_mb > 0.5 * net_mb.max()
    assert cpu[net_busy].mean() < 40.0
    # CPU idle for a substantial span while the job runs (paper: ~38 s
    # of 133 s).
    cpu_idle_frac = np.mean(cpu[t < run.jct] < 5.0)
    assert 0.1 < cpu_idle_frac < 0.6
