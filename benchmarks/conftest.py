"""Shared fixtures for the benchmark harness.

Each benchmark file regenerates one table or figure of the paper
(see DESIGN.md's experiment index).  Expensive simulations are shared
through session-scoped fixtures; every bench prints its paper-style
rows/series and also writes them to ``benchmarks/results/<id>.txt`` so
the artifacts survive pytest's output capture.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import (
    AggShuffleScheduler,
    DelayStageScheduler,
    StockSparkScheduler,
    WORKLOADS,
    compare_schedulers,
    ec2_m4large_cluster,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def artifact():
    """Writer that persists a rendered figure/table and echoes it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")

    return write


@pytest.fixture(scope="session")
def ec2():
    """The paper's 30-node EC2 cluster (Sec. 5.1)."""
    return ec2_m4large_cluster()


@pytest.fixture(scope="session")
def workload_runs(ec2):
    """The four Fig. 10 workloads under the three strategies.

    Metrics are tracked so Figs. 11-12/16-17 and Table 3 can reuse the
    same runs.  This is the most expensive shared computation of the
    harness (~2 minutes); everything downstream reads from it.
    """
    runs = {}
    for name, ctor in WORKLOADS.items():
        runs[name] = compare_schedulers(
            ctor(),
            ec2,
            [
                StockSparkScheduler(),
                AggShuffleScheduler(),
                DelayStageScheduler(profiled=False),
            ],
        )
    return runs
