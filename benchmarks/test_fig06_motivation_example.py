"""Fig. 6 — the motivation example: delaying ALS Stages 2 and 3.

Paper claims reproduced: stock Spark launches Stages 1-3 together and
finishes in ~133 s; postponing Stages 2 and 3 interleaves network and
CPU across the stages, improving both utilizations and cutting the
job to ~104 s.
"""

import numpy as np
import pytest

from repro import DelayStageScheduler, StockSparkScheduler, als, compare_schedulers, uniform_cluster
from repro.analysis import stage_gantt


def run_both():
    cluster = uniform_cluster(
        3, executors_per_worker=2, nic_mbps=450, disk_mb_per_sec=150, storage_nodes=0
    )
    return compare_schedulers(
        als(),
        cluster,
        [StockSparkScheduler(), DelayStageScheduler(profiled=False)],
    ), cluster


def _gantt_text(result, title):
    lines = [title]
    for row in stage_gantt(result, "als"):
        scale = 0.45
        pre = " " * int(row.submit * scale)
        read = "▒" * max(int((row.read_done - row.submit) * scale), 1)
        proc = "█" * max(int((row.finish - row.read_done) * scale), 1)
        lines.append(
            f"  {row.stage_id:3s} |{pre}{read}{proc}  [{row.submit:5.1f} → {row.finish:5.1f}]"
        )
    return "\n".join(lines)


def test_fig06_motivation_example(benchmark, artifact):
    (runs, cluster) = benchmark.pedantic(run_both, rounds=1, iterations=1)
    stock, delay = runs["spark"], runs["delaystage"]

    def avg_util(run):
        m = run.result.metrics
        cpu = m.cluster_average("cpu_utilization", 0, run.jct) * 100
        net = np.mean([
            m.node_series(w).average("net_in", 0, run.jct) / 2**20
            for w in cluster.worker_ids
        ])
        return cpu, net

    cpu_a, net_a = avg_util(stock)
    cpu_b, net_b = avg_util(delay)
    header = (
        f"Fig. 6 — ALS motivation: {stock.jct:.0f} s → {delay.jct:.0f} s "
        f"(paper 133 → 104); avg CPU {cpu_a:.1f}% → {cpu_b:.1f}% "
        f"(paper 52.3 → 68.7); avg net {net_a:.1f} → {net_b:.1f} MB/s "
        f"(paper 17.9 → 25.2)\n"
        "(▒ shuffle read, █ processing + shuffle write)\n"
    )
    text = (
        header
        + _gantt_text(stock.result, "(a) stock Spark:")
        + "\n\n"
        + _gantt_text(delay.result, "(b) DelayStage (Stages 2 and 3 postponed):")
    )
    artifact("fig06_motivation_example", text)

    delayed = delay.info["schedule"].delayed_stages
    assert set(delayed) == {"S2", "S3"}
    assert 0.10 < 1 - delay.jct / stock.jct < 0.35  # paper: ~22 %
    assert cpu_b > cpu_a  # utilization improves on both resources
    assert net_b > net_a
