"""Fig. 15 — DelayStage's strategy computation time versus the number
of stages in a job.

Paper claims reproduced: the computation time grows roughly linearly
with the stage count (the paper's O(|K| * m) complexity), and small
jobs (< 15 stages, ~90 % of production jobs) plan fast.  Absolute
times differ — this is Python against a fluid model rather than the
paper's C++/Scala — so the assertion targets the scaling shape, not
the milliseconds.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro import alibaba_sim_cluster
from repro.core import DelayStageParams, delay_stage_schedule
from repro.trace import TraceGeneratorConfig, generate_trace, to_job


def sweep():
    cluster = alibaba_sim_cluster(
        num_machines=3, storage_nodes=1, nic_mbps_range=(600, 2000), rng=0
    )
    params = DelayStageParams(max_slots=8)

    # Draw jobs of increasing size from the trace twin.
    trace = generate_trace(
        TraceGeneratorConfig(num_jobs=400, replay_workers=3, giant_fraction=0.12),
        rng=11,
    )
    by_size = sorted(trace, key=lambda j: j.num_stages)
    targets = [6, 12, 20, 35, 60, 90]
    chosen = []
    for target in targets:
        job = min(by_size, key=lambda j: abs(j.num_stages - target))
        if job not in chosen:
            chosen.append(job)

    rows = []
    for tj in chosen:
        job = to_job(tj)
        schedule = delay_stage_schedule(job, cluster, params)
        rows.append((job.num_stages, schedule.compute_seconds, schedule.evaluations))
    return rows


def test_fig15_algorithm_overhead(benchmark, artifact):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    from repro.analysis import render_table

    text = render_table(
        ["# stages", "compute time (s)", "model evaluations"],
        [[n, f"{t:.2f}", e] for n, t, e in rows],
        title=(
            "Fig. 15 — Algorithm 1 computation time vs job size "
            "(paper: roughly linear, < 0.2 s below 15 stages on EC2; "
            "Python absolute times are larger, the scaling is the claim)"
        ),
    )
    artifact("fig15_algorithm_overhead", text)

    sizes = np.array([r[0] for r in rows], dtype=float)
    times = np.array([r[1] for r in rows])
    evals = np.array([r[2] for r in rows], dtype=float)

    # Strong positive correlation between size and planning time.
    r, _p = scipy_stats.pearsonr(sizes, times)
    assert r > 0.9
    # Evaluation count is O(|K| * m): at most max_slots+2 per stage.
    assert np.all(evals <= sizes * 10 + 2)
    # Small jobs plan quickly even in Python.
    small = times[sizes < 15]
    assert small.size and small.max() < 2.0
