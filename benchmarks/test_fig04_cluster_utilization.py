"""Fig. 4 — (a) cluster-average and (b) single-machine CPU/network
utilization over the trace's 8 days.

Paper claims reproduced: cluster CPU averages 20-50 % and network
30-45 %; an individual machine swings between idle and ~98 % busy and
sits below 10 % CPU for ~39 % of the time.
"""

import numpy as np
import pytest

from repro.analysis import render_series
from repro.obs import band_fractions, fraction_below
from repro.trace import generate_machine_usage


def make_usage():
    return generate_machine_usage(
        num_machines=120, span_seconds=8 * 86400, step_seconds=600.0, rng=7
    )


def test_fig04_cluster_and_machine_utilization(benchmark, artifact):
    t, cpu, net = benchmark.pedantic(make_usage, rounds=1, iterations=1)
    days = t / 86400.0

    cluster_cpu = cpu.mean(axis=0)
    cluster_net = net.mean(axis=0)
    text_a = render_series(
        days,
        {"CPU %": cluster_cpu, "network %": cluster_net},
        title=(
            "Fig. 4(a) — cluster-average utilization over 8 days "
            f"(CPU mean {cluster_cpu.mean():.1f}% [paper 20-50]; "
            f"net mean {cluster_net.mean():.1f}% [paper 30-45])"
        ),
        x_label="day",
        max_points=16,
    )

    # The report layer's band histogram: its lowest band is exactly the
    # "below 10 %" bucket (bit-identical to np.mean(m < 10.0)).
    m = cpu[0]
    low = band_fractions(m).low_fraction
    text_b = render_series(
        days,
        {"CPU %": m, "network %": net[0]},
        title=(
            "Fig. 4(b) — one machine's utilization "
            f"(below 10% CPU for {low:.1%} of time [paper ~39.1%])"
        ),
        x_label="day",
        max_points=16,
    )
    artifact("fig04_cluster_utilization", text_a + "\n\n" + text_b)

    assert 15.0 < cluster_cpu.mean() < 50.0
    assert 25.0 < cluster_net.mean() < 50.0
    assert m.min() < 10.0 and m.max() > 45.0
    lows = [fraction_below(cpu[i], 10.0) for i in range(cpu.shape[0])]
    assert np.mean(lows) == pytest.approx(0.391, abs=0.12)
