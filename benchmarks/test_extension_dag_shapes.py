"""Extension — how the DAG's shape bounds DelayStage's benefit.

Spans the structural spectrum with one workload per regime: a pure
chain (PageRank — no parallel stages, nothing to delay), a
sequential-tail-dominated DAG (ConnectedComponents — the paper's
smallest gain), and wide balanced parallelism (TriangleCount and the
bonus StarJoin).  The gain should rise monotonically with the share of
work in parallel stages.
"""

import pytest

from repro.analysis import render_table
from repro.dag import parallel_stage_set
from repro.schedulers import DelayStageScheduler, StockSparkScheduler, compare_schedulers
from repro.workloads import connected_components, pagerank, star_join, triangle_count


def run(ec2):
    cases = [
        ("PageRank (chain)", pagerank()),
        ("ConnectedComponents (tail-heavy)", connected_components()),
        ("StarJoin (wide)", star_join()),
        ("TriangleCount (wide+deep)", triangle_count()),
    ]
    rows = []
    gains = []
    for label, job in cases:
        runs = compare_schedulers(
            job,
            ec2,
            [StockSparkScheduler(track_metrics=False),
             DelayStageScheduler(profiled=False, track_metrics=False)],
        )
        spark, ds = runs["spark"].jct, runs["delaystage"].jct
        gain = 1 - ds / spark
        gains.append((label, gain))
        k = len(parallel_stage_set(job))
        rows.append([label, job.num_stages, k, f"{spark:.0f}", f"{ds:.0f}", f"{gain:.1%}"])
    return rows, gains


def test_extension_dag_shapes(benchmark, ec2, artifact):
    rows, gains = benchmark.pedantic(run, args=(ec2,), rounds=1, iterations=1)

    text = render_table(
        ["workload (shape)", "stages", "|K|", "stock JCT (s)", "delaystage (s)", "gain"],
        rows,
        title="Extension — DelayStage benefit across DAG shapes",
    )
    artifact("extension_dag_shapes", text)

    by_label = dict(gains)
    assert by_label["PageRank (chain)"] == pytest.approx(0.0, abs=1e-9)
    assert by_label["ConnectedComponents (tail-heavy)"] > 0.05
    assert by_label["StarJoin (wide)"] > 0.05
    assert by_label["TriangleCount (wide+deep)"] > by_label["ConnectedComponents (tail-heavy)"]
