"""Fig. 2 — CDF of stages and parallel stages per production job.

Paper claims reproduced: 68.6 % of jobs contain parallel stages;
parallel stages are ~79.1 % of all stages; the two CDFs nearly track
each other; ~90 % of jobs have < 15 parallel stages.
"""

import numpy as np
import pytest

from repro.analysis import render_cdf
from repro.trace import TraceGeneratorConfig, generate_trace, stage_count_summary


@pytest.fixture(scope="module")
def trace():
    return generate_trace(TraceGeneratorConfig(num_jobs=1200), rng=42)


def test_fig02_stage_count_cdf(benchmark, trace, artifact):
    summary = benchmark.pedantic(stage_count_summary, args=(trace,), rounds=1, iterations=1)

    text = render_cdf(
        {
            "# stages/job": summary.stages_per_job,
            "# parallel stages/job": summary.parallel_per_job,
        },
        title=(
            "Fig. 2 — CDF of stage counts per job "
            f"(jobs with parallel stages: {summary.fraction_jobs_with_parallel:.1%} "
            "[paper 68.6%]; parallel share of stages: "
            f"{summary.parallel_stage_fraction:.1%} [paper 79.1%])"
        ),
        percentiles=(10, 25, 50, 75, 90, 99),
    )
    artifact("fig02_trace_stage_cdf", text)

    assert summary.fraction_jobs_with_parallel == pytest.approx(0.686, abs=0.06)
    assert summary.parallel_stage_fraction == pytest.approx(0.791, abs=0.07)
    assert np.percentile(summary.parallel_per_job, 90) < 15
    # The parallel CDF roughly tracks the stage CDF (Fig. 2's visual).
    assert np.median(summary.parallel_per_job) >= np.median(summary.stages_per_job) - 3
