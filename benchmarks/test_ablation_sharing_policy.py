"""Ablation — fluid-model fidelity: ideal sharing vs contention
penalty.

The simulator's default is ideal max-min processor sharing (work
conserving); the ``contention_penalty`` knob adds the efficiency loss
real clusters exhibit when stages contend.  DelayStage's advantage
over immediate submission must *grow* with the penalty — its whole
point is avoiding contention — while remaining positive at 0.
"""

import numpy as np
import pytest

from repro import DelayStageScheduler, FuxiScheduler, alibaba_sim_cluster
from repro.analysis import render_table
from repro.core import DelayStageParams
from repro.schedulers import run_with_scheduler
from repro.trace import TraceGeneratorConfig, generate_trace, to_job


def sweep():
    cluster = alibaba_sim_cluster(
        num_machines=3, storage_nodes=1, nic_mbps_range=(600, 2000), rng=0
    )
    trace = generate_trace(
        TraceGeneratorConfig(num_jobs=50, replay_workers=3, max_stages=30,
                             replay_read_mb_per_sec=85.0),
        rng=3,
    )
    jobs = [to_job(tj) for tj in trace[:30]]

    rows = []
    gains = {}
    for penalty in (0.0, 0.25, 0.5):
        fuxi = FuxiScheduler(track_metrics=False, contention_penalty=penalty)
        ds = DelayStageScheduler(
            profiled=False, track_metrics=False, contention_penalty=penalty,
            params=DelayStageParams(max_slots=10),
        )
        f_jct = np.mean([run_with_scheduler(j, cluster, fuxi).jct for j in jobs])
        d_jct = np.mean([run_with_scheduler(j, cluster, ds).jct for j in jobs])
        gains[penalty] = 1 - d_jct / f_jct
        rows.append([f"{penalty:.2f}", f"{f_jct:.1f}", f"{d_jct:.1f}", f"{gains[penalty]:.1%}"])
    return rows, gains


def test_ablation_sharing_policy(benchmark, artifact):
    rows, gains = benchmark.pedantic(sweep, rounds=1, iterations=1)

    text = render_table(
        ["contention penalty", "fuxi mean JCT (s)", "delaystage mean JCT (s)", "gain"],
        rows,
        title=(
            "Ablation — resource-sharing fidelity "
            "(0 = ideal processor sharing; the Fig. 14 replay uses 0.5)"
        ),
    )
    artifact("ablation_sharing_policy", text)

    assert gains[0.0] > 0.02  # barrier effects alone already help
    assert gains[0.25] > gains[0.0]
    assert gains[0.5] > gains[0.25]
