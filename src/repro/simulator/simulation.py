"""Job-level simulation on top of the fluid engine.

A :class:`Simulation` runs one or more jobs on a cluster under a
pluggable :class:`SubmissionPolicy` deciding how long each stage's
submission is postponed after it becomes ready — the exact knob the
paper's stage delayer turns (Sec. 4.2).  Stock Spark is the policy that
always answers zero; DelayStage answers with the delays computed by
Algorithm 1; AggShuffle keeps zero delays but turns on shuffle
pipelining (``SimulationConfig.pipelined_shuffle``).

Execution semantics per stage (paper Eq. (1) / Fig. 8):

1. The stage runs on every worker; worker ``w``'s partition reads
   ``s_k / |W|`` bytes, split evenly across the source nodes (the
   storage nodes for a root stage, the parents' workers — i.e. all
   workers — for a shuffle stage).  The co-located fraction of shuffle
   data is read from local disk and treated as instantly available.
2. Processing at ``w`` starts only once the partition's *whole* input
   has arrived, then proceeds at ``eps_k^w * R_k`` where the executor
   share is recomputed by fair sharing as stages come and go.
3. The partition finally shuffle-writes ``d_k / |W|`` bytes at its fair
   share of the local disk bandwidth.
4. The stage completes when the slowest worker finishes (Eq. (2)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Protocol

from repro.cluster.spec import ClusterSpec
from repro.cluster.topology import Topology
from repro.dag.job import Job
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulator.engine import FluidEngine
from repro.simulator.vector import VectorFluidEngine
from repro.simulator.events import EventKind, SimEvent
from repro.simulator.fairshare import compute_shares, disk_shares, maxmin_rates_seq
from repro.simulator.flows import ComputeDemand, DiskWrite, NetworkFlow
from repro.simulator.incremental import ScopedAllocator
from repro.simulator.metrics import MetricsCollector
from repro.verify import sanitizer as _sanitizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector, FaultStats
    from repro.faults.plan import FaultPlan


class SubmissionPolicy(Protocol):
    """Decides the extra delay applied to each ready stage."""

    def delay(self, job: Job, stage_id: str, ready_time: float) -> float:
        """Seconds to postpone submission past ``ready_time`` (>= 0)."""
        ...


class ImmediatePolicy:
    """Stock Spark: submit a stage the moment its input is available."""

    def delay(self, job: Job, stage_id: str, ready_time: float) -> float:
        return 0.0


class FixedDelayPolicy:
    """Apply a precomputed per-stage delay table (DelayStage's output X).

    Stages absent from the table are submitted immediately.
    """

    def __init__(self, delays: Mapping[str, float]) -> None:
        for sid, d in delays.items():
            if d < 0 or math.isnan(d):
                raise ValueError(f"delay for stage {sid!r} must be >= 0, got {d}")
        self._delays = dict(delays)

    def delay(self, job: Job, stage_id: str, ready_time: float) -> float:
        return self._delays.get(stage_id, 0.0)


@dataclass(frozen=True)
class SimulationConfig:
    """Tunable simulation behaviour.

    Parameters
    ----------
    pipelined_shuffle:
        AggShuffle mode: parents proactively push produced shuffle data
        to their children's workers while still computing.
    aggshuffle_cpu_penalty:
        Extra compute work per unit of shuffle-ratio excess above 1 when
        pipelining is on — models the paper's observation that stages
        whose shuffle-input/intermediate-data ratio exceeds 1 (LDA
        Stage 1, ratio 1.3) run *longer* under AggShuffle.
    fanin:
        If set, each (stage, worker) reads from at most this many source
        nodes (rotating deterministically), trading flow-level fidelity
        for speed in trace-scale sweeps.  ``None`` = read from all
        sources.
    track_metrics:
        Record per-node utilization series (disable for large sweeps).
    track_occupancy:
        Additionally attribute executor occupancy to stages (Fig. 13).
    contention_penalty:
        Efficiency loss when ``n`` distinct stages share one resource:
        every rate at that resource is scaled by ``1 / (1 + p*(n-1))``.
        ``0`` (default) is ideal work-conserving processor sharing;
        positive values model the overheads real clusters exhibit under
        stage contention (TCP incast collapse on shuffle fan-ins,
        executor context switching and cache pressure), which penalize
        synchronized stage execution and are part of why the paper's
        measured contention costs exceed the ideal fluid model's.
    """

    pipelined_shuffle: bool = False
    aggshuffle_cpu_penalty: float = 0.15
    fanin: "int | None" = None
    track_metrics: bool = True
    track_occupancy: bool = False
    contention_penalty: float = 0.0
    #: Scoped fair-share reallocation: when a work item starts or
    #: finishes, re-solve only the resource groups (node executors, node
    #: disk, NIC-connected flow components) it touches instead of the
    #: whole cluster.  Rates are bit-identical to the full re-solve (the
    #: scoped path calls the same solvers on the same subsets); disable
    #: (``--no-incremental``) only to bisect a suspected allocator bug.
    #: Ignored — the full allocator always runs — when
    #: ``pipelined_shuffle`` is on, because prefetch rate caps couple
    #: network rates to producer compute rates across resource groups.
    incremental: bool = True
    #: Record the per-stage lifecycle event log
    #: (``SimulationResult.events``).  Model evaluations inside
    #: Algorithm 1 run thousands of short simulations whose event logs
    #: nothing ever reads; they disable this.  Stage records, metrics,
    #: and completion times are unaffected.
    track_events: bool = True
    #: Discrete-task execution: instead of the fluid equal-share compute
    #: model, each worker runs at most ``executors`` concurrent tasks;
    #: stages' tasks are dispatched fairly (fewest-running-first) and
    #: task sizes follow the stage's ``task_cv``, producing the waves
    #: and stragglers real Spark stages exhibit.  Shuffle reads and disk
    #: writes remain fluid.
    task_granular: bool = False
    #: Fault-injection plan (:class:`repro.faults.plan.FaultPlan`).
    #: ``None`` or an empty plan leaves the healthy execution path —
    #: and its event-log bytes — completely untouched; a non-empty plan
    #: installs a :class:`repro.faults.injector.FaultInjector` that
    #: takes over partition bookkeeping.  Incompatible with
    #: ``pipelined_shuffle``, ``task_granular``, and ``fanin`` (those
    #: modes place work the injector cannot requeue faithfully).
    fault_plan: "FaultPlan | None" = None
    #: Struct-of-arrays event core: run the fluid loop on
    #: :class:`repro.simulator.vector.VectorFluidEngine`, which keeps
    #: remaining volume / rate / completion threshold in flat numpy
    #: arrays and evaluates the per-event scans as vector kernels.
    #: Results are bit-identical to the scalar object engine (same
    #: records, event-log bytes, and telemetry streams); disable
    #: (``--no-vector``) only to bisect a suspected engine bug.
    vector: bool = True

    def __post_init__(self) -> None:
        if self.aggshuffle_cpu_penalty < 0:
            raise ValueError("aggshuffle_cpu_penalty must be >= 0")
        if self.fanin is not None and self.fanin < 1:
            raise ValueError("fanin must be >= 1 or None")
        if self.contention_penalty < 0:
            raise ValueError("contention_penalty must be >= 0")
        if self.fault_plan is not None and self.fault_plan.events:
            if self.pipelined_shuffle:
                raise ValueError("fault injection is incompatible with "
                                 "pipelined_shuffle (AggShuffle)")
            if self.task_granular:
                raise ValueError("fault injection is incompatible with "
                                 "task_granular execution")
            if self.fanin is not None:
                raise ValueError("fault injection is incompatible with a "
                                 "fanin cap")


@dataclass
class StageRecord:
    """Observed lifecycle of one stage."""

    job_id: str
    stage_id: str
    ready_time: float = math.nan
    submit_time: float = math.nan
    read_done_time: float = math.nan
    compute_done_time: float = math.nan
    finish_time: float = math.nan

    @property
    def delay(self) -> float:
        """Submission delay applied after the stage became ready."""
        return self.submit_time - self.ready_time

    @property
    def read_time(self) -> float:
        """Shuffle-read span (slowest worker)."""
        return self.read_done_time - self.submit_time

    @property
    def compute_time(self) -> float:
        return self.compute_done_time - self.read_done_time

    @property
    def write_time(self) -> float:
        return self.finish_time - self.compute_done_time

    @property
    def duration(self) -> float:
        """Stage execution time t_k (submission to completion)."""
        return self.finish_time - self.submit_time


@dataclass(frozen=True)
class StageDemand:
    """Post-run demand accounting for one stage (blame attribution).

    Captures the run-internal facts the critical-path blame engine
    (:mod:`repro.obs.critical`) cannot re-derive from the job and
    cluster specs alone: the per-part compute volume actually charged
    (including any AggShuffle CPU penalty), the per-worker remote
    shuffle-read volume net of prefetched bytes, and the fanin-selected
    remote source set each worker read from.  Wanted rates are *not*
    stored — they follow from the healthy cluster spec plus the fair
    share allocator's alone-on-the-resource semantics, which is where
    the blame engine recomputes them.  Everything here is assembled
    once after the engine finishes, so the hot loop pays nothing and
    results stay bit-identical whether or not anyone consumes it.
    """

    compute_volume: float
    write_volume: float
    read_volumes: "dict[str, float]"
    remote_sources: "dict[str, tuple[str, ...]]"
    retries: int = 0


@dataclass
class JobRecord:
    """Observed lifecycle of one job."""

    job_id: str
    submit_time: float
    finish_time: float = math.nan

    @property
    def completion_time(self) -> float:
        return self.finish_time - self.submit_time


@dataclass
class SimulationResult:
    """Everything a run produced."""

    cluster: ClusterSpec
    stage_records: dict[tuple[str, str], StageRecord]
    job_records: dict[str, JobRecord]
    metrics: "MetricsCollector | None"
    events: list[SimEvent] = field(default_factory=list)
    #: Run telemetry: stage/job counts, engine event count and peak
    #: queue depth, and (when metrics are tracked) per-resource busy
    #: fractions — serialized into every result so reports can carry
    #: aggregate telemetry without the full metric series.
    counters: dict = field(default_factory=dict)
    #: Fault/recovery telemetry (:class:`repro.faults.injector.FaultStats`)
    #: when a non-empty fault plan ran; ``None`` for healthy runs, so
    #: healthy results stay structurally unchanged.
    faults: "FaultStats | None" = None
    #: Per-stage :class:`StageDemand` accounting for the critical-path
    #: blame engine.  ``None`` when the run disabled event tracking
    #: (Algorithm 1's planning probes), so the scan loop keeps paying
    #: zero for observability it never reads.
    demands: "dict[tuple[str, str], StageDemand] | None" = None

    def job_completion_time(self, job_id: str) -> float:
        return self.job_records[job_id].completion_time

    def stage(self, job_id: str, stage_id: str) -> StageRecord:
        return self.stage_records[(job_id, stage_id)]

    @property
    def makespan(self) -> float:
        """Finish time of the last job (all jobs submitted at t=0 usually)."""
        return max(rec.finish_time for rec in self.job_records.values())

    def parallel_stage_makespan(self, job_id: str, members: "frozenset[str]") -> float:
        """Span from the first submission to the last completion among the
        given (parallel) stages of a job."""
        recs = [r for (jid, sid), r in self.stage_records.items() if jid == job_id and sid in members]
        if not recs:
            return 0.0
        return max(r.finish_time for r in recs) - min(r.submit_time for r in recs)


class _StageRun:
    """Runtime state of one stage of one job."""

    __slots__ = (
        "job",
        "stage",
        "key",
        "record",
        "remaining_parents",
        "submitted",
        "pending_reads",
        "prefetch_assigned",
        "parts_read_done",
        "parts_compute_done",
        "parts_write_done",
        "compute_active",
        "compute_volume",
        "retries",
        "regated",
    )

    def __init__(self, job: Job, stage_id: str, workers: list[str]) -> None:
        self.job = job
        self.stage = job.stage(stage_id)
        self.key = (job.job_id, stage_id)
        self.record = StageRecord(job.job_id, stage_id)
        self.remaining_parents = len(job.parents(stage_id))
        self.submitted = False
        self.pending_reads = {w: 0 for w in workers}
        self.prefetch_assigned = {w: 0.0 for w in workers}
        self.parts_read_done: set[str] = set()
        self.parts_compute_done: set[str] = set()
        self.parts_write_done: set[str] = set()
        self.compute_active: set[str] = set()  # workers currently computing
        #: Per-part compute volume, identical for every worker; filled
        #: lazily by the first ``_part_read_done`` (-1.0 = not computed).
        self.compute_volume = -1.0
        #: Fault mode: requeues charged against this stage's retry budget.
        self.retries = 0
        #: Fault mode: children re-gated by a lost-partition recompute
        #: (``None`` outside a recompute — the re-completion then
        #: releases exactly these instead of every child).
        self.regated: "list[str] | None" = None


class Simulation:
    """Run jobs on a cluster under per-job submission policies."""

    def __init__(
        self,
        cluster: ClusterSpec,
        config: "SimulationConfig | None" = None,
        pair_capacities: "dict[tuple[str, str], float] | None" = None,
        tracer: "Tracer | None" = None,
        trace_scope: str = "sim",
        progress: "Callable[[FluidEngine], None] | None" = None,
        fault_hook: "Callable[[str, dict], None] | None" = None,
    ) -> None:
        self.cluster = cluster
        self.config = config or SimulationConfig()
        #: Live-telemetry callback for fault-injection events; the
        #: injector publishes (kind, fields) through it.  ``None`` (the
        #: default) costs one branch per fault event; the hook only
        #: observes, so event logs stay byte-identical either way.
        self.fault_hook = fault_hook
        #: Span tracer; spans are emitted from the stage records after
        #: the run, so the hot path pays nothing while tracing.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Process-label prefix for this run's tracks (lets several runs
        #: — e.g. one per compared scheduler — share one trace file).
        self.trace_scope = trace_scope
        self.topology = Topology(cluster)
        if pair_capacities:
            # Per-pair caps below NIC speed — the geo-distributed (WAN)
            # extension and explicitly heterogeneous B^{i,w} experiments.
            for (src, dst), cap in pair_capacities.items():
                self.topology.set_pair_capacity(src, dst, cap)
        self.workers = cluster.worker_ids
        self.storage = cluster.storage_ids
        self._executors = {n.node_id: n.executors for n in cluster.nodes}
        self._disk_bw = {n.node_id: n.disk_bandwidth for n in cluster.nodes}
        self.metrics: "MetricsCollector | None" = (
            MetricsCollector(cluster, self.config.track_occupancy)
            if self.config.track_metrics
            else None
        )
        engine_cls = VectorFluidEngine if self.config.vector else FluidEngine
        self.engine = engine_cls(
            allocate=self._allocate,
            observe=self.metrics.observe if self.metrics else None,
            progress=progress,
        )
        self._scoped = (
            ScopedAllocator(self, core=getattr(self.engine, "core", None))
            if self.config.incremental and not self.config.pipelined_shuffle
            else None
        )
        if self._scoped is not None:
            self.engine._allocate_incremental = self._scoped.allocate
        self.events: list[SimEvent] = []
        self._jobs: dict[str, tuple[Job, SubmissionPolicy, float]] = {}
        self._runs: dict[tuple[str, str], _StageRun] = {}
        self._remaining_stages: dict[str, int] = {}
        self._job_records: dict[str, JobRecord] = {}
        # Outstanding prefetch flows per (producer stage key, src worker).
        self._prefetch_outstanding: dict[tuple[tuple[str, str], str], int] = {}
        # Task-granular execution state: per-node free executor slots,
        # FIFO of stages with queued tasks, queued task volumes, running
        # and pending counters.
        self._free_slots = {w: self._executors[w] for w in self.workers}
        self._injections: list[tuple] = []
        self._task_queues: dict[str, dict[tuple, list]] = {w: {} for w in self.workers}
        self._running: dict[tuple, int] = {}
        self._pending_tasks: dict[tuple, int] = {}
        # Stage ids still unfinished in a truncated (watched) run; None
        # outside run_truncated().
        self._watch_remaining: "set[str] | None" = None
        self._started = False
        #: Fault injector; None (no overhead, byte-identical event logs)
        #: unless the config carries a non-empty fault plan.  Imported
        #: lazily so the simulator has no hard dependency on the fault
        #: layer.
        self._faults: "FaultInjector | None" = None
        plan = self.config.fault_plan
        if plan is not None and plan.events:
            from repro.faults.injector import FaultInjector

            plan.validate_against(cluster)
            self._faults = FaultInjector(self, plan)

    # ------------------------------------------------------------------ #
    # public interface
    # ------------------------------------------------------------------ #

    def inject_degradation(
        self,
        node_id: str,
        time: float,
        *,
        nic_factor: float = 1.0,
        disk_factor: float = 1.0,
        executor_factor: float = 1.0,
    ) -> None:
        """Degrade a node's resources at a point in simulated time.

        Failure-injection hook: at ``time`` the node's NIC, disk, and
        executor capacity are scaled by the given factors (e.g. 0.3 =
        a 70 % slowdown; straggler nodes, background interference,
        partial hardware failure).  Factors apply to the node's
        *current* capacities, so repeated injections compound.
        Executor scaling requires the fluid compute model (in
        task-granular mode slots are discrete).
        """
        if node_id not in self.cluster:
            raise KeyError(f"cluster has no node {node_id!r}")
        for name, f in (("nic_factor", nic_factor), ("disk_factor", disk_factor),
                        ("executor_factor", executor_factor)):
            if f <= 0:
                raise ValueError(f"{name} must be > 0, got {f}")
        degrades_executors = not math.isclose(executor_factor, 1.0)
        if degrades_executors and self.config.task_granular:
            raise ValueError(
                "executor degradation requires the fluid compute model"
            )
        if time < 0:
            raise ValueError("time must be >= 0")
        if self._started:
            raise RuntimeError("inject_degradation must be called before run()")
        self._injections.append(
            (time, node_id, nic_factor, disk_factor, executor_factor)
        )

    def _apply_degradation(
        self, node_id: str, nic_factor: float, disk_factor: float, executor_factor: float
    ) -> None:
        self.topology.scale_nic(node_id, nic_factor)
        self._disk_bw[node_id] *= disk_factor
        if not math.isclose(executor_factor, 1.0):
            self._executors[node_id] = self._executors[node_id] * executor_factor
        self.engine.mark_dirty()

    def add_job(
        self,
        job: Job,
        policy: "SubmissionPolicy | None" = None,
        submit_time: float = 0.0,
    ) -> None:
        """Register a job for execution.

        Must be called before :meth:`run`.  Each job may carry its own
        policy (multi-job trace replay mixes them).
        """
        if self._started:
            raise RuntimeError("cannot add jobs after run() started")
        if job.job_id in self._jobs:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        if submit_time < 0:
            raise ValueError("submit_time must be >= 0")
        self._jobs[job.job_id] = (job, policy or ImmediatePolicy(), submit_time)

    def _start(self) -> None:
        """Register injections and job-start timers (shared preamble of
        :meth:`run` and :meth:`run_truncated`)."""
        if self._started:
            raise RuntimeError("run() may only be called once per Simulation")
        self._started = True
        if not self._jobs:
            raise RuntimeError("no jobs registered")
        for when, node_id, nf, df, ef in self._injections:
            self.engine.schedule(
                when,
                lambda n=node_id, a=nf, b=df, c=ef: self._apply_degradation(n, a, b, c),
            )
        if self._faults is not None:
            self._faults.schedule_events()
        for job_id, (job, _policy, submit_time) in self._jobs.items():
            self._remaining_stages[job_id] = job.num_stages
            self._job_records[job_id] = JobRecord(job_id, submit_time)
            for sid in job.stage_ids:
                self._runs[(job_id, sid)] = _StageRun(job, sid, self.workers)
            self.engine.schedule(submit_time, self._make_job_start(job_id))

    def run(self) -> SimulationResult:
        """Execute all registered jobs to completion."""
        self._start()
        self.engine.run()
        result = SimulationResult(
            cluster=self.cluster,
            stage_records={k: r.record for k, r in self._runs.items()},
            job_records=self._job_records,
            metrics=self.metrics,
            events=self.events,
        )
        if self._faults is not None:
            self._faults.finalize()
            result.faults = self._faults.stats
        result.counters = self._run_counters(result)
        if self.config.track_events:
            result.demands = self._demand_accounting(result)
        if self.tracer.enabled:
            self._emit_trace(result)
        if _sanitizer.ENABLED:
            _sanitizer.check_result(result)
        return result

    def run_truncated(
        self, horizon: float, watch: "set[str] | None" = None
    ) -> "dict[tuple[str, str], StageRecord]":
        """Execute only until ``horizon`` — or until every stage id in
        ``watch`` has finished — and return the raw stage records.

        The trajectory up to the stopping point is exactly the prefix of
        what :meth:`run` would produce — the engine merely stops
        advancing — so every stage that finished by then carries its
        exact finish time; unfinished stages keep ``NaN`` fields,
        meaning "finishes strictly after the horizon".  This is the fast
        path of Algorithm 1's scan: a candidate whose watched stages
        have not all finished by the incumbent makespan cannot win, and
        once they *have* all finished the (often long) model tail has no
        bearing on the objective — either way the tail is never
        simulated.  ``horizon`` may be ``inf`` to stop on ``watch``
        alone.  No :class:`SimulationResult` is assembled and no
        result-level sanitizer checks run, since the record set is
        intentionally incomplete.
        """
        if horizon < 0 or math.isnan(horizon):
            raise ValueError(f"horizon must be >= 0, got {horizon!r}")
        if self._faults is not None:
            # A truncated fault run would leave requeues/backoffs dangling
            # and its prefix property does not survive mid-flight retries.
            raise RuntimeError("run_truncated is unsupported with a fault plan")
        self._watch_remaining = set(watch) if watch is not None else None
        self._start()
        self.engine.run(until=None if math.isinf(horizon) else horizon)
        self._watch_remaining = None
        return {k: r.record for k, r in self._runs.items()}

    # ------------------------------------------------------------------ #
    # lifecycle transitions
    # ------------------------------------------------------------------ #

    def _make_job_start(self, job_id: str) -> Callable[[], None]:
        def start() -> None:
            job, _policy, _t = self._jobs[job_id]
            self._log(EventKind.JOB_SUBMITTED, job_id)
            for sid in job.roots:
                self._stage_ready(self._runs[(job_id, sid)])

        return start

    def _stage_ready(self, run: _StageRun) -> None:
        now = self.engine.now
        run.record.ready_time = now
        self._log(EventKind.STAGE_READY, run.key[0], run.key[1])
        job, policy, _t = self._jobs[run.key[0]]
        delay = policy.delay(job, run.key[1], now)
        if delay < 0 or math.isnan(delay):
            raise ValueError(
                f"policy returned invalid delay {delay!r} for stage {run.key[1]!r}"
            )
        self.engine.schedule(now + delay, lambda: self._submit_stage(run))

    def _read_sources(self, run: _StageRun) -> list[str]:
        """Nodes holding the stage's input data."""
        if run.remaining_parents == 0 and not run.job.parents(run.key[1]):
            # Source stage: input comes from cluster storage if present,
            # otherwise from data spread across the workers themselves.
            return self.storage if self.storage else list(self.workers)
        return list(self.workers)

    def _select_sources(self, sources: list[str], worker_index: int) -> list[str]:
        """Apply the ``fanin`` cap with a deterministic rotation so load
        stays spread across source nodes."""
        fanin = self.config.fanin
        if fanin is None or len(sources) <= fanin:
            return sources
        start = (worker_index * max(1, len(sources) // fanin)) % len(sources)
        return [sources[(start + i) % len(sources)] for i in range(fanin)]

    def _submit_stage(self, run: _StageRun) -> None:
        now = self.engine.now
        if self._faults is not None:
            # Fault mode: the injector owns the partition lifecycle (its
            # work items carry slot identities so crashed work can be
            # requeued); it may also veto the submission outright (failed
            # job, or a stage re-gated by a lost shuffle partition).
            if not self._faults.on_submit(run):
                return
            run.submitted = True
            run.record.submit_time = now
            self._log(EventKind.STAGE_SUBMITTED, run.key[0], run.key[1])
            self._faults.start_parts(run)
            return
        run.submitted = True
        run.record.submit_time = now
        self._log(EventKind.STAGE_SUBMITTED, run.key[0], run.key[1])

        sources = self._read_sources(run)
        per_worker = run.stage.input_bytes / len(self.workers)
        for wi, w in enumerate(self.workers):
            # The fraction served by a co-located source is read from
            # local disk and treated as immediately available.
            remote_fraction = (
                (len(sources) - 1) / len(sources) if w in sources else 1.0
            )
            remote_volume = per_worker * remote_fraction
            remote_volume -= run.prefetch_assigned[w]
            if remote_volume < 0.0:
                remote_volume = 0.0
            remote_sources = self._select_sources([s for s in sources if s != w], wi)
            if remote_volume > 0 and remote_sources:
                per_source = remote_volume / len(remote_sources)
                # One shared completion closure per worker; every flow's
                # volume is > 0 here, so none completes inside add_item
                # and the count can be bumped up front.
                run.pending_reads[w] += len(remote_sources)
                flow_done = self._make_flow_done(run, w)
                add_item = self.engine.add_item
                for src in remote_sources:
                    add_item(
                        NetworkFlow(
                            src=src,
                            dst=w,
                            volume=per_source,
                            stage_key=run.key,
                            on_complete=flow_done,
                        )
                    )
            if run.pending_reads[w] == 0:
                self._part_read_done(run, w)

    def _make_flow_done(self, run: _StageRun, worker: str) -> Callable[[float], None]:
        def done(_t: float) -> None:
            run.pending_reads[worker] -= 1
            if run.submitted and run.pending_reads[worker] == 0:
                self._part_read_done(run, worker)

        return done

    def _compute_volume(self, run: _StageRun) -> float:
        """Per-worker compute volume, with the AggShuffle CPU penalty.

        Under pipelined shuffle, a stage whose shuffle-*input* exceeds
        the intermediate data its parents produced (ratio > 1, e.g. 1.3
        for LDA in the paper) pays extra CPU for the proactive
        aggregation, prolonging its execution (Sec. 5.2).
        """
        volume = run.stage.input_bytes / len(self.workers)
        parents = run.job.parents(run.key[1])
        if self.config.pipelined_shuffle and parents:
            parent_out = sum(run.job.stage(p).output_bytes for p in parents)
            if parent_out > 0:
                ratio = run.stage.input_bytes / parent_out
                if ratio > 1.0:
                    excess = min(ratio - 1.0, 2.0)
                    volume *= 1.0 + self.config.aggshuffle_cpu_penalty * excess
        return volume

    def _part_read_done(self, run: _StageRun, worker: str) -> None:
        if worker in run.parts_read_done:
            return
        run.parts_read_done.add(worker)
        if len(run.parts_read_done) == len(self.workers):
            run.record.read_done_time = self.engine.now
            self._log(EventKind.STAGE_READ_DONE, run.key[0], run.key[1])
        volume = run.compute_volume
        if volume < 0.0:
            volume = run.compute_volume = self._compute_volume(run)
        run.compute_active.add(worker)
        if self.config.pipelined_shuffle:
            self._start_prefetch(run, worker)
        if self.config.task_granular:
            self._enqueue_tasks(run, worker, volume)
        else:
            self.engine.add_item(
                ComputeDemand(
                    node=worker,
                    volume=volume,
                    stage_key=run.key,
                    process_rate=run.stage.process_rate,
                    on_complete=lambda _t, w=worker: self._part_compute_done(run, w),
                )
            )

    # ------------------------------------------------------------------ #
    # task-granular compute (SimulationConfig.task_granular)
    # ------------------------------------------------------------------ #

    def _task_volumes(self, run: _StageRun, worker: str, volume: float) -> list:
        """Split a part's compute volume into heterogeneous task sizes.

        The split is deterministic per (job, stage, worker): lognormal
        weights with the stage's ``task_cv``, normalized to the part
        volume, so repeated runs and model evaluations agree.
        """
        import zlib

        import numpy as np

        n_tasks = max(1, round(run.stage.num_tasks / len(self.workers)))
        if volume <= 0:
            return []
        cv = run.stage.task_cv
        if cv <= 0 or n_tasks == 1:
            return [volume / n_tasks] * n_tasks
        seed = zlib.crc32(f"{run.key[0]}/{run.key[1]}/{worker}".encode())
        gen = np.random.default_rng(seed)
        sigma = math.sqrt(math.log(1.0 + cv * cv))
        weights = gen.lognormal(0.0, sigma, size=n_tasks)
        weights /= weights.sum()
        return [float(volume * w) for w in weights]

    def _enqueue_tasks(self, run: _StageRun, worker: str, volume: float) -> None:
        tasks = self._task_volumes(run, worker, volume)
        key = (run.key, worker)
        if not tasks:
            self._part_compute_done(run, worker)
            return
        self._pending_tasks[key] = len(tasks)
        self._running.setdefault(key, 0)
        self._task_queues[worker].setdefault(run.key, []).extend(reversed(tasks))
        self._dispatch(run, worker)

    def _dispatch(self, run_hint: _StageRun, worker: str) -> None:
        """Fill free executor slots from the node's task queues.

        Among stages with queued tasks, the one with the fewest running
        tasks on this node goes first (fair slot sharing); ties break by
        queue insertion order.
        """
        queues = self._task_queues[worker]
        while self._free_slots[worker] > 0 and queues:
            stage_key = min(
                queues, key=lambda k: self._running.get((k, worker), 0)
            )
            volume = queues[stage_key].pop()
            if not queues[stage_key]:
                del queues[stage_key]
            run = self._runs[stage_key]
            self._free_slots[worker] -= 1
            self._running[(stage_key, worker)] = (
                self._running.get((stage_key, worker), 0) + 1
            )
            self.engine.add_item(
                ComputeDemand(
                    node=worker,
                    volume=volume,
                    stage_key=stage_key,
                    process_rate=run.stage.process_rate,
                    on_complete=lambda _t, r=run, w=worker: self._task_done(r, w),
                )
            )

    def _task_done(self, run: _StageRun, worker: str) -> None:
        key = (run.key, worker)
        self._free_slots[worker] += 1
        self._running[key] -= 1
        self._pending_tasks[key] -= 1
        if self._pending_tasks[key] == 0:
            self._part_compute_done(run, worker)
        self._dispatch(run, worker)

    def _part_compute_done(self, run: _StageRun, worker: str) -> None:
        run.compute_active.discard(worker)
        run.parts_compute_done.add(worker)
        if self.config.pipelined_shuffle:
            # Prefetch caps keyed on this part lapse; without pipelining
            # the demand's completion already dirtied the engine.
            self.engine.mark_dirty()
        if len(run.parts_compute_done) == len(self.workers):
            run.record.compute_done_time = self.engine.now
            self._log(EventKind.STAGE_COMPUTE_DONE, run.key[0], run.key[1])
        write_volume = run.stage.output_bytes / len(self.workers)
        if write_volume > 0:
            self.engine.add_item(
                DiskWrite(
                    node=worker,
                    volume=write_volume,
                    stage_key=run.key,
                    on_complete=lambda _t, w=worker: self._part_write_done(run, w),
                )
            )
        else:
            self._part_write_done(run, worker)

    def _part_write_done(self, run: _StageRun, worker: str) -> None:
        run.parts_write_done.add(worker)
        if len(run.parts_write_done) == len(self.workers):
            self._stage_completed(run)

    def _stage_completed(self, run: _StageRun) -> None:
        now = self.engine.now
        run.record.finish_time = now
        job_id, stage_id = run.key
        self._log(EventKind.STAGE_COMPLETED, job_id, stage_id)
        if self._watch_remaining is not None:
            self._watch_remaining.discard(stage_id)
            if not self._watch_remaining:
                # Every watched stage has its exact finish time; the rest
                # of the trajectory cannot change them (truncated runs).
                self.engine.request_stop()

        job, _policy, _t = self._jobs[job_id]
        for child in job.children(stage_id):
            child_run = self._runs[(job_id, child)]
            child_run.remaining_parents -= 1
            if child_run.remaining_parents == 0:
                self._stage_ready(child_run)

        self._remaining_stages[job_id] -= 1
        if self._remaining_stages[job_id] == 0:
            self._job_records[job_id].finish_time = now
            self._log(EventKind.JOB_COMPLETED, job_id)

    # ------------------------------------------------------------------ #
    # AggShuffle prefetch
    # ------------------------------------------------------------------ #

    def _pipelinable_fraction(self, run: _StageRun, worker: str) -> float:
        """Fraction of this part's output transferable before it completes.

        Tasks finish in waves: with ``v`` waves the first ``v - 1`` waves'
        output is available before the part ends; task-duration
        heterogeneity (``task_cv``) additionally spreads completions
        within the final wave.
        """
        executors = self._executors[worker]
        tasks_per_worker = max(1.0, run.stage.num_tasks / len(self.workers))
        waves = max(1, math.ceil(tasks_per_worker / max(executors, 1)))
        return (1.0 - 1.0 / waves) + (1.0 / waves) * min(1.0, run.stage.task_cv)

    def _start_prefetch(self, run: _StageRun, worker: str) -> None:
        """Push this part's pipelinable output toward the children early."""
        job_id, stage_id = run.key
        job, _policy, _t = self._jobs[job_id]
        children = job.children(stage_id)
        if not children or run.stage.output_bytes <= 0:
            return
        fraction = self._pipelinable_fraction(run, worker)
        if fraction <= 0.0:
            return
        n_workers = len(self.workers)
        for child in children:
            child_run = self._runs[(job_id, child)]
            if child_run.submitted:
                continue  # the child already fetched/registered its reads
            parents = job.parents(child)
            total_parent_out = sum(job.stage(p).output_bytes for p in parents)
            if total_parent_out <= 0:
                continue
            share = run.stage.output_bytes / total_parent_out
            # This part holds 1/|W| of the parent's output; each child
            # worker reads 1/|W| of that (the co-located slice is local).
            portion = child_run.stage.input_bytes * share / n_workers
            prefetched_any = False
            for dst in self.workers:
                if dst == worker:
                    continue
                volume = fraction * portion / n_workers
                if volume <= 0:
                    continue
                child_run.prefetch_assigned[dst] += volume
                child_run.pending_reads[dst] += 1
                pkey = (run.key, worker)
                self._prefetch_outstanding[pkey] = self._prefetch_outstanding.get(pkey, 0) + 1
                self.engine.add_item(
                    NetworkFlow(
                        src=worker,
                        dst=dst,
                        volume=volume,
                        stage_key=child_run.key,
                        on_complete=self._make_prefetch_done(child_run, dst, pkey),
                        rate_cap=0.0,  # real cap assigned by the allocator
                        pipelined=True,
                        producer_key=run.key,
                    )
                )
                prefetched_any = True
            if prefetched_any:
                self._log(
                    EventKind.PREFETCH_STARTED,
                    job_id,
                    child,
                    info={"from_stage": stage_id, "worker": worker},
                )

    def _make_prefetch_done(
        self, child_run: _StageRun, dst: str, pkey: "tuple[tuple[str, str], str]"
    ) -> Callable[[float], None]:
        def done(_t: float) -> None:
            self._prefetch_outstanding[pkey] -= 1
            child_run.pending_reads[dst] -= 1
            if child_run.submitted and child_run.pending_reads[dst] == 0:
                self._part_read_done(child_run, dst)

        return done

    # ------------------------------------------------------------------ #
    # resource allocation (engine callback)
    # ------------------------------------------------------------------ #

    def _allocate(self, items: list) -> None:
        demands: list[ComputeDemand] = []
        writes: list[DiskWrite] = []
        flows: list[NetworkFlow] = []
        # ``type() is``: the three work-item kinds are leaf classes and
        # the exact check is cheaper than isinstance on this hot path.
        for item in items:
            kind = type(item)
            if kind is NetworkFlow:
                flows.append(item)
            elif kind is ComputeDemand:
                demands.append(item)
            elif kind is DiskWrite:
                writes.append(item)
            else:  # pragma: no cover - no other kinds exist
                raise TypeError(f"unknown work item {kind.__name__}")

        if self.config.task_granular:
            # Executor slots already serialize tasks; each running task
            # gets one full executor.
            for d in demands:
                d.executor_share = 1.0
                d.rate = d.process_rate
            if _sanitizer.ENABLED:
                running: dict[str, int] = {}
                for d in demands:
                    running[d.node] = running.get(d.node, 0) + 1
                for node, count in running.items():
                    if count > self._executors[node]:
                        raise _sanitizer.SanitizerError(
                            f"{count} concurrent tasks on {node!r} exceed its "
                            f"{self._executors[node]} executor slots"
                        )
        else:
            compute_shares(demands, self._executors)
        disk_shares(writes, self._disk_bw)

        if flows:
            # Prefetch flows are throttled to their producer part's current
            # output production rate (compute rate times output/input ratio,
            # split across the part's outstanding prefetch flows).  Once the
            # producer part finished computing, the data exists in full and
            # the cap lapses.
            part_rate: dict = {}
            for d in demands:
                k = (d.stage_key, d.node)
                part_rate[k] = part_rate.get(k, 0.0) + d.rate
            for f in flows:
                if not f.pipelined or f.producer_key is None:
                    continue
                rate = part_rate.get((f.producer_key, f.src))
                if rate is None:
                    f.rate_cap = math.inf
                    continue
                producer = self._runs[f.producer_key].stage
                ratio = (
                    producer.output_bytes / producer.input_bytes
                    if producer.input_bytes > 0
                    else math.inf
                )
                count = max(self._prefetch_outstanding.get((f.producer_key, f.src), 1), 1)
                f.rate_cap = rate * ratio / count
            rates = maxmin_rates_seq(flows, self.topology)
            for f, r in zip(flows, rates):
                f.rate = float(r)

        penalty = self.config.contention_penalty
        if penalty > 0.0:
            self._apply_contention_penalty(demands, writes, flows, penalty)

    def _apply_contention_penalty(
        self,
        demands: list[ComputeDemand],
        writes: list[DiskWrite],
        flows: list[NetworkFlow],
        penalty: float,
    ) -> None:
        """Scale rates down where multiple stages share a resource.

        ``n`` distinct stages on a node's executors / disk / NIC ingress
        reduce every sharer's rate by ``1 / (1 + penalty*(n-1))`` —
        scaling down never violates capacity, so max-min feasibility is
        preserved.
        """
        stages_at: dict[tuple[str, str], set] = {}
        if not self.config.task_granular:
            # With discrete tasks, executor slots already serialize CPU
            # contention; penalizing again would double-count.
            for d in demands:
                stages_at.setdefault(("cpu", d.node), set()).add(d.stage_key)
        for w in writes:
            stages_at.setdefault(("disk", w.node), set()).add(w.stage_key)
        for f in flows:
            stages_at.setdefault(("net", f.dst), set()).add(f.stage_key)

        def factor(kind: str, node: str) -> float:
            n = len(stages_at.get((kind, node), ()))
            return 1.0 / (1.0 + penalty * (n - 1)) if n > 1 else 1.0

        for d in demands:
            d.rate *= factor("cpu", d.node)
        for w in writes:
            w.rate *= factor("disk", w.node)
        for f in flows:
            f.rate *= factor("net", f.dst)

    # ------------------------------------------------------------------ #
    # observability (repro.obs)
    # ------------------------------------------------------------------ #

    def _run_counters(self, result: SimulationResult) -> dict:
        """Aggregate run telemetry serialized into the result."""
        counters = {
            "jobs_completed": float(len(self._job_records)),
            "stages_completed": float(len(self._runs)),
            "engine_events": float(self.engine.events_processed),
            "engine_max_active_items": float(self.engine.max_active_items),
            "makespan_seconds": float(result.makespan),
        }
        if self.metrics is not None:
            makespan = result.makespan
            cpu, net, disk = [], [], []
            for node_id in self.workers:
                series = self.metrics.node_series(node_id)
                cpu.append(series.average("cpu_utilization", 0.0, makespan))
                net.append(series.average("net_utilization", 0.0, makespan))
                bw = series.disk_bandwidth
                disk.append(
                    series.average("disk", 0.0, makespan) / bw if bw > 0 else 0.0
                )
            if self.workers:
                counters["busy_fraction.cpu"] = float(sum(cpu) / len(cpu))
                counters["busy_fraction.net_in"] = float(sum(net) / len(net))
                counters["busy_fraction.disk"] = float(sum(disk) / len(disk))
        if self._faults is not None:
            counters.update(self._faults.counters())
        return counters

    def _demand_accounting(
        self, result: SimulationResult
    ) -> "dict[tuple[str, str], StageDemand]":
        """Assemble per-stage :class:`StageDemand` records post-run.

        Pure bookkeeping over state the run already produced (stage
        runtime objects, prefetch assignments, fault stats) — the same
        shape as :meth:`_run_counters` — so the engine's event loop is
        untouched and results stay bit-identical with accounting on.
        The volumes/sources mirror :meth:`_submit_stage` exactly, which
        is what lets the blame engine recompute each phase's
        contention-free duration from the allocator's own sharing
        rules.
        """
        demands: "dict[tuple[str, str], StageDemand]" = {}
        n_workers = len(self.workers)
        for key, run in self._runs.items():
            rec = run.record
            if math.isnan(rec.submit_time):
                continue  # never submitted (failed job / truncated run)
            sources = self._read_sources(run)
            per_worker = run.stage.input_bytes / n_workers
            read_volumes: "dict[str, float]" = {}
            remote_sources: "dict[str, tuple[str, ...]]" = {}
            for wi, w in enumerate(self.workers):
                remote_fraction = (
                    (len(sources) - 1) / len(sources) if w in sources else 1.0
                )
                remote_volume = per_worker * remote_fraction
                remote_volume -= run.prefetch_assigned[w]
                if remote_volume < 0.0:
                    remote_volume = 0.0
                read_volumes[w] = remote_volume
                remote_sources[w] = tuple(
                    self._select_sources([s for s in sources if s != w], wi)
                )
            volume = run.compute_volume
            if volume < 0.0:
                # Stage never reached _part_read_done (e.g. failed job);
                # fall back to the same formula it would have used.
                volume = self._compute_volume(run)
            demands[key] = StageDemand(
                compute_volume=volume,
                write_volume=run.stage.output_bytes / n_workers,
                read_volumes=read_volumes,
                remote_sources=remote_sources,
                retries=run.retries,
            )
        return demands

    def _emit_trace(self, result: SimulationResult) -> None:
        """Emit per-stage phase spans and per-node counter tracks.

        Runs once, after the engine finished, entirely from the stage
        records — tracing adds no work to the event loop itself, which
        is what keeps it cheap enough to stay on during trace-scale
        replays.
        """
        tracer = self.tracer
        scope = self.trace_scope
        for name, value in result.counters.items():
            tracer.counters.set_gauge(f"{scope}.{name}", value)

        job_spans: dict[str, int] = {}
        for job_id, jrec in self._job_records.items():
            if math.isnan(jrec.finish_time):
                continue
            job_spans[job_id] = tracer.add_span(
                job_id,
                jrec.submit_time,
                jrec.completion_time,
                track=(scope, f"job:{job_id}"),
                cat="job",
                args={"job_id": job_id},
            )

        phases = (
            ("delay-wait", "ready_time", "submit_time"),
            ("shuffle-read", "submit_time", "read_done_time"),
            ("compute", "read_done_time", "compute_done_time"),
            ("disk-write", "compute_done_time", "finish_time"),
        )
        for (job_id, stage_id), run in self._runs.items():
            rec = run.record
            if math.isnan(rec.ready_time) or math.isnan(rec.finish_time):
                continue
            sid = tracer.add_span(
                stage_id,
                rec.ready_time,
                max(rec.finish_time - rec.ready_time, 0.0),
                track=(scope, f"{job_id}/{stage_id}"),
                cat="stage",
                parent=job_spans.get(job_id, 0),
                args={
                    "job_id": job_id,
                    "stage_id": stage_id,
                    "input_bytes": run.stage.input_bytes,
                    "output_bytes": run.stage.output_bytes,
                    "workers": len(self.workers),
                },
            )
            for phase, t_from, t_to in phases:
                t0 = getattr(rec, t_from)
                t1 = getattr(rec, t_to)
                if math.isnan(t0) or math.isnan(t1):
                    continue
                dur = max(t1 - t0, 0.0)
                tracer.add_span(
                    phase,
                    t0,
                    dur,
                    track=(scope, f"{job_id}/{stage_id}"),
                    cat="phase",
                    parent=sid,
                    args={"seconds": dur},
                )

        if self.metrics is not None:
            self._emit_node_counters(tracer, scope)

    def _emit_node_counters(self, tracer: Tracer, scope: str) -> None:
        """One counter track per node per resource (change-compressed)."""
        for node_id in self.cluster.node_ids:
            series = self.metrics.node_series(node_id)
            track = (f"{scope}/node:{node_id}", "counters")
            for metric in ("cpu_busy", "net_in", "net_out", "disk"):
                values = getattr(series, metric)
                previous = None
                for t0, value in zip(series.t0, values):
                    v = float(value)
                    if previous is None or abs(v - previous) > 1e-12:
                        tracer.sample(metric, float(t0), v, track=track)
                        previous = v
                if len(series.t1) and previous is not None:
                    tracer.sample(metric, float(series.t1[-1]), 0.0, track=track)

    # ------------------------------------------------------------------ #

    def _log(self, kind: EventKind, job_id: str, stage_id: str = "", info: "dict | None" = None) -> None:
        if not self.config.track_events:
            return
        self.events.append(
            SimEvent(self.engine.now, kind, job_id, stage_id, info or {})
        )


def simulate_job(
    job: Job,
    cluster: ClusterSpec,
    policy: "SubmissionPolicy | None" = None,
    config: "SimulationConfig | None" = None,
    tracer: "Tracer | None" = None,
) -> SimulationResult:
    """Convenience wrapper: run a single job to completion."""
    sim = Simulation(cluster, config, tracer=tracer)
    sim.add_job(job, policy)
    return sim.run()
