"""Simulation event log records.

The event log plays the role of Spark's ``eventlog`` in the paper's
Sec. 4.2: the profiling substrate parses it to extract the job's DAG
timing information, and tests assert ordering invariants over it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EventKind(enum.Enum):
    """Lifecycle events recorded by the simulator."""

    JOB_SUBMITTED = "job_submitted"
    STAGE_READY = "stage_ready"
    STAGE_SUBMITTED = "stage_submitted"
    STAGE_READ_DONE = "stage_read_done"
    STAGE_COMPUTE_DONE = "stage_compute_done"
    STAGE_COMPLETED = "stage_completed"
    JOB_COMPLETED = "job_completed"
    PREFETCH_STARTED = "prefetch_started"
    # Fault-injection lifecycle (repro.faults); only emitted when a
    # non-empty fault plan is installed, so healthy-run event logs are
    # byte-identical with or without the fault subsystem present.
    FAULT_INJECTED = "fault_injected"
    NODE_CRASHED = "node_crashed"
    PARTITION_LOST = "partition_lost"
    TASK_RETRY = "task_retry"
    STAGE_REPLANNED = "stage_replanned"
    JOB_FAILED = "job_failed"


@dataclass(frozen=True)
class SimEvent:
    """One event-log entry.

    ``info`` carries kind-specific details (e.g. the worker node for
    per-part events, prefetched volume for prefetch events).
    """

    time: float
    kind: EventKind
    job_id: str
    stage_id: str = ""
    info: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tail = f" {self.info}" if self.info else ""
        return f"[{self.time:10.3f}] {self.kind.value:18s} {self.job_id}/{self.stage_id}{tail}"
