"""Generic fluid event loop.

The engine advances a set of :class:`WorkItem` objects, each with a
remaining volume and a rate.  Rates are recomputed by a caller-supplied
allocator whenever the active set changes (an item completes or a timer
fires).  Between changes, rates are constant, so the next completion
time is exact: ``now + min(remaining / rate)``.

The engine is deliberately ignorant of *what* the items are; the
resource semantics (network max-min sharing, executor splitting, disk
sharing) live in :mod:`repro.simulator.fairshare` and are wired up by
:mod:`repro.simulator.simulation`.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Iterable

from repro.verify import sanitizer as _sanitizer


class WorkItem:
    """A unit of fluid work with a remaining volume and a current rate.

    Subclasses add routing/ownership attributes; the engine only touches
    ``remaining``, ``rate``, and ``on_complete``.
    """

    __slots__ = ("remaining", "rate", "on_complete")

    def __init__(self, volume: float, on_complete: "Callable[[float], None] | None" = None):
        if volume < 0 or math.isnan(volume) or math.isinf(volume):
            raise ValueError(f"volume must be finite and >= 0, got {volume!r}")
        self.remaining = float(volume)
        self.rate = 0.0
        self.on_complete = on_complete

    @property
    def done(self) -> bool:
        return self.remaining <= 0.0


class EngineStalledError(RuntimeError):
    """Raised when active items exist but every rate is zero and no timer
    is pending — the simulation can never make progress."""


class FluidEngine:
    """Fluid event loop with timers.

    Parameters
    ----------
    allocate:
        Callback invoked with the list of active items; it must set each
        item's ``rate`` (>= 0).  Called whenever the active set may have
        changed.
    observe:
        Optional callback ``observe(t0, t1, items)`` invoked for every
        interval of constant rates, used for exact metric integration.
    max_events:
        Safety valve against livelock bugs; the engine raises after this
        many loop iterations.
    """

    #: Relative tolerance used to snap near-complete items to done.
    EPS = 1e-9

    def __init__(
        self,
        allocate: Callable[[list[WorkItem]], None],
        observe: "Callable[[float, float, list[WorkItem]], None] | None" = None,
        max_events: int = 5_000_000,
    ) -> None:
        self._allocate = allocate
        self._observe = observe
        self._max_events = max_events
        self.now = 0.0
        self._items: list[WorkItem] = []
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._dirty = True  # active set changed; rates must be recomputed
        #: Loop iterations executed (run telemetry; also drives the
        #: livelock safety valve).
        self.events_processed = 0
        #: Peak concurrent work items (telemetry: queue depth).
        self.max_active_items = 0

    # ------------------------------------------------------------------ #
    # public interface
    # ------------------------------------------------------------------ #

    def add_item(self, item: WorkItem) -> None:
        """Register a new active work item (takes effect immediately)."""
        if item.done:
            # Zero-volume work completes instantly without entering the
            # active set (e.g. a fully-local shuffle read).
            if item.on_complete is not None:
                item.on_complete(self.now)
            return
        self._items.append(item)
        self._dirty = True

    def add_items(self, items: Iterable[WorkItem]) -> None:
        for item in items:
            self.add_item(item)

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulation time ``time``."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        heapq.heappush(self._timers, (max(time, self.now), next(self._seq), callback))

    def mark_dirty(self) -> None:
        """Force a rate reallocation before the next advance (call after
        externally mutating item properties such as rate caps)."""
        self._dirty = True

    @property
    def active_items(self) -> list[WorkItem]:
        return list(self._items)

    @property
    def idle(self) -> bool:
        return not self._items and not self._timers

    def run(self, until: "float | None" = None) -> float:
        """Advance until no work and no timers remain (or ``until``).

        Returns the final simulation time.
        """
        events = 0
        while not self.idle:
            events += 1
            self.events_processed += 1
            if events > self._max_events:
                raise RuntimeError(
                    f"engine exceeded {self._max_events} events at t={self.now:.3f}; "
                    "likely a livelock (items repeatedly added with zero volume?)"
                )
            if len(self._items) > self.max_active_items:
                self.max_active_items = len(self._items)
            if self._dirty:
                self._reallocate()

            # Next completion among items with positive rate.
            dt_complete = math.inf
            for item in self._items:
                if item.rate > 0.0:
                    dt = item.remaining / item.rate
                    if dt < dt_complete:
                        dt_complete = dt
            t_complete = self.now + dt_complete

            t_timer = self._timers[0][0] if self._timers else math.inf
            t_next = min(t_complete, t_timer)

            if math.isinf(t_next):
                raise EngineStalledError(
                    f"{len(self._items)} active items but all rates are zero "
                    f"and no timers pending at t={self.now:.3f}"
                )
            if until is not None and t_next > until:
                # ``until`` in the past is an explicit no-op, not a
                # backwards clock move.
                if until > self.now:
                    self._advance_to(until)
                return self.now

            self._advance_to(t_next)

            # Fire due timers (they may add items / schedule more timers).
            while self._timers and self._timers[0][0] <= self.now + 1e-12:
                _, _, callback = heapq.heappop(self._timers)
                callback()
                self._dirty = True

            # Collect completions.
            completed = [it for it in self._items if it.remaining <= self.EPS * max(1.0, it.rate)]
            if completed:
                done_set = set(map(id, completed))
                self._items = [it for it in self._items if id(it) not in done_set]
                self._dirty = True
                for item in completed:
                    item.remaining = 0.0
                    if item.on_complete is not None:
                        item.on_complete(self.now)
        return self.now

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _reallocate(self) -> None:
        self._allocate(self._items)
        for item in self._items:
            if item.rate < 0 or math.isnan(item.rate):
                raise ValueError(f"allocator produced invalid rate {item.rate!r}")
        if _sanitizer.ENABLED:
            _sanitizer.check_rates_valid(self._items)
        self._dirty = False

    def _advance_to(self, t: float) -> None:
        dt = t - self.now
        if dt < 0:
            if _sanitizer.ENABLED:
                _sanitizer.check_clock_monotone(self.now, t)
            return
        if self._observe is not None and dt > 0:
            self._observe(self.now, t, self._items)
        if dt > 0:
            for item in self._items:
                if item.rate > 0.0:
                    item.remaining = max(0.0, item.remaining - item.rate * dt)
        self.now = t
