"""Generic fluid event loop.

The engine advances a set of :class:`WorkItem` objects, each with a
remaining volume and a rate.  Rates are recomputed by a caller-supplied
allocator whenever the active set changes (an item completes or a timer
fires).  Between changes, rates are constant, so the next completion
time is exact: ``now + min(remaining / rate)``.

The engine is deliberately ignorant of *what* the items are; the
resource semantics (network max-min sharing, executor splitting, disk
sharing) live in :mod:`repro.simulator.fairshare` and are wired up by
:mod:`repro.simulator.simulation`.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Iterable

from repro.verify import sanitizer as _sanitizer


class WorkItem:
    """A unit of fluid work with a remaining volume and a current rate.

    Subclasses add routing/ownership attributes; the engine only touches
    ``remaining``, ``rate``, and ``on_complete``.
    """

    __slots__ = ("remaining", "rate", "on_complete", "_pos")

    def __init__(self, volume: float, on_complete: "Callable[[float], None] | None" = None):
        # Single chained comparison: False for negatives, NaN, and +inf.
        if not 0.0 <= volume < math.inf:
            raise ValueError(f"volume must be finite and >= 0, got {volume!r}")
        self.remaining = float(volume)
        self.rate = 0.0
        self.on_complete = on_complete
        #: Index into the engine's active list (maintained by swap-remove).
        self._pos = -1

    @property
    def done(self) -> bool:
        return self.remaining <= 0.0


class EngineStalledError(RuntimeError):
    """Raised when active items exist but every rate is zero and no timer
    is pending — the simulation can never make progress."""


class FluidEngine:
    """Fluid event loop with timers.

    Parameters
    ----------
    allocate:
        Callback invoked with the list of active items; it must set each
        item's ``rate`` (>= 0).  Called whenever the active set may have
        changed.
    observe:
        Optional callback ``observe(t0, t1, items)`` invoked for every
        interval of constant rates, used for exact metric integration.
    max_events:
        Safety valve against livelock bugs; the engine raises after this
        many loop iterations.
    allocate_incremental:
        Optional callback ``(items, added, removed)`` used instead of
        ``allocate`` when only item additions/completions occurred since
        the previous allocation.  ``added``/``removed`` list exactly the
        work items that entered/left the active set, letting the
        allocator re-solve only the affected resource groups while
        untouched items keep their previous rates.  :meth:`mark_dirty`
        (external mutation of capacities or rate caps) always falls back
        to the full ``allocate``.
    progress:
        Optional callback invoked with the engine every
        ``progress_every`` loop iterations (live-monitoring heartbeat).
        It must only *read* engine state; when ``None`` (the default)
        the loop pays a single ``is not None`` check per event.
    progress_every:
        Event interval between ``progress`` callbacks.
    """

    #: Relative tolerance used to snap near-complete items to done.
    EPS = 1e-9

    #: Process-wide count of loop iterations across every engine
    #: instance (subclasses included), accumulated when :meth:`run`
    #: returns.  Whole-pipeline throughput accounting: a scheduler run
    #: drives many engines — Algorithm 1's planning probes simulate the
    #: job dozens of times before the final execution run — and this
    #: counter is the only place that total is visible.  The bench
    #: harness samples it around a timed section; simulations never
    #: read it.
    TOTAL_EVENTS = 0

    def __init__(
        self,
        allocate: Callable[[list[WorkItem]], None],
        observe: "Callable[[float, float, list[WorkItem]], None] | None" = None,
        max_events: int = 5_000_000,
        allocate_incremental: "Callable[[list[WorkItem], list[WorkItem], list[WorkItem]], None] | None" = None,
        progress: "Callable[[FluidEngine], None] | None" = None,
        progress_every: int = 20_000,
    ) -> None:
        self._allocate = allocate
        self._allocate_incremental = allocate_incremental
        self._observe = observe
        self._max_events = max_events
        self._progress = progress
        self._progress_every = max(int(progress_every), 1)
        self.now = 0.0
        self._items: list[WorkItem] = []
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._dirty = True  # active set changed; rates must be recomputed
        self._full_dirty = True  # external mutation; incremental unsafe
        self._stop_requested = False
        self._added: list[WorkItem] = []
        self._removed: list[WorkItem] = []
        #: Loop iterations executed (run telemetry; also drives the
        #: livelock safety valve).
        self.events_processed = 0
        #: Peak concurrent work items (telemetry: queue depth).
        self.max_active_items = 0
        #: Allocation telemetry: full re-solves vs scoped incremental ones.
        self.full_allocations = 0
        self.incremental_allocations = 0

    # ------------------------------------------------------------------ #
    # public interface
    # ------------------------------------------------------------------ #

    def add_item(self, item: WorkItem) -> None:
        """Register a new active work item (takes effect immediately)."""
        if item.remaining <= 0.0:
            # Zero-volume work completes instantly without entering the
            # active set (e.g. a fully-local shuffle read).
            if item.on_complete is not None:
                item.on_complete(self.now)
            return
        item._pos = len(self._items)
        self._items.append(item)
        if self._allocate_incremental is not None:
            self._added.append(item)
        self._dirty = True

    def add_items(self, items: Iterable[WorkItem]) -> None:
        for item in items:
            self.add_item(item)

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulation time ``time``."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        heapq.heappush(self._timers, (max(time, self.now), next(self._seq), callback))

    def request_stop(self) -> None:
        """Stop :meth:`run` before its next loop iteration.

        Called from completion callbacks once the caller has seen
        everything it needs (e.g. a truncated model evaluation watching
        a subset of stages).  All completions of the current instant are
        still delivered first, so the executed trajectory remains an
        exact prefix of the untruncated run.
        """
        self._stop_requested = True

    def cancel_item(self, item: WorkItem) -> bool:
        """Withdraw an active item without firing its completion.

        Fault-injection path: a crashed node's in-flight work leaves
        the active set with its remaining volume intact (the caller
        decides whether and where to requeue it).  Returns ``False``
        if the item was not active (already completed or cancelled).
        """
        if item._pos < 0:
            return False
        self._remove_item(item)
        if self._allocate_incremental is not None:
            # An item added and cancelled within one allocation window
            # must not reach the incremental allocator at all.
            if item in self._added:
                self._added.remove(item)
            else:
                self._removed.append(item)
        self._dirty = True
        return True

    def mark_dirty(self) -> None:
        """Force a rate reallocation before the next advance (call after
        externally mutating item properties such as rate caps)."""
        self._dirty = True
        # External mutations are invisible to the change lists, so the
        # next reallocation must be a full one.
        self._full_dirty = True

    @property
    def active_items(self) -> list[WorkItem]:
        return list(self._items)

    @property
    def idle(self) -> bool:
        return not self._items and not self._timers

    def run(self, until: "float | None" = None) -> float:
        """Advance until no work and no timers remain (or ``until``).

        Returns the final simulation time.
        """
        events = 0
        # Localize loop-invariant objects: ``_items`` and ``_timers`` are
        # mutated in place (swap-remove / heappush) but never rebound, so
        # the local aliases stay valid across iterations.
        items = self._items
        timers = self._timers
        eps = self.EPS
        inf = math.inf
        heappop = heapq.heappop
        progress = self._progress
        progress_every = self._progress_every
        try:
            while (items or timers) and not self._stop_requested:
                events += 1
                self.events_processed += 1
                if progress is not None and events % progress_every == 0:
                    progress(self)
                if events > self._max_events:
                    raise RuntimeError(
                        f"engine exceeded {self._max_events} events at t={self.now:.3f}; "
                        "likely a livelock (items repeatedly added with zero volume?)"
                    )
                if len(items) > self.max_active_items:
                    self.max_active_items = len(items)
                if self._dirty:
                    self._reallocate()

                # Next completion among items with positive rate.
                dt_complete = inf
                for item in items:
                    rate = item.rate
                    if rate > 0.0:
                        dt = item.remaining / rate
                        if dt < dt_complete:
                            dt_complete = dt
                t_complete = self.now + dt_complete

                t_timer = timers[0][0] if timers else inf
                t_next = t_complete if t_complete <= t_timer else t_timer

                if t_next == inf:
                    raise EngineStalledError(
                        f"{len(items)} active items but all rates are zero "
                        f"and no timers pending at t={self.now:.3f}"
                    )
                if until is not None and t_next > until:
                    # ``until`` in the past is an explicit no-op, not a
                    # backwards clock move.
                    if until > self.now:
                        self._advance_to(until)
                    return self.now

                self._advance_to(t_next)

                # Fire due timers (they may add items / schedule more timers).
                # A timer firing does not by itself invalidate rates: every
                # state change a callback makes goes through add_item() /
                # mark_dirty() / item completion, each of which sets the
                # dirty flag, so a pure bookkeeping timer costs no re-solve.
                fired = False
                t_due = self.now + 1e-12
                while timers and timers[0][0] <= t_due:
                    _, _, callback = heappop(timers)
                    callback()
                    fired = True
                if fired and _sanitizer.ENABLED:
                    # Timer callbacks that corrupt item state used to be
                    # caught by the (now elided) unconditional re-solve;
                    # keep catching them without paying for one.
                    _sanitizer.check_rates_valid(items)

                # Collect completions (swap-remove keeps this O(completed)
                # instead of rebuilding the whole active list every event).
                # Threshold is EPS * max(1.0, rate), spelled branchy to avoid
                # a builtin call per item on the hottest loop in the tree.
                completed = [
                    it
                    for it in items
                    if it.remaining <= (eps * it.rate if it.rate > 1.0 else eps)
                ]
                if completed:
                    for item in completed:
                        self._remove_item(item)
                    if self._allocate_incremental is not None:
                        self._removed.extend(completed)
                    self._dirty = True
                    for item in completed:
                        item.remaining = 0.0
                        if item.on_complete is not None:
                            item.on_complete(self.now)
            return self.now
        finally:
            FluidEngine.TOTAL_EVENTS += events

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _remove_item(self, item: WorkItem) -> None:
        """Swap-remove ``item`` from the active list in O(1)."""
        pos = item._pos
        last = self._items.pop()
        if last is not item:
            self._items[pos] = last
            last._pos = pos
        item._pos = -1

    def _reallocate(self) -> None:
        if self._allocate_incremental is not None and not self._full_dirty:
            self._allocate_incremental(self._items, self._added, self._removed)
            self.incremental_allocations += 1
        else:
            self._allocate(self._items)
            self.full_allocations += 1
        self._added.clear()
        self._removed.clear()
        self._full_dirty = False
        for item in self._items:
            # Single comparison: NaN >= 0 is False, so this catches both
            # negative and NaN rates.
            if not item.rate >= 0.0:
                raise ValueError(f"allocator produced invalid rate {item.rate!r}")
        if _sanitizer.ENABLED:
            _sanitizer.check_rates_valid(self._items)
        self._dirty = False

    def _advance_to(self, t: float) -> None:
        dt = t - self.now
        if dt < 0:
            if _sanitizer.ENABLED:
                _sanitizer.check_clock_monotone(self.now, t)
            return
        if self._observe is not None and dt > 0:
            self._observe(self.now, t, self._items)
        if dt > 0:
            for item in self._items:
                rate = item.rate
                if rate > 0.0:
                    rem = item.remaining - rate * dt
                    item.remaining = rem if rem > 0.0 else 0.0
        self.now = t
