"""Parallel trace replay with deterministic sharding and merging.

Fig. 14-scale replays run hundreds of independent (job, scheduler)
simulations; each is deterministic and shares nothing with the others,
so the batch is embarrassingly parallel.  This module shards a job
batch across worker processes while keeping the *results* — and their
order — bit-identical to the serial loop:

* **Deterministic sharding** — jobs are dealt round-robin into shards
  as ``(original_index, job)`` pairs, a pure function of the batch
  order and the shard count.
* **Deterministic per-shard seeds** — every shard gets a seed spawned
  from one base seed via :class:`numpy.random.SeedSequence`, so any
  stochastic component a scheduler might add draws from a stream that
  depends only on ``(base_seed, shard_index)``, never on scheduling of
  the worker processes.  (The current schedulers are deterministic, so
  today the seeds are belt-and-braces; results match the serial path
  regardless.)
* **Order-independent merging** — workers return ``(index, jct)``
  pairs and the parent scatters them back by index, so neither the
  process count nor completion order can reorder or change the output.

``processes <= 1`` falls back to the in-process serial loop, which is
also the path used when a :class:`~repro.obs.tracer.Tracer` is
attached (tracers accumulate spans in the parent and are not sent
across process boundaries).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.spec import ClusterSpec
    from repro.dag.job import Job
    from repro.schedulers.base import Scheduler


def shard_seeds(base_seed: int, num_shards: int) -> list[int]:
    """Spawn one deterministic RNG seed per shard from ``base_seed``."""
    if num_shards <= 0:
        return []
    state = np.random.SeedSequence(base_seed).generate_state(num_shards)
    return [int(s) for s in state]


def split_shards(
    items: Sequence, num_shards: int
) -> "list[list[tuple[int, object]]]":
    """Deal ``items`` round-robin into ``num_shards`` index-tagged shards.

    Shard ``k`` receives items ``k, k + n, k + 2n, ...`` as
    ``(original_index, item)`` pairs.  Empty shards are dropped, so the
    result has ``min(num_shards, len(items))`` entries.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    shards: list[list[tuple[int, object]]] = [[] for _ in range(num_shards)]
    for i, item in enumerate(items):
        shards[i % num_shards].append((i, item))
    return [s for s in shards if s]


def _replay_shard(payload: tuple) -> "list[tuple[int, float]]":
    """Worker entry point: simulate one shard, return (index, JCT) pairs.

    Top-level (picklable) on purpose; imports lazily so worker startup
    does not re-trigger parent-side import work.
    """
    shard, cluster, scheduler, seed = payload
    from repro.schedulers.runner import run_with_scheduler

    # Seed a per-shard stream for any stochastic scheduler component;
    # deterministic schedulers never consult it.
    np.random.default_rng(seed)
    return [
        (idx, run_with_scheduler(job, cluster, scheduler).jct)
        for idx, job in shard
    ]


def _run_outcome(run) -> "tuple[float, bool, int]":
    """(jct, failed, retries) of one single-job SchedulerRun.

    On a healthy run ``failed`` is always False and ``retries`` 0; with
    a fault plan a failed job's "JCT" is its time-to-failure (finite by
    construction), flagged so aggregates can separate the populations.
    """
    result = run.result
    (job_id,) = result.job_records.keys()
    stats = result.faults
    failed = stats is not None and job_id in stats.jobs_failed
    retries = stats.retries if stats is not None else 0
    return (run.jct, failed, retries)


def _replay_outcomes_shard(payload: tuple) -> "list[tuple[int, float, bool, int]]":
    """Worker entry point for :func:`replay_outcomes`."""
    shard, cluster, scheduler, seed = payload
    from repro.schedulers.runner import run_with_scheduler

    np.random.default_rng(seed)
    out = []
    for idx, job in shard:
        jct, failed, retries = _run_outcome(
            run_with_scheduler(job, cluster, scheduler)
        )
        out.append((idx, jct, failed, retries))
    return out


def default_processes() -> int:
    """Worker count when the caller does not specify one."""
    # The ambient core count only picks how many shards run at once;
    # results are bit-identical for any process count by construction.
    return max(os.cpu_count() or 1, 1)  # flow: allow[F004] count-invariant


def replay_jcts(
    jobs: "Sequence[Job]",
    cluster: "ClusterSpec",
    scheduler: "Scheduler",
    *,
    processes: "int | None" = None,
    base_seed: int = 0,
    on_shard_done: "Optional[Callable[[int], None]]" = None,
) -> list[float]:
    """Job completion times for ``jobs`` under ``scheduler``.

    With ``processes > 1`` the batch is sharded across a
    ``ProcessPoolExecutor``; the returned list is identical (values and
    order) to the serial loop for any process count, by construction —
    a property ``tests/test_perf_equivalence.py`` checks.

    ``on_shard_done`` (live monitoring) is called in the parent with the
    number of jobs in each shard as that shard finishes.  Shards are
    consumed in *completion* order, but the merge scatters results back
    by original index, so the callback cannot affect the output.
    """
    if processes is None:
        processes = default_processes()
    processes = min(processes, len(jobs))
    if processes <= 1:
        from repro.schedulers.runner import run_with_scheduler

        jcts = []
        for j in jobs:
            jcts.append(run_with_scheduler(j, cluster, scheduler).jct)
            if on_shard_done is not None:
                on_shard_done(1)
        return jcts

    from concurrent.futures import ProcessPoolExecutor, as_completed

    shards = split_shards(jobs, processes)
    seeds = shard_seeds(base_seed, len(shards))
    merged: list[float] = [float("nan")] * len(jobs)
    payloads = [
        (shard, cluster, scheduler, seed) for shard, seed in zip(shards, seeds)
    ]
    with ProcessPoolExecutor(max_workers=len(shards)) as pool:
        futures = [pool.submit(_replay_shard, payload) for payload in payloads]
        for future in as_completed(futures):
            pairs = future.result()
            for idx, jct in pairs:
                merged[idx] = jct
            if on_shard_done is not None:
                on_shard_done(len(pairs))
    return merged


def replay_outcomes(
    jobs: "Sequence[Job]",
    cluster: "ClusterSpec",
    scheduler: "Scheduler",
    *,
    processes: "int | None" = None,
    base_seed: int = 0,
    on_shard_done: "Optional[Callable[[int], None]]" = None,
) -> "list[tuple[float, bool, int]]":
    """Per-job ``(jct, failed, retries)`` triples under ``scheduler``.

    The fault-aware sibling of :func:`replay_jcts`: a scheduler whose
    config carries a :class:`~repro.faults.plan.FaultPlan` may fail
    jobs (retry budget exhausted), and availability reporting needs to
    see which.  Sharding, seeding, and merge order are identical to
    :func:`replay_jcts`, so with an empty plan the first element of
    every triple matches ``replay_jcts`` exactly.
    """
    if processes is None:
        processes = default_processes()
    processes = min(processes, len(jobs))
    if processes <= 1:
        from repro.schedulers.runner import run_with_scheduler

        outcomes = []
        for j in jobs:
            outcomes.append(_run_outcome(run_with_scheduler(j, cluster, scheduler)))
            if on_shard_done is not None:
                on_shard_done(1)
        return outcomes

    from concurrent.futures import ProcessPoolExecutor, as_completed

    shards = split_shards(jobs, processes)
    seeds = shard_seeds(base_seed, len(shards))
    merged: "list[tuple[float, bool, int]]" = [(float("nan"), False, 0)] * len(jobs)
    payloads = [
        (shard, cluster, scheduler, seed) for shard, seed in zip(shards, seeds)
    ]
    with ProcessPoolExecutor(max_workers=len(shards)) as pool:
        futures = [pool.submit(_replay_outcomes_shard, p) for p in payloads]
        for future in as_completed(futures):
            rows = future.result()
            for idx, jct, failed, retries in rows:
                merged[idx] = (jct, failed, retries)
            if on_shard_done is not None:
                on_shard_done(len(rows))
    return merged
