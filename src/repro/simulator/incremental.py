"""Scoped (incremental) fair-share reallocation.

The full allocator in :class:`~repro.simulator.simulation.Simulation`
re-solves every resource — all executor groups, all disk groups, and
one global water-filling over every network flow — whenever *any* work
item starts or finishes.  For trace-scale replay that is the hot path:
most events touch a single node, yet the whole cluster pays for the
re-solve.

:class:`ScopedAllocator` exploits the sharing structure instead:

* **Executors / disk** are shared per node, so a demand or write
  starting/finishing on node ``w`` can only change rates of items on
  ``w`` — other nodes' rates are left exactly as the previous solve set
  them.
* **Network** max-min rates couple flows only through shared NICs, so
  water-filling decomposes over connected components of the endpoint
  graph (see :func:`~repro.simulator.fairshare.flow_components`).  Only
  components containing a changed endpoint are re-solved.  A finite
  core-fabric capacity couples all cross-rack flows, in which case the
  component structure collapses to one global component.
* **Contention penalties** are per-node scale factors over the distinct
  stages sharing that node's resource; the stage set at a node can only
  change when an item at that node starts or finishes, which already
  marks the node's group dirty.

Because each dirty group is re-solved by the *same* functions the full
allocator uses (``compute_shares`` / ``disk_shares`` /
``maxmin_network_rates``) on the same item subsets in the same order,
the resulting rates are bit-identical to a full re-solve — a property
the test suite asserts with hypothesis (`tests/test_perf_equivalence.py`)
and that makes ``--no-incremental`` a pure bisection switch rather than
a different model.

The allocator is only installed when the simulation config allows it
(``incremental=True`` and no pipelined shuffle: AggShuffle prefetch
rate caps depend on compute rates at the producer, coupling resources
across kinds, so AggShuffle always takes the full path).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.simulator.fairshare import (
    compute_shares,
    disk_shares,
    flow_components,
    maxmin_rates_seq,
)
from repro.simulator.flows import ComputeDemand, DiskWrite, NetworkFlow
from repro.verify import sanitizer as _sanitizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.engine import WorkItem
    from repro.simulator.simulation import Simulation
    from repro.simulator.vector import VectorCore


class ScopedAllocator:
    """Per-group dirty-scoped reallocation for one :class:`Simulation`.

    Installed as the engine's ``allocate_incremental`` callback; the
    engine hands it the full active list plus exactly the items added
    and removed since the previous allocation.  External mutations
    (degradation injections, cap changes) go through
    ``engine.mark_dirty()`` which forces the full allocator instead.
    """

    #: Below this many active flows the connected-component decomposition
    #: costs more than the global water-filling it would avoid.
    SMALL_FLOW_SET = 16

    __slots__ = ("_sim", "_core", "scoped_solves", "network_components_solved")

    def __init__(self, sim: "Simulation", core: "VectorCore | None" = None) -> None:
        self._sim = sim
        #: Struct-of-arrays core of a vector engine, when one drives this
        #: allocator.  Its kind partition (flows / per-node demands /
        #: per-node writes) is maintained O(1) per membership change by
        #: the engine, replacing the full type-dispatch scan below.
        self._core = core
        #: Telemetry: scoped re-solves performed (vs full allocations,
        #: counted by the engine).
        self.scoped_solves = 0
        self.network_components_solved = 0

    # ------------------------------------------------------------------ #

    def allocate(
        self,
        items: "list[WorkItem]",
        added: "list[WorkItem]",
        removed: "list[WorkItem]",
    ) -> "list[WorkItem]":
        sim = self._sim
        # Inline equivalent of collecting item.alloc_groups() into one
        # dirty set — the kind check avoids a tuple allocation per item
        # on the hottest path of model evaluations.  ``type() is`` is
        # deliberate: the three work-item kinds are leaf classes (no
        # subclasses exist), and it is measurably cheaper here than
        # isinstance.
        flow_cls = NetworkFlow
        demand_cls = ComputeDemand
        write_cls = DiskWrite
        dirty_cpu: set[str] = set()
        dirty_disk: set[str] = set()
        dirty_net: set[str] = set()
        for change in (added, removed):
            for item in change:
                kind = type(item)
                if kind is flow_cls:
                    dirty_net.add(item.src)
                    dirty_net.add(item.dst)
                elif kind is demand_cls:
                    dirty_cpu.add(item.node)
                elif kind is write_cls:
                    dirty_disk.add(item.node)
                else:  # pragma: no cover - no other kinds exist
                    raise TypeError(f"unknown work item {kind.__name__}")
        if not (dirty_cpu or dirty_disk or dirty_net):
            return []
        self.scoped_solves += 1

        want_net = bool(dirty_net)
        demands: list[ComputeDemand]
        writes: list[DiskWrite]
        flows: list[NetworkFlow]
        all_demands: "list[ComputeDemand] | None" = None
        core = self._core
        if core is not None and core.active:
            # The vector engine maintains the kind partition as
            # membership changes while in vector mode, so collecting
            # dirty groups is O(group size) instead of a type-dispatch
            # pass over every active item.  (In scalar mode the
            # partition is not maintained and the scan below runs.)
            # Dirty nodes are visited in sorted order (a set would be
            # deterministic per run but order-dependent across runs);
            # the per-node solvers and the contention penalty are
            # order-independent in value, and the network solve below
            # recovers engine order from item positions.
            demands = []
            demands_at = core.demands_at
            for node in sorted(dirty_cpu):
                group = demands_at.get(node)
                if group:
                    demands.extend(group)
            writes = []
            writes_at = core.writes_at
            for node in sorted(dirty_disk):
                group = writes_at.get(node)
                if group:
                    writes.extend(group)
            flows = core.flows_in_engine_order(items) if want_net else []
            if _sanitizer.ENABLED and sim.config.task_granular:
                all_demands = [d for g in demands_at.values() for d in g]
        else:
            # One pass over the active set, in engine order (the same
            # order the full allocator sees), keeping only items in
            # dirty groups.
            demands = []
            writes = []
            flows = []
            append_demand = demands.append
            append_write = writes.append
            append_flow = flows.append
            if _sanitizer.ENABLED and sim.config.task_granular:
                all_demands = []
            for item in items:
                kind = type(item)
                if kind is flow_cls:
                    if want_net:
                        append_flow(item)
                elif kind is demand_cls:
                    if all_demands is not None:
                        all_demands.append(item)
                    if item.node in dirty_cpu:
                        append_demand(item)
                elif kind is write_cls:
                    if item.node in dirty_disk:
                        append_write(item)
                else:  # pragma: no cover - no other kinds exist
                    raise TypeError(f"unknown work item {kind.__name__}")

        if demands:
            if sim.config.task_granular:
                # Executor slots already serialize tasks; each running
                # task gets one full executor.
                for d in demands:
                    d.executor_share = 1.0
                    d.rate = d.process_rate
            else:
                compute_shares(demands, sim._executors)
        if all_demands is not None:
            # Mirror the full allocator's global slot-capacity check; the
            # scoped solve only sees dirty nodes, but overcommit anywhere
            # should still trip the sanitizer.
            running: dict[str, int] = {}
            for d in all_demands:
                running[d.node] = running.get(d.node, 0) + 1
            for node, count in running.items():
                if count > sim._executors[node]:
                    raise _sanitizer.SanitizerError(
                        f"{count} concurrent tasks on {node!r} exceed its "
                        f"{sim._executors[node]} executor slots"
                    )
        if writes:
            disk_shares(writes, sim._disk_bw)

        solved_flows: list[NetworkFlow] = []
        if flows:
            solved_flows = self._solve_network(flows, dirty_net)

        penalty = sim.config.contention_penalty
        if penalty > 0.0 and (demands or writes or solved_flows):
            sim._apply_contention_penalty(demands, writes, solved_flows, penalty)

        # Exactly the items whose rates this solve may have rewritten —
        # a vector engine scatters only these rows back into its arrays.
        touched: "list[WorkItem]" = []
        touched.extend(demands)
        touched.extend(writes)
        touched.extend(solved_flows)
        return touched

    # ------------------------------------------------------------------ #

    def _solve_network(
        self, flows: "list[NetworkFlow]", dirty_net: set[str]
    ) -> "list[NetworkFlow]":
        """Re-solve water-filling for components touching a dirty NIC.

        ``flows`` is every active flow (in engine order); returns the
        subset whose rates were recomputed.
        """
        topology = self._sim.topology
        if topology.core_capacity is not None or len(flows) <= self.SMALL_FLOW_SET:
            # A shared core fabric couples all cross-rack flows, so
            # solving anything means solving everything.  Tiny flow sets
            # skip the union-find too: re-solving an untouched group
            # reproduces its previous rates exactly (same solver, same
            # inputs), and the decomposition bookkeeping costs more than
            # it saves below a handful of flows.
            components = [list(range(len(flows)))]
        else:
            components = flow_components(flows)
        solved: list[NetworkFlow] = []
        for component in components:
            touched = any(
                flows[i].src in dirty_net or flows[i].dst in dirty_net
                for i in component
            )
            if not touched:
                continue
            subset = [flows[i] for i in component]
            rates = maxmin_rates_seq(subset, topology)
            for f, r in zip(subset, rates):
                f.rate = float(r)
            solved.extend(subset)
            self.network_components_solved += 1
        return solved
