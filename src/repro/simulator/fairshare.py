"""Max-min fair resource allocation.

Implements the paper's "resources equally shared among parallel stages"
assumption exactly:

* **Network** — classic max-min (water-filling) over endpoint NIC
  capacities, with optional per-flow rate caps (used by AggShuffle
  prefetch flows).  Vectorized with numpy: each water-filling iteration
  freezes at least one saturated constraint, so the loop runs at most
  ``O(num_constraints)`` times with ``O(F)`` work per iteration.
* **Executors** — each node's executors are split equally among the
  stages currently *computing* there; a stage's rate is
  ``share * R_k``.
* **Disk** — each node's disk write bandwidth is split equally among the
  stages currently writing there.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.cluster.topology import Topology
from repro.simulator.flows import ComputeDemand, DiskWrite, NetworkFlow
from repro.verify import sanitizer as _sanitizer


def maxmin_network_rates(flows: Sequence[NetworkFlow], topology: Topology) -> np.ndarray:
    """Max-min fair rates for ``flows`` over endpoint NIC capacities.

    Every flow consumes egress at its source NIC and ingress at its
    destination NIC; both capacities are shared max-min fairly.  A flow
    with a finite ``rate_cap`` never exceeds it (the spare capacity is
    redistributed to other flows, as water-filling requires).

    Returns the rate array aligned with ``flows``.
    """
    n_flows = len(flows)
    if n_flows == 0:
        return np.zeros(0)
    if n_flows <= 32 and not topology._pair_caps and topology.core_capacity is None:
        return np.array(_maxmin_rates_small(flows, topology))

    src = np.fromiter((topology.index[f.src] for f in flows), dtype=np.int64, count=n_flows)
    dst = np.fromiter((topology.index[f.dst] for f in flows), dtype=np.int64, count=n_flows)
    caps = np.fromiter((f.rate_cap for f in flows), dtype=float, count=n_flows)

    n_nodes = topology.num_nodes
    egress = topology.egress_capacity.astype(float).copy()
    ingress = topology.ingress_capacity.astype(float).copy()
    pair_cap = topology.pair_cap_array(src, dst)
    caps = np.minimum(caps, pair_cap)
    cross_core = topology.crosses_core(src, dst)
    core_left = topology.core_capacity

    rates = np.zeros(n_flows)
    active = np.ones(n_flows, dtype=bool)

    # Each iteration saturates at least one NIC constraint or freezes at
    # least one capped flow, so this terminates in <= 2*n_nodes + n_caps
    # iterations; in practice a handful.
    for _ in range(2 * n_nodes + n_flows + 1):
        if not active.any():
            break
        a_src = src[active]
        a_dst = dst[active]
        n_eg = np.bincount(a_src, minlength=n_nodes)
        n_ing = np.bincount(a_dst, minlength=n_nodes)

        with np.errstate(divide="ignore", invalid="ignore"):
            share_eg = np.where(n_eg > 0, egress / np.maximum(n_eg, 1), math.inf)
            share_ing = np.where(n_ing > 0, ingress / np.maximum(n_ing, 1), math.inf)
        # Fair level each active flow could reach, limited by both ends
        # — and, for cross-rack flows, by the shared core fabric.
        level = np.minimum(share_eg[a_src], share_ing[a_dst])
        if core_left is not None:
            a_cross = cross_core[active]
            n_core = int(a_cross.sum())
            if n_core:
                level = np.where(a_cross, np.minimum(level, core_left / n_core), level)
        bottleneck = level.min()

        a_caps = caps[active]
        cap_limited = a_caps <= bottleneck + 1e-12
        idx_active = np.flatnonzero(active)
        if cap_limited.any():
            # Freeze capped flows at their cap and release leftover
            # capacity back to the links for the remaining flows.
            frozen = idx_active[cap_limited]
            rates[frozen] = caps[frozen]
            np.subtract.at(egress, src[frozen], caps[frozen])
            np.subtract.at(ingress, dst[frozen], caps[frozen])
            if core_left is not None:
                core_left -= float(rates[frozen][cross_core[frozen]].sum())
            active[frozen] = False
        else:
            # Freeze every flow constrained by a saturated link (NIC or
            # the core fabric).
            at_bottleneck = level <= bottleneck + 1e-12
            frozen = idx_active[at_bottleneck]
            rates[frozen] = bottleneck
            np.subtract.at(egress, src[frozen], bottleneck)
            np.subtract.at(ingress, dst[frozen], bottleneck)
            if core_left is not None:
                core_left -= bottleneck * int(cross_core[frozen].sum())
            active[frozen] = False
        egress = np.maximum(egress, 0.0)
        ingress = np.maximum(ingress, 0.0)
        if core_left is not None:
            core_left = max(core_left, 0.0)
    else:  # pragma: no cover - loop bound is generous
        raise RuntimeError("water-filling failed to converge")

    if _sanitizer.ENABLED:
        _sanitizer.check_network_allocation(flows, topology, rates)
    return rates


def maxmin_rates_seq(
    flows: Sequence[NetworkFlow], topology: Topology
) -> "Sequence[float]":
    """Internal hot-path variant of :func:`maxmin_network_rates`.

    Identical dispatch and arithmetic, but the small pure-Python path
    returns its plain list instead of wrapping it in an ndarray —
    callers that immediately scatter rates back onto flow objects skip
    one array construction and a numpy-scalar boxing per flow.
    """
    n_flows = len(flows)
    if n_flows == 0:
        return ()
    if n_flows <= 32 and not topology._pair_caps and topology.core_capacity is None:
        return _maxmin_rates_small(flows, topology)
    return maxmin_network_rates(flows, topology)


def _maxmin_rates_small(
    flows: Sequence[NetworkFlow], topology: Topology
) -> "list[float]":
    """Small-path water-filling with the sanitizer check applied.

    Returns a plain Python list so hot callers (the allocators) skip the
    per-element numpy boxing; :func:`maxmin_network_rates` wraps it in
    an array for the public API.
    """
    rates = _maxmin_small(flows, topology)
    if _sanitizer.ENABLED:
        _sanitizer.check_network_allocation(flows, topology, rates)
    return rates


def _maxmin_small(flows: Sequence[NetworkFlow], topology: Topology) -> "list[float]":
    """Pure-Python water-filling for small flow counts.

    numpy's per-call overhead dominates below a few dozen flows — the
    common case for per-job trace-replay slices — so this dict-based
    variant implements the identical algorithm without array setup.
    Frozen flows are processed in ascending index order, the same order
    ``np.flatnonzero`` gives the vectorized path, so both paths apply
    capacity subtractions in the identical sequence and agree
    bit-for-bit (the incremental allocator relies on this when it
    re-solves a small component of a larger flow set).
    """
    n = len(flows)
    n_nodes = topology.num_nodes
    index = topology.index
    # Integer node indices and flat capacity lists instead of string-keyed
    # dicts; every arithmetic operation below is performed in the same
    # order on the same values as the original dict-based form, so rates
    # are unchanged bit-for-bit.  The base capacity lists are cached on
    # the topology (invalidated by degradations) so consecutive solves —
    # one or more per engine event — skip the ndarray→list conversion;
    # ``list.copy`` reuses the boxed floats, so the working values are
    # the identical objects a fresh ``tolist()`` would box.
    base_egress, base_ingress = topology.capacity_lists()
    egress = base_egress.copy()
    ingress = base_ingress.copy()
    srcs = [index[f.src] for f in flows]
    dsts = [index[f.dst] for f in flows]
    caps = [f.rate_cap for f in flows]
    rates = [0.0] * n
    level = [0.0] * n
    active = list(range(n))
    for _ in range(2 * n_nodes + n + 1):
        if not active:
            return rates
        n_eg = [0] * n_nodes
        n_ing = [0] * n_nodes
        for i in active:
            n_eg[srcs[i]] += 1
            n_ing[dsts[i]] += 1
        bottleneck = math.inf
        for i in active:
            s = srcs[i]
            d = dsts[i]
            le = egress[s] / n_eg[s]
            li = ingress[d] / n_ing[d]
            lv = le if le <= li else li  # == min(le, li)
            level[i] = lv
            if lv < bottleneck:
                bottleneck = lv
        threshold = bottleneck + 1e-12
        # Freeze and rebuild in one pass over ``active``: frozen flows
        # are visited in ascending index order — the same order the
        # two-pass (listcomp + subtract loop) form and ``np.flatnonzero``
        # use — so capacity subtractions happen in the identical
        # sequence and rates agree bit-for-bit with the vector path.
        any_capped = False
        for i in active:
            if caps[i] <= threshold:
                any_capped = True
                break
        survivors: "list[int]" = []
        push = survivors.append
        if any_capped:
            for i in active:
                r = caps[i]
                if r <= threshold:
                    rates[i] = r
                    s = srcs[i]
                    d = dsts[i]
                    t = egress[s] - r
                    egress[s] = t if t > 0.0 else 0.0
                    t = ingress[d] - r
                    ingress[d] = t if t > 0.0 else 0.0
                else:
                    push(i)
        else:
            for i in active:
                if level[i] <= threshold:
                    rates[i] = bottleneck
                    s = srcs[i]
                    d = dsts[i]
                    t = egress[s] - bottleneck
                    egress[s] = t if t > 0.0 else 0.0
                    t = ingress[d] - bottleneck
                    ingress[d] = t if t > 0.0 else 0.0
                else:
                    push(i)
        active = survivors
    raise RuntimeError("water-filling failed to converge")  # pragma: no cover


#: Demand/write counts above which the numpy batch path beats the
#: per-group Python loops.  Both paths compute the identical per-element
#: expression (``(executors / n_stages) / n_group_items * R_k``), so the
#: results agree bit-for-bit and the threshold is purely a speed knob.
BATCH_THRESHOLD = 64


def compute_shares(
    demands: Sequence[ComputeDemand],
    executors_per_node: dict[str, int],
) -> None:
    """Assign executor shares and compute rates in place.

    Each node's executors are divided equally among the stages currently
    computing there (the paper's ``eps_k^w`` with equal sharing); a
    demand's rate is its share times the stage's per-executor
    processing rate ``R_k``.
    """
    if len(demands) > BATCH_THRESHOLD:
        _compute_shares_batch(demands, executors_per_node)
        if _sanitizer.ENABLED:
            _sanitizer.check_compute_allocation(demands, executors_per_node)
        return
    if len(demands) == 1:
        # One demand: its stage owns the node, share = executors / 1 / 1
        # — the identical arithmetic the general path performs.
        d = demands[0]
        executors = executors_per_node.get(d.node, 0)
        if executors <= 0:
            raise ValueError(
                f"compute demand scheduled on node {d.node!r} with no executors"
            )
        share = executors / 1 / 1
        d.executor_share = share
        d.rate = share * d.process_rate
        if _sanitizer.ENABLED:
            _sanitizer.check_compute_allocation(demands, executors_per_node)
        return
    by_node: dict[str, list[ComputeDemand]] = defaultdict(list)
    for d in demands:
        by_node[d.node].append(d)
    for node, items in by_node.items():
        executors = executors_per_node.get(node, 0)
        if executors <= 0:
            raise ValueError(f"compute demand scheduled on node {node!r} with no executors")
        # Distinct stages at the node share equally; multiple demands of
        # the same stage on the same node (not produced by Simulation,
        # but allowed) split their stage's share further.
        stages = defaultdict(list)
        for d in items:
            stages[d.stage_key].append(d)
        per_stage = executors / len(stages)
        for stage_items in stages.values():
            share = per_stage / len(stage_items)
            for d in stage_items:
                d.executor_share = share
                d.rate = share * d.process_rate
    if _sanitizer.ENABLED:
        _sanitizer.check_compute_allocation(demands, executors_per_node)


def _compute_shares_batch(
    demands: Sequence[ComputeDemand],
    executors_per_node: dict[str, int],
) -> None:
    """Vectorized executor-share assignment for large demand batches.

    Factorizes demands into (node, stage-at-node) groups and evaluates
    the equal-sharing expression in one numpy pass — element-for-element
    the same arithmetic as the per-group loop in
    :func:`compute_shares`, so results are bit-identical.
    """
    n = len(demands)
    node_ids: dict[str, int] = {}
    group_ids: dict[tuple[str, tuple[str, str]], int] = {}
    node_idx = np.empty(n, dtype=np.int64)
    group_idx = np.empty(n, dtype=np.int64)
    group_node: list[int] = []
    for i, d in enumerate(demands):
        ni = node_ids.setdefault(d.node, len(node_ids))
        gkey = (d.node, d.stage_key)
        gi = group_ids.get(gkey)
        if gi is None:
            gi = group_ids[gkey] = len(group_ids)
            group_node.append(ni)
        node_idx[i] = ni
        group_idx[i] = gi
    executors = np.fromiter(
        (executors_per_node.get(nid, 0) for nid in node_ids), dtype=float,
        count=len(node_ids),
    )
    if (executors <= 0).any():
        for nid in node_ids:
            if executors_per_node.get(nid, 0) <= 0:
                raise ValueError(
                    f"compute demand scheduled on node {nid!r} with no executors"
                )
    stages_per_node = np.bincount(np.asarray(group_node), minlength=len(node_ids))
    items_per_group = np.bincount(group_idx, minlength=len(group_ids))
    per_stage = executors / stages_per_node
    shares = per_stage[node_idx] / items_per_group[group_idx]
    rates = shares * np.fromiter((d.process_rate for d in demands), dtype=float, count=n)
    for i, d in enumerate(demands):
        d.executor_share = float(shares[i])
        d.rate = float(rates[i])


def disk_shares(writes: Sequence[DiskWrite], disk_bw_per_node: dict[str, float]) -> None:
    """Assign disk write rates in place: equal split per node."""
    if len(writes) > BATCH_THRESHOLD:
        _disk_shares_batch(writes, disk_bw_per_node)
        if _sanitizer.ENABLED:
            _sanitizer.check_disk_allocation(writes, disk_bw_per_node)
        return
    if len(writes) == 1:
        # Single writer owns the node's disk: rate = bw / 1, the same
        # division the general path performs.
        w = writes[0]
        bw = disk_bw_per_node.get(w.node)
        if bw is None or bw <= 0:
            raise ValueError(
                f"disk write scheduled on node {w.node!r} with no disk bandwidth"
            )
        w.rate = bw / 1
        if _sanitizer.ENABLED:
            _sanitizer.check_disk_allocation(writes, disk_bw_per_node)
        return
    by_node: dict[str, list[DiskWrite]] = defaultdict(list)
    for w in writes:
        by_node[w.node].append(w)
    for node, items in by_node.items():
        bw = disk_bw_per_node.get(node)
        if bw is None or bw <= 0:
            raise ValueError(f"disk write scheduled on node {node!r} with no disk bandwidth")
        rate = bw / len(items)
        for w in items:
            w.rate = rate
    if _sanitizer.ENABLED:
        _sanitizer.check_disk_allocation(writes, disk_bw_per_node)


def _disk_shares_batch(writes: Sequence[DiskWrite], disk_bw_per_node: dict[str, float]) -> None:
    """Vectorized equal-split disk rates (bit-identical to the loop)."""
    n = len(writes)
    node_ids: dict[str, int] = {}
    node_idx = np.empty(n, dtype=np.int64)
    for i, w in enumerate(writes):
        node_idx[i] = node_ids.setdefault(w.node, len(node_ids))
    bw = np.fromiter(
        (disk_bw_per_node.get(nid) or 0.0 for nid in node_ids), dtype=float,
        count=len(node_ids),
    )
    if (bw <= 0).any():
        for nid in node_ids:
            if not disk_bw_per_node.get(nid):
                raise ValueError(
                    f"disk write scheduled on node {nid!r} with no disk bandwidth"
                )
    counts = np.bincount(node_idx, minlength=len(node_ids))
    rates = (bw / counts)[node_idx]
    for i, w in enumerate(writes):
        w.rate = float(rates[i])


def flow_components(flows: Sequence[NetworkFlow]) -> list[list[int]]:
    """Partition flow indices into endpoint-connected components.

    Two flows interact in water-filling only if they (transitively)
    share a NIC, so max-min rates can be solved per connected component
    of the endpoint graph.  Components are returned in order of first
    appearance, with indices ascending inside each — the order the
    global solve would visit them.  (The shared core fabric couples all
    cross-rack flows; callers must fall back to a global solve when the
    topology has a finite ``core_capacity``.)
    """
    parent: dict[str, str] = {}

    def find(x: str) -> str:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    for f in flows:
        for node in (f.src, f.dst):
            parent.setdefault(node, node)
        ra, rb = find(f.src), find(f.dst)
        if ra != rb:
            parent[rb] = ra

    groups: dict[str, list[int]] = {}
    for i, f in enumerate(flows):
        groups.setdefault(find(f.src), []).append(i)
    return list(groups.values())
