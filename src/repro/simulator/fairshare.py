"""Max-min fair resource allocation.

Implements the paper's "resources equally shared among parallel stages"
assumption exactly:

* **Network** — classic max-min (water-filling) over endpoint NIC
  capacities, with optional per-flow rate caps (used by AggShuffle
  prefetch flows).  Vectorized with numpy: each water-filling iteration
  freezes at least one saturated constraint, so the loop runs at most
  ``O(num_constraints)`` times with ``O(F)`` work per iteration.
* **Executors** — each node's executors are split equally among the
  stages currently *computing* there; a stage's rate is
  ``share * R_k``.
* **Disk** — each node's disk write bandwidth is split equally among the
  stages currently writing there.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.cluster.topology import Topology
from repro.simulator.flows import ComputeDemand, DiskWrite, NetworkFlow
from repro.verify import sanitizer as _sanitizer


def maxmin_network_rates(flows: Sequence[NetworkFlow], topology: Topology) -> np.ndarray:
    """Max-min fair rates for ``flows`` over endpoint NIC capacities.

    Every flow consumes egress at its source NIC and ingress at its
    destination NIC; both capacities are shared max-min fairly.  A flow
    with a finite ``rate_cap`` never exceeds it (the spare capacity is
    redistributed to other flows, as water-filling requires).

    Returns the rate array aligned with ``flows``.
    """
    n_flows = len(flows)
    if n_flows == 0:
        return np.zeros(0)
    if n_flows <= 32 and not topology._pair_caps and topology.core_capacity is None:
        rates = _maxmin_small(flows, topology)
        if _sanitizer.ENABLED:
            _sanitizer.check_network_allocation(flows, topology, rates)
        return rates

    src = np.fromiter((topology.index[f.src] for f in flows), dtype=np.int64, count=n_flows)
    dst = np.fromiter((topology.index[f.dst] for f in flows), dtype=np.int64, count=n_flows)
    caps = np.fromiter((f.rate_cap for f in flows), dtype=float, count=n_flows)

    n_nodes = topology.num_nodes
    egress = topology.egress_capacity.astype(float).copy()
    ingress = topology.ingress_capacity.astype(float).copy()
    pair_cap = topology.pair_cap_array(src, dst)
    caps = np.minimum(caps, pair_cap)
    cross_core = topology.crosses_core(src, dst)
    core_left = topology.core_capacity

    rates = np.zeros(n_flows)
    active = np.ones(n_flows, dtype=bool)

    # Each iteration saturates at least one NIC constraint or freezes at
    # least one capped flow, so this terminates in <= 2*n_nodes + n_caps
    # iterations; in practice a handful.
    for _ in range(2 * n_nodes + n_flows + 1):
        if not active.any():
            break
        a_src = src[active]
        a_dst = dst[active]
        n_eg = np.bincount(a_src, minlength=n_nodes)
        n_ing = np.bincount(a_dst, minlength=n_nodes)

        with np.errstate(divide="ignore", invalid="ignore"):
            share_eg = np.where(n_eg > 0, egress / np.maximum(n_eg, 1), math.inf)
            share_ing = np.where(n_ing > 0, ingress / np.maximum(n_ing, 1), math.inf)
        # Fair level each active flow could reach, limited by both ends
        # — and, for cross-rack flows, by the shared core fabric.
        level = np.minimum(share_eg[a_src], share_ing[a_dst])
        if core_left is not None:
            a_cross = cross_core[active]
            n_core = int(a_cross.sum())
            if n_core:
                level = np.where(a_cross, np.minimum(level, core_left / n_core), level)
        bottleneck = level.min()

        a_caps = caps[active]
        cap_limited = a_caps <= bottleneck + 1e-12
        idx_active = np.flatnonzero(active)
        if cap_limited.any():
            # Freeze capped flows at their cap and release leftover
            # capacity back to the links for the remaining flows.
            frozen = idx_active[cap_limited]
            rates[frozen] = caps[frozen]
            np.subtract.at(egress, src[frozen], caps[frozen])
            np.subtract.at(ingress, dst[frozen], caps[frozen])
            if core_left is not None:
                core_left -= float(rates[frozen][cross_core[frozen]].sum())
            active[frozen] = False
        else:
            # Freeze every flow constrained by a saturated link (NIC or
            # the core fabric).
            at_bottleneck = level <= bottleneck + 1e-12
            frozen = idx_active[at_bottleneck]
            rates[frozen] = bottleneck
            np.subtract.at(egress, src[frozen], bottleneck)
            np.subtract.at(ingress, dst[frozen], bottleneck)
            if core_left is not None:
                core_left -= bottleneck * int(cross_core[frozen].sum())
            active[frozen] = False
        egress = np.maximum(egress, 0.0)
        ingress = np.maximum(ingress, 0.0)
        if core_left is not None:
            core_left = max(core_left, 0.0)
    else:  # pragma: no cover - loop bound is generous
        raise RuntimeError("water-filling failed to converge")

    if _sanitizer.ENABLED:
        _sanitizer.check_network_allocation(flows, topology, rates)
    return rates


def _maxmin_small(flows: Sequence[NetworkFlow], topology: Topology) -> np.ndarray:
    """Pure-Python water-filling for small flow counts.

    numpy's per-call overhead dominates below a few dozen flows — the
    common case for per-job trace-replay slices — so this dict-based
    variant implements the identical algorithm without array setup.
    """
    egress = dict(zip(topology.node_ids, topology.egress_capacity.tolist()))
    ingress = dict(zip(topology.node_ids, topology.ingress_capacity.tolist()))
    rates = [0.0] * len(flows)
    active = set(range(len(flows)))
    for _ in range(2 * topology.num_nodes + len(flows) + 1):
        if not active:
            return np.array(rates)
        n_eg: dict[str, int] = {}
        n_ing: dict[str, int] = {}
        for i in active:
            f = flows[i]
            n_eg[f.src] = n_eg.get(f.src, 0) + 1
            n_ing[f.dst] = n_ing.get(f.dst, 0) + 1
        level = {
            i: min(egress[flows[i].src] / n_eg[flows[i].src],
                   ingress[flows[i].dst] / n_ing[flows[i].dst])
            for i in active
        }
        bottleneck = min(level.values())
        capped = [i for i in active if flows[i].rate_cap <= bottleneck + 1e-12]
        if capped:
            for i in capped:
                r = flows[i].rate_cap
                rates[i] = r
                egress[flows[i].src] = max(egress[flows[i].src] - r, 0.0)
                ingress[flows[i].dst] = max(ingress[flows[i].dst] - r, 0.0)
                active.discard(i)
        else:
            frozen = [i for i in active if level[i] <= bottleneck + 1e-12]
            for i in frozen:
                rates[i] = bottleneck
                egress[flows[i].src] = max(egress[flows[i].src] - bottleneck, 0.0)
                ingress[flows[i].dst] = max(ingress[flows[i].dst] - bottleneck, 0.0)
                active.discard(i)
    raise RuntimeError("water-filling failed to converge")  # pragma: no cover


def compute_shares(
    demands: Sequence[ComputeDemand],
    executors_per_node: dict[str, int],
) -> None:
    """Assign executor shares and compute rates in place.

    Each node's executors are divided equally among the stages currently
    computing there (the paper's ``eps_k^w`` with equal sharing); a
    demand's rate is its share times the stage's per-executor
    processing rate ``R_k``.
    """
    by_node: dict[str, list[ComputeDemand]] = defaultdict(list)
    for d in demands:
        by_node[d.node].append(d)
    for node, items in by_node.items():
        executors = executors_per_node.get(node, 0)
        if executors <= 0:
            raise ValueError(f"compute demand scheduled on node {node!r} with no executors")
        # Distinct stages at the node share equally; multiple demands of
        # the same stage on the same node (not produced by Simulation,
        # but allowed) split their stage's share further.
        stages = defaultdict(list)
        for d in items:
            stages[d.stage_key].append(d)
        per_stage = executors / len(stages)
        for stage_items in stages.values():
            share = per_stage / len(stage_items)
            for d in stage_items:
                d.executor_share = share
                d.rate = share * d.process_rate
    if _sanitizer.ENABLED:
        _sanitizer.check_compute_allocation(demands, executors_per_node)


def disk_shares(writes: Sequence[DiskWrite], disk_bw_per_node: dict[str, float]) -> None:
    """Assign disk write rates in place: equal split per node."""
    by_node: dict[str, list[DiskWrite]] = defaultdict(list)
    for w in writes:
        by_node[w.node].append(w)
    for node, items in by_node.items():
        bw = disk_bw_per_node.get(node)
        if bw is None or bw <= 0:
            raise ValueError(f"disk write scheduled on node {node!r} with no disk bandwidth")
        rate = bw / len(items)
        for w in items:
            w.rate = rate
    if _sanitizer.ENABLED:
        _sanitizer.check_disk_allocation(writes, disk_bw_per_node)
