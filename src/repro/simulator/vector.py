"""Vectorized (struct-of-arrays) fluid event core.

:class:`VectorFluidEngine` is a drop-in replacement for
:class:`~repro.simulator.engine.FluidEngine` that keeps the per-item hot
state — volume remaining, current rate, and the completion threshold —
in flat numpy float64 arrays (:class:`VectorCore`) instead of reading
``WorkItem`` attributes one object at a time.  The three per-event scans
of the scalar engine (next-completion search, segment accounting, and
completion collection) become ``np.divide``/``np.min``/boolean-mask
kernels over dense array slices.

**Adaptive threshold.**  Numpy call overhead (~1 µs per kernel) loses
to plain Python loops below a few dozen items; planning probe
simulations and trace replay spend most of their time there, while
wide stages and the reallocation benchmark run hundreds of concurrent
items.  The engine therefore runs the scalar object loop while the
active set is small and flips to array kernels once it grows past
:attr:`~VectorFluidEngine.ENTER_VECTOR_N` items (falling back below
:attr:`~VectorFluidEngine.EXIT_VECTOR_N`; the gap is hysteresis so a
set oscillating around the threshold does not thrash O(n) rebuilds).
Both paths are bit-identical — see below — so the switch is purely a
speed knob and may happen mid-run.

**Bit-equality contract.**  The vector engine is *bit-identical* to the
object engine, not merely close: every float operation is performed in
the same IEEE-754 order on the same values.

* next-event scan: ``remaining / rate`` elementwise then ``min`` — the
  minimum of a set of float64 values does not depend on scan order, and
  rows with ``rate == 0`` divide to ``+inf`` exactly as the scalar
  loop's ``if rate > 0.0`` guard skips them (``remaining > 0`` always
  holds at scan time, so ``0/0`` never occurs).
* segment accounting: ``remaining -= rate * dt`` elementwise is the
  scalar expression per row; rows with ``rate == 0`` subtract ``+0.0``,
  which is exact for the positive remainders the engine maintains.  The
  clamp mirrors the scalar ``rem if rem > 0.0 else 0.0``.
* completion collection: ``remaining <= thresh`` where ``thresh`` is
  maintained per row as ``EPS * rate if rate > 1.0 else EPS`` (updated
  only when a rate row is written), and ``np.flatnonzero`` yields
  positions in ascending order — the exact order the scalar list
  comprehension visits items.

**Array layout.**  Rows are *position-aligned* with the engine's active
list: ``WorkItem._pos`` doubles as the row index.  Removal recycles a
row by swap-remove — the last row moves into the freed slot, mirroring
the list swap-remove the scalar engine already performs — so the tail
of the arrays acts as the free list and live indices stay stable
between events without separate free-list bookkeeping.  Capacity grows
by doubling and never shrinks within a run.

**Object synchronization.**  While in vector mode the arrays are
authoritative for ``remaining``; ``WorkItem.rate`` stays authoritative
on the objects (allocators write it there) and is gathered into the
arrays after each reallocation.  Object ``remaining`` attributes are
re-synchronized at every boundary where external code can observe them:
before timer callbacks fire (fault injectors read and cancel items
there), on ``cancel_item``, on completion (set to exactly ``0.0``, as
the scalar engine does), on every :meth:`run` return, in
:attr:`active_items`, before sanitizer checks when the sanitizer is
enabled, and when dropping back to the scalar path.  In scalar mode the
objects are authoritative and the arrays are not maintained at all
(entering vector mode rebuilds them wholesale from the objects).

While in vector mode the core also maintains the kind partition the
scoped allocator needs (flows / per-node demands / per-node writes),
updated O(1) per add/remove, so incremental allocation no longer pays a
full type-dispatch scan of the active list per event.  Node identity
stays a string key into per-node dicts rather than a dense node-index
array: group membership changes O(1) per event, while an index-array
mask scan would be O(n) per solve.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.simulator.engine import EngineStalledError, FluidEngine, WorkItem
from repro.simulator.flows import ComputeDemand, DiskWrite, NetworkFlow
from repro.verify import sanitizer as _sanitizer

#: Resource classes recorded in :attr:`VectorCore.kind` rows.
KIND_OTHER = 0
KIND_FLOW = 1
KIND_DEMAND = 2
KIND_WRITE = 3


class VectorCore:
    """Struct-of-arrays mirror of an engine's active item list.

    Attributes
    ----------
    active:
        ``True`` while the owning engine is in vector mode and the
        arrays/partitions below are authoritative.  Consumers (the
        scoped allocator) must fall back to object scans when ``False``.
    remaining, rate, thresh:
        Dense float64 arrays; row ``i`` mirrors the item at position
        ``i`` of the engine's active list.  ``thresh`` caches the
        completion threshold ``EPS * rate if rate > 1.0 else EPS`` so
        the completion mask is a single comparison per event.
    kind:
        Resource class per row (``KIND_*``), used to collect all active
        flows in engine order with one ``np.flatnonzero``.
    flows, demands_at, writes_at:
        Kind partition of the active set for the scoped allocator:
        insertion-ordered membership dicts (``flows``) and per-node
        membership dicts keyed by node id.  Engine order is recovered
        from positions, never from dict order.
    """

    __slots__ = (
        "active",
        "remaining",
        "rate",
        "thresh",
        "kind",
        "scratch",
        "mask",
        "flows",
        "demands_at",
        "writes_at",
    )

    def __init__(self, capacity: int = 64) -> None:
        self.active = False
        self.remaining = np.zeros(capacity)
        self.rate = np.zeros(capacity)
        self.thresh = np.zeros(capacity)
        self.kind = np.zeros(capacity, dtype=np.int8)
        #: Reusable per-event buffers (per-item dt, boolean masks).
        self.scratch = np.zeros(capacity)
        self.mask = np.zeros(capacity, dtype=bool)
        self.flows: "dict[NetworkFlow, None]" = {}
        self.demands_at: "dict[str, dict[ComputeDemand, None]]" = {}
        self.writes_at: "dict[str, dict[DiskWrite, None]]" = {}

    @property
    def capacity(self) -> int:
        return len(self.remaining)

    def grow(self, need: int) -> None:
        """Double capacity until ``need`` rows fit (amortized O(1))."""
        cap = len(self.remaining)
        while cap < need:
            cap *= 2
        for name in ("remaining", "rate", "thresh", "scratch"):
            old = getattr(self, name)
            new = np.zeros(cap)
            new[: len(old)] = old
            setattr(self, name, new)
        old_kind = self.kind
        self.kind = np.zeros(cap, dtype=np.int8)
        self.kind[: len(old_kind)] = old_kind
        self.mask = np.zeros(cap, dtype=bool)

    # ------------------------------------------------------------------ #
    # kind partition (O(1) per membership change)
    # ------------------------------------------------------------------ #

    def track(self, item: WorkItem, pos: int) -> None:
        cls = type(item)
        if cls is NetworkFlow:
            self.kind[pos] = KIND_FLOW
            self.flows[item] = None
        elif cls is ComputeDemand:
            self.kind[pos] = KIND_DEMAND
            group = self.demands_at.get(item.node)
            if group is None:
                group = self.demands_at[item.node] = {}
            group[item] = None
        elif cls is DiskWrite:
            self.kind[pos] = KIND_WRITE
            group = self.writes_at.get(item.node)
            if group is None:
                group = self.writes_at[item.node] = {}
            group[item] = None
        else:
            self.kind[pos] = KIND_OTHER

    def untrack(self, item: WorkItem) -> None:
        cls = type(item)
        if cls is NetworkFlow:
            del self.flows[item]
        elif cls is ComputeDemand:
            del self.demands_at[item.node][item]
        elif cls is DiskWrite:
            del self.writes_at[item.node][item]

    def rebuild(self, items: "list[WorkItem]", eps: float) -> None:
        """Re-materialize every row and partition from the objects.

        Called when the engine enters vector mode; the objects are
        authoritative at that point, so a wholesale O(n) rebuild is
        exact.  Values round-trip through Python floats untouched
        (float64 in, float64 out), preserving bit-equality.
        """
        n = len(items)
        if n > len(self.remaining):
            self.grow(n)
        rates = [item.rate for item in items]
        self.remaining[:n] = [item.remaining for item in items]
        self.rate[:n] = rates
        self.thresh[:n] = [eps * r if r > 1.0 else eps for r in rates]
        self.flows.clear()
        self.demands_at.clear()
        self.writes_at.clear()
        track = self.track
        for pos, item in enumerate(items):
            track(item, pos)

    def flows_in_engine_order(self, items: "list[WorkItem]") -> "list[NetworkFlow]":
        """All active flows in engine (position) order.

        Uses the ``kind`` array mask above a few dozen items, a
        position sort of the membership dict below — both return the
        identical list, so the switch is purely a speed knob.
        """
        n_flows = len(self.flows)
        if n_flows == 0:
            return []
        if len(items) > 64:
            idx = np.flatnonzero(self.kind[: len(items)] == KIND_FLOW)
            return [items[i] for i in idx.tolist()]
        return sorted(self.flows, key=_item_pos)


def _item_pos(item: WorkItem) -> int:
    return item._pos


class VectorFluidEngine(FluidEngine):
    """Fluid event loop on struct-of-arrays state (see module docs).

    Accepts the same constructor arguments as :class:`FluidEngine` and
    honors the same public API; ``--no-vector`` selects the scalar
    engine instead, which remains the bit-equality baseline.
    """

    #: Active-set size at which the engine flips onto the array kernels.
    #: Below a few dozen items the numpy fixed call overhead loses to
    #: the scalar loops (measured crossover ~25 items; the margin also
    #: absorbs the O(1)-per-add row maintenance cost).
    ENTER_VECTOR_N = 64
    #: Size at which vector mode drops back to the scalar path.  Kept
    #: well below ``ENTER_VECTOR_N`` so the O(n) mode transitions are
    #: amortized over at least the gap's worth of membership changes.
    EXIT_VECTOR_N = 24
    #: Churn guard.  Array rows cost ~0.5 µs per membership change to
    #: maintain, while the kernels save ~0.1 µs per *item* per event —
    #: so vector mode pays off for long-lived items (trace replay's
    #: steady trickle) and loses when a large fraction of the set turns
    #: over every event (wide probe simulations whose stages complete in
    #: waves).  The engine tracks an exponential moving average of
    #: membership changes per event and exits vector mode when it
    #: exceeds ``n * CHURN_EXIT_RATIO``, re-entering only below
    #: ``n * CHURN_ENTER_RATIO`` (factor-2 hysteresis).  Tests force
    #: vector mode by setting both ratios to ``math.inf``.
    CHURN_EXIT_RATIO = 0.25
    CHURN_ENTER_RATIO = 0.125
    #: Consecutive calm events (size and churn conditions both holding)
    #: required before entering vector mode.  Wave-structured runs — a
    #: burst of adds, one quiet event, then a mass completion — pass the
    #: EMA gate for a single event and would thrash O(n) enter/exit
    #: transitions without this streak requirement; a steady trickle
    #: qualifies within a handful of events.  Tests force immediate
    #: entry by setting it to 0.
    ENTER_CALM_EVENTS = 8

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.core = VectorCore()
        #: ``True`` while the arrays are authoritative (mirrors
        #: ``core.active``; kept as an engine attribute for the hot
        #: per-add checks).
        self._vmode = False
        #: Rows ``[0, _rows_valid)`` are materialized in the arrays;
        #: items at later positions were appended since the last flush
        #: and are still object-authoritative.  Stage submission adds
        #: items in bursts of hundreds, so rows are written in one slice
        #: assignment per burst (:meth:`_flush_adds`) instead of three
        #: numpy scalar stores per item.
        self._rows_valid = 0
        #: Membership changes (adds, completions, cancels) since the
        #: previous event, folded into :attr:`_churn_ema` at the top of
        #: each loop iteration for the churn guard.
        self._mchanges = 0
        self._churn_ema = 0.0
        #: Consecutive events the enter conditions have held (see
        #: :attr:`ENTER_CALM_EVENTS`).
        self._calm = 0

    # ------------------------------------------------------------------ #
    # mode transitions
    # ------------------------------------------------------------------ #

    def _enter_vector(self) -> None:
        """Flip to array kernels (objects → arrays, O(n))."""
        self.core.rebuild(self._items, self.EPS)
        self.core.active = True
        self._vmode = True
        self._rows_valid = len(self._items)

    def _exit_vector(self) -> None:
        """Drop back to the scalar path (arrays → objects, O(n))."""
        self._sync_remaining()
        self._vmode = False
        self._rows_valid = 0
        core = self.core
        core.active = False
        core.flows.clear()
        core.demands_at.clear()
        core.writes_at.clear()

    def _flush_adds(self) -> None:
        """Materialize array rows for items appended since the last
        flush (one slice assignment per array instead of per-item
        scalar stores).

        Every code path that reads the arrays or the kind partition
        flushes first: the top-of-event reallocation, the post-timer
        completion scan, and :meth:`cancel_item`.  An append always sets
        ``_dirty``, so no advance or scan can run before the
        reallocation flush — unflushed rows never see a segment update.
        """
        items = self._items
        n = len(items)
        start = self._rows_valid
        if start >= n:
            return
        core = self.core
        if n > len(core.remaining):
            core.grow(n)
        fresh = items[start:n]
        rates = [item.rate for item in fresh]
        core.remaining[start:n] = [item.remaining for item in fresh]
        core.rate[start:n] = rates
        eps = self.EPS
        core.thresh[start:n] = [eps * r if r > 1.0 else eps for r in rates]
        track = core.track
        for pos in range(start, n):
            track(items[pos], pos)
        self._rows_valid = n

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #

    def add_item(self, item: WorkItem) -> None:
        if item.remaining <= 0.0:
            # Zero-volume work completes instantly without entering the
            # active set — identical to the scalar engine.
            if item.on_complete is not None:
                item.on_complete(self.now)
            return
        items = self._items
        pos = len(items)
        item._pos = pos
        items.append(item)
        if self._allocate_incremental is not None:
            self._added.append(item)
        self._dirty = True
        self._mchanges += 1
        # In vector mode the new row is materialized lazily by the next
        # :meth:`_flush_adds`; mode transitions happen only at the top
        # of the event loop, so the append itself is as cheap as the
        # scalar engine's.

    def _remove_item(self, item: WorkItem) -> None:
        pos = item._pos
        items = self._items
        last = items.pop()
        if not self._vmode:
            if last is not item:
                items[pos] = last
                last._pos = pos
            item._pos = -1
            return
        # Removal sites (completion batch, cancel) flush first, so every
        # row including the tail is materialized here.
        core = self.core
        tail = len(items)  # row the departing last item occupied
        if last is not item:
            items[pos] = last
            last._pos = pos
            core.remaining[pos] = core.remaining[tail]
            core.rate[pos] = core.rate[tail]
            core.thresh[pos] = core.thresh[tail]
            core.kind[pos] = core.kind[tail]
        item._pos = -1
        self._rows_valid = tail
        core.untrack(item)

    def _remove_batch(self, completed: "list[WorkItem]") -> None:
        """Remove a completion batch, deferring the array row copies.

        Replays the scalar engine's per-item swap-remove on the Python
        list (so every ``_pos`` and the final item order are exactly the
        sequential result), while the array row moves are recorded as
        ``destination row -> source row`` pairs and applied afterwards
        with one fancy-indexed assignment per array — O(batch) numpy
        calls become O(1).

        Correctness of the deferred application: data is only ever read
        from a row where it was *originally* materialized (``row_of``
        remembers the original row of an item that has already been
        moved once), fancy-index reads snapshot the source rows before
        any write lands, and a destination overwritten twice keeps only
        the last move (dict semantics), which is the sequential
        outcome.  Destinations at or beyond the final size are dropped
        — sequentially those rows are popped anyway.
        """
        items = self._items
        core = self.core
        untrack = core.untrack
        moves: "dict[int, int]" = {}
        row_of: "dict[WorkItem, int]" = {}
        for item in completed:
            pos = item._pos
            last = items.pop()
            if last is not item:
                items[pos] = last
                last._pos = pos
                src = row_of.get(last)
                if src is None:
                    # Never moved in this batch: its data sits at the
                    # tail row it was just popped from.
                    src = row_of[last] = len(items)
                moves[pos] = src
            item._pos = -1
            untrack(item)
        n = len(items)
        self._rows_valid = n
        dsts = [d for d in moves if d < n]
        if not dsts:
            return
        srcs = [moves[d] for d in dsts]
        core.remaining[dsts] = core.remaining[srcs]
        core.rate[dsts] = core.rate[srcs]
        core.thresh[dsts] = core.thresh[srcs]
        core.kind[dsts] = core.kind[srcs]

    def cancel_item(self, item: WorkItem) -> bool:
        if item._pos < 0:
            return False
        self._mchanges += 1
        if self._vmode:
            # The caller keeps the item object (fault requeue path reads
            # its remaining volume): pull the authoritative array value.
            # Flushing first keeps the swap-remove below position-safe
            # (an unflushed tail row must not be copied into a live one).
            self._flush_adds()
            item.remaining = float(self.core.remaining[item._pos])
        return super().cancel_item(item)

    @property
    def active_items(self) -> "list[WorkItem]":
        self._sync_remaining()
        return list(self._items)

    def _sync_remaining(self) -> None:
        """Write array remainders back onto the item objects.

        No-op in scalar mode, where the objects are already
        authoritative.  Unflushed tail rows are skipped: those objects
        were appended after the last segment advance and still hold
        their own current values.
        """
        if not self._vmode:
            return
        n = self._rows_valid
        if not n:
            return
        values = self.core.remaining[:n].tolist()
        for item, value in zip(self._items, values):
            item.remaining = value

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #

    def _reallocate(self) -> None:
        if not self._vmode:
            super()._reallocate()
            return
        self._flush_adds()
        items = self._items
        if _sanitizer.ENABLED:
            # Allocator-internal sanitizer checks read item.remaining.
            self._sync_remaining()
        touched: "list[WorkItem] | None"
        if self._allocate_incremental is not None and not self._full_dirty:
            result = self._allocate_incremental(items, self._added, self._removed)
            # A scoped allocator that reports which items it re-solved
            # lets us scatter only those rows; ``None`` (e.g. a plain
            # callback) falls back to a full gather.
            touched = result if isinstance(result, list) else None
            self.incremental_allocations += 1
        else:
            self._allocate(items)
            touched = None
            self.full_allocations += 1
        self._added.clear()
        self._removed.clear()
        self._full_dirty = False
        core = self.core
        eps = self.EPS
        if touched is None:
            n = len(items)
            rates = [item.rate for item in items]
            for r in rates:
                # Single comparison: NaN >= 0 is False, so this catches
                # both negative and NaN rates (as the scalar engine does).
                if not r >= 0.0:
                    raise ValueError(f"allocator produced invalid rate {r!r}")
            core.rate[:n] = rates
            core.thresh[:n] = [eps * r if r > 1.0 else eps for r in rates]
        elif touched:
            # Bulk fancy-indexed scatter: one numpy call per array
            # instead of two scalar stores per touched item.
            rates = [item.rate for item in touched]
            for r in rates:
                if not r >= 0.0:
                    raise ValueError(f"allocator produced invalid rate {r!r}")
            positions = [item._pos for item in touched]
            core.rate[positions] = rates
            core.thresh[positions] = [eps * r if r > 1.0 else eps for r in rates]
        if _sanitizer.ENABLED:
            _sanitizer.check_rates_valid(items)
        self._dirty = False

    # ------------------------------------------------------------------ #
    # event loop
    # ------------------------------------------------------------------ #

    def run(self, until: "float | None" = None) -> float:
        events = 0
        items = self._items
        timers = self._timers
        eps = self.EPS
        inf = math.inf
        heappop = heapq.heappop
        progress = self._progress
        progress_every = self._progress_every
        enter_n = self.ENTER_VECTOR_N
        exit_n = self.EXIT_VECTOR_N
        churn_exit = self.CHURN_EXIT_RATIO
        churn_enter = self.CHURN_ENTER_RATIO
        calm_events = self.ENTER_CALM_EVENTS
        np_divide = np.divide
        np_less_equal = np.less_equal
        np_flatnonzero = np.flatnonzero
        # Rows with rate == 0 divide to +inf in the next-event scan
        # (remaining > 0 always holds there, so 0/0 cannot occur); rate
        # rows are validated non-NaN/non-negative at reallocation.
        old_err = np.seterr(divide="ignore", invalid="ignore")
        try:
            while (items or timers) and not self._stop_requested:
                events += 1
                self.events_processed += 1
                if progress is not None and events % progress_every == 0:
                    progress(self)
                if events > self._max_events:
                    raise RuntimeError(
                        f"engine exceeded {self._max_events} events at t={self.now:.3f}; "
                        "likely a livelock (items repeatedly added with zero volume?)"
                    )
                n = len(items)
                if n > self.max_active_items:
                    self.max_active_items = n
                # Fold membership changes into the churn EMA, then pick
                # the execution mode for this event (see the churn-guard
                # class attributes for the cost model).
                ema = self._churn_ema * 0.875
                if self._mchanges:
                    ema += self._mchanges * 0.125
                    self._mchanges = 0
                self._churn_ema = ema
                vmode = self._vmode
                if vmode:
                    if n < exit_n or ema > n * churn_exit:
                        self._exit_vector()
                        vmode = False
                        self._calm = 0
                elif n >= enter_n and not ema > n * churn_enter:
                    calm = self._calm + 1
                    if calm > calm_events:
                        self._enter_vector()
                        vmode = True
                        self._calm = 0
                    else:
                        self._calm = calm
                else:
                    self._calm = 0
                if self._dirty:
                    self._reallocate()

                # Next completion among items with positive rate.
                if not n:
                    dt_complete = inf
                elif vmode:
                    core = self.core
                    buf = core.scratch[:n]
                    np_divide(core.remaining[:n], core.rate[:n], out=buf)
                    dt_complete = float(buf.min())
                else:
                    dt_complete = inf
                    for item in items:
                        rate = item.rate
                        if rate > 0.0:
                            dt = item.remaining / rate
                            if dt < dt_complete:
                                dt_complete = dt
                t_complete = self.now + dt_complete

                t_timer = timers[0][0] if timers else inf
                t_next = t_complete if t_complete <= t_timer else t_timer

                if t_next == inf:
                    self._sync_remaining()
                    raise EngineStalledError(
                        f"{len(items)} active items but all rates are zero "
                        f"and no timers pending at t={self.now:.3f}"
                    )
                if until is not None and t_next > until:
                    # ``until`` in the past is an explicit no-op, not a
                    # backwards clock move.
                    if until > self.now:
                        self._advance_to(until)
                    self._sync_remaining()
                    return self.now

                self._advance_to(t_next)

                # Fire due timers.  External code (fault injectors) reads
                # and cancels items inside these callbacks, so object
                # remainders are synchronized first.
                t_due = self.now + 1e-12
                if timers and timers[0][0] <= t_due:
                    self._sync_remaining()
                    while timers and timers[0][0] <= t_due:
                        _, _, callback = heappop(timers)
                        callback()
                    if _sanitizer.ENABLED:
                        _sanitizer.check_rates_valid(items)
                    # Callbacks may have added items (and flipped the
                    # engine into vector mode); materialize their rows
                    # before the completion scan below reads the arrays.
                    vmode = self._vmode
                    if vmode:
                        self._flush_adds()

                # Collect completions: positions ascending, the order the
                # scalar engine's list comprehension visits items.
                n = len(items)
                if not n:
                    completed = None
                elif vmode:
                    core = self.core  # timer adds may have regrown arrays
                    mask = core.mask[:n]
                    np_less_equal(core.remaining[:n], core.thresh[:n], out=mask)
                    idx = np_flatnonzero(mask)
                    completed = [items[i] for i in idx.tolist()] if idx.size else None
                else:
                    completed = [
                        it
                        for it in items
                        if it.remaining <= (eps * it.rate if it.rate > 1.0 else eps)
                    ] or None
                if completed:
                    self._mchanges += len(completed)
                    if vmode and len(completed) > 1:
                        self._remove_batch(completed)
                    else:
                        for item in completed:
                            self._remove_item(item)
                    if self._allocate_incremental is not None:
                        self._removed.extend(completed)
                    self._dirty = True
                    for item in completed:
                        item.remaining = 0.0
                        if item.on_complete is not None:
                            item.on_complete(self.now)
            self._sync_remaining()
            return self.now
        finally:
            np.seterr(**old_err)
            FluidEngine.TOTAL_EVENTS += events

    def _advance_to(self, t: float) -> None:
        if not self._vmode:
            super()._advance_to(t)
            return
        dt = t - self.now
        if dt < 0:
            if _sanitizer.ENABLED:
                _sanitizer.check_clock_monotone(self.now, t)
            return
        items = self._items
        if self._observe is not None and dt > 0:
            self._observe(self.now, t, items)
        n = len(items)
        if dt > 0 and n:
            core = self.core
            rem = core.remaining[:n]
            buf = core.scratch[:n]
            mask = core.mask[:n]
            np.multiply(core.rate[:n], dt, out=buf)
            np.subtract(rem, buf, out=rem)
            # Clamp mirrors the scalar ``rem if rem > 0.0 else 0.0``;
            # rate-0 rows subtract +0.0 and keep remaining > 0, so the
            # clamp is a no-op for them exactly as the scalar guard is.
            np.less_equal(rem, 0.0, out=mask)
            np.copyto(rem, 0.0, where=mask)
        self.now = t
