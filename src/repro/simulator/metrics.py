"""Exact (piecewise-constant) resource-utilization metrics.

The fluid engine produces intervals of constant rates; the collector
integrates them analytically, so averages and standard deviations of
CPU utilization and network throughput — the quantities behind the
paper's Figs. 4, 5, 12, 13, 17 and Tables 3–4 — carry no sampling
error.  Plot-style series are produced on demand by resampling the
step functions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.simulator.flows import ComputeDemand, DiskWrite, NetworkFlow

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.engine import WorkItem


@dataclass
class NodeSeries:
    """Step-function series for one node.

    All arrays share the segment axis: segment ``i`` spans
    ``[t0[i], t1[i])``.  Rates are bytes/s; ``cpu_busy`` counts busy
    executors; utilization properties normalize by the node's capacity.
    """

    node_id: str
    executors: int
    nic_bandwidth: float
    disk_bandwidth: float
    t0: np.ndarray
    t1: np.ndarray
    net_in: np.ndarray
    net_out: np.ndarray
    cpu_busy: np.ndarray
    disk: np.ndarray

    @property
    def durations(self) -> np.ndarray:
        return self.t1 - self.t0

    def _weighted(self, values: np.ndarray, t_lo: float, t_hi: float) -> tuple[np.ndarray, np.ndarray]:
        """Clip segments to [t_lo, t_hi] and return (values, weights)."""
        lo = np.maximum(self.t0, t_lo)
        hi = np.minimum(self.t1, t_hi)
        w = np.maximum(hi - lo, 0.0)
        return values, w

    def average(self, metric: str, t_lo: float = 0.0, t_hi: float = math.inf) -> float:
        """Time-weighted mean of a metric over [t_lo, t_hi].

        ``metric`` is one of ``net_in``, ``net_out``, ``cpu_busy``,
        ``disk``, ``cpu_utilization`` (fraction of executors busy),
        ``net_utilization`` (ingress fraction of NIC).
        Idle gaps inside the window (time not covered by any segment)
        count as zero, matching how a monitoring agent would report.
        """
        if len(self.t1) == 0:
            return 0.0
        values = self._metric_values(metric)
        hi = min(t_hi, float(self.t1[-1]))
        values, w = self._weighted(values, t_lo, hi)
        span = hi - t_lo
        if span <= 0:
            return 0.0
        return float(np.sum(values * w) / span)

    def std(self, metric: str, t_lo: float = 0.0, t_hi: float = math.inf) -> float:
        """Time-weighted standard deviation of a metric over the window."""
        if len(self.t1) == 0:
            return 0.0
        values = self._metric_values(metric)
        hi = min(t_hi, float(self.t1[-1]))
        values, w = self._weighted(values, t_lo, hi)
        span = hi - t_lo
        if span <= 0:
            return 0.0
        mean = float(np.sum(values * w) / span)
        # Uncovered time contributes (0 - mean)^2 with the residual weight.
        covered = float(np.sum(w))
        var = float(np.sum(w * (values - mean) ** 2) + max(span - covered, 0.0) * mean**2) / span
        return math.sqrt(max(var, 0.0))

    def sample(self, times: Sequence[float], metric: str) -> np.ndarray:
        """Evaluate the step function at the given time points."""
        values = self._metric_values(metric)
        times = np.asarray(times, dtype=float)
        out = np.zeros(len(times))
        if len(self.t0) == 0:
            return out
        idx = np.searchsorted(self.t0, times, side="right") - 1
        valid = (idx >= 0) & (times < self.t1[np.clip(idx, 0, len(self.t1) - 1)])
        out[valid] = values[idx[valid]]
        return out

    def values(self, metric: str) -> np.ndarray:
        """Per-segment values of a metric (same axis as ``t0``/``t1``)."""
        return self._metric_values(metric)

    def _metric_values(self, metric: str) -> np.ndarray:
        if metric == "net_in":
            return self.net_in
        if metric == "net_out":
            return self.net_out
        if metric == "cpu_busy":
            return self.cpu_busy
        if metric == "disk":
            return self.disk
        if metric == "cpu_utilization":
            return self.cpu_busy / max(self.executors, 1)
        if metric == "net_utilization":
            # A node with no NIC (bandwidth 0) carries no traffic; avoid
            # the 0/0 → NaN that would otherwise poison every average.
            if self.nic_bandwidth <= 0:
                return np.zeros_like(self.net_in)
            return self.net_in / self.nic_bandwidth
        raise ValueError(f"unknown metric {metric!r}")


class MetricsCollector:
    """Accumulates per-node rates for every constant-rate interval.

    Plugged into the engine as its ``observe`` callback.  When
    ``track_occupancy`` is on it also attributes executor occupancy to
    stages (computing stages get their fair share; stages that are only
    shuffle-reading at a node occupy the node's idle executor slots, as
    Spark tasks hold their slots during shuffle reads — the behaviour
    behind the paper's Fig. 13).
    """

    def __init__(self, cluster: ClusterSpec, track_occupancy: bool = False) -> None:
        self.cluster = cluster
        self.track_occupancy = track_occupancy
        self._node_ids = cluster.node_ids
        self._index = {nid: i for i, nid in enumerate(self._node_ids)}
        self._executors = np.array([cluster.node(n).executors for n in self._node_ids], float)
        self._t0: list[float] = []
        self._t1: list[float] = []
        self._net_in: list[np.ndarray] = []
        self._net_out: list[np.ndarray] = []
        self._cpu: list[np.ndarray] = []
        self._disk: list[np.ndarray] = []
        # Stacked (segments x nodes) matrices, rebuilt lazily when new
        # segments arrive; lets node_series slice a column instead of
        # gathering element-by-element per node.
        self._stacked: "tuple | None" = None
        self._stacked_len = -1
        # occupancy: (t0, t1, {(stage_key, node_id): executors_occupied})
        self.occupancy: list[tuple[float, float, dict]] = []

    # ------------------------------------------------------------------ #

    def observe(self, t0: float, t1: float, items: "list[WorkItem]") -> None:
        """Record one constant-rate interval (engine callback)."""
        if t1 - t0 <= 0:
            # Zero-width segments (duplicate timestamps from coinciding
            # events) carry no integral mass and would only add
            # duplicate step-function breakpoints; the engine never
            # emits them, but external callers might.
            return
        n = len(self._node_ids)
        net_in = np.zeros(n)
        net_out = np.zeros(n)
        cpu = np.zeros(n)
        disk = np.zeros(n)
        occ: dict = {}
        readers: dict[int, set] = {}
        for item in items:
            if isinstance(item, NetworkFlow):
                si = self._index[item.src]
                di = self._index[item.dst]
                net_out[si] += item.rate
                net_in[di] += item.rate
                if self.track_occupancy:
                    readers.setdefault(di, set()).add(item.stage_key)
            elif isinstance(item, ComputeDemand):
                ni = self._index[item.node]
                cpu[ni] += item.executor_share
                if self.track_occupancy:
                    occ[(item.stage_key, item.node)] = (
                        occ.get((item.stage_key, item.node), 0.0) + item.executor_share
                    )
            elif isinstance(item, DiskWrite):
                disk[self._index[item.node]] += item.rate
        if self.track_occupancy:
            # Idle executors at each node are held by shuffle-reading stages.
            for ni, stage_keys in readers.items():
                node_id = self._node_ids[ni]
                idle = max(self._executors[ni] - cpu[ni], 0.0)
                waiting = [k for k in stage_keys if (k, node_id) not in occ]
                if idle > 0 and waiting:
                    share = idle / len(waiting)
                    for key in waiting:
                        occ[(key, node_id)] = share
            self.occupancy.append((t0, t1, occ))
        self._t0.append(t0)
        self._t1.append(t1)
        self._net_in.append(net_in)
        self._net_out.append(net_out)
        self._cpu.append(cpu)
        self._disk.append(disk)

    # ------------------------------------------------------------------ #

    def _stack(self) -> tuple:
        """(Re)build the stacked segment matrices in one pass.

        Returns ``(t0, t1, net_in, net_out, cpu, disk)`` where the time
        axes are 1-D and the rest are (segments x nodes).  Cached until
        the next ``observe`` extends the series.
        """
        m = len(self._t0)
        if self._stacked is None or self._stacked_len != m:
            n = len(self._node_ids)
            if m:
                stacked = (
                    np.array(self._t0),
                    np.array(self._t1),
                    np.vstack(self._net_in),
                    np.vstack(self._net_out),
                    np.vstack(self._cpu),
                    np.vstack(self._disk),
                )
            else:
                empty = np.zeros((0, n))
                t_empty = np.zeros(0)
                stacked = (t_empty, t_empty, empty, empty, empty, empty)
            self._stacked = stacked
            self._stacked_len = m
        return self._stacked

    def node_series(self, node_id: str) -> NodeSeries:
        """Materialize the step series for one node (a column slice of
        the cached stacked matrices — no per-segment Python loop)."""
        i = self._index[node_id]
        spec = self.cluster.node(node_id)
        t0, t1, net_in, net_out, cpu, disk = self._stack()
        return NodeSeries(
            node_id=node_id,
            executors=spec.executors,
            nic_bandwidth=spec.nic_bandwidth,
            disk_bandwidth=spec.disk_bandwidth,
            t0=t0,
            t1=t1,
            net_in=net_in[:, i],
            net_out=net_out[:, i],
            cpu_busy=cpu[:, i],
            disk=disk[:, i],
        )

    def sample_nodes(
        self,
        times: Sequence[float],
        metrics: "Sequence[str]",
        nodes: "Sequence[str] | None" = None,
    ) -> "dict[str, np.ndarray]":
        """Sample several metrics for several nodes in one pass.

        Returns ``{metric: (len(nodes), len(times)) array}``.  All nodes
        share one segment grid, so a single ``searchsorted`` over the
        stacked matrices replaces the per-node re-resampling that
        :meth:`node_series` + :meth:`NodeSeries.sample` would perform —
        this is what :func:`repro.analysis.timeline.utilization_series`
        runs on.  Values are bit-identical to the per-node path: each
        column slice goes through the same normalization arithmetic as
        :meth:`NodeSeries.values`.
        """
        if nodes is None:
            nodes = self._node_ids
        times_arr = np.asarray(times, dtype=float)
        t0, t1, net_in, net_out, cpu, disk = self._stack()
        out = {m: np.zeros((len(nodes), len(times_arr))) for m in metrics}
        if len(t0) == 0:
            return out
        idx = np.searchsorted(t0, times_arr, side="right") - 1
        valid = (idx >= 0) & (times_arr < t1[np.clip(idx, 0, len(t1) - 1)])
        sel = idx[valid]
        base = {"net_in": net_in, "net_out": net_out, "cpu_busy": cpu, "disk": disk}
        for m in metrics:
            dest = out[m]
            for r, node_id in enumerate(nodes):
                c = self._index[node_id]
                if m in base:
                    col = base[m][:, c]
                elif m == "cpu_utilization":
                    spec = self.cluster.node(node_id)
                    col = cpu[:, c] / max(spec.executors, 1)
                elif m == "net_utilization":
                    nic = self.cluster.node(node_id).nic_bandwidth
                    if nic <= 0:
                        col = np.zeros(len(t0))
                    else:
                        col = net_in[:, c] / nic
                else:
                    raise ValueError(f"unknown metric {m!r}")
                dest[r, valid] = col[sel]
        return out

    def cluster_average(self, metric: str, t_lo: float = 0.0, t_hi: float = math.inf) -> float:
        """Average of a per-node metric across all *worker* nodes.

        A cluster with no workers (storage-only specs used in unit
        tests) averages to 0.0 rather than NaN.
        """
        workers = self.cluster.worker_ids
        if not workers:
            return 0.0
        return float(
            np.mean([self.node_series(n).average(metric, t_lo, t_hi) for n in workers])
        )

    def stage_occupancy_series(
        self, stage_key: tuple[str, str], node_id: "str | None" = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Executor occupancy of one stage over time.

        Returns ``(t0, t1, occupied_executors)`` summed over all nodes
        (or restricted to ``node_id``).  Requires ``track_occupancy``.
        """
        if not self.track_occupancy:
            raise RuntimeError("occupancy tracking was not enabled for this run")
        t0s, t1s, vals = [], [], []
        for t0, t1, occ in self.occupancy:
            total = 0.0
            for (key, node), v in occ.items():
                if key == stage_key and (node_id is None or node == node_id):
                    total += v
            t0s.append(t0)
            t1s.append(t1)
            vals.append(total)
        return np.array(t0s), np.array(t1s), np.array(vals)
