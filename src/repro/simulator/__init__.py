"""Fluid-flow discrete-event cluster simulator.

The simulator executes DAG-style jobs on a :class:`~repro.cluster.spec.
ClusterSpec` under a pluggable stage-submission policy.  It is a *fluid*
(processor-sharing) simulator: every active work item — a network flow,
a compute demand, or a disk write — has a remaining volume; rates are
recomputed by max-min fair sharing at every state change; the next event
is the earliest completion at current rates.  Piecewise-constant rates
make the dynamics exact (no time-stepping error) and make utilization
integrals exact as well.

This directly embodies the paper's Sec. 3 modeling assumption that
executors and bandwidth are shared equally among concurrently running
parallel stages, and reproduces Eq. (1)'s phase structure: a stage
partition shuffle-reads its whole input, then processes it, then
shuffle-writes to local disk.
"""

from repro.simulator.engine import FluidEngine, WorkItem
from repro.simulator.fairshare import (
    compute_shares,
    disk_shares,
    maxmin_network_rates,
)
from repro.simulator.flows import ComputeDemand, DiskWrite, NetworkFlow
from repro.simulator.events import EventKind, SimEvent
from repro.simulator.eventlog import (
    EVENTLOG_SCHEMA_VERSION,
    read_eventlog,
    stage_timings_from_eventlog,
    write_eventlog,
)
from repro.simulator.metrics import MetricsCollector, NodeSeries
from repro.simulator.simulation import (
    ImmediatePolicy,
    FixedDelayPolicy,
    SimulationConfig,
    SimulationResult,
    StageRecord,
    JobRecord,
    Simulation,
    SubmissionPolicy,
    simulate_job,
)

__all__ = [
    "FluidEngine",
    "WorkItem",
    "NetworkFlow",
    "ComputeDemand",
    "DiskWrite",
    "maxmin_network_rates",
    "compute_shares",
    "disk_shares",
    "EventKind",
    "SimEvent",
    "EVENTLOG_SCHEMA_VERSION",
    "write_eventlog",
    "read_eventlog",
    "stage_timings_from_eventlog",
    "MetricsCollector",
    "NodeSeries",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "StageRecord",
    "JobRecord",
    "SubmissionPolicy",
    "ImmediatePolicy",
    "FixedDelayPolicy",
    "simulate_job",
]
