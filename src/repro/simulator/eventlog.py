"""JSON-lines event-log export and parsing.

The simulator's event list plays the role of Spark's ``eventlog``
(Sec. 4.2 profiles jobs by parsing it).  This module serializes a
run's events to the same newline-delimited-JSON style Spark uses, and
parses such logs back — so external tooling (or a profiling pipeline
reading from disk rather than from the in-memory result) can consume
simulation output.
"""

from __future__ import annotations

import io
import json
import pathlib
from typing import Iterable

from repro.simulator.events import EventKind, SimEvent


def write_eventlog(
    events: Iterable[SimEvent],
    destination: "str | pathlib.Path | io.TextIOBase",
) -> int:
    """Write events as JSON lines; returns the number of lines."""
    if isinstance(destination, (str, pathlib.Path)):
        with open(destination, "w", encoding="utf-8") as fh:
            return write_eventlog(events, fh)
    count = 0
    for event in events:
        record = {
            "Event": event.kind.value,
            "Timestamp": event.time,
            "Job ID": event.job_id,
        }
        if event.stage_id:
            record["Stage ID"] = event.stage_id
        if event.info:
            record["Info"] = event.info
        destination.write(json.dumps(record) + "\n")
        count += 1
    return count


def read_eventlog(
    source: "str | pathlib.Path | io.TextIOBase",
) -> list[SimEvent]:
    """Parse a JSON-lines event log back into :class:`SimEvent` records.

    Blank lines are skipped; unknown event kinds or malformed lines
    raise ``ValueError`` with the offending line number.
    """
    if isinstance(source, (str, pathlib.Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_eventlog(fh)
    events: list[SimEvent] = []
    for lineno, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            kind = EventKind(record["Event"])
            events.append(
                SimEvent(
                    time=float(record["Timestamp"]),
                    kind=kind,
                    job_id=str(record["Job ID"]),
                    stage_id=str(record.get("Stage ID", "")),
                    info=dict(record.get("Info", {})),
                )
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ValueError(f"malformed eventlog line {lineno}: {line!r}") from exc
    return events


def stage_timings_from_eventlog(events: "list[SimEvent]") -> dict:
    """Recover per-stage phase timings from an event log.

    Returns ``{(job_id, stage_id): {kind_name: time}}`` — the quantity
    a log-based profiler extracts (submission, read-done, compute-done,
    completion instants per stage).
    """
    out: dict = {}
    for event in events:
        if not event.stage_id:
            continue
        out.setdefault((event.job_id, event.stage_id), {})[event.kind.value] = event.time
    return out
