"""JSON-lines event-log export and parsing.

The simulator's event list plays the role of Spark's ``eventlog``
(Sec. 4.2 profiles jobs by parsing it).  This module serializes a
run's events to the same newline-delimited-JSON style Spark uses, and
parses such logs back — so external tooling (or a profiling pipeline
reading from disk rather than from the in-memory result) can consume
simulation output.

Written logs start with a schema header line (``Event`` =
``repro.eventlog.header`` carrying ``Schema Version``).  Readers accept
and ignore the header — including future versions — so the format can
evolve without breaking old parsers; the header does not count toward
``write_eventlog``'s return value and never appears in parsed output.
"""

from __future__ import annotations

import io
import json
import pathlib
from typing import Iterable

from repro.simulator.events import EventKind, SimEvent

#: Version stamped into the header line of written logs.
EVENTLOG_SCHEMA_VERSION = 1

_HEADER_EVENT = "repro.eventlog.header"

#: Longest line excerpt quoted in malformed-line error messages.
_EXCERPT = 80


def write_eventlog(
    events: Iterable[SimEvent],
    destination: "str | pathlib.Path | io.TextIOBase",
) -> int:
    """Write events as JSON lines; returns the number of event lines.

    The schema header line is written first and is *not* counted.
    """
    if isinstance(destination, (str, pathlib.Path)):
        with open(destination, "w", encoding="utf-8") as fh:
            return write_eventlog(events, fh)
    header = {"Event": _HEADER_EVENT, "Schema Version": EVENTLOG_SCHEMA_VERSION}
    destination.write(json.dumps(header) + "\n")
    count = 0
    for event in events:
        record = {
            "Event": event.kind.value,
            "Timestamp": event.time,
            "Job ID": event.job_id,
        }
        if event.stage_id:
            record["Stage ID"] = event.stage_id
        if event.info:
            record["Info"] = event.info
        destination.write(json.dumps(record) + "\n")
        count += 1
    return count


def read_eventlog(
    source: "str | pathlib.Path | io.TextIOBase",
) -> list[SimEvent]:
    """Parse a JSON-lines event log back into :class:`SimEvent` records.

    Blank lines and schema header lines (any version) are skipped.
    Malformed lines and unknown event kinds raise a single
    ``ValueError`` reporting *every* offending line — file name plus
    line numbers — so a corrupt log is diagnosed in one pass instead of
    one failure per rerun.
    """
    if isinstance(source, (str, pathlib.Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return _read_eventlog_lines(fh, str(source))
    name = getattr(source, "name", None)
    return _read_eventlog_lines(source, name if isinstance(name, str) else "<stream>")


def _read_eventlog_lines(
    source: "io.TextIOBase", source_name: str
) -> list[SimEvent]:
    events: list[SimEvent] = []
    malformed: list[tuple[int, str]] = []
    for lineno, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            malformed.append((lineno, line))
            continue
        if isinstance(record, dict) and record.get("Event") == _HEADER_EVENT:
            continue
        try:
            kind = EventKind(record["Event"])
            events.append(
                SimEvent(
                    time=float(record["Timestamp"]),
                    kind=kind,
                    job_id=str(record["Job ID"]),
                    stage_id=str(record.get("Stage ID", "")),
                    info=dict(record.get("Info", {})),
                )
            )
        except (KeyError, ValueError, TypeError):
            malformed.append((lineno, line))
    if malformed:
        detail = "; ".join(
            f"line {n}: {line[:_EXCERPT]!r}" for n, line in malformed
        )
        raise ValueError(
            f"{len(malformed)} malformed eventlog line(s) in "
            f"{source_name}: {detail}"
        )
    return events


def stage_timings_from_eventlog(events: "list[SimEvent]") -> dict:
    """Recover per-stage phase timings from an event log.

    Returns ``{(job_id, stage_id): {kind_name: time}}`` — the quantity
    a log-based profiler extracts (submission, read-done, compute-done,
    completion instants per stage).
    """
    out: dict = {}
    for event in events:
        if not event.stage_id:
            continue
        out.setdefault((event.job_id, event.stage_id), {})[event.kind.value] = event.time
    return out
