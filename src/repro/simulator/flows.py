"""Concrete work-item kinds: network flows, compute demands, disk writes.

Each kind maps onto one term of the paper's Eq. (1):

* :class:`NetworkFlow` — the shuffle-read transfer term
  ``max_i s_k^{i,w} / B_k^{i,w}``;
* :class:`ComputeDemand` — the processing term
  ``sum_i s_k^{i,w} / (eps_k^w * R_k)``;
* :class:`DiskWrite` — the shuffle-write term ``d_k^w / D_k^w``.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.simulator.engine import WorkItem


class NetworkFlow(WorkItem):
    """A shuffle/input transfer from ``src`` to ``dst``.

    Attributes
    ----------
    src, dst:
        Node ids of the sender and receiver.
    stage_key:
        ``(job_id, stage_id)`` of the stage the data belongs to
        (the *reader* for normal flows; prefetch flows are also keyed by
        the reader so accounting lands on the consuming stage).
    rate_cap:
        Optional upper bound on this flow's rate, used by AggShuffle
        pipelining to limit the transfer to the parent's output
        production rate.  ``inf`` means NIC-limited only.
    pipelined:
        True for AggShuffle prefetch flows started before the reader
        stage was submitted.
    producer_key:
        For prefetch flows, the ``(job_id, stage_id)`` of the *parent*
        stage producing the data; while that parent is still computing
        at ``src``, the flow's rate cap tracks its output production
        rate.
    part, src_slot:
        Fault-mode bookkeeping (:mod:`repro.faults`): the reading
        partition slot and the slot whose data ``src`` serves, so a
        crashed node's flows can be requeued / re-sourced.  ``None``
        on the healthy path.
    """

    __slots__ = ("src", "dst", "stage_key", "rate_cap", "pipelined", "producer_key",
                 "part", "src_slot")

    def __init__(
        self,
        src: str,
        dst: str,
        volume: float,
        stage_key: tuple[str, str],
        on_complete: "Callable[[float], None] | None" = None,
        rate_cap: float = math.inf,
        pipelined: bool = False,
        producer_key: "tuple[str, str] | None" = None,
        part: "str | None" = None,
        src_slot: "str | None" = None,
    ) -> None:
        super().__init__(volume, on_complete)
        if src == dst:
            raise ValueError("local transfers must not be modeled as network flows")
        self.src = src
        self.dst = dst
        self.stage_key = stage_key
        self.rate_cap = rate_cap
        self.pipelined = pipelined
        self.producer_key = producer_key
        self.part = part
        self.src_slot = src_slot

    def alloc_groups(self) -> tuple[tuple[str, str], ...]:
        """Resource groups this flow's rate depends on (both NICs)."""
        return (("net", self.src), ("net", self.dst))


class ComputeDemand(WorkItem):
    """CPU processing of a stage partition on one worker.

    ``volume`` is in bytes of input data; the allocated rate is
    ``executor_share * process_rate`` (bytes/s).
    """

    __slots__ = ("node", "stage_key", "process_rate", "executor_share", "part")

    def __init__(
        self,
        node: str,
        volume: float,
        stage_key: tuple[str, str],
        process_rate: float,
        on_complete: "Callable[[float], None] | None" = None,
        part: "str | None" = None,
    ) -> None:
        super().__init__(volume, on_complete)
        if process_rate <= 0:
            raise ValueError(f"process_rate must be > 0, got {process_rate}")
        self.node = node
        self.stage_key = stage_key
        self.process_rate = process_rate
        self.executor_share = 0.0  # filled by the allocator, read by metrics
        self.part = part  # fault-mode partition slot (None on the healthy path)

    def alloc_groups(self) -> tuple[tuple[str, str], ...]:
        """Resource groups this demand's rate depends on (node executors)."""
        return (("cpu", self.node),)


class DiskWrite(WorkItem):
    """Shuffle write of a stage partition to one worker's local disk."""

    __slots__ = ("node", "stage_key", "part")

    def __init__(
        self,
        node: str,
        volume: float,
        stage_key: tuple[str, str],
        on_complete: "Callable[[float], None] | None" = None,
        part: "str | None" = None,
    ) -> None:
        super().__init__(volume, on_complete)
        self.node = node
        self.stage_key = stage_key
        self.part = part  # fault-mode partition slot (None on the healthy path)

    def alloc_groups(self) -> tuple[tuple[str, str], ...]:
        """Resource groups this write's rate depends on (node disk)."""
        return (("disk", self.node),)
