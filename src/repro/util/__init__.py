"""Shared utilities: unit conversions, RNG plumbing, argument validation.

These helpers are deliberately dependency-light so every other subpackage
can import them without cycles.
"""

from repro.util.units import (
    GB,
    KB,
    MB,
    gbps_to_bytes_per_sec,
    mbps_to_bytes_per_sec,
    bytes_to_mb,
    mb_per_sec,
)
from repro.util.rng import resolve_rng, spawn_rngs
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
)

__all__ = [
    "KB",
    "MB",
    "GB",
    "mbps_to_bytes_per_sec",
    "gbps_to_bytes_per_sec",
    "bytes_to_mb",
    "mb_per_sec",
    "resolve_rng",
    "spawn_rngs",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_finite",
]
