"""Seeded random-number-generator plumbing.

Every stochastic component (trace generator, profiling noise, synthetic
DAGs) accepts either a seed, an existing :class:`numpy.random.Generator`,
or ``None``; :func:`resolve_rng` normalizes all three so results are
reproducible end to end whenever a seed is supplied.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def resolve_rng(rng: "int | np.random.Generator | None") -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted input.

    Parameters
    ----------
    rng:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, or an
        existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected seed, Generator, or None; got {type(rng).__name__}")


def spawn_rngs(rng: "int | np.random.Generator | None", n: int) -> list[np.random.Generator]:
    """Split one generator into ``n`` independent child generators.

    Used to give parallel workers / per-job sampling independent streams
    that are still fully determined by the parent seed.
    """
    parent = resolve_rng(rng)
    return [np.random.default_rng(s) for s in parent.bit_generator.seed_seq.spawn(n)]
