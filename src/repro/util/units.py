"""Unit conversions.

The simulator works internally in **bytes** and **seconds**.  The paper
quotes dataset sizes in GB, NIC bandwidth in Mbps/Gbps, and throughput in
MB/s; these helpers keep every conversion in one place so a misplaced
factor of 8 cannot creep into individual modules.
"""

from __future__ import annotations

#: One kilobyte/megabyte/gigabyte in bytes (binary prefixes, matching how
#: Spark and the Alibaba trace report data volumes).
KB: float = 1024.0
MB: float = 1024.0**2
GB: float = 1024.0**3

_BITS_PER_BYTE = 8.0


def mbps_to_bytes_per_sec(mbps: float) -> float:
    """Convert a network bandwidth in megabits/s into bytes/s.

    Network gear is quoted in decimal megabits (1 Mbps = 10^6 bit/s).
    """
    return mbps * 1e6 / _BITS_PER_BYTE


def gbps_to_bytes_per_sec(gbps: float) -> float:
    """Convert a network bandwidth in gigabits/s into bytes/s."""
    return gbps * 1e9 / _BITS_PER_BYTE


def bytes_to_mb(n_bytes: float) -> float:
    """Convert a byte count into binary megabytes (MiB, reported as MB)."""
    return n_bytes / MB


def mb_per_sec(bytes_per_sec: float) -> float:
    """Convert a rate in bytes/s into MB/s as reported in the paper."""
    return bytes_per_sec / MB
