"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

import math


def check_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is a finite number > 0."""
    check_finite(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is a finite number >= 0."""
    check_finite(value, name)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(value: float, name: str, lo: float, hi: float) -> float:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    check_finite(value, name)
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_finite(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is a finite real number."""
    try:
        v = float(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{name} must be a real number, got {value!r}") from exc
    if math.isnan(v) or math.isinf(v):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return v
