"""Run jobs under schedulers and collect comparable results."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.spec import ClusterSpec
from repro.dag.job import Job
from repro.obs.live.bus import TelemetryPublisher, fault_hook
from repro.obs.progress import ProgressReporter, engine_hook
from repro.obs.tracer import Tracer
from repro.schedulers.base import Scheduler
from repro.simulator.simulation import Simulation, SimulationResult


@dataclass
class SchedulerRun:
    """One (job, scheduler) execution with its artifacts."""

    scheduler_name: str
    result: SimulationResult
    info: dict

    @property
    def jct(self) -> float:
        (job_id,) = self.result.job_records.keys()
        return self.result.job_completion_time(job_id)

    @property
    def delay_table(self) -> "dict[str, float]":
        """Algorithm 1's chosen per-stage delays, or ``{}``.

        The decision-audit cross-link for blame attribution: DelayStage
        runs carry their :class:`~repro.core.delaystage.DelaySchedule`
        in ``info["schedule"]``; immediate-submission baselines (Spark,
        Fuxi, AggShuffle) have none, so every delay is zero.
        """
        schedule = self.info.get("schedule")
        delays = getattr(schedule, "delays", None)
        return dict(delays) if delays else {}


def run_with_scheduler(
    job: Job,
    cluster: ClusterSpec,
    scheduler: Scheduler,
    tracer: "Tracer | None" = None,
    progress: "ProgressReporter | None" = None,
) -> SchedulerRun:
    """Prepare and simulate one job under one scheduler.

    ``tracer`` (see :mod:`repro.obs`) collects the scheduler's
    decision-audit spans and the simulation's stage/phase spans; the
    run's tracks are scoped by the scheduler name so several runs can
    share one trace file.  ``progress`` is any telemetry publisher
    (:class:`~repro.obs.live.bus.TelemetryPublisher`, of which the
    stderr :class:`ProgressReporter` is one): the engine loop, the
    scheduling decision, fault-injection events, and the per-job JCT
    all publish through it.  Telemetry only reads simulation state,
    never the schedule, so results are bit-identical either way.
    """
    prepared = scheduler.prepare(job, cluster, tracer=tracer)
    if progress is not None:
        progress.schedule_computed(scheduler.name, prepared.info)
    sim = Simulation(
        cluster,
        prepared.config,
        tracer=tracer,
        trace_scope=scheduler.name,
        progress=engine_hook(progress),
        fault_hook=fault_hook(progress),
    )
    sim.add_job(job, prepared.policy)
    result = sim.run()
    run = SchedulerRun(scheduler.name, result, prepared.info)
    if progress is not None:
        # Fold the finished engine's final telemetry in (short runs may
        # never reach the periodic in-loop tick), then count the job.
        progress.engine_tick(sim.engine)
        jct = run.jct
        progress.job_done(jct=jct if jct == jct and jct != float("inf") else None)
    return run


def compare_schedulers(
    job: Job,
    cluster: ClusterSpec,
    schedulers: "list[Scheduler]",
    tracer: "Tracer | None" = None,
    progress: "ProgressReporter | None" = None,
) -> dict[str, SchedulerRun]:
    """Run the same job under every scheduler.

    Returns runs keyed by scheduler name (names must be unique).
    """
    runs: dict[str, SchedulerRun] = {}
    for scheduler in schedulers:
        if scheduler.name in runs:
            raise ValueError(f"duplicate scheduler name {scheduler.name!r}")
        runs[scheduler.name] = run_with_scheduler(
            job, cluster, scheduler, tracer, progress=progress
        )
    return runs


def replay_batch(
    jobs: "list[Job]",
    cluster: ClusterSpec,
    scheduler: Scheduler,
    *,
    processes: "int | None" = 1,
    tracer: "Tracer | None" = None,
    progress: "ProgressReporter | None" = None,
) -> list[float]:
    """JCTs for independent jobs, optionally sharded across processes.

    Each job runs in its own simulation (the Fig. 14 replay setting —
    jobs do not share the cluster).  ``processes > 1`` fans the batch
    out via :func:`repro.simulator.parallel.replay_jcts`; results are
    identical to the serial loop regardless of the process count.  A
    ``tracer`` forces the serial path, since spans accumulate in this
    process.  ``progress`` streams a heartbeat — per-engine ticks on
    the serial path, per-shard completions on the parallel one.
    """
    if tracer is None and (processes is None or processes > 1):
        from repro.simulator.parallel import replay_jcts

        jcts = replay_jcts(
            jobs,
            cluster,
            scheduler,
            processes=processes,
            on_shard_done=progress.shard_done if progress is not None else None,
        )
        if progress is not None:
            # Shard workers run out-of-process, so per-job JCTs arrive
            # only with the merged result; publish them in bulk.
            progress.observe_jcts(jcts)
        return jcts
    return [
        run_with_scheduler(j, cluster, scheduler, tracer, progress=progress).jct
        for j in jobs
    ]


def run_jobs_with_scheduler(
    jobs: "list[Job]",
    cluster: ClusterSpec,
    scheduler: Scheduler,
    submit_times: "list[float] | None" = None,
) -> SimulationResult:
    """Run several jobs concurrently under one scheduler.

    The multi-job extension the paper sketches in Sec. 6: each job's
    delay schedule is computed independently (as the per-job prototype
    would), then all jobs execute on the shared cluster.  The
    simulation config is taken from the first prepared job.

    Parameters
    ----------
    submit_times:
        Per-job arrival times (default: all at t = 0).
    """
    if not jobs:
        raise ValueError("jobs must be non-empty")
    if submit_times is None:
        submit_times = [0.0] * len(jobs)
    if len(submit_times) != len(jobs):
        raise ValueError("submit_times must match jobs")

    prepared = [scheduler.prepare(job, cluster) for job in jobs]
    sim = Simulation(cluster, prepared[0].config)
    for job, prep, t0 in zip(jobs, prepared, submit_times):
        sim.add_job(job, prep.policy, submit_time=t0)
    return sim.run()
