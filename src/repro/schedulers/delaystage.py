"""The DelayStage scheduler: calculator + delayer behind the common
scheduler interface."""

from __future__ import annotations

from dataclasses import replace

from repro.cluster.spec import ClusterSpec
from repro.core.calculator import DelayTimeCalculator
from repro.core.delayer import ReplanningStageDelayer, StageDelayer
from repro.core.delaystage import DelayStageParams, delay_stage_schedule
from repro.core.ordering import PathOrder
from repro.dag.job import Job
from repro.obs.tracer import Tracer
from repro.schedulers.base import Prepared, Scheduler
from repro.simulator.simulation import SimulationConfig


class DelayStageScheduler(Scheduler):
    """Stage delay scheduling (the paper's strategy).

    Parameters
    ----------
    order:
        Execution-path processing order; the paper's default is
        descending, with random/ascending as Fig. 14 ablations.
    params:
        Full Algorithm 1 tunables (overrides ``order`` if given).
    profiled:
        ``True`` (default) runs the complete prototype pipeline —
        sampled profiling, noisy bandwidth measurement, planning on
        estimates.  ``False`` gives Algorithm 1 the ground-truth job
        and cluster (an oracle planner, useful to separate algorithm
        quality from estimation error).
    sample_fraction / profiling_noise / measurement_noise / rng:
        Forwarded to :class:`~repro.core.calculator.DelayTimeCalculator`
        in profiled mode.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` the execution
        runs under (planning always models the healthy cluster — faults
        are surprises, not inputs).
    replan:
        Recompute Algorithm 1 against the surviving cluster when a
        fault changes the topology mid-run (delays of already-submitted
        stages stay frozen).  Requires the policy to be mutable, so the
        prepared policy becomes a
        :class:`~repro.core.delayer.ReplanningStageDelayer`.
    """

    def __init__(
        self,
        order: "PathOrder | str" = PathOrder.DESCENDING,
        params: "DelayStageParams | None" = None,
        *,
        profiled: bool = True,
        sample_fraction: float = 0.1,
        profiling_noise: float = 0.03,
        measurement_noise: float = 0.02,
        rng: "int | None" = 0,
        track_metrics: bool = True,
        track_occupancy: bool = False,
        contention_penalty: float = 0.0,
        incremental: bool = True,
        fault_plan=None,
        replan: bool = False,
        vector: bool = True,
    ) -> None:
        self.params = params or DelayStageParams(order=order)
        if contention_penalty > 0.0 and self.params.sim_config is None:
            # Plan against the same contention model the job will run
            # under, like the paper's profiled model implicitly does.
            self.params = replace(
                self.params,
                sim_config=SimulationConfig(
                    track_metrics=False, contention_penalty=contention_penalty
                ),
            )
        if not incremental:
            # Bisection switch: force the planning evaluations onto the
            # full-allocator path too, so --no-incremental exercises an
            # end-to-end unoptimized pipeline.
            base = self.params.sim_config or SimulationConfig(track_metrics=False)
            self.params = replace(
                self.params, sim_config=replace(base, incremental=False)
            )
        if not vector:
            # Same end-to-end bisection contract as --no-incremental:
            # the planning evaluations drop to the scalar object engine
            # alongside the execution run.
            base = self.params.sim_config or SimulationConfig(track_metrics=False)
            self.params = replace(self.params, sim_config=replace(base, vector=False))
        self.profiled = profiled
        self.sample_fraction = sample_fraction
        self.profiling_noise = profiling_noise
        self.measurement_noise = measurement_noise
        self.rng = rng
        self.replan = replan
        self._config = SimulationConfig(
            track_metrics=track_metrics,
            track_occupancy=track_occupancy,
            contention_penalty=contention_penalty,
            incremental=incremental,
            fault_plan=fault_plan,
            vector=vector,
        )
        order_name = PathOrder(self.params.order).value
        self.name = "delaystage" if order_name == "descending" else f"delaystage-{order_name}"
        if replan:
            self.name += "+replan"

    def prepare(
        self, job: Job, cluster: ClusterSpec, tracer: "Tracer | None" = None
    ) -> Prepared:
        if self.profiled:
            calculator = DelayTimeCalculator(
                cluster,
                self.params,
                sample_fraction=self.sample_fraction,
                profiling_noise=self.profiling_noise,
                measurement_noise=self.measurement_noise,
                rng=self.rng,
            )
            schedule = calculator.compute(job, tracer=tracer)
            profile = calculator.last_profile
        else:
            schedule = delay_stage_schedule(job, cluster, self.params, tracer=tracer)
            profile = None
        if self.replan:
            policy = ReplanningStageDelayer.from_schedule(schedule, params=self.params)
        else:
            policy = StageDelayer.from_schedule(schedule)
        return Prepared(
            policy=policy,
            config=self._config,
            info={"schedule": schedule, "profile": profile},
        )
