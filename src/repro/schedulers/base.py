"""Scheduler interface shared by all strategies."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.cluster.spec import ClusterSpec
from repro.dag.job import Job
from repro.obs.tracer import Tracer
from repro.simulator.simulation import SimulationConfig, SubmissionPolicy


@dataclass
class Prepared:
    """A scheduler's decisions for one job, ready to simulate.

    ``info`` carries strategy-specific artifacts (e.g. DelayStage's
    :class:`~repro.core.schedule.DelaySchedule`) for overhead
    accounting and inspection.
    """

    policy: SubmissionPolicy
    config: SimulationConfig
    info: dict = field(default_factory=dict)


class Scheduler(abc.ABC):
    """A named stage-scheduling strategy."""

    #: Display name used in benchmark tables.
    name: str = "scheduler"

    @abc.abstractmethod
    def prepare(
        self, job: Job, cluster: ClusterSpec, tracer: "Tracer | None" = None
    ) -> Prepared:
        """Make all scheduling decisions for ``job`` on ``cluster``.

        Called once per job before simulation, mirroring how the
        prototype's calculator runs ahead of the job (its cost is
        *not* part of the simulated timeline; it is reported separately
        as runtime overhead, Sec. 5.4).  ``tracer`` (see
        :mod:`repro.obs`) receives decision-audit spans from strategies
        that plan (DelayStage); strategies without planning ignore it.
        """

    def simulation_config(self) -> SimulationConfig:
        """Default simulation behaviour for this strategy."""
        return SimulationConfig()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"
