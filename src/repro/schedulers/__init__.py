"""Stage-scheduling strategies compared in the paper's evaluation.

Each scheduler bundles a submission policy with the simulation
behaviour it requires, behind a uniform :class:`Scheduler` interface:

* :class:`~repro.schedulers.spark.StockSparkScheduler` — submit every
  stage the instant it is ready (the naive baseline).
* :class:`~repro.schedulers.aggshuffle.AggShuffleScheduler` — no
  delays, but shuffle data is proactively pipelined to children
  (ICDCS'17 comparator).
* :class:`~repro.schedulers.delaystage.DelayStageScheduler` — the
  paper's strategy, in oracle mode (plans on true parameters) or
  profiled mode (plans on sampled-run estimates, the full prototype
  pipeline).
* :class:`~repro.schedulers.fuxi.FuxiScheduler` — Alibaba's
  load-balancing scheduler as abstracted by the paper's Sec. 5.3
  simulation: balanced placement, immediate submission.
"""

from repro.schedulers.base import Prepared, Scheduler
from repro.schedulers.spark import StockSparkScheduler
from repro.schedulers.aggshuffle import AggShuffleScheduler
from repro.schedulers.delaystage import DelayStageScheduler
from repro.schedulers.fuxi import FuxiScheduler
from repro.schedulers.runner import (
    compare_schedulers,
    replay_batch,
    run_jobs_with_scheduler,
    run_with_scheduler,
)

__all__ = [
    "Scheduler",
    "Prepared",
    "StockSparkScheduler",
    "AggShuffleScheduler",
    "DelayStageScheduler",
    "FuxiScheduler",
    "run_with_scheduler",
    "compare_schedulers",
    "replay_batch",
    "run_jobs_with_scheduler",
]
