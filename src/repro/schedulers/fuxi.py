"""Fuxi-like baseline for the trace-driven comparison (Sec. 5.3).

Alibaba's Fuxi distributes task execution uniformly across available
workers to balance computation and network load, but — like stock
Spark — submits a stage the moment its inputs are ready.  The paper's
simulation uses it as the "balanced placement, no stage delay"
baseline that DelayStage beats by 27.5 %–36.6 % mean JCT.

In this reproduction balanced placement is the simulator's native
behaviour (stages spread evenly across all workers), so Fuxi reduces
to immediate submission; the class exists to keep the comparison
explicit and to carry Fuxi's distinct identity in result tables.
"""

from __future__ import annotations

from repro.cluster.spec import ClusterSpec
from repro.dag.job import Job
from repro.obs.tracer import Tracer
from repro.schedulers.base import Prepared, Scheduler
from repro.simulator.simulation import ImmediatePolicy, SimulationConfig


class FuxiScheduler(Scheduler):
    """Balanced task placement with immediate stage submission."""

    name = "fuxi"

    def __init__(
        self,
        track_metrics: bool = True,
        contention_penalty: float = 0.0,
        incremental: bool = True,
        fault_plan=None,
        vector: bool = True,
    ) -> None:
        self._config = SimulationConfig(
            track_metrics=track_metrics,
            contention_penalty=contention_penalty,
            incremental=incremental,
            fault_plan=fault_plan,
            vector=vector,
        )

    def prepare(
        self, job: Job, cluster: ClusterSpec, tracer: "Tracer | None" = None
    ) -> Prepared:
        return Prepared(policy=ImmediatePolicy(), config=self._config)
