"""Stock Spark stage scheduling.

Spark's ``DAGScheduler`` submits a stage as soon as all of its shuffle
inputs are available; parallel stages therefore launch simultaneously
and contend for the network, then for the CPU — the behaviour the
paper's Figs. 5–6 illustrate and DelayStage fixes.
"""

from __future__ import annotations

from repro.cluster.spec import ClusterSpec
from repro.dag.job import Job
from repro.obs.tracer import Tracer
from repro.schedulers.base import Prepared, Scheduler
from repro.simulator.simulation import ImmediatePolicy, SimulationConfig


class StockSparkScheduler(Scheduler):
    """Submit every stage the moment it becomes ready."""

    name = "spark"

    def __init__(
        self,
        track_metrics: bool = True,
        track_occupancy: bool = False,
        fault_plan=None,
        vector: bool = True,
    ) -> None:
        self._config = SimulationConfig(
            track_metrics=track_metrics,
            track_occupancy=track_occupancy,
            fault_plan=fault_plan,
            vector=vector,
        )

    def prepare(
        self, job: Job, cluster: ClusterSpec, tracer: "Tracer | None" = None
    ) -> Prepared:
        return Prepared(policy=ImmediatePolicy(), config=self._config)
