"""AggShuffle baseline (Liu, Wang, Li — ICDCS 2017).

AggShuffle pipelines the shuffle: map outputs are proactively pushed
toward the reduce stage as they are produced, overlapping the child's
network transfer with the parent's computation.  The paper's
evaluation (Sec. 5.2) highlights two limitations our model reproduces:

* the benefit scales with intra-stage task heterogeneity — with
  near-homogeneous tasks (LDA) almost no output exists before the
  stage's final wave completes, so there is nothing to pipeline;
* stages whose shuffle-input/intermediate-data ratio exceeds 1 pay
  extra CPU for the proactive aggregation, and can get *slower*
  (LDA Stage 1, ratio 1.3).

Submission times themselves are stock (no delays) — AggShuffle
optimizes only the network dimension, which is why DelayStage's
multi-resource interleaving still beats it by 4.2 %–17.4 %.
"""

from __future__ import annotations

from repro.cluster.spec import ClusterSpec
from repro.dag.job import Job
from repro.obs.tracer import Tracer
from repro.schedulers.base import Prepared, Scheduler
from repro.simulator.simulation import ImmediatePolicy, SimulationConfig


class AggShuffleScheduler(Scheduler):
    """Immediate submission plus pipelined shuffle transfers."""

    name = "aggshuffle"

    def __init__(
        self,
        cpu_penalty: float = 0.15,
        track_metrics: bool = True,
        track_occupancy: bool = False,
        vector: bool = True,
    ) -> None:
        self._config = SimulationConfig(
            pipelined_shuffle=True,
            aggshuffle_cpu_penalty=cpu_penalty,
            track_metrics=track_metrics,
            track_occupancy=track_occupancy,
            vector=vector,
        )

    def prepare(
        self, job: Job, cluster: ClusterSpec, tracer: "Tracer | None" = None
    ) -> Prepared:
        return Prepared(policy=ImmediatePolicy(), config=self._config)

    def simulation_config(self) -> SimulationConfig:
        return self._config
