"""Trace record types (modeled on the Alibaba v2018 ``batch_task`` table).

A trace *task* corresponds to what Spark and the paper call a *stage*
(the Alibaba DAGs are task-level, each task fanning out into
instances); we use the paper's stage terminology throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceStage:
    """One stage (Alibaba: task) of a traced job.

    ``start_time``/``end_time`` are seconds relative to the trace
    epoch, as recorded by the cluster's scheduler.  The three volume
    fields are the simulation parameters attached by the statistical
    twin generator (absent — zero — when parsed from a real trace,
    which does not publish per-task data volumes; replay then derives
    them from the recorded runtimes).
    """

    stage_id: str
    start_time: float
    end_time: float
    instance_num: int = 1
    input_mb: float = 0.0
    output_mb: float = 0.0
    process_rate_mb: float = 0.0

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def __post_init__(self) -> None:
        if self.end_time < self.start_time:
            raise ValueError(
                f"stage {self.stage_id!r}: end_time {self.end_time} < start_time {self.start_time}"
            )


@dataclass
class TraceJob:
    """One traced job: stages plus their dependency edges."""

    job_id: str
    stages: list[TraceStage]
    edges: list[tuple[str, str]] = field(default_factory=list)
    submit_time: float = 0.0

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def start_time(self) -> float:
        return min(s.start_time for s in self.stages)

    @property
    def end_time(self) -> float:
        return max(s.end_time for s in self.stages)

    @property
    def duration(self) -> float:
        """Job execution time as recorded (first start to last end)."""
        return self.end_time - self.start_time

    def stage(self, stage_id: str) -> TraceStage:
        for s in self.stages:
            if s.stage_id == stage_id:
                return s
        raise KeyError(f"trace job {self.job_id!r} has no stage {stage_id!r}")


@dataclass(frozen=True)
class MachineUsage:
    """One machine's resource-usage sample (Alibaba ``machine_usage``)."""

    machine_id: str
    time_stamp: float
    cpu_util_percent: float
    net_in_percent: float
    net_out_percent: float
    disk_io_percent: float
