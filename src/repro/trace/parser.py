"""Parser for the real Alibaba v2018 ``batch_task.csv`` format.

Each row is
``task_name,instance_num,job_name,task_type,status,start_time,end_time,plan_cpu,plan_mem``.

The DAG is encoded in ``task_name``: a task named ``M3_1_2`` is task 3
and depends on tasks 1 and 2 (the leading letter — M/R/J/… — denotes
the task type and is ignored for structure).  Names like
``task_Nzg3ODcwNDc2MjE2`` are standalone (non-DAG) tasks with no
dependencies; ``MergeTask`` and similar unnumbered names are likewise
treated as independent.
"""

from __future__ import annotations

import csv
import io
import pathlib
import re
from collections import defaultdict
from repro.trace.schema import TraceJob, TraceStage

#: ``M3_1_2`` → numeric id 3, parents [1, 2].
_DAG_NAME = re.compile(r"^[A-Za-z]+(\d+)((?:_\d+)*)$")


def parse_task_name(task_name: str) -> "tuple[int, list[int]] | None":
    """Decode a DAG-encoded task name.

    Returns ``(task_number, parent_numbers)`` or ``None`` for
    independent (non-DAG) task names.
    """
    m = _DAG_NAME.match(task_name)
    if not m:
        return None
    number = int(m.group(1))
    parents = [int(p) for p in m.group(2).split("_") if p]
    return number, parents


def parse_batch_task_csv(
    source: "str | pathlib.Path | io.TextIOBase",
    *,
    statuses: "frozenset[str] | None" = frozenset({"Terminated"}),
    max_jobs: "int | None" = None,
) -> list[TraceJob]:
    """Parse ``batch_task.csv`` rows into :class:`TraceJob` objects.

    Parameters
    ----------
    source:
        Path or open text stream of the CSV (no header row, matching
        the published trace).
    statuses:
        Keep only stages with these statuses (the paper excludes
        incomplete jobs); ``None`` keeps everything.
    max_jobs:
        Stop after this many distinct jobs (the real file has millions
        of rows).

    Jobs with any unparsable or missing timestamps are dropped, as are
    jobs whose dependency references point outside the job (truncated
    trace sections).
    """
    if isinstance(source, (str, pathlib.Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return parse_batch_task_csv(fh, statuses=statuses, max_jobs=max_jobs)

    rows_by_job: dict[str, list[tuple[str, int, float, float]]] = defaultdict(list)
    for row in csv.reader(source):
        if len(row) < 7:
            continue
        task_name, instance_num, job_name, _type, status, start, end = row[:7]
        if statuses is not None and status not in statuses:
            continue
        try:
            start_f, end_f = float(start), float(end)
            instances = int(float(instance_num)) if instance_num else 1
        except ValueError:
            continue
        if end_f <= 0 or start_f <= 0 or end_f < start_f:
            continue  # incomplete record
        rows_by_job[job_name].append((task_name, instances, start_f, end_f))
        if max_jobs is not None and len(rows_by_job) > max_jobs:
            rows_by_job.pop(job_name)
            break

    jobs: list[TraceJob] = []
    for job_name, rows in rows_by_job.items():
        stages: list[TraceStage] = []
        numbers: dict[int, str] = {}
        parents_of: dict[str, list[int]] = {}
        ok = True
        for task_name, instances, start_f, end_f in rows:
            decoded = parse_task_name(task_name)
            sid = task_name
            stages.append(
                TraceStage(
                    stage_id=sid,
                    start_time=start_f,
                    end_time=end_f,
                    instance_num=instances,
                )
            )
            if decoded is not None:
                number, parents = decoded
                if number in numbers:
                    ok = False  # duplicate task number within a job
                    break
                numbers[number] = sid
                parents_of[sid] = parents
        if not ok or not stages:
            continue
        edges: list[tuple[str, str]] = []
        for sid, parents in parents_of.items():
            for p in parents:
                if p not in numbers:
                    ok = False
                    break
                edges.append((numbers[p], sid))
            if not ok:
                break
        if not ok:
            continue
        jobs.append(TraceJob(job_id=job_name, stages=stages, edges=edges))
    return jobs
