"""Export trace jobs in the Alibaba ``batch_task.csv`` format.

The statistical twin can be materialized as a CSV that the
:mod:`repro.trace.parser` (or any tooling written for the real trace)
reads back — useful for interoperating with external trace-analysis
pipelines and for round-trip testing the parser.

DAG structure is encoded in task names exactly as the real trace does:
task ``k`` with parents ``i, j`` becomes ``M<k>_<i>_<j>``.  Stages of
non-DAG (chain-free single) jobs keep opaque ``task_<id>`` names.
"""

from __future__ import annotations

import io
import pathlib
from typing import Iterable

from repro.dag.graph import topological_order
from repro.trace.replay import to_job
from repro.trace.schema import TraceJob


def _dag_task_names(job: TraceJob) -> dict[str, str]:
    """Assign trace-style task names encoding the dependency numbers."""
    sim_job = to_job(job)
    order = topological_order(sim_job)
    numbers = {sid: i + 1 for i, sid in enumerate(order)}
    names = {}
    for sid in order:
        parents = sorted(numbers[p] for p in sim_job.parents(sid))
        suffix = "".join(f"_{p}" for p in parents)
        names[sid] = f"M{numbers[sid]}{suffix}"
    return names


def export_batch_task_csv(
    jobs: Iterable[TraceJob],
    destination: "str | pathlib.Path | io.TextIOBase",
) -> int:
    """Write jobs as ``batch_task.csv`` rows; returns the row count.

    Columns: ``task_name, instance_num, job_name, task_type, status,
    start_time, end_time, plan_cpu, plan_mem`` (the real trace's
    layout).  All stages are exported as ``Terminated``.
    """
    if isinstance(destination, (str, pathlib.Path)):
        with open(destination, "w", encoding="utf-8") as fh:
            return export_batch_task_csv(jobs, fh)

    rows = 0
    for job in jobs:
        names = _dag_task_names(job) if job.edges else {}
        for stage in job.stages:
            task_name = names.get(stage.stage_id, f"task_{job.job_id}_{stage.stage_id}")
            destination.write(
                f"{task_name},{stage.instance_num},{job.job_id},J,Terminated,"
                f"{stage.start_time:.0f},{stage.end_time:.0f},100,0.5\n"
            )
            rows += 1
    return rows
