"""Trace statistics behind the paper's Figs. 2–4 and Sec. 2.1 claims."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.graph import parallel_stage_set
from repro.trace.replay import to_job
from repro.trace.schema import TraceJob


@dataclass(frozen=True)
class StageCountSummary:
    """Per-job stage counts and aggregate parallel-stage statistics."""

    stages_per_job: np.ndarray
    parallel_per_job: np.ndarray
    fraction_jobs_with_parallel: float
    parallel_stage_fraction: float

    @property
    def total_stages(self) -> int:
        return int(self.stages_per_job.sum())

    @property
    def total_parallel(self) -> int:
        return int(self.parallel_per_job.sum())


def _parallel_count(job: TraceJob) -> int:
    """Number of parallel stages in a trace job (paper definition)."""
    return len(parallel_stage_set(to_job(job)))


def stage_count_summary(jobs: "list[TraceJob]") -> StageCountSummary:
    """Fig. 2 inputs: stage and parallel-stage counts per job.

    Also yields Sec. 2.1's headline aggregates: the fraction of jobs
    containing parallel stages (paper: 68.6 %) and the fraction of all
    stages that are parallel (paper: 79.1 %).
    """
    stages = np.array([j.num_stages for j in jobs], dtype=int)
    parallel = np.array([_parallel_count(j) for j in jobs], dtype=int)
    with_parallel = float(np.mean(parallel > 0)) if len(jobs) else 0.0
    frac = float(parallel.sum() / stages.sum()) if stages.sum() else 0.0
    return StageCountSummary(stages, parallel, with_parallel, frac)


def job_parallel_fraction(jobs: "list[TraceJob]") -> float:
    """Fraction of jobs containing at least one parallel stage."""
    if not jobs:
        return 0.0
    return float(np.mean([_parallel_count(j) > 0 for j in jobs]))


def parallel_makespan_fraction(job: TraceJob) -> float:
    """Fig. 3 quantity: parallel-stage makespan over job duration.

    The makespan of parallel stages is the span from the earliest start
    to the latest end among the job's parallel stages, per the recorded
    trace timestamps.  Returns 0 for jobs without parallel stages.
    """
    members = parallel_stage_set(to_job(job))
    if not members:
        return 0.0
    starts = [s.start_time for s in job.stages if s.stage_id in members]
    ends = [s.end_time for s in job.stages if s.stage_id in members]
    duration = job.duration
    if duration <= 0:
        return 0.0
    return (max(ends) - min(starts)) / duration


def stage_runtime_range(jobs: "list[TraceJob]") -> tuple[float, float, np.ndarray]:
    """Stage-duration spread: (p01, p99, all durations).

    The paper reports stage runtimes "mostly spanning 10 to 3,000
    seconds"; the percentile pair quantifies "mostly".
    """
    durations = np.array([s.duration for j in jobs for s in j.stages])
    if durations.size == 0:
        return 0.0, 0.0, durations
    return float(np.percentile(durations, 1)), float(np.percentile(durations, 99)), durations


def machine_low_utilization_fraction(series: np.ndarray, threshold: float = 10.0) -> float:
    """Fraction of samples below ``threshold`` percent (Sec. 2.1's
    "below 10 % for ~39.1 % of the time" for one worker).

    Delegates to :func:`repro.obs.metrics.fraction_below` (the lowest
    utilization band of the report layer), which is bit-identical to
    ``np.mean(series < threshold)`` — one formula, two entry points.
    """
    from repro.obs.metrics import fraction_below

    return fraction_below(series, threshold)
