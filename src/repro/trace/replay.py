"""Convert trace jobs into simulatable jobs.

The Fig. 14 / Table 4 experiments replay trace jobs through the fluid
simulator under the Fuxi baseline and the three DelayStage variants.
``to_job`` builds a :class:`~repro.dag.job.Job` from a
:class:`~repro.trace.schema.TraceJob`, using the volumes the
statistical twin attached — or, for real-trace jobs without volumes,
inverting the recorded stage durations the same way the twin does.
"""

from __future__ import annotations

from repro.dag.job import Job
from repro.dag.stage import Stage
from repro.trace.generator import TraceGeneratorConfig
from repro.trace.schema import TraceJob, TraceStage
from repro.util.units import MB


def _derive_volumes(stage: TraceStage, cfg: TraceGeneratorConfig) -> tuple[float, float, float]:
    """Volumes for a real-trace stage lacking them: split the recorded
    duration 40/55/5 into read/compute/write at nominal replay rates."""
    duration = max(stage.duration, 1.0)
    w = cfg.replay_workers
    input_mb = duration * 0.40 * cfg.replay_read_mb_per_sec * w
    per_worker_mb = input_mb / w
    rate = per_worker_mb / (cfg.replay_cores * duration * 0.55)
    output_mb = duration * 0.05 * cfg.replay_write_mb_per_sec * w
    return input_mb, output_mb, rate


def to_job(
    trace_job: TraceJob,
    config: "TraceGeneratorConfig | None" = None,
) -> Job:
    """Build a simulatable job from a trace record."""
    cfg = config or TraceGeneratorConfig()
    stages = []
    for ts in trace_job.stages:
        if ts.input_mb > 0 and ts.process_rate_mb > 0:
            input_mb, output_mb, rate = ts.input_mb, ts.output_mb, ts.process_rate_mb
        else:
            input_mb, output_mb, rate = _derive_volumes(ts, cfg)
        stages.append(
            Stage(
                stage_id=ts.stage_id,
                input_bytes=input_mb * MB,
                output_bytes=output_mb * MB,
                process_rate=rate * MB,
                num_tasks=max(ts.instance_num, 1),
                task_cv=0.4,
            )
        )
    return Job(trace_job.job_id, stages, trace_job.edges)
