"""Alibaba cluster-trace substrate.

The paper's motivation (Figs. 2–4) and large-scale evaluation
(Figs. 14–15, Table 4) are driven by the Alibaba cluster trace v2018:
2,775,025 production jobs on 4,000 machines over 8 days.  The trace is
proprietary-download-only, so this package provides both:

* :mod:`repro.trace.parser` — a parser for the real ``batch_task.csv``
  format (task-name-encoded DAGs), usable if a trace copy is present;
* :mod:`repro.trace.generator` — a statistical twin that reproduces
  every published statistic the paper relies on (fraction of jobs with
  parallel stages, parallel-stage share, stage-count and stage-runtime
  distributions, parallel-makespan fraction, machine utilization
  bands), which the test suite asserts.

:mod:`repro.trace.analysis` computes the Fig. 2/3/4 statistics from
either source, and :mod:`repro.trace.replay` converts trace jobs into
simulatable :class:`~repro.dag.job.Job` objects for the Fig. 14 /
Table 4 scheduler comparison.
"""

from repro.trace.schema import TraceJob, TraceStage, MachineUsage
from repro.trace.parser import parse_batch_task_csv, parse_task_name
from repro.trace.generator import TraceGeneratorConfig, generate_trace, generate_machine_usage
from repro.trace.analysis import (
    job_parallel_fraction,
    parallel_makespan_fraction,
    stage_count_summary,
    stage_runtime_range,
)
from repro.trace.export import export_batch_task_csv
from repro.trace.replay import to_job

__all__ = [
    "TraceStage",
    "TraceJob",
    "MachineUsage",
    "parse_batch_task_csv",
    "parse_task_name",
    "TraceGeneratorConfig",
    "generate_trace",
    "generate_machine_usage",
    "stage_count_summary",
    "job_parallel_fraction",
    "parallel_makespan_fraction",
    "stage_runtime_range",
    "to_job",
    "export_batch_task_csv",
]
