"""Statistical twin of the Alibaba cluster trace v2018.

The real trace is not redistributable, so experiments are driven by a
synthetic trace engineered to match every statistic of the trace the
paper measures or relies on:

* 2,775,025 jobs over 8 days on 4,000 machines (scaled down by
  ``num_jobs`` — experiments sample anyway);
* 68.6 % of jobs contain parallel stages (Sec. 2.1);
* parallel stages ≈ 79.1 % of all stages (Sec. 2.1, Fig. 2);
* ~90 % of jobs have fewer than 15 parallel stages (Sec. 4.1);
* job stage counts reaching 4–186 for DAG jobs (Sec. 5.3);
* stage runtimes mostly within 10–3,000 s (Sec. 2.1);
* the parallel-stage makespan exceeds 60 % of the job duration for
  over 80 % of jobs, with mean 82.3 % (Fig. 3);
* machine CPU utilization averaging 20–50 % and network utilization
  30–45 %, with a single machine fluctuating between idle and ~98 %
  busy and spending ~39 % of time below 10 % CPU (Fig. 4).

The generator also attaches per-stage volumes and processing rates so
generated jobs can be *replayed* through the simulator for the
Fig. 14 / Table 4 scheduler comparison; volumes are sized so each
stage's standalone runtime on the reference replay cluster roughly
matches its recorded trace runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.schema import TraceJob, TraceStage
from repro.util.rng import resolve_rng


@dataclass(frozen=True)
class TraceGeneratorConfig:
    """Knobs of the statistical twin.

    Defaults reproduce the published statistics; tests assert the
    resulting marginals, so change them deliberately.
    """

    num_jobs: int = 1000
    span_seconds: float = 8 * 24 * 3600.0  # the trace's 8 days
    fraction_parallel_jobs: float = 0.686
    #: Chain (non-parallel) jobs: 1 + geometric stage count.
    chain_geom_p: float = 0.45
    #: Parallel jobs: 4 + lognormal stage count, clipped to 186 total.
    dag_size_mu: float = 1.2
    dag_size_sigma: float = 0.85
    max_stages: int = 186
    #: Fraction of parallel jobs drawn from a wide uniform tail,
    #: giving the 50–186-stage giants of Sec. 5.3 / Fig. 15.
    giant_fraction: float = 0.02
    #: Stage-duration lognormal (seconds), clipped to [10, 3000].
    duration_mu: float = 3.9
    duration_sigma: float = 1.3
    #: Head/tail (sequential) stages use durations scaled by this, so
    #: the parallel makespan dominates as in Fig. 3.
    sequential_duration_scale: float = 0.30
    #: Replay-cluster nominal rates used to invert durations to volumes.
    replay_workers: int = 8
    replay_cores: int = 4
    replay_read_mb_per_sec: float = 115.0
    replay_write_mb_per_sec: float = 80.0


def _chain_job(
    job_id: str, n: int, t0: float, cfg: TraceGeneratorConfig, gen: np.random.Generator
) -> TraceJob:
    """A purely sequential job (no parallel stages)."""
    stages, edges = [], []
    clock = t0
    prev = None
    for i in range(n):
        d = _duration(cfg, gen)
        sid = f"S{i + 1}"
        stages.append(_stage(sid, clock, d, cfg, gen))
        if prev is not None:
            edges.append((prev, sid))
        prev = sid
        clock += d
    return TraceJob(job_id, stages, edges, submit_time=t0)


def _dag_job(
    job_id: str, n: int, t0: float, cfg: TraceGeneratorConfig, gen: np.random.Generator
) -> TraceJob:
    """A job with parallel branches: optional head, B branches, tail."""
    head = 1 if (n >= 5 and gen.random() < 0.25) else 0
    tail = int(gen.integers(1, 3)) if (n - head >= 8 and gen.random() < 0.3) else 1
    tail = min(tail, max(n - head - 2, 1))
    middle = n - head - tail
    # Few, deep branches: execution paths of two or more stages give the
    # read/compute alternation that resource interleaving exploits (and
    # that real per-branch map→reduce chains exhibit).
    branches = 2 + int(gen.poisson(1.2))
    branches = max(2, min(branches, 8, middle // 2 if middle >= 4 else middle))

    stages: list[TraceStage] = []
    edges: list[tuple[str, str]] = []
    idx = 0

    def new_id() -> str:
        nonlocal idx
        idx += 1
        return f"S{idx}"

    head_id = None
    head_end = t0
    if head:
        d = _duration(cfg, gen) * cfg.sequential_duration_scale
        head_id = new_id()
        stages.append(_stage(head_id, t0, d, cfg, gen))
        head_end = t0 + d

    # Distribute middle stages round-robin over the branches.  Stages at
    # the same depth across branches are near-identical: production
    # fan-outs shard one operation into symmetric parallel stages, which
    # is exactly what synchronizes their resource phases under naive
    # scheduling (Sec. 2.1).
    per_branch: list[list[str]] = [[] for _ in range(branches)]
    branch_clock = [head_end] * branches
    depth_duration: dict[int, float] = {}
    depth_shares: dict[int, tuple[float, float]] = {}
    for i in range(middle):
        b = i % branches
        depth = i // branches
        if depth not in depth_duration:
            depth_duration[depth] = _duration(cfg, gen)
            depth_shares[depth] = (
                float(gen.uniform(0.38, 0.58)),
                float(gen.uniform(0.02, 0.10)),
            )
        d = depth_duration[depth] * float(gen.uniform(0.9, 1.1))
        sid = new_id()
        stages.append(_stage(sid, branch_clock[b], d, cfg, gen, shares=depth_shares[depth]))
        if per_branch[b]:
            edges.append((per_branch[b][-1], sid))
        elif head_id is not None:
            edges.append((head_id, sid))
        per_branch[b].append(sid)
        branch_clock[b] += d

    join_time = max(branch_clock)
    prev_tail = None
    clock = join_time
    for _ in range(tail):
        d = _duration(cfg, gen) * cfg.sequential_duration_scale
        sid = new_id()
        stages.append(_stage(sid, clock, d, cfg, gen))
        if prev_tail is None:
            for branch in per_branch:
                if branch:
                    edges.append((branch[-1], sid))
        else:
            edges.append((prev_tail, sid))
        prev_tail = sid
        clock += d

    return TraceJob(job_id, stages, edges, submit_time=t0)


def _duration(cfg: TraceGeneratorConfig, gen: np.random.Generator) -> float:
    return float(np.clip(gen.lognormal(cfg.duration_mu, cfg.duration_sigma), 10.0, 3000.0))


def _stage(
    sid: str,
    start: float,
    duration: float,
    cfg: TraceGeneratorConfig,
    gen: np.random.Generator,
    shares: "tuple[float, float] | None" = None,
) -> TraceStage:
    """Build a stage record with volumes inverting the duration.

    The duration is split into read / compute / write shares and each
    share is converted to a volume using the replay cluster's nominal
    rates, so a standalone run of the replayed stage approximates the
    recorded runtime.  ``shares`` fixes the (read, write) split — used
    to keep same-depth sibling stages symmetric.
    """
    if shares is not None:
        read_share, write_share = shares
    else:
        read_share = float(gen.uniform(0.25, 0.55))
        write_share = float(gen.uniform(0.02, 0.10))
    compute_share = 1.0 - read_share - write_share

    w = cfg.replay_workers
    input_mb = duration * read_share * cfg.replay_read_mb_per_sec * w / max(w - 1, 1) * (w - 1)
    # Per-worker compute time = (input / w) / (cores * R)  =>  R:
    per_worker_mb = input_mb / w
    rate = per_worker_mb / (cfg.replay_cores * duration * compute_share)
    output_mb = duration * write_share * cfg.replay_write_mb_per_sec * w

    return TraceStage(
        stage_id=sid,
        start_time=start,
        end_time=start + duration,
        instance_num=int(gen.integers(1, 256)),
        input_mb=max(input_mb, 1.0),
        output_mb=max(output_mb, 1.0),
        process_rate_mb=max(rate, 0.05),
    )


def generate_trace(
    config: "TraceGeneratorConfig | None" = None,
    rng: "int | np.random.Generator | None" = 0,
) -> list[TraceJob]:
    """Generate the synthetic trace (list of jobs with DAGs and times)."""
    cfg = config or TraceGeneratorConfig()
    gen = resolve_rng(rng)
    jobs: list[TraceJob] = []
    arrivals = np.sort(gen.uniform(0.0, cfg.span_seconds, size=cfg.num_jobs))
    for i in range(cfg.num_jobs):
        job_id = f"j{i}"
        t0 = float(arrivals[i])
        if gen.random() < cfg.fraction_parallel_jobs:
            if gen.random() < cfg.giant_fraction:
                lo = min(50, max(cfg.max_stages - 1, 4))
                n = int(gen.integers(lo, cfg.max_stages + 1))
            else:
                n = 4 + int(gen.lognormal(cfg.dag_size_mu, cfg.dag_size_sigma))
            n = min(n, cfg.max_stages)
            jobs.append(_dag_job(job_id, n, t0, cfg, gen))
        else:
            n = 1 + int(gen.geometric(cfg.chain_geom_p))
            jobs.append(_chain_job(job_id, min(n, cfg.max_stages), t0, cfg, gen))
    return jobs


def open_loop_arrivals(
    config: "TraceGeneratorConfig | None" = None,
    rng: "int | np.random.Generator | None" = 0,
    *,
    rate_jobs_per_s: float = 0.05,
    num_jobs: "int | None" = None,
    start: float = 0.0,
) -> "list[tuple[float, TraceJob]]":
    """Sample an open-loop submission schedule from the trace twin.

    Draws jobs from :func:`generate_trace` and re-times them as a
    Poisson arrival process at ``rate_jobs_per_s`` — the streaming
    analogue of the batch replay: inter-arrival gaps are exponential
    with mean ``1 / rate``, independent of job size and of how busy
    the service is (arrivals never back off, which is what makes
    overload reachable and load shedding observable).  Cranking the
    rate 10×/100× past the service rate is exactly the overload knob
    the service load tests turn.

    Returns ``[(submit_t, trace_job), ...]`` sorted by time; pair with
    :func:`repro.trace.replay.to_job` to get simulatable DAGs.  The
    schedule is a pure function of ``(config, rng, rate, num_jobs,
    start)`` — same seed, same schedule — so a service run and its
    offline replay see byte-identical jobs.
    """
    if rate_jobs_per_s <= 0:
        raise ValueError(
            f"rate_jobs_per_s must be positive, got {rate_jobs_per_s}"
        )
    cfg = config or TraceGeneratorConfig()
    n = cfg.num_jobs if num_jobs is None else int(num_jobs)
    if n < 0:
        raise ValueError(f"num_jobs must be >= 0, got {n}")
    if n > cfg.num_jobs:
        cfg = TraceGeneratorConfig(**{**cfg.__dict__, "num_jobs": n})
    gen = resolve_rng(rng)
    jobs = generate_trace(cfg, gen)[:n]
    gaps = gen.exponential(1.0 / rate_jobs_per_s, size=n)
    t = float(start)
    schedule: "list[tuple[float, TraceJob]]" = []
    for job, gap in zip(jobs, gaps):
        t += float(gap)
        schedule.append((t, job))
    return schedule


def generate_machine_usage(
    num_machines: int = 100,
    span_seconds: float = 8 * 24 * 3600.0,
    step_seconds: float = 300.0,
    rng: "int | np.random.Generator | None" = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthesize per-machine CPU and network utilization series.

    Returns ``(timestamps, cpu, net)`` where ``cpu`` and ``net`` are
    ``(num_machines, num_steps)`` arrays in percent.  Machines
    alternate between busy bursts (~40–98 % CPU) and idle troughs
    (< 10 %), modulated by a diurnal cycle; averaging across machines
    lands in the paper's 20–50 % CPU / 30–45 % network bands while a
    single machine shows the full-idle-to-full-busy swings of
    Fig. 4(b).
    """
    gen = resolve_rng(rng)
    steps = int(span_seconds // step_seconds)
    t = np.arange(steps) * step_seconds
    diurnal = 0.5 + 0.5 * np.sin(2 * np.pi * t / 86400.0 - np.pi / 2)  # 0..1, peak midday

    cpu = np.empty((num_machines, steps))
    net = np.empty((num_machines, steps))
    for m in range(num_machines):
        busy_level = float(gen.uniform(50.0, 95.0))
        idle_level = float(gen.uniform(0.0, 8.0))
        # Alternate busy/idle periods with exponential lengths; busier
        # around midday via the diurnal weight.
        state = gen.random() < 0.4
        i = 0
        busy_mask = np.zeros(steps, dtype=bool)
        while i < steps:
            mean_len = 7.0 if state else 5.0
            length = max(1, int(gen.exponential(mean_len)))
            busy_mask[i : i + length] = state
            i += length
            p_busy = 0.30 + 0.30 * diurnal[min(i, steps - 1)]
            state = gen.random() < p_busy
        noise = gen.normal(0.0, 4.0, size=steps)
        cpu[m] = np.clip(np.where(busy_mask, busy_level, idle_level) + noise, 0.0, 100.0)
        # Network tracks CPU bursts loosely (shuffle-heavy periods) with
        # its own base so cluster averages land in the 30-45% band.
        net_busy = float(gen.uniform(42.0, 62.0))
        net_idle = float(gen.uniform(10.0, 25.0))
        net[m] = np.clip(
            np.where(busy_mask, net_busy, net_idle) + gen.normal(0.0, 5.0, size=steps),
            0.0,
            100.0,
        )
    return t, cpu, net
