"""Random DAG-style job generation.

Produces jobs with controllable shape for property-based tests and
sweeps: a layered DAG where each non-root stage draws 1–``max_fanin``
parents from earlier layers.  Volumes and rates are drawn lognormally
around configurable medians, giving the heavy-tailed stage-time mix
seen in production traces.
"""

from __future__ import annotations

import numpy as np

from repro.dag.job import Job
from repro.dag.stage import Stage
from repro.util.rng import resolve_rng
from repro.util.units import MB
from repro.util.validation import check_positive


def random_job(
    num_stages: int,
    *,
    job_id: str = "synthetic",
    max_fanin: int = 3,
    parallelism: float = 0.5,
    median_input_mb: float = 2048.0,
    median_rate_mb: float = 2.0,
    volume_sigma: float = 0.6,
    rng: "int | np.random.Generator | None" = None,
) -> Job:
    """Generate a random job with ``num_stages`` stages.

    Parameters
    ----------
    parallelism:
        In [0, 1]: probability that a new stage starts a fresh branch
        (root or attaching high in the DAG) rather than chaining off the
        most recent stage.  0 yields a pure chain (no parallel stages),
        1 yields a star of roots feeding a sink.
    max_fanin:
        Maximum number of parents per non-root stage.
    """
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    if not (0.0 <= parallelism <= 1.0):
        raise ValueError("parallelism must be in [0, 1]")
    check_positive(median_input_mb, "median_input_mb")
    check_positive(median_rate_mb, "median_rate_mb")
    gen = resolve_rng(rng)

    stages: list[Stage] = []
    edges: list[tuple[str, str]] = []
    for i in range(num_stages):
        sid = f"S{i + 1}"
        input_mb = median_input_mb * float(gen.lognormal(0.0, volume_sigma))
        output_mb = input_mb * float(gen.uniform(0.3, 1.1))
        rate = median_rate_mb * float(gen.lognormal(0.0, volume_sigma / 2))
        stages.append(
            Stage(
                stage_id=sid,
                input_bytes=input_mb * MB,
                output_bytes=output_mb * MB,
                process_rate=rate * MB,
                num_tasks=int(gen.integers(32, 256)),
                task_cv=float(gen.uniform(0.0, 0.8)),
            )
        )
        if i == 0:
            continue
        if gen.random() < parallelism:
            # Fresh branch: with probability 1/2 a new root, otherwise
            # attach to one random earlier stage.
            if gen.random() < 0.5:
                continue
            parent = int(gen.integers(0, i))
            edges.append((f"S{parent + 1}", sid))
        else:
            # Chain off the most recent stage; with branching enabled,
            # possibly join in additional earlier parents.
            parents = {i - 1}
            if parallelism > 0 and i >= 2:
                extra = int(gen.integers(0, max_fanin))
                parents.update(
                    int(p) for p in gen.choice(i, size=min(extra, i), replace=False)
                )
            for p in sorted(parents):
                edges.append((f"S{p + 1}", sid))

    return Job(job_id, stages, edges)
