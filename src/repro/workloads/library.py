"""The paper's benchmark workloads (Table 2, Figs. 1/11/16).

Each constructor returns a :class:`~repro.dag.job.Job` whose DAG shape
matches what the paper reports:

* **ALS** (Fig. 1, 6 stages): Stages 1–3 are parallel roots; Stage 4
  joins 1+2 (parallel with 3); Stage 5 joins 3+4; Stage 6 is final.
  The paper delays Stages 2 and 3 in its motivation example (Fig. 6).
* **ConnectedComponents** (5 stages): Stage 1 runs parallel to the
  long path Stage 2 → Stage 3; Stages 4–5 are sequential and dominate
  ~55 % of the completion time — which is why the paper measures its
  smallest gain (−17.5 %) here.
* **CosineSimilarity** (5 stages): execution paths {S1}, {S2},
  {S3 → S4}; Stage 5 joins everything.  DelayStage delays Stages 1–2
  (the paper delays Stage 1 by ≈110 s).
* **LDA** (5 stages): execution paths {S1}, {S2 → S3}, {S4}; Stage 5
  is blocked by all of them.  Tasks are near-homogeneous (tiny
  ``task_cv``, one task wave) and Stage 3's shuffle input is 1.3× its
  parent's intermediate data — the two properties that make AggShuffle
  ineffective or harmful on LDA (Sec. 5.2).
* **TriangleCount** (11 stages): nine parallel stages in four
  execution paths — {S2,S4,S5,S9}, {S8,S9}, {S1,S6}, {S3,S7} — feeding
  the sequential tail S10 → S11; the widest parallel-stage set and the
  biggest DelayStage win (−41.3 % in the paper).

Exact per-stage data volumes and processing rates are not published;
they are calibrated against the paper's Fig. 10 stock-Spark completion
times on the default 30-node EC2 cluster (see EXPERIMENTS.md for the
resulting numbers).  The calibration follows the structure the paper's
timelines show: parallel root stages read comparable input volumes
simultaneously (synchronizing their compute starts under stock Spark),
mid-path stages have shuffle-read and compute phases of similar length
(so resource interleaving has room to work), and graph workloads carry
skewed task durations while LDA's are uniform.  ``scale`` multiplies
all data volumes for dataset-size sweeps.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.dag.builder import JobBuilder
from repro.dag.job import Job
from repro.util.validation import check_positive

#: Megabytes per gigabyte, to keep the volume tables readable.
_G = 1024.0


def als(scale: float = 1.0) -> Job:
    """ALS (Spark MLlib, 6 stages) — the paper's running example.

    Sized for the 3 GB-input, three-node motivation setup of
    Figs. 5–6 (workers co-host the input data; reads hit peer NICs at
    ~50 MB/s as in Fig. 5); pass ``scale`` to grow it.
    """
    check_positive(scale, "scale")
    g = _G * scale * 0.56
    return (
        JobBuilder("als")
        .stage("S1", input_mb=4.0 * g, output_mb=3.0 * g, process_rate_mb=38, num_tasks=24, task_cv=0.3)
        .stage("S2", input_mb=3.2 * g, output_mb=2.4 * g, process_rate_mb=38, num_tasks=24, task_cv=0.3)
        .stage("S3", input_mb=4.4 * g, output_mb=3.4 * g, process_rate_mb=38, num_tasks=24, task_cv=0.3)
        .stage("S4", input_mb=5.4 * g, output_mb=3.2 * g, process_rate_mb=38, num_tasks=24, task_cv=0.3,
               parents=["S1", "S2"])
        .stage("S5", input_mb=6.0 * g, output_mb=2.0 * g, process_rate_mb=38, num_tasks=24, task_cv=0.3,
               parents=["S3", "S4"])
        .stage("S6", input_mb=2.0 * g, output_mb=0.4 * g, process_rate_mb=38, num_tasks=24, task_cv=0.3,
               parents=["S5"])
        .build()
    )


def connected_components(scale: float = 1.0) -> Job:
    """ConnectedComponents (Spark GraphX, 5 stages, 10 GB input)."""
    check_positive(scale, "scale")
    g = _G * scale * 0.75
    return (
        JobBuilder("connectedcomponents")
        .stage("S1", input_mb=15.0 * g, output_mb=25.0 * g, process_rate_mb=1.9, num_tasks=240, task_cv=0.5)
        .stage("S2", input_mb=15.0 * g, output_mb=40.0 * g, process_rate_mb=2.0, num_tasks=240, task_cv=0.5)
        .stage("S3", input_mb=40.0 * g, output_mb=30.0 * g, process_rate_mb=5.3, num_tasks=240, task_cv=0.5,
               parents=["S2"])
        .stage("S4", input_mb=45.0 * g, output_mb=20.0 * g, process_rate_mb=8.0, num_tasks=240, task_cv=0.5,
               parents=["S1", "S3"])
        .stage("S5", input_mb=20.0 * g, output_mb=2.0 * g, process_rate_mb=5.0, num_tasks=240, task_cv=0.5,
               parents=["S4"])
        .build()
    )


def cosine_similarity(scale: float = 1.0) -> Job:
    """CosineSimilarity (Spark MLlib, 5 stages, 30 GB input).

    The all-pairs similarity computation inflates intermediate data far
    beyond the input size, giving the long shuffle phases visible in
    the paper's Figs. 11–13.
    """
    check_positive(scale, "scale")
    g = _G * scale * 0.76
    return (
        JobBuilder("cosinesimilarity")
        .stage("S1", input_mb=13.0 * g, output_mb=30.0 * g, process_rate_mb=2.0, num_tasks=240, task_cv=0.4)
        .stage("S2", input_mb=13.0 * g, output_mb=25.0 * g, process_rate_mb=2.4, num_tasks=240, task_cv=0.4)
        .stage("S3", input_mb=22.0 * g, output_mb=250.0 * g, process_rate_mb=2.8, num_tasks=240, task_cv=0.4)
        .stage("S4", input_mb=250.0 * g, output_mb=40.0 * g, process_rate_mb=29.0, num_tasks=240, task_cv=0.4,
               parents=["S3"])
        .stage("S5", input_mb=95.0 * g, output_mb=2.0 * g, process_rate_mb=25.0, num_tasks=240, task_cv=0.4,
               parents=["S1", "S2", "S4"])
        .build()
    )


def lda(scale: float = 1.0) -> Job:
    """LDA (Spark MLlib, 5 stages, 140 M Wikipedia documents).

    Near-homogeneous single-wave tasks (``task_cv`` ≈ 0) and Stage 3's
    1.3 shuffle-input/intermediate-data ratio reproduce the paper's
    AggShuffle pathologies.
    """
    check_positive(scale, "scale")
    g = _G * scale
    return (
        JobBuilder("lda")
        .stage("S1", input_mb=6.0 * g, output_mb=8.0 * g, process_rate_mb=2.2, num_tasks=60, task_cv=0.03)
        .stage("S2", input_mb=6.0 * g, output_mb=10.0 * g, process_rate_mb=2.2, num_tasks=60, task_cv=0.03)
        .stage("S3", input_mb=13.0 * g, output_mb=12.0 * g, process_rate_mb=7.0, num_tasks=60, task_cv=0.03,
               parents=["S2"])
        .stage("S4", input_mb=6.0 * g, output_mb=14.0 * g, process_rate_mb=1.5, num_tasks=60, task_cv=0.03)
        .stage("S5", input_mb=34.0 * g, output_mb=2.0 * g, process_rate_mb=10.0, num_tasks=60, task_cv=0.03,
               parents=["S1", "S3", "S4"])
        .build()
    )


def triangle_count(scale: float = 1.0) -> Job:
    """TriangleCount (Spark GraphX, 11 stages, 100 M connections).

    Triangle enumeration explodes intermediate data (neighborhood
    joins), producing the long shuffle reads that make its nine
    parallel stages the paper's best case for resource interleaving.
    """
    check_positive(scale, "scale")
    g = _G * scale * 0.62
    return (
        JobBuilder("trianglecount")
        .stage("S1", input_mb=12.0 * g, output_mb=60.0 * g, process_rate_mb=2.4, num_tasks=240, task_cv=0.6)
        .stage("S2", input_mb=12.0 * g, output_mb=70.0 * g, process_rate_mb=2.4, num_tasks=240, task_cv=0.6)
        .stage("S3", input_mb=12.0 * g, output_mb=60.0 * g, process_rate_mb=2.4, num_tasks=240, task_cv=0.6)
        .stage("S4", input_mb=70.0 * g, output_mb=70.0 * g, process_rate_mb=14.0, num_tasks=240, task_cv=0.6,
               parents=["S2"])
        .stage("S5", input_mb=70.0 * g, output_mb=70.0 * g, process_rate_mb=14.0, num_tasks=240, task_cv=0.6,
               parents=["S4"])
        .stage("S6", input_mb=60.0 * g, output_mb=50.0 * g, process_rate_mb=12.0, num_tasks=240, task_cv=0.6,
               parents=["S1"])
        .stage("S7", input_mb=60.0 * g, output_mb=50.0 * g, process_rate_mb=12.0, num_tasks=240, task_cv=0.6,
               parents=["S3"])
        .stage("S8", input_mb=12.0 * g, output_mb=70.0 * g, process_rate_mb=2.4, num_tasks=240, task_cv=0.6)
        .stage("S9", input_mb=140.0 * g, output_mb=40.0 * g, process_rate_mb=28.0, num_tasks=240, task_cv=0.6,
               parents=["S5", "S8"])
        .stage("S10", input_mb=40.0 * g, output_mb=10.0 * g, process_rate_mb=20.0, num_tasks=240, task_cv=0.6,
               parents=["S6", "S7", "S9"])
        .stage("S11", input_mb=10.0 * g, output_mb=1.0 * g, process_rate_mb=10.0, num_tasks=240, task_cv=0.6,
               parents=["S10"])
        .build()
    )


def pagerank(iterations: int = 4, scale: float = 1.0) -> Job:
    """PageRank (bonus workload, not in the paper's evaluation).

    An iterative graph job unrolled into a chain of contribution/update
    stages plus a final rank stage.  Its DAG is chain-heavy — a useful
    *contrast* workload: DelayStage's room shrinks as sequential
    structure grows, the effect the paper observes on
    ConnectedComponents taken further.
    """
    check_positive(scale, "scale")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    g = _G * scale
    builder = JobBuilder("pagerank")
    builder.stage("load", input_mb=8.0 * g, output_mb=12.0 * g,
                  process_rate_mb=4.0, num_tasks=240, task_cv=0.4)
    prev = "load"
    for i in range(1, iterations + 1):
        contrib = f"contrib{i}"
        update = f"update{i}"
        builder.stage(contrib, input_mb=12.0 * g, output_mb=10.0 * g,
                      process_rate_mb=6.0, num_tasks=240, task_cv=0.4,
                      parents=[prev])
        builder.stage(update, input_mb=10.0 * g, output_mb=12.0 * g,
                      process_rate_mb=8.0, num_tasks=240, task_cv=0.4,
                      parents=[contrib])
        prev = update
    builder.stage("rank", input_mb=12.0 * g, output_mb=1.0 * g,
                  process_rate_mb=10.0, num_tasks=240, task_cv=0.4,
                  parents=[prev])
    return builder.build()


def star_join(num_dimensions: int = 4, scale: float = 1.0) -> Job:
    """Star-schema join (bonus workload, not in the paper's evaluation).

    A SQL-style star join: one fact-table scan plus ``num_dimensions``
    dimension scans run in parallel, each followed by a hash-build
    stage, all feeding the probe/join stage.  Wide, balanced
    parallelism — the structure DelayStage likes most.
    """
    check_positive(scale, "scale")
    if num_dimensions < 2:
        raise ValueError("num_dimensions must be >= 2")
    g = _G * scale
    builder = JobBuilder("starjoin")
    builder.stage("fact", input_mb=20.0 * g, output_mb=60.0 * g,
                  process_rate_mb=3.0, num_tasks=240, task_cv=0.4)
    join_parents = ["fact"]
    for i in range(num_dimensions):
        scan = f"dim{i}"
        build = f"build{i}"
        builder.stage(scan, input_mb=6.0 * g, output_mb=20.0 * g,
                      process_rate_mb=1.5, num_tasks=240, task_cv=0.4)
        builder.stage(build, input_mb=20.0 * g, output_mb=12.0 * g,
                      process_rate_mb=8.0, num_tasks=240, task_cv=0.4,
                      parents=[scan])
        join_parents.append(build)
    builder.stage("probe",
                  input_mb=(60.0 + 12.0 * num_dimensions) * g,
                  output_mb=4.0 * g, process_rate_mb=20.0,
                  num_tasks=240, task_cv=0.4, parents=join_parents)
    return builder.build()


#: The four Fig. 10 benchmark workloads by paper name.
WORKLOADS: Mapping[str, Callable[..., Job]] = {
    "ConnectedComponents": connected_components,
    "CosineSimilarity": cosine_similarity,
    "LDA": lda,
    "TriangleCount": triangle_count,
}

#: Bonus (non-paper) workloads exercising contrasting DAG shapes.
EXTRA_WORKLOADS: Mapping[str, Callable[..., Job]] = {
    "PageRank": lambda scale=1.0: pagerank(scale=scale),
    "StarJoin": lambda scale=1.0: star_join(scale=scale),
}


def workload_by_name(name: str, scale: float = 1.0) -> Job:
    """Look up a Fig. 10 workload (or ALS) by its paper name."""
    if name == "ALS":
        return als(scale)
    try:
        return WORKLOADS[name](scale)
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {['ALS', *WORKLOADS]}"
        ) from None
