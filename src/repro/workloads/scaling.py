"""Dataset-size scaling sweeps.

The paper fixes one dataset size per workload (Table 2); production
users ask how the DelayStage benefit moves with input size.  These
helpers sweep a workload's ``scale`` factor and report JCTs under a
pair of schedulers — the basis of the scaling extension bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cluster.spec import ClusterSpec
from repro.core.delaystage import DelayStageParams, delay_stage_schedule
from repro.dag.job import Job
from repro.simulator.simulation import FixedDelayPolicy, SimulationConfig, simulate_job


@dataclass(frozen=True)
class ScalePoint:
    """One sweep point: JCTs and gain at a given dataset scale."""

    scale: float
    stock_jct: float
    delaystage_jct: float

    @property
    def gain(self) -> float:
        return 1.0 - self.delaystage_jct / self.stock_jct


def scaling_sweep(
    workload: Callable[[float], Job],
    cluster: ClusterSpec,
    scales: Sequence[float] = (0.5, 1.0, 2.0),
    params: "DelayStageParams | None" = None,
) -> list[ScalePoint]:
    """JCT under stock vs DelayStage across dataset scales.

    Planning runs per scale (the calculator would re-profile a resized
    dataset), using the oracle model to isolate the scaling behaviour
    from profiling noise.
    """
    if not scales:
        raise ValueError("scales must be non-empty")
    params = params or DelayStageParams(max_slots=24)
    cfg = SimulationConfig(track_metrics=False)
    points = []
    for scale in scales:
        job = workload(scale)
        stock = simulate_job(job, cluster, config=cfg).job_completion_time(job.job_id)
        schedule = delay_stage_schedule(job, cluster, params)
        ds = simulate_job(
            job, cluster, FixedDelayPolicy(schedule.delays), cfg
        ).job_completion_time(job.job_id)
        points.append(ScalePoint(scale=scale, stock_jct=stock, delaystage_jct=ds))
    return points
