"""Workload library: the paper's benchmark jobs plus synthetic DAGs.

:mod:`repro.workloads.library` reconstructs the five Spark workloads
the paper evaluates (Table 2 / Fig. 1): ALS (6 stages),
ConnectedComponents (5), CosineSimilarity (5), LDA (5), and
TriangleCount (11).  The DAG shapes follow the stage counts, execution
paths, and delayed-stage sets reported in the paper; per-stage volumes
and processing rates are calibrated so stock-Spark completion times on
the default EC2 cluster land in the ranges of Fig. 10.

:mod:`repro.workloads.synthetic` generates random DAG-style jobs for
property tests and trace-style sweeps; :mod:`repro.workloads.scaling`
sweeps dataset sizes.  Two bonus (non-paper) workloads —
``pagerank`` (a pure chain) and ``star_join`` (wide balanced
parallelism) — bracket the DAG-shape spectrum.
"""

from repro.workloads.library import (
    EXTRA_WORKLOADS,
    WORKLOADS,
    als,
    connected_components,
    cosine_similarity,
    lda,
    pagerank,
    star_join,
    triangle_count,
    workload_by_name,
)
from repro.workloads.scaling import ScalePoint, scaling_sweep
from repro.workloads.synthetic import random_job

__all__ = [
    "als",
    "connected_components",
    "cosine_similarity",
    "lda",
    "triangle_count",
    "workload_by_name",
    "WORKLOADS",
    "EXTRA_WORKLOADS",
    "pagerank",
    "star_join",
    "random_job",
    "ScalePoint",
    "scaling_sweep",
]
