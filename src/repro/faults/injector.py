"""Deterministic fault injection and recovery for the fluid simulator.

The :class:`FaultInjector` owns the partition lifecycle of every stage
when a non-empty :class:`~repro.faults.plan.FaultPlan` is installed:
the simulation delegates :meth:`start_parts` instead of creating the
read/compute/write work items itself, so each item carries its
partition slot and the injector can cancel, re-source, and requeue work
when faults fire.  With an empty plan no injector is constructed and
the simulation runs its unmodified healthy path — which is what makes
empty-plan runs byte-identical to the pre-fault code.

Fault model (see ``docs/faults.md``):

* **Slots vs hosts** — the partition count is fixed at the worker
  count; each *slot* (named after its original worker) maps to a live
  *host* through ``slot_host``.  A crash deterministically reassigns
  the dead node's slots round-robin over the survivors, starting at
  the dead node's position, so requeue placement is a pure function of
  the plan — no tie-breaking nondeterminism.
* **Crash semantics** — in-flight partitions on the dead node lose
  their progress and requeue (capped exponential backoff, per-stage
  retry budget); transfers *sourced* from the dead node resume from a
  surviving replica with their remaining volume intact (shuffle data
  is assumed replicated — explicit data loss is modeled only by
  ``lost_partition`` events).
* **Recompute semantics** — a lost shuffle partition whose data some
  not-yet-submitted child still needs un-completes the producing stage
  for exactly that partition; already-submitted consumers keep their
  in-flight reads (served from replicas).  Children gated again this
  way are re-released only when the stage re-completes.
* **Retry budget** — requeues and recomputes share one per-stage
  budget; exhausting it fails the job at that instant (the job record
  keeps the failure time, so makespans stay finite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.delayer import ReplanningStageDelayer
from repro.core.replan import replan_delays
from repro.faults.plan import (
    FaultPlan,
    LostShufflePartition,
    NicBrownout,
    NodeCrash,
    Straggler,
)
from repro.simulator.events import EventKind
from repro.simulator.flows import ComputeDemand, DiskWrite, NetworkFlow
from repro.verify import sanitizer as _sanitizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.engine import WorkItem
    from repro.simulator.simulation import Simulation, _StageRun


@dataclass
class FaultStats:
    """Aggregate fault / recovery telemetry for one run."""

    crashes: int = 0
    brownouts: int = 0
    stragglers: int = 0
    partitions_lost: int = 0
    retries: int = 0
    replans: int = 0
    injected: int = 0
    work_lost_bytes: float = 0.0
    work_recomputed_bytes: float = 0.0
    jobs_failed: list = field(default_factory=list)
    dead_nodes: dict = field(default_factory=dict)  # node -> crash time
    stage_retries: dict = field(default_factory=dict)  # "job/stage" -> count
    retry_budget: int = 0

    def to_dict(self) -> dict:
        return {
            "crashes": self.crashes,
            "brownouts": self.brownouts,
            "stragglers": self.stragglers,
            "partitions_lost": self.partitions_lost,
            "retries": self.retries,
            "replans": self.replans,
            "injected": self.injected,
            "work_lost_bytes": self.work_lost_bytes,
            "work_recomputed_bytes": self.work_recomputed_bytes,
            "jobs_failed": list(self.jobs_failed),
            "dead_nodes": dict(self.dead_nodes),
            "stage_retries": dict(self.stage_retries),
            "retry_budget": self.retry_budget,
        }


class FaultInjector:
    """Applies one :class:`FaultPlan` to one :class:`Simulation`."""

    def __init__(self, sim: "Simulation", plan: FaultPlan) -> None:
        self.sim = sim
        self.plan = plan
        self.stats = FaultStats(retry_budget=plan.retry_budget)
        #: Partition slot -> live host currently responsible for it.
        self.slot_host: dict[str, str] = {w: w for w in sim.workers}
        #: Dead node -> crash time.
        self.dead: dict[str, float] = {}
        self.failed_jobs: set[str] = set()
        #: Accumulated degradation factors per node (nic, disk, executors),
        #: consumed by the degraded-cluster builder for re-planning.
        self._node_factors: dict[str, list[float]] = {}
        #: Active work items per (stage key, slot).
        self._active: "dict[tuple, list[WorkItem]]" = {}
        #: Item -> volume it was created with (work-lost accounting).
        self._initial: "dict[WorkItem, float]" = {}
        #: Parts sitting out a retry backoff.
        self._waiting: set = set()
        #: Requeue epoch per part; stale backoff timers no-op.
        self._epoch: dict = {}

    # ------------------------------------------------------------------ #
    # plan installation
    # ------------------------------------------------------------------ #

    def schedule_events(self) -> None:
        """Register one engine timer per fault event (call before run)."""
        for event in self.plan.events:
            self.sim.engine.schedule(event.time, self._make_fire(event))

    def _make_fire(self, event) -> Callable[[], None]:
        def fire() -> None:
            self._fire(event)

        return fire

    def _fire(self, event) -> None:
        self.stats.injected += 1
        self._log(
            EventKind.FAULT_INJECTED,
            getattr(event, "job", ""),
            getattr(event, "stage", ""),
            info={"fault": event.kind, **_event_info(event)},
        )
        self._instant(f"fault:{event.kind}", _event_info(event))
        self._telemetry("injected", fault=event.kind, **_event_info(event))
        if isinstance(event, NodeCrash):
            self._crash(event)
        elif isinstance(event, NicBrownout):
            self._brownout(event)
        elif isinstance(event, Straggler):
            self._straggler(event)
        elif isinstance(event, LostShufflePartition):
            self._lost_partition(event)
        else:  # pragma: no cover - plan validation rejects unknown kinds
            raise TypeError(f"unknown fault event {event!r}")

    # ------------------------------------------------------------------ #
    # partition lifecycle (replaces the healthy path's item creation)
    # ------------------------------------------------------------------ #

    def on_submit(self, run: "_StageRun") -> bool:
        """Gate for ``_submit_stage``: False suppresses the submission."""
        if run.key[0] in self.failed_jobs:
            return False
        if run.submitted:
            # A regate/re-ready cycle leaves two pending submission
            # timers; whichever fires first (once the gate clears)
            # submits, and the straggler must be a no-op.
            return False
        if run.remaining_parents > 0:
            # A lost partition re-gated this stage after its submission
            # timer was already pending; the re-completed parent will
            # re-ready it (with a fresh delay) when the data exists again.
            return False
        return True

    def start_parts(self, run: "_StageRun") -> None:
        """Launch every partition of a freshly submitted stage."""
        for slot in self.sim.workers:
            self._start_part(run, slot)

    def _start_part(self, run: "_StageRun", slot: str) -> None:
        """(Re)start one partition from its shuffle-read phase."""
        if run.key[0] in self.failed_jobs:
            return
        sim = self.sim
        host = self.slot_host[slot]
        sources = sim._read_sources(run)
        per_source = run.stage.input_bytes / len(sim.workers) / len(sources)
        flows = []
        for src_slot in sources:
            src = self.slot_host.get(src_slot, src_slot)  # storage maps to itself
            if src == host or per_source <= 0.0:
                continue  # co-located (or replicated-onto-host) data is local
            flows.append((src, src_slot))
        run.pending_reads[slot] = len(flows)
        if not flows:
            self._part_read_done(run, slot)
            return
        key = (run.key, slot)
        for src, src_slot in flows:
            item = NetworkFlow(
                src=src,
                dst=host,
                volume=per_source,
                stage_key=run.key,
                on_complete=self._make_read_flow_done(run, slot),
                part=slot,
                src_slot=src_slot if src_slot in self.slot_host else None,
            )
            self._track(key, item, per_source)
            sim.engine.add_item(item)

    def _make_read_flow_done(
        self, run: "_StageRun", slot: str
    ) -> Callable[[float], None]:
        def done(_t: float) -> None:
            self._finish_read_flow(run, slot)

        return done

    def _finish_read_flow(self, run: "_StageRun", slot: str) -> None:
        run.pending_reads[slot] -= 1
        if run.pending_reads[slot] == 0 and slot not in run.parts_read_done:
            self._part_read_done(run, slot)

    def _part_read_done(self, run: "_StageRun", slot: str) -> None:
        sim = self.sim
        run.parts_read_done.add(slot)
        if len(run.parts_read_done) == len(sim.workers):
            run.record.read_done_time = sim.engine.now
            sim._log(EventKind.STAGE_READ_DONE, run.key[0], run.key[1])
        volume = run.compute_volume
        if volume < 0.0:
            volume = run.compute_volume = sim._compute_volume(run)
        run.compute_active.add(slot)
        host = self.slot_host[slot]
        if volume <= 0.0:
            self._part_compute_done(run, slot, host)
            return
        item = ComputeDemand(
            node=host,
            volume=volume,
            stage_key=run.key,
            process_rate=run.stage.process_rate,
            on_complete=lambda _t, h=host: self._part_compute_done(run, slot, h),
            part=slot,
        )
        self._track((run.key, slot), item, volume)
        sim.engine.add_item(item)

    def _part_compute_done(self, run: "_StageRun", slot: str, host: str) -> None:
        sim = self.sim
        self._check_live(host, run, slot, "compute")
        run.compute_active.discard(slot)
        run.parts_compute_done.add(slot)
        if len(run.parts_compute_done) == len(sim.workers):
            run.record.compute_done_time = sim.engine.now
            sim._log(EventKind.STAGE_COMPUTE_DONE, run.key[0], run.key[1])
        write_volume = run.stage.output_bytes / len(sim.workers)
        if write_volume <= 0.0:
            self._part_write_done(run, slot, host)
            return
        item = DiskWrite(
            node=host,
            volume=write_volume,
            stage_key=run.key,
            on_complete=lambda _t, h=host: self._part_write_done(run, slot, h),
            part=slot,
        )
        self._track((run.key, slot), item, write_volume)
        sim.engine.add_item(item)

    def _part_write_done(self, run: "_StageRun", slot: str, host: str) -> None:
        self._check_live(host, run, slot, "write")
        run.parts_write_done.add(slot)
        if len(run.parts_write_done) == len(self.sim.workers):
            self._stage_completed(run)

    def _stage_completed(self, run: "_StageRun") -> None:
        sim = self.sim
        now = sim.engine.now
        run.record.finish_time = now
        job_id, stage_id = run.key
        sim._log(EventKind.STAGE_COMPLETED, job_id, stage_id)

        job = run.job
        # After a lost-partition recompute only the children that were
        # re-gated wait on this re-completion; everyone else already ran.
        targets = run.regated if run.regated is not None else job.children(stage_id)
        run.regated = None
        for child in targets:
            child_run = sim._runs[(job_id, child)]
            child_run.remaining_parents -= 1
            if child_run.remaining_parents == 0:
                sim._stage_ready(child_run)

        sim._remaining_stages[job_id] -= 1
        if sim._remaining_stages[job_id] == 0:
            sim._job_records[job_id].finish_time = now
            sim._log(EventKind.JOB_COMPLETED, job_id)

    # ------------------------------------------------------------------ #
    # fault handlers
    # ------------------------------------------------------------------ #

    def _crash(self, event: NodeCrash) -> None:
        sim = self.sim
        node = event.node
        if node in self.dead:
            return  # idempotent: a node dies once
        now = sim.engine.now
        self.dead[node] = now
        self.stats.crashes += 1
        self.stats.dead_nodes[node] = now
        self._log(EventKind.NODE_CRASHED, "", "", info={"node": node})
        self._telemetry("crash", node=node)

        # Deterministic slot succession: the dead node's slots go
        # round-robin over the survivors, starting at its own index.
        dying = [s for s in sim.workers if self.slot_host[s] == node]
        live = [w for w in sim.workers if w not in self.dead]
        if not live:  # pragma: no cover - plan validation guarantees survivors
            raise RuntimeError("fault plan crashed every worker")
        start = sim.workers.index(node)
        for i, slot in enumerate(dying):
            successor = live[(start + i) % len(live)]
            self.slot_host[slot] = successor
            self._telemetry("slot_succession", slot=slot, node=successor)

        dying_set = set(dying)
        for run in sim._runs.values():
            if run.key[0] in self.failed_jobs or not run.submitted:
                continue
            for slot in sim.workers:
                if run.key[0] in self.failed_jobs:
                    break  # a requeue may have just exhausted the budget
                if slot in dying_set:
                    self._crash_part(run, slot, node)
                else:
                    self._resource_reads(run, slot, node)

        self._maybe_replan(f"node_crashed:{node}")

    def _crash_part(self, run: "_StageRun", slot: str, node: str) -> None:
        """The partition itself ran on the dead node: requeue it."""
        if slot in run.parts_write_done:
            return  # finished partitions survive via replication
        if (run.key, slot) in self._waiting:
            return  # already backing off; the restart maps to a live host
        self._cancel_part_items(run, slot)
        run.pending_reads[slot] = 0
        run.parts_read_done.discard(slot)
        run.parts_compute_done.discard(slot)
        run.compute_active.discard(slot)
        self._requeue(run, slot, reason=f"node_crashed:{node}")

    def _resource_reads(self, run: "_StageRun", slot: str, node: str) -> None:
        """Flows feeding a surviving partition from the dead node resume
        from a replica with their remaining volume intact."""
        key = (run.key, slot)
        for item in list(self._active.get(key, ())):
            if type(item) is not NetworkFlow or item.src != node:
                continue
            remaining = item.remaining
            self.sim.engine.cancel_item(item)
            self._untrack(key, item)
            replica = (
                self.slot_host[item.src_slot] if item.src_slot is not None else item.src
            )
            if replica == item.dst or remaining <= 0.0:
                # The replica is co-located with the reader: the data is
                # local now, the transfer completes immediately.
                self._finish_read_flow(run, slot)
                continue
            moved = NetworkFlow(
                src=replica,
                dst=item.dst,
                volume=remaining,
                stage_key=run.key,
                on_complete=self._make_read_flow_done(run, slot),
                part=slot,
                src_slot=item.src_slot,
            )
            self._track(key, moved, remaining)
            self.sim.engine.add_item(moved)

    def _brownout(self, event: NicBrownout) -> None:
        self.stats.brownouts += 1
        self._telemetry("brownout", node=event.node, factor=event.factor)
        if event.node in self.dead:
            return
        self._degrade(event.node, nic=event.factor)
        self.sim.engine.schedule(event.end, lambda: self._brownout_end(event))
        self._maybe_replan(f"nic_brownout:{event.node}")

    def _brownout_end(self, event: NicBrownout) -> None:
        if event.node in self.dead:
            return
        self._degrade(event.node, nic=1.0 / event.factor)
        self._maybe_replan(f"nic_brownout_end:{event.node}")

    def _straggler(self, event: Straggler) -> None:
        self.stats.stragglers += 1
        self._telemetry("straggler", node=event.node, factor=event.factor)
        if event.node in self.dead:
            return
        self._degrade(event.node, executors=1.0 / event.factor)
        self.sim.engine.schedule(event.until, lambda: self._straggler_end(event))
        self._maybe_replan(f"straggler:{event.node}")

    def _straggler_end(self, event: Straggler) -> None:
        if event.node in self.dead:
            return
        self._degrade(event.node, executors=event.factor)
        self._maybe_replan(f"straggler_end:{event.node}")

    def _degrade(
        self, node: str, nic: float = 1.0, disk: float = 1.0, executors: float = 1.0
    ) -> None:
        self.sim._apply_degradation(node, nic, disk, executors)
        factors = self._node_factors.setdefault(node, [1.0, 1.0, 1.0])
        factors[0] *= nic
        factors[1] *= disk
        factors[2] *= executors

    def _lost_partition(self, event: LostShufflePartition) -> None:
        sim = self.sim
        run = sim._runs.get((event.job, event.stage))
        if (
            run is None
            or event.job in self.failed_jobs
            or event.part not in run.pending_reads
            or event.part not in run.parts_write_done
            or sim._remaining_stages.get(event.job, 0) == 0
        ):
            return  # data not produced yet, job gone, or unknown target: no-op
        job = run.job
        children = job.children(event.stage)
        gated = [
            c for c in children if not sim._runs[(event.job, c)].submitted
        ]
        if not children or not gated:
            return  # every consumer already fetched (or is fetching replicas)

        slot = event.part
        self.stats.partitions_lost += 1
        self._log(
            EventKind.PARTITION_LOST, event.job, event.stage, info={"part": slot}
        )
        self._telemetry(
            "partition_lost", job=event.job, stage=event.stage, part=slot
        )
        was_complete = len(run.parts_write_done) == len(sim.workers)
        run.parts_write_done.discard(slot)
        run.parts_read_done.discard(slot)
        run.parts_compute_done.discard(slot)
        run.pending_reads[slot] = 0
        volume = run.compute_volume if run.compute_volume >= 0.0 else 0.0
        self.stats.work_recomputed_bytes += (
            run.stage.input_bytes / len(sim.workers)
            + volume
            + run.stage.output_bytes / len(sim.workers)
        )
        if was_complete:
            # Un-complete the stage for this partition and gate the
            # children that have not consumed its output yet.
            sim._remaining_stages[event.job] += 1
            run.regated = []
            for child in gated:
                sim._runs[(event.job, child)].remaining_parents += 1
                run.regated.append(child)
        self._requeue(run, slot, reason="partition_lost")

    # ------------------------------------------------------------------ #
    # retry / failure machinery
    # ------------------------------------------------------------------ #

    def _requeue(self, run: "_StageRun", slot: str, reason: str) -> None:
        sim = self.sim
        run.retries += 1
        self.stats.retries += 1
        stage_label = f"{run.key[0]}/{run.key[1]}"
        self.stats.stage_retries[stage_label] = (
            self.stats.stage_retries.get(stage_label, 0) + 1
        )
        # Published before the budget check so the live retry counter
        # matches stats.retries (which also counts the exhausting attempt).
        self._telemetry(
            "retry", stage=stage_label, part=slot, attempt=run.retries,
            reason=reason,
        )
        if run.retries > self.plan.retry_budget:
            self._fail_job(run.key[0], f"retry budget exhausted at {stage_label}")
            return
        attempt = run.retries
        delay = self.plan.backoff(attempt)
        self._log(
            EventKind.TASK_RETRY,
            run.key[0],
            run.key[1],
            info={"part": slot, "attempt": attempt, "backoff": delay,
                  "reason": reason},
        )
        self._instant(
            "task-retry",
            {"stage": stage_label, "part": slot, "attempt": attempt},
        )
        key = (run.key, slot)
        self._waiting.add(key)
        epoch = self._epoch[key] = self._epoch.get(key, 0) + 1
        sim.engine.schedule(
            sim.engine.now + delay, lambda: self._restart_part(run, slot, epoch)
        )

    def _restart_part(self, run: "_StageRun", slot: str, epoch: int) -> None:
        key = (run.key, slot)
        if self._epoch.get(key) != epoch or run.key[0] in self.failed_jobs:
            return  # superseded by a newer requeue or a failed job
        self._waiting.discard(key)
        self._start_part(run, slot)

    def _fail_job(self, job_id: str, reason: str) -> None:
        if job_id in self.failed_jobs:
            return
        sim = self.sim
        now = sim.engine.now
        self.failed_jobs.add(job_id)
        self.stats.jobs_failed.append(job_id)
        jrec = sim._job_records[job_id]
        jrec.finish_time = now  # time of failure keeps makespans finite
        self._log(EventKind.JOB_FAILED, job_id, "", info={"reason": reason})
        self._instant("job-failed", {"job": job_id, "reason": reason})
        self._telemetry("job_failed", job=job_id, reason=reason)
        for key in list(self._active):
            if key[0][0] != job_id:
                continue
            run = sim._runs[key[0]]
            self._cancel_part_items(run, key[1])

    def _cancel_part_items(self, run: "_StageRun", slot: str) -> None:
        key = (run.key, slot)
        for item in list(self._active.get(key, ())):
            self.sim.engine.cancel_item(item)
            started = self._initial.get(item, item.remaining) - item.remaining
            if started > 0.0:
                self.stats.work_lost_bytes += started
            self._untrack(key, item)

    # ------------------------------------------------------------------ #
    # re-planning (DelayStage Alg. 1 against the surviving cluster)
    # ------------------------------------------------------------------ #

    def _maybe_replan(self, reason: str) -> None:
        sim = self.sim
        for job_id, (job, policy, _t) in sim._jobs.items():
            if not isinstance(policy, ReplanningStageDelayer):
                continue
            if job_id in self.failed_jobs or sim._remaining_stages.get(job_id, 0) == 0:
                continue
            frozen = {
                sid for sid in job.stage_ids if sim._runs[(job_id, sid)].submitted
            }
            if len(frozen) == len(job.stage_ids):
                continue  # everything already launched; nothing to re-plan
            cluster = self.degraded_cluster()
            delays = replan_delays(job, cluster, frozen, policy.params)
            policy.update_table(job_id, delays)
            self.stats.replans += 1
            self._log(
                EventKind.STAGE_REPLANNED,
                job_id,
                "",
                info={
                    "reason": reason,
                    "delays": {sid: float(x) for sid, x in sorted(delays.items())},
                    "surviving_workers": cluster.num_workers,
                },
            )
            self._instant(
                "replan", {"job": job_id, "reason": reason, "stages": len(delays)}
            )
            self._telemetry(
                "replan", job=job_id, reason=reason, stages=len(delays)
            )

    def degraded_cluster(self):
        """The surviving cluster with accumulated degradation applied."""
        from dataclasses import replace

        from repro.cluster.spec import ClusterSpec

        nodes = []
        for spec in self.sim.cluster.nodes:
            if spec.node_id in self.dead:
                continue
            nf, df, ef = self._node_factors.get(spec.node_id, (1.0, 1.0, 1.0))
            executors = spec.executors
            if not spec.is_storage:
                executors = max(1, round(spec.executors * ef))
            nodes.append(
                replace(
                    spec,
                    executors=executors,
                    nic_bandwidth=spec.nic_bandwidth * nf,
                    disk_bandwidth=spec.disk_bandwidth * df,
                )
            )
        return ClusterSpec(nodes)

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    def _track(self, key: tuple, item: "WorkItem", volume: float) -> None:
        self._active.setdefault(key, []).append(item)
        self._initial[item] = volume

    def _untrack(self, key: tuple, item: "WorkItem") -> None:
        items = self._active.get(key)
        if items is not None and item in items:
            items.remove(item)
            if not items:
                del self._active[key]
        self._initial.pop(item, None)

    def _check_live(
        self, host: str, run: "_StageRun", slot: str, phase: str
    ) -> None:
        """Sanitizer rule: no partition work may finish on a dead node."""
        if _sanitizer.ENABLED and host in self.dead:
            raise _sanitizer.SanitizerError(
                f"{phase} of partition {slot!r} ({run.key[0]}/{run.key[1]}) "
                f"finished on {host!r}, which crashed at t={self.dead[host]:.3f}"
            )

    def _log(self, kind: EventKind, job_id: str, stage_id: str, info: dict) -> None:
        self.sim._log(kind, job_id, stage_id, info=info)

    def _telemetry(self, kind: str, **fields) -> None:
        """Publish one fault event to the live plane (one branch when off).

        The hook only observes — it reads nothing back — so runs with
        and without a subscriber stay byte-identical.
        """
        hook = self.sim.fault_hook
        if hook is not None:
            hook(kind, fields)

    def _instant(self, name: str, args: dict) -> None:
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                name,
                self.sim.engine.now,
                track=(self.sim.trace_scope, "faults"),
                cat="fault",
                args=args,
            )

    def counters(self) -> dict:
        """Fault counters merged into the run's telemetry."""
        s = self.stats
        return {
            "faults.injected": float(s.injected),
            "faults.crashes": float(s.crashes),
            "faults.retries": float(s.retries),
            "faults.replans": float(s.replans),
            "faults.partitions_lost": float(s.partitions_lost),
            "faults.jobs_failed": float(len(s.jobs_failed)),
            "faults.work_lost_mb": float(s.work_lost_bytes / 1e6),
            "faults.work_recomputed_mb": float(s.work_recomputed_bytes / 1e6),
        }

    def finalize(self) -> None:
        """Post-run consistency: completion callbacks emptied the books
        for every job that finished (belt-and-braces; cancelled items
        for failed jobs are allowed to linger)."""
        if not _sanitizer.ENABLED:
            return
        for (key, slot), items in self._active.items():
            if key[0] in self.failed_jobs:
                continue
            live = [item for item in items if item._pos >= 0]
            if live:
                raise _sanitizer.SanitizerError(
                    f"partition {slot!r} of {key[0]}/{key[1]} left "
                    f"{len(live)} active item(s) after the run ended"
                )


def _event_info(event) -> dict:
    info: dict = {}
    for name in ("node", "factor", "start", "end", "until", "part"):
        value = getattr(event, name, None)
        if value is not None:
            info[name] = value
    return info
