"""Seeded random fault-plan generation (``--chaos-seed``).

The generator draws a small, survivable fault plan from a seeded
stream: the same ``(cluster, seed)`` pair always yields the same plan,
so a chaos run is as replayable as a fault file on disk.  Plans never
crash the last surviving worker and only target worker nodes, keeping
every generated plan valid under
:meth:`~repro.faults.plan.FaultPlan.validate_against`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.faults.plan import (
    FaultPlan,
    LostShufflePartition,
    NicBrownout,
    NodeCrash,
    Straggler,
)
from repro.util.rng import resolve_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.spec import ClusterSpec
    from repro.dag.job import Job


def generate_plan(
    cluster: "ClusterSpec",
    seed: int,
    *,
    jobs: "Sequence[Job] | None" = None,
    num_events: int = 3,
    horizon: float = 60.0,
    retry_budget: int = 3,
    backoff_base: float = 0.5,
    backoff_cap: float = 8.0,
) -> FaultPlan:
    """Draw a deterministic fault plan for ``cluster`` from ``seed``.

    Parameters
    ----------
    jobs:
        When given, ``lost_partition`` events become possible (they
        need a concrete job/stage/partition to target).
    num_events:
        Faults to draw.  Node crashes are capped at ``workers - 1`` so
        at least one worker always survives.
    horizon:
        Fault times are drawn uniformly from ``(0, horizon)``; pick
        roughly the expected healthy makespan so faults land while
        work is in flight.
    """
    if num_events < 0:
        raise ValueError(f"num_events must be >= 0, got {num_events}")
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    gen = resolve_rng(int(seed))
    workers = list(cluster.worker_ids)
    kinds = ["nic_brownout", "straggler"]
    if len(workers) > 1:
        kinds.append("node_crash")
    stages = []
    if jobs:
        for job in jobs:
            stages.extend((job.job_id, sid) for sid in job.stage_ids)
    if stages:
        kinds.append("lost_partition")

    events: list = []
    crashed: set[str] = set()
    for _ in range(num_events):
        kind = kinds[int(gen.integers(0, len(kinds)))]
        t = float(round(gen.uniform(0.0, horizon), 3))
        if kind == "node_crash":
            alive = [w for w in workers if w not in crashed]
            if len(alive) <= 1:
                kind = "straggler"  # survivability: never kill the last worker
            else:
                node = alive[int(gen.integers(0, len(alive)))]
                crashed.add(node)
                events.append(NodeCrash(time=t, node=node))
                continue
        if kind == "nic_brownout":
            node = workers[int(gen.integers(0, len(workers)))]
            span = float(round(gen.uniform(2.0, max(4.0, horizon / 3.0)), 3))
            factor = float(round(gen.uniform(0.2, 0.8), 3))
            events.append(
                NicBrownout(start=t, end=t + span, node=node, factor=factor)
            )
        elif kind == "straggler":
            node = workers[int(gen.integers(0, len(workers)))]
            span = float(round(gen.uniform(2.0, max(4.0, horizon / 2.0)), 3))
            factor = float(round(gen.uniform(1.5, 4.0), 3))
            events.append(
                Straggler(time=t, node=node, factor=factor, until=t + span)
            )
        else:  # lost_partition
            job_id, stage_id = stages[int(gen.integers(0, len(stages)))]
            part = workers[int(gen.integers(0, len(workers)))]
            events.append(
                LostShufflePartition(time=t, job=job_id, stage=stage_id, part=part)
            )

    events.sort(key=lambda e: (e.time, e.kind, getattr(e, "node", "")))
    plan = FaultPlan(
        events=tuple(events),
        retry_budget=retry_budget,
        backoff_base=backoff_base,
        backoff_cap=backoff_cap,
    )
    plan.validate_against(cluster)
    return plan
