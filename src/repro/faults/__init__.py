"""Fault injection & recovery (extension beyond the paper).

Declarative fault plans (node crashes, NIC brownouts, stragglers, lost
shuffle partitions) injected deterministically into the fluid
simulator, with engine-level retry/backoff, graceful degradation onto
the surviving nodes, and mid-run DelayStage re-planning.  See
``docs/faults.md``.

The import surface is deliberately layered: :mod:`repro.faults.plan`
and :mod:`repro.faults.chaos` depend on nothing in the simulator, so a
plan can be built, validated, and serialized without instantiating any
simulation machinery; :class:`~repro.faults.injector.FaultInjector` is
only imported by the simulation when a non-empty plan is installed.
"""

from repro.faults.availability import (
    AvailabilityRow,
    availability_report,
    availability_row,
    render_availability,
)
from repro.faults.chaos import generate_plan
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import (
    FaultPlan,
    LostShufflePartition,
    NicBrownout,
    NodeCrash,
    Straggler,
)

__all__ = [
    "FaultPlan",
    "NodeCrash",
    "NicBrownout",
    "Straggler",
    "LostShufflePartition",
    "generate_plan",
    "FaultInjector",
    "FaultStats",
    "AvailabilityRow",
    "availability_row",
    "availability_report",
    "render_availability",
]
