"""Declarative fault plans.

A :class:`FaultPlan` is a frozen, JSON-serializable description of
every fault a simulation will suffer, fixed *before* the run starts —
the property that makes chaos runs replayable: the same plan (or the
same ``--chaos-seed``) always produces the same trajectory, byte for
byte.

Four fault kinds cover the failure modes the fluid model (paper
Eq. (1)–(3)) can express as time-varying resource changes:

* :class:`NodeCrash` — a worker permanently leaves the cluster at
  ``time``; its running partitions requeue onto surviving workers.
* :class:`NicBrownout` — a node's NIC runs at ``factor`` of its
  capacity during ``[start, end)`` (congestion, flaky links).
* :class:`Straggler` — a node's effective executor capacity is divided
  by ``factor`` during ``[time, until)`` (noisy neighbors, thermal
  throttling).
* :class:`LostShufflePartition` — the shuffle output one partition of
  a stage wrote is lost at ``time``, forcing the parent stage to
  recompute that partition (the classic fetch-failure → parent-rerun
  path in Spark's DAGScheduler).

This module deliberately imports nothing from the simulator so the
simulator can reference plans without an import cycle.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import asdict, dataclass, field

#: Version stamped into serialized plans.
PLAN_SCHEMA_VERSION = 1


def _check_time(value: float, name: str) -> None:
    if not isinstance(value, (int, float)) or math.isnan(value) or value < 0 or math.isinf(value):
        raise ValueError(f"{name} must be a finite time >= 0, got {value!r}")


@dataclass(frozen=True)
class NodeCrash:
    """Worker ``node`` permanently fails at ``time``."""

    time: float
    node: str
    kind: str = field(default="node_crash", init=False)

    def __post_init__(self) -> None:
        _check_time(self.time, "time")
        if not self.node:
            raise ValueError("node must be a non-empty node id")


@dataclass(frozen=True)
class NicBrownout:
    """``node``'s NIC runs at ``factor`` of capacity during [start, end)."""

    start: float
    end: float
    node: str
    factor: float
    kind: str = field(default="nic_brownout", init=False)

    def __post_init__(self) -> None:
        _check_time(self.start, "start")
        _check_time(self.end, "end")
        if self.end <= self.start:
            raise ValueError(f"end {self.end} must be > start {self.start}")
        if not self.node:
            raise ValueError("node must be a non-empty node id")
        if not 0.0 < self.factor < 1.0:
            raise ValueError(f"factor must be in (0, 1), got {self.factor}")

    @property
    def time(self) -> float:
        return self.start


@dataclass(frozen=True)
class Straggler:
    """``node`` computes ``factor`` times slower during [time, until)."""

    time: float
    node: str
    factor: float
    until: float
    kind: str = field(default="straggler", init=False)

    def __post_init__(self) -> None:
        _check_time(self.time, "time")
        _check_time(self.until, "until")
        if self.until <= self.time:
            raise ValueError(f"until {self.until} must be > time {self.time}")
        if not self.node:
            raise ValueError("node must be a non-empty node id")
        if self.factor <= 1.0:
            raise ValueError(f"straggler factor must be > 1, got {self.factor}")


@dataclass(frozen=True)
class LostShufflePartition:
    """The shuffle data partition ``part`` of ``job``/``stage`` wrote is
    lost at ``time``; if any consumer still needs it, the partition is
    recomputed (parent-stage rerun)."""

    time: float
    job: str
    stage: str
    part: str
    kind: str = field(default="lost_partition", init=False)

    def __post_init__(self) -> None:
        _check_time(self.time, "time")
        for name in ("job", "stage", "part"):
            if not getattr(self, name):
                raise ValueError(f"{name} must be non-empty")


FaultEvent = "NodeCrash | NicBrownout | Straggler | LostShufflePartition"

_EVENT_KINDS = {
    "node_crash": NodeCrash,
    "nic_brownout": NicBrownout,
    "straggler": Straggler,
    "lost_partition": LostShufflePartition,
}


@dataclass(frozen=True)
class FaultPlan:
    """Every fault a run will suffer, plus the recovery policy.

    Parameters
    ----------
    events:
        The faults, as a tuple (kept hashable so a plan can live inside
        the frozen :class:`~repro.simulator.simulation.SimulationConfig`).
    retry_budget:
        Maximum partition requeues per stage; exceeding it fails the
        job (its record keeps the failure time as ``finish_time``).
    backoff_base / backoff_cap:
        Capped exponential backoff before a requeued partition
        restarts: attempt ``n`` waits ``min(cap, base * 2**(n-1))``
        seconds.
    """

    events: "tuple[FaultEvent, ...]" = ()
    retry_budget: int = 3
    backoff_base: float = 1.0
    backoff_cap: float = 30.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if self.retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {self.retry_budget}")
        if self.backoff_base < 0 or math.isnan(self.backoff_base):
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_cap < 0 or math.isnan(self.backoff_cap):
            raise ValueError(f"backoff_cap must be >= 0, got {self.backoff_cap}")
        for event in self.events:
            if type(event) not in _EVENT_KINDS.values():
                raise TypeError(f"unknown fault event {event!r}")

    # -- introspection --------------------------------------------------- #

    @property
    def is_empty(self) -> bool:
        return not self.events

    @property
    def crashes(self) -> "tuple[NodeCrash, ...]":
        return tuple(e for e in self.events if isinstance(e, NodeCrash))

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before requeue attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(self.backoff_cap, self.backoff_base * 2.0 ** (attempt - 1))

    def validate_against(self, cluster) -> None:
        """Check node references against a cluster spec.

        Crash / brownout / straggler targets must exist; crashes and
        stragglers must hit *worker* nodes (storage nodes serve data but
        run nothing — the replication assumption keeps their data safe);
        at least one worker must survive every crash.
        """
        workers = set(cluster.worker_ids)
        for event in self.events:
            node = getattr(event, "node", None)
            if node is None:
                continue
            if node not in cluster:
                raise ValueError(f"fault targets unknown node {node!r}")
            if isinstance(event, (NodeCrash, Straggler)) and node not in workers:
                raise ValueError(
                    f"{event.kind} may only target worker nodes, got {node!r}"
                )
        crashed = {e.node for e in self.crashes}
        if crashed >= workers:
            raise ValueError("fault plan crashes every worker; nothing survives")

    # -- serialization --------------------------------------------------- #

    def to_dict(self) -> dict:
        return {
            "schema": PLAN_SCHEMA_VERSION,
            "retry_budget": self.retry_budget,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
            "events": [asdict(e) for e in self.events],
        }

    def to_json(self, indent: "int | None" = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be a JSON object, got {type(data).__name__}")
        schema = data.get("schema", PLAN_SCHEMA_VERSION)
        if schema != PLAN_SCHEMA_VERSION:
            raise ValueError(f"unsupported fault-plan schema {schema!r}")
        events = []
        for i, raw in enumerate(data.get("events", [])):
            if not isinstance(raw, dict):
                raise ValueError(f"event #{i} must be an object, got {raw!r}")
            kind = raw.get("kind")
            event_cls = _EVENT_KINDS.get(kind)
            if event_cls is None:
                raise ValueError(f"event #{i} has unknown kind {kind!r}")
            fields = {k: v for k, v in raw.items() if k != "kind"}
            try:
                events.append(event_cls(**fields))
            except TypeError as exc:
                raise ValueError(f"event #{i} ({kind}): {exc}") from None
        return cls(
            events=tuple(events),
            retry_budget=int(data.get("retry_budget", 3)),
            backoff_base=float(data.get("backoff_base", 1.0)),
            backoff_cap=float(data.get("backoff_cap", 30.0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: "str | pathlib.Path") -> None:
        pathlib.Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: "str | pathlib.Path") -> "FaultPlan":
        return cls.from_json(pathlib.Path(path).read_text(encoding="utf-8"))
