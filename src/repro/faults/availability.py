"""Availability reporting: what the faults cost each scheduler.

Compares a healthy run against a faulty run of the same scheduler on
the same workload and summarizes the damage: JCT/makespan inflation,
retries, re-planning activity, and the volume of work lost to crashes
or recomputed after shuffle-data loss.  This is an *extension beyond
the paper* — Stage Delay Scheduling evaluates only healthy clusters;
the availability section quantifies how gracefully each strategy
degrades when the cluster does not cooperate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.simulation import SimulationResult


@dataclass(frozen=True)
class AvailabilityRow:
    """One scheduler's healthy-vs-faulty comparison."""

    scheduler: str
    healthy_makespan: float
    faulty_makespan: float
    #: ``faulty / healthy - 1`` (0.0 means the faults were free).
    jct_inflation: float
    retries: int
    replans: int
    partitions_lost: int
    jobs_failed: int
    work_lost_mb: float
    work_recomputed_mb: float

    def to_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "healthy_makespan": self.healthy_makespan,
            "faulty_makespan": self.faulty_makespan,
            "jct_inflation": self.jct_inflation,
            "retries": self.retries,
            "replans": self.replans,
            "partitions_lost": self.partitions_lost,
            "jobs_failed": self.jobs_failed,
            "work_lost_mb": self.work_lost_mb,
            "work_recomputed_mb": self.work_recomputed_mb,
        }


def availability_row(
    scheduler: str,
    healthy: "SimulationResult",
    faulty: "SimulationResult",
) -> AvailabilityRow:
    """Build one row from a healthy and a faulty run of ``scheduler``.

    ``faulty`` must carry fault stats (``faulty.faults``); ``healthy``
    must not (it is the baseline).  Failed jobs keep their failure time
    as ``finish_time``, so both makespans are finite.
    """
    stats = faulty.faults
    if stats is None:
        raise ValueError(
            f"faulty run of {scheduler!r} has no fault stats; was a fault "
            "plan actually installed?"
        )
    healthy_makespan = healthy.makespan
    faulty_makespan = faulty.makespan
    if not math.isfinite(healthy_makespan) or not math.isfinite(faulty_makespan):
        raise ValueError(f"non-finite makespan for {scheduler!r}")
    inflation = (
        faulty_makespan / healthy_makespan - 1.0 if healthy_makespan > 0.0 else 0.0
    )
    return AvailabilityRow(
        scheduler=scheduler,
        healthy_makespan=healthy_makespan,
        faulty_makespan=faulty_makespan,
        jct_inflation=inflation,
        retries=stats.retries,
        replans=stats.replans,
        partitions_lost=stats.partitions_lost,
        jobs_failed=len(stats.jobs_failed),
        work_lost_mb=stats.work_lost_bytes / 1e6,
        work_recomputed_mb=stats.work_recomputed_bytes / 1e6,
    )


def availability_report(
    healthy: "Mapping[str, SimulationResult]",
    faulty: "Mapping[str, SimulationResult]",
) -> list[AvailabilityRow]:
    """Rows for every scheduler present in both mappings (sorted by name)."""
    rows = []
    for name in sorted(healthy):
        if name in faulty:
            rows.append(availability_row(name, healthy[name], faulty[name]))
    return rows


def render_availability(rows: "list[AvailabilityRow]") -> str:
    """Fixed-width text table of the availability section."""
    if not rows:
        return "(no availability data)"
    header = (
        f"{'scheduler':<18} {'healthy':>9} {'faulty':>9} {'inflation':>9} "
        f"{'retries':>7} {'replans':>7} {'lost-MB':>9} {'recomp-MB':>9} {'failed':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.scheduler:<18} {row.healthy_makespan:>9.2f} "
            f"{row.faulty_makespan:>9.2f} {row.jct_inflation:>8.1%} "
            f"{row.retries:>7d} {row.replans:>7d} {row.work_lost_mb:>9.1f} "
            f"{row.work_recomputed_mb:>9.1f} {row.jobs_failed:>6d}"
        )
    return "\n".join(lines)
