"""Clock abstraction: the one place the service learns what time it is.

The scheduler daemon never reads the wall clock directly.  Every
time-dependent decision — arrival pacing, completion deadlines, drain
timeouts — goes through a :class:`Clock`, so the *entire* daemon can be
driven deterministically in tests with zero wall-clock sleeps:

* :class:`WallClock` maps real (``time.monotonic``) seconds onto
  service seconds through a configurable ``scale`` — ``scale=60`` makes
  one wall second worth a simulated minute, which is how ``repro
  serve`` replays hours of trace traffic in seconds of real time.
  ``monotonic`` is the sanctioned duration source (never ``time.time``,
  which the determinism lint forbids): service time is always *relative*
  to daemon start, so results carry no absolute timestamps.
* :class:`VirtualClock` holds time still until a driver advances it.
  ``asyncio`` coroutines that ``await clock.sleep_until(t)`` park on a
  future registered in a deadline heap; :meth:`VirtualClock.run_until`
  pops deadlines in ``(time, registration)`` order, waking sleepers and
  yielding to the event loop between firings so woken tasks run — and
  may register new, earlier deadlines — before time moves past them.
  The firing order is a pure function of the registered deadlines, so
  two runs of the same coroutine structure interleave identically.

The synchronous :class:`~repro.service.core.ServiceCore` is even more
passive: it only ever *receives* time (``advance_to(t)``), so unit
tests can skip clocks entirely and hand the core explicit instants.
"""

from __future__ import annotations

import abc
import asyncio
import heapq
import time
from typing import Optional


class Clock(abc.ABC):
    """Source of service time for the daemon."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current service time in seconds (monotone, starts near 0)."""

    @abc.abstractmethod
    async def sleep_until(self, t: float) -> None:
        """Suspend the calling coroutine until service time reaches ``t``."""

    async def sleep(self, seconds: float) -> None:
        """Suspend for ``seconds`` of service time (non-positive: yield)."""
        await self.sleep_until(self.now() + max(float(seconds), 0.0))


class WallClock(Clock):
    """Service time as scaled wall time.

    ``scale`` is service-seconds per wall-second: the default ``1.0``
    runs in real time; ``repro serve --time-scale 600`` compresses ten
    simulated minutes into each wall second.  Sleeps divide by the same
    scale, so a job whose simulated JCT is 300 s occupies its slot for
    ``300 / scale`` wall seconds.
    """

    def __init__(self, scale: float = 1.0, start: float = 0.0) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = float(scale)
        self._start = float(start)
        self._t0 = time.monotonic()

    def now(self) -> float:
        return self._start + (time.monotonic() - self._t0) * self.scale

    async def sleep_until(self, t: float) -> None:
        delay = (float(t) - self.now()) / self.scale
        await asyncio.sleep(max(delay, 0.0))


class VirtualClock(Clock):
    """Manually driven clock: time moves only when a driver advances it.

    Coroutines park in a ``(deadline, seq)`` heap; :meth:`advance_to`
    wakes everything due without yielding (enough for synchronous
    tests), while the async :meth:`run_until` interleaves wake-ups with
    event-loop turns so a woken task can register a new deadline before
    time passes it — the property that makes a daemon pump driven by
    this clock deterministic.
    """

    #: Event-loop turns granted per settle pass.  Each ``sleep(0)``
    #: lets every currently-runnable task take one step; a fixed budget
    #: keeps the schedule deterministic while covering await chains far
    #: deeper than the daemon's (pump → core → publisher is three).
    SETTLE_TURNS = 50

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: "list[tuple[float, int, asyncio.Future]]" = []
        self._seq = 0

    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        """Number of coroutines currently parked on this clock."""
        return sum(1 for _, _, fut in self._heap if not fut.done())

    def next_deadline(self) -> "Optional[float]":
        """Earliest live deadline, or ``None`` when nothing is parked."""
        while self._heap and self._heap[0][2].done():
            heapq.heappop(self._heap)  # cancelled sleeper; drop lazily
        return self._heap[0][0] if self._heap else None

    async def sleep_until(self, t: float) -> None:
        t = float(t)
        if t <= self._now:
            await asyncio.sleep(0)
            return
        fut = asyncio.get_running_loop().create_future()
        heapq.heappush(self._heap, (t, self._seq, fut))
        self._seq += 1
        await fut

    # -- drivers ------------------------------------------------------- #

    def advance_to(self, t: float) -> int:
        """Jump time to ``t`` (≥ now), waking every sleeper due by then.

        Returns the number of sleepers woken.  Futures are resolved but
        their coroutines only run on the next event-loop turn; use
        :meth:`run_until` when tasks must interleave with the advance.
        """
        t = float(t)
        if t < self._now:
            raise ValueError(f"cannot rewind clock from {self._now} to {t}")
        self._now = t
        return self._fire_due()

    def advance(self, seconds: float) -> int:
        return self.advance_to(self._now + float(seconds))

    async def run_until(self, t: float) -> None:
        """Advance to ``t``, giving woken tasks the loop between steps.

        Deadlines fire one instant at a time: time jumps to the next
        deadline, due sleepers wake, the loop settles (every runnable
        task progresses until it parks again), and only then does time
        move on.  A task that registers a new deadline ≤ ``t`` while
        settling is honoured in order.
        """
        t = float(t)
        if t < self._now:
            raise ValueError(f"cannot rewind clock from {self._now} to {t}")
        while True:
            await self.settle()
            nxt = self.next_deadline()
            if nxt is None or nxt > t:
                break
            self._now = max(self._now, nxt)
            self._fire_due()
        self._now = t
        await self.settle()

    async def settle(self) -> None:
        """Yield until every runnable task has parked again."""
        for _ in range(self.SETTLE_TURNS):
            await asyncio.sleep(0)

    def _fire_due(self) -> int:
        fired = 0
        while self._heap and self._heap[0][0] <= self._now:
            _, _, fut = heapq.heappop(self._heap)
            if not fut.done():
                fut.set_result(None)
                fired += 1
        return fired
