"""Streaming scheduler service: online DelayStage over open-loop arrivals.

The offline pipeline replays a fixed batch of trace-twin jobs; this
package turns the same machinery into a long-running daemon.  Jobs
arrive as a stream (sampled open-loop from the trace generator, or
POSTed by remote clients), each new DAG gets its stage-delay table
computed at admission, and completions are played out on a virtual or
scaled wall clock while the PR-7 telemetry plane (``/metrics``,
``/runs/<id>``, ``/events``) observes everything live.

Layering, bottom up:

* :mod:`~repro.service.clock` — the only place the daemon learns what
  time it is (``WallClock`` for ``repro serve``, ``VirtualClock`` for
  deterministic tests with zero wall sleeps);
* :mod:`~repro.service.state` — per-job lifecycle state machine and
  typed rejections;
* :mod:`~repro.service.admission` — bounded-queue admission control
  and load shedding;
* :mod:`~repro.service.core` — the deterministic submit/dispatch/
  complete engine (time-passive: callers hand it instants);
* :mod:`~repro.service.daemon` — the asyncio pump + arrival driver +
  HTTP control facade;
* :mod:`~repro.service.wire` / :mod:`~repro.service.client` — the JSON
  job format and a stdlib client for remote drivers.
"""

from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.client import ServiceClient, ServiceError
from repro.service.clock import Clock, VirtualClock, WallClock
from repro.service.core import ServiceCore
from repro.service.daemon import ServiceDaemon
from repro.service.state import (
    IllegalTransition,
    JobState,
    RejectedSubmission,
    Rejection,
    RejectionReason,
    ServiceJob,
)
from repro.service.wire import job_from_wire, job_to_wire

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "Clock",
    "IllegalTransition",
    "JobState",
    "RejectedSubmission",
    "Rejection",
    "RejectionReason",
    "ServiceClient",
    "ServiceCore",
    "ServiceDaemon",
    "ServiceError",
    "ServiceJob",
    "VirtualClock",
    "WallClock",
    "job_from_wire",
    "job_to_wire",
]
