"""Wire format: jobs as plain JSON for the submit endpoint.

``POST /service/submit`` carries a complete DAG — stages with volumes
and rates, plus parent→child edges — so remote clients can submit jobs
the server has never seen.  The format is deliberately dumb: one dict
per stage mirroring :class:`~repro.dag.stage.Stage`'s constructor, a
list of ``[parent, child]`` pairs, and a version tag so the schema can
evolve without silently misreading old payloads.

Round-trip fidelity matters more than compactness here: volumes and
rates pass through ``float()`` untouched, so a job serialized, shipped
over HTTP, and rebuilt server-side simulates bit-identically to the
original object (asserted in the service test battery).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.dag.job import Job
from repro.dag.stage import Stage

#: Version tag stamped into every payload.
WIRE_VERSION = 1


def job_to_wire(job: Job) -> dict:
    """Serialize a job to a JSON-safe dict."""
    return {
        "v": WIRE_VERSION,
        "job_id": job.job_id,
        "stages": [
            {
                "stage_id": stage.stage_id,
                "input_bytes": float(stage.input_bytes),
                "output_bytes": float(stage.output_bytes),
                "process_rate": float(stage.process_rate),
                "num_tasks": int(stage.num_tasks),
                "task_cv": float(stage.task_cv),
                "name": stage.name,
            }
            for stage in job.stages.values()
        ],
        "edges": [[parent, child] for parent, child in job.edges],
    }


def job_from_wire(payload: "Mapping[str, Any]") -> Job:
    """Rebuild a :class:`Job` from a wire dict.

    Raises :class:`ValueError` with a pointed message on malformed
    payloads; DAG-level validation (unknown stage refs, cycles) is
    delegated to the :class:`Job` constructor, which already enforces
    it for every other construction path.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"job payload must be an object, got "
                         f"{type(payload).__name__}")
    version = payload.get("v", WIRE_VERSION)
    if version != WIRE_VERSION:
        raise ValueError(f"unsupported wire version {version!r} "
                         f"(supported: {WIRE_VERSION})")
    job_id = payload.get("job_id")
    if not isinstance(job_id, str) or not job_id:
        raise ValueError("job payload needs a non-empty string 'job_id'")
    raw_stages = payload.get("stages")
    if not isinstance(raw_stages, (list, tuple)) or not raw_stages:
        raise ValueError("job payload needs a non-empty 'stages' list")
    stages = []
    for i, raw in enumerate(raw_stages):
        if not isinstance(raw, Mapping):
            raise ValueError(f"stages[{i}] must be an object")
        try:
            stages.append(Stage(
                stage_id=str(raw["stage_id"]),
                input_bytes=float(raw["input_bytes"]),
                output_bytes=float(raw["output_bytes"]),
                process_rate=float(raw["process_rate"]),
                num_tasks=int(raw.get("num_tasks", 64)),
                task_cv=float(raw.get("task_cv", 0.0)),
                name=str(raw.get("name", "")),
            ))
        except KeyError as exc:
            raise ValueError(f"stages[{i}] is missing field {exc}") from exc
        except (TypeError, ValueError) as exc:
            raise ValueError(f"stages[{i}] is malformed: {exc}") from exc
    raw_edges = payload.get("edges", [])
    if not isinstance(raw_edges, (list, tuple)):
        raise ValueError("'edges' must be a list of [parent, child] pairs")
    edges = []
    for i, pair in enumerate(raw_edges):
        if (not isinstance(pair, (list, tuple)) or len(pair) != 2
                or not all(isinstance(p, str) for p in pair)):
            raise ValueError(f"edges[{i}] must be a [parent, child] "
                             "pair of stage ids")
        edges.append((pair[0], pair[1]))
    return Job(job_id, stages, edges)
