"""ServiceClient: a stdlib HTTP client for the ``repro serve`` surface.

Thin urllib wrapper over the control routes — submit a DAG (wire
format), poll job status, cancel, drain, read service stats — with the
server's typed rejections surfaced as the same
:class:`~repro.service.state.RejectedSubmission` exception the
in-process core raises, so driver code (the demo, the CI load job) is
identical against a local core or a remote daemon.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import TYPE_CHECKING, Optional
from urllib.parse import urlsplit

from repro.service.state import RejectedSubmission, Rejection
from repro.service.wire import job_to_wire

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dag.job import Job


class ServiceError(RuntimeError):
    """Non-rejection HTTP failure from the service (4xx/5xx + message)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talks to one ``repro serve`` daemon at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        if "//" not in base_url:
            base_url = "http://" + base_url
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", "https"):
            raise ValueError(
                f"unsupported scheme {parts.scheme!r}; use http:// or https://"
            )
        self.base_url = f"{parts.scheme}://{parts.netloc}"
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------- #

    def _request(
        self, method: str, path: str, payload: "Optional[dict]" = None
    ) -> dict:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:  # noqa: S310 - scheme restricted above
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            body = exc.read().decode("utf-8", errors="replace")
            try:
                parsed = json.loads(body)
            except json.JSONDecodeError:
                parsed = {}
            rejected = parsed.get("rejected")
            if isinstance(rejected, dict):
                raise RejectedSubmission(Rejection(
                    job_id=str(rejected.get("job_id", "?")),
                    reason=str(rejected.get("reason", "unknown")),
                    detail=str(rejected.get("detail", "")),
                    at=float(rejected.get("at", 0.0)),
                    queue_depth=int(rejected.get("queue_depth", 0)),
                )) from exc
            message = parsed.get("error", body.strip() or exc.reason)
            raise ServiceError(exc.code, str(message)) from exc

    # -- control surface ------------------------------------------------ #

    def submit(self, job: "Job") -> dict:
        """Submit a DAG; returns the queued lifecycle record.

        Raises :class:`RejectedSubmission` when the daemon sheds the
        job (queue full, draining, duplicate, too large) — the caller
        decides whether to back off and retry.
        """
        return self._request(
            "POST", "/service/submit", job_to_wire(job)
        )["job"]

    def submit_wire(self, payload: dict) -> dict:
        return self._request("POST", "/service/submit", payload)["job"]

    def status(self, service_id: str) -> dict:
        return self._request("GET", f"/service/jobs/{service_id}")["job"]

    def jobs(self) -> "list[dict]":
        return self._request("GET", "/service/jobs")["jobs"]

    def cancel(self, service_id: str) -> dict:
        return self._request("POST", f"/service/cancel/{service_id}")["job"]

    def drain(self) -> dict:
        return self._request("POST", "/service/drain")["service"]

    def stats(self) -> dict:
        return self._request("GET", "/service")["service"]

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        url = self.base_url + "/metrics"
        with urllib.request.urlopen(url, timeout=self.timeout) as resp:  # noqa: S310 - scheme restricted above
            return resp.read().decode("utf-8")
