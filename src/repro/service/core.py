"""ServiceCore: the deterministic heart of the scheduler daemon.

The core is a discrete-event state machine over *service time*: it
accepts submissions, holds admitted jobs in a bounded FIFO queue,
dispatches them onto a fixed number of concurrent slots, and schedules
each job's completion event at ``dispatch_t + JCT``.  Crucially it is
**time-passive** — it never reads a clock; callers hand it instants
(``submit(..., )`` uses the time of the last ``advance_to``), so the
same submission sequence against the same core yields the same event
trajectory whether the instants came from a wall clock, a virtual
clock, or a plain test loop.

Dispatch is where the paper's machinery runs online: the configured
:class:`~repro.schedulers.base.Scheduler` prepares the job — for
DelayStage that is Algorithm 1 computing the stage-delay table for the
newly arrived DAG — and the prepared job runs through its own fluid
:class:`~repro.simulator.simulation.Simulation`, exactly as the offline
``replay_batch`` path does.  The per-job simulated JCT is therefore
bit-identical to an offline replay of the same job (the acceptance
contract); service-level queueing delay lives in the lifecycle record
(``dispatch_t - submit_t``), never inside the JCT.

Concurrency model: every public method takes the core's re-entrant
lock, so HTTP handler threads and the asyncio pump can interleave
freely; within the lock all bookkeeping is pure data-structure work.
Fault plans ride on the scheduler's simulation config; each per-job
simulation gets its own injector, and fault telemetry is published on
the shared bus as the simulations execute.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.obs.live.bus import TelemetryPublisher, fault_hook
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.state import (
    JobState,
    RejectedSubmission,
    Rejection,
    ServiceJob,
)
from repro.simulator.simulation import Simulation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.spec import ClusterSpec
    from repro.dag.job import Job
    from repro.schedulers.base import Scheduler

#: Bounded ring of recent rejections kept for inspection.
REJECTION_HISTORY = 256


class ServiceCore:
    """Deterministic submit/dispatch/complete state machine."""

    def __init__(
        self,
        cluster: "ClusterSpec",
        scheduler: "Scheduler",
        *,
        slots: int = 2,
        admission: "AdmissionConfig | None" = None,
        publisher: "TelemetryPublisher | None" = None,
        start_time: float = 0.0,
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.cluster = cluster
        self.scheduler = scheduler
        self.slots = slots
        self.admission = AdmissionController(admission)
        self.publisher = publisher
        self._lock = threading.RLock()
        self._now = float(start_time)
        self._seq = 0
        #: All known job records (bounded: terminal ones are evicted
        #: beyond ``retain_results``); insertion ordered.
        self.jobs: "dict[str, ServiceJob]" = {}
        #: Admitted job payloads, dropped once the job is terminal.
        self._payloads: "dict[str, Job]" = {}
        self._queue: "deque[str]" = deque()
        #: (finish_t, seq, service_id) completion events.
        self._running: "list[tuple[float, int, str]]" = []
        self._in_flight = 0
        #: Simulated outcome parked until the completion event fires.
        self._outcomes: "dict[str, tuple[float, bool, int]]" = {}
        self._terminal_order: "deque[str]" = deque()
        self._rejections: "deque[Rejection]" = deque(maxlen=REJECTION_HISTORY)
        self.draining = False
        self._drained_published = False
        self.counters = {
            "submitted": 0,
            "admitted": 0,
            "rejected": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "evicted": 0,
        }
        self.rejected_by_reason: "dict[str, int]" = {}
        self.peak_queue_depth = 0

    # -- time ----------------------------------------------------------- #

    @property
    def now(self) -> float:
        with self._lock:
            return self._now

    def next_deadline(self) -> "Optional[float]":
        """Earliest pending completion, or ``None`` when nothing runs."""
        with self._lock:
            return self._running[0][0] if self._running else None

    @property
    def idle(self) -> bool:
        """True when nothing is queued or running."""
        with self._lock:
            return not self._queue and not self._running

    # -- submission ----------------------------------------------------- #

    def submit(
        self, job: "Job", *, service_id: "str | None" = None
    ) -> ServiceJob:
        """Admit ``job`` (or shed it with a typed rejection).

        Returns the queued :class:`ServiceJob`; raises
        :class:`RejectedSubmission` when admission control says no.
        The job is *not* dispatched here — dispatch happens on the next
        ``advance_to``, which is what keeps HTTP submit latency flat
        even when simulations are expensive.
        """
        sid = service_id if service_id is not None else job.job_id
        with self._lock:
            self.counters["submitted"] += 1
            verdict = self.admission.decide(
                service_id=sid,
                stages=job.num_stages,
                queue_depth=len(self._queue),
                draining=self.draining,
                known=sid in self.jobs,
            )
            if verdict is not None:
                reason, detail = verdict
                rejection = Rejection(
                    job_id=sid, reason=reason, detail=detail,
                    at=self._now, queue_depth=len(self._queue),
                )
                self.counters["rejected"] += 1
                self.rejected_by_reason[reason] = (
                    self.rejected_by_reason.get(reason, 0) + 1
                )
                self._rejections.append(rejection)
                if self.publisher is not None:
                    self.publisher.job_rejected(
                        sid, reason, queue_depth=len(self._queue),
                        running=self._in_flight,
                    )
                raise RejectedSubmission(rejection)
            self._seq += 1
            record = ServiceJob(
                service_id=sid,
                dag_job_id=job.job_id,
                stages=job.num_stages,
                submit_t=self._now,
                seq=self._seq,
                scheduler=self.scheduler.name,
            )
            self.jobs[sid] = record
            self._payloads[sid] = job
            self._queue.append(sid)
            self.counters["admitted"] += 1
            self.peak_queue_depth = max(self.peak_queue_depth,
                                        len(self._queue))
            if self.publisher is not None:
                self.publisher.job_submitted(
                    sid, stages=job.num_stages,
                    queue_depth=len(self._queue), running=self._in_flight,
                )
            return record

    # -- control -------------------------------------------------------- #

    def cancel(self, service_id: str) -> "Optional[ServiceJob]":
        """Cancel a queued or running job.

        Returns the (possibly unchanged) record, or ``None`` for an
        unknown id.  Cancelling a terminal job is a no-op; cancelling a
        running job frees its slot immediately — its already-simulated
        outcome is discarded, so it never reports a JCT.
        """
        with self._lock:
            record = self.jobs.get(service_id)
            if record is None or record.terminal:
                return record
            was = record.state
            record.mark_cancelled(self._now)
            if was is JobState.QUEUED:
                self._queue.remove(service_id)
            else:  # RUNNING: the stale heap entry is skipped at pop time
                self._outcomes.pop(service_id, None)
                self._in_flight -= 1
            self.counters["cancelled"] += 1
            self._retire(service_id)
            if self.publisher is not None:
                self.publisher.job_cancelled(
                    service_id, was=was.value,
                    queue_depth=len(self._queue), running=self._in_flight,
                )
            self._dispatch(self._now)
            self._maybe_drained()
            return record

    def drain(self) -> dict:
        """Stop admitting; queued and running jobs still finish."""
        with self._lock:
            if not self.draining:
                self.draining = True
                if self.publisher is not None:
                    self.publisher.drain_started(
                        queue_depth=len(self._queue), running=self._in_flight,
                    )
            self._maybe_drained()
            return self.stats()

    @property
    def drained(self) -> bool:
        with self._lock:
            return self.draining and not self._queue and not self._running

    # -- the event loop body -------------------------------------------- #

    def advance_to(self, t: float) -> int:
        """Move service time to ``t``, firing everything due on the way.

        Completions are processed in ``(finish_t, seq)`` order; each
        freed slot immediately redispatches from the queue *at the
        completion instant*, so a burst of completions at the same time
        drains the queue deterministically.  Returns the number of
        lifecycle events (dispatches + completions) processed.
        """
        with self._lock:
            t = float(t)
            if t < self._now:
                raise ValueError(
                    f"cannot rewind service time from {self._now} to {t}"
                )
            processed = self._dispatch(self._now)
            while self._running and self._running[0][0] <= t:
                finish_t, _, sid = heapq.heappop(self._running)
                self._now = max(self._now, finish_t)
                record = self.jobs.get(sid)
                if record is None or record.state is not JobState.RUNNING:
                    continue  # cancelled (slot already freed) or evicted
                outcome = self._outcomes.pop(sid)
                jct, failed, retries = outcome
                record.retries = retries
                if failed:
                    record.mark_failed(self._now, failure_time=jct)
                    self.counters["failed"] += 1
                    if self.publisher is not None:
                        self.publisher.job_failed(
                            sid, failure_time=jct, retries=retries,
                            queue_depth=len(self._queue),
                            running=self._in_flight - 1,
                        )
                else:
                    record.mark_completed(self._now, jct=jct)
                    self.counters["completed"] += 1
                    if self.publisher is not None:
                        self.publisher.job_done(jct=jct)
                self._in_flight -= 1
                self._retire(sid)
                processed += 1
                processed += self._dispatch(self._now)
            self._now = t
            self._maybe_drained()
            return processed

    def run_until_idle(self, limit: "float | None" = None) -> float:
        """Advance through completions until nothing is running.

        Dispatches the backlog first, then repeatedly jumps to the next
        completion.  ``limit`` bounds how far time may advance (the
        soak tests' deadlock guard).  Returns the final service time.
        """
        with self._lock:
            self.advance_to(self._now)
            while True:
                deadline = self.next_deadline()
                if deadline is None:
                    break
                if limit is not None and deadline > limit:
                    break
                self.advance_to(deadline)
            return self._now

    # -- internals ------------------------------------------------------ #

    def _dispatch(self, t: float) -> int:
        """Fill free slots from the queue; runs the simulations eagerly.

        The simulation executes at dispatch time (its wall cost is the
        service's processing cost) but the *service-time* completion is
        scheduled at ``t + JCT`` — the fluid simulator plays the role
        of the cluster, and the core plays the role of its clock.
        """
        dispatched = 0
        while self._queue and self._in_flight < self.slots:
            sid = self._queue[0]
            record = self.jobs[sid]
            if record.submit_t > t:
                break  # future arrival (pump catching up); not due yet
            self._queue.popleft()
            job = self._payloads[sid]
            record.mark_running(t)
            prepared = self.scheduler.prepare(job, self.cluster)
            schedule = prepared.info.get("schedule")
            delays = getattr(schedule, "delays", None)
            if delays:
                record.stages_delayed = sum(1 for d in delays.values() if d > 0)
                record.total_delay_s = float(sum(delays.values()))
            predicted = getattr(schedule, "predicted_makespan", None)
            if predicted is not None:
                record.predicted_makespan = float(predicted)
            if self.publisher is not None:
                self.publisher.schedule_computed(
                    self.scheduler.name, prepared.info
                )
            sim = Simulation(
                self.cluster,
                prepared.config,
                fault_hook=fault_hook(self.publisher),
            )
            sim.add_job(job, prepared.policy)
            result = sim.run()
            jct = result.job_completion_time(job.job_id)
            stats = result.faults
            failed = stats is not None and job.job_id in stats.jobs_failed
            retries = stats.retries if stats is not None else 0
            if stats is not None:
                record.extra["faults"] = {
                    "injected": stats.injected,
                    "crashes": stats.crashes,
                    "brownouts": stats.brownouts,
                    "stragglers": stats.stragglers,
                    "partitions_lost": stats.partitions_lost,
                    "retries": stats.retries,
                }
            duration = float(jct)
            self._outcomes[sid] = (duration, failed, retries)
            self._seq += 1
            heapq.heappush(self._running, (t + duration, self._seq, sid))
            self._in_flight += 1
            dispatched += 1
        return dispatched

    def _retire(self, service_id: str) -> None:
        """Drop the payload and enforce the terminal-record bound."""
        self._payloads.pop(service_id, None)
        self._terminal_order.append(service_id)
        retain = self.admission.config.retain_results
        while len(self._terminal_order) > retain:
            victim = self._terminal_order.popleft()
            if self.jobs.pop(victim, None) is not None:
                self.counters["evicted"] += 1

    def _maybe_drained(self) -> None:
        if (self.draining and not self._queue and not self._running
                and not self._drained_published):
            self._drained_published = True
            if self.publisher is not None:
                self.publisher.drain_finished(
                    completed=self.counters["completed"],
                    failed=self.counters["failed"],
                    cancelled=self.counters["cancelled"],
                    rejected=self.counters["rejected"],
                )

    # -- views ----------------------------------------------------------- #

    def status(self, service_id: str) -> "Optional[ServiceJob]":
        with self._lock:
            return self.jobs.get(service_id)

    def jobs_snapshot(self) -> "list[ServiceJob]":
        """Retained lifecycle records in admission order."""
        with self._lock:
            return sorted(self.jobs.values(), key=lambda r: r.seq)

    def job_states(self) -> "dict[str, int]":
        """Count of retained records per lifecycle state."""
        with self._lock:
            counts: "dict[str, int]" = {}
            for record in self.jobs.values():
                counts[record.state.value] = (
                    counts.get(record.state.value, 0) + 1
                )
            return counts

    def rejections(self) -> "list[Rejection]":
        with self._lock:
            return list(self._rejections)

    def stats(self) -> dict:
        """Counters + occupancy snapshot (the ``/service`` payload)."""
        with self._lock:
            return {
                "now": self._now,
                "slots": self.slots,
                "queue_depth": len(self._queue),
                "running": self._in_flight,
                "peak_queue_depth": self.peak_queue_depth,
                "max_pending": self.admission.config.max_pending,
                "draining": self.draining,
                "drained": (self.draining and not self._queue
                            and not self._running),
                "scheduler": self.scheduler.name,
                "counters": dict(self.counters),
                "rejected_by_reason": dict(self.rejected_by_reason),
                "states": self.job_states(),
            }
