"""Job lifecycle state machine for the scheduler service.

Every job the service admits is tracked by one :class:`ServiceJob`
record walking a fixed transition graph::

    QUEUED ──▶ RUNNING ──▶ COMPLETED
       │          ├──────▶ FAILED
       └──────────┴──────▶ CANCELLED

Transitions outside the graph raise :class:`IllegalTransition` — the
state machine *enforces* its invariants at runtime rather than trusting
callers, which is what the stateful hypothesis battery hammers:

* a job reaches at most one terminal state (no double completion);
* a JCT is recorded exactly on the ``RUNNING → COMPLETED`` edge and
  never afterwards — cancelled and failed jobs never report one;
* timestamps are monotone along the lifecycle
  (``submit_t ≤ dispatch_t ≤ finish_t``).

Submissions the service refuses to admit never become jobs at all:
they are captured as typed :class:`Rejection` records (queue full,
draining, duplicate id, DAG too large) raised to the caller as
:class:`RejectedSubmission` and counted by the core, so load shedding
is observable without growing state per shed request.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class JobState(enum.Enum):
    """Lifecycle states of an admitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: Legal transitions; terminal states map to the empty set.
TRANSITIONS: "dict[JobState, frozenset[JobState]]" = {
    JobState.QUEUED: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset(
        {JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED}
    ),
    JobState.COMPLETED: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}

TERMINAL_STATES = frozenset(
    state for state, nexts in TRANSITIONS.items() if not nexts
)


class IllegalTransition(RuntimeError):
    """A caller attempted a transition outside the lifecycle graph."""


class RejectionReason:
    """Typed load-shed reasons (stable strings, used as metric labels)."""

    QUEUE_FULL = "queue_full"
    DRAINING = "draining"
    DUPLICATE = "duplicate"
    TOO_LARGE = "too_large"

    ALL = (QUEUE_FULL, DRAINING, DUPLICATE, TOO_LARGE)


@dataclass(frozen=True)
class Rejection:
    """One refused submission (the job was never admitted)."""

    job_id: str
    reason: str
    detail: str
    at: float
    queue_depth: int

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "reason": self.reason,
            "detail": self.detail,
            "at": self.at,
            "queue_depth": self.queue_depth,
        }


class RejectedSubmission(Exception):
    """Raised by ``submit`` when admission control sheds the job."""

    def __init__(self, rejection: Rejection) -> None:
        super().__init__(
            f"job {rejection.job_id!r} rejected ({rejection.reason}): "
            f"{rejection.detail}"
        )
        self.rejection = rejection


@dataclass
class ServiceJob:
    """One admitted job's lifecycle record.

    ``jct`` is the job's *simulated* completion time — the quantity the
    acceptance contract pins bit-identical to an offline replay of the
    same job.  Service-side queueing shows up separately as
    ``dispatch_t - submit_t``, never inside the JCT.
    """

    service_id: str
    dag_job_id: str
    stages: int
    submit_t: float
    state: JobState = JobState.QUEUED
    dispatch_t: "Optional[float]" = None
    finish_t: "Optional[float]" = None
    jct: "Optional[float]" = None
    failure_time: "Optional[float]" = None
    retries: int = 0
    scheduler: "Optional[str]" = None
    stages_delayed: "Optional[int]" = None
    total_delay_s: "Optional[float]" = None
    predicted_makespan: "Optional[float]" = None
    cancelled_from: "Optional[str]" = None
    #: Deterministic admission order (assigned by the core).
    seq: int = 0
    extra: dict = field(default_factory=dict)

    # -- transitions ---------------------------------------------------- #

    def _advance(self, new_state: JobState) -> None:
        if new_state not in TRANSITIONS[self.state]:
            raise IllegalTransition(
                f"job {self.service_id!r}: {self.state.value} -> "
                f"{new_state.value} is not a legal transition"
            )
        self.state = new_state

    def mark_running(self, at: float) -> None:
        if at < self.submit_t:
            raise IllegalTransition(
                f"job {self.service_id!r}: dispatch at {at} precedes "
                f"submit at {self.submit_t}"
            )
        self._advance(JobState.RUNNING)
        self.dispatch_t = at

    def mark_completed(self, at: float, jct: float) -> None:
        self._advance(JobState.COMPLETED)
        self._check_finish(at)
        self.finish_t = at
        self.jct = float(jct)

    def mark_failed(self, at: float, failure_time: float) -> None:
        self._advance(JobState.FAILED)
        self._check_finish(at)
        self.finish_t = at
        self.failure_time = float(failure_time)

    def mark_cancelled(self, at: float) -> None:
        was = self.state
        self._advance(JobState.CANCELLED)
        self.cancelled_from = was.value
        self.finish_t = at
        # Invariant, not an accident: a cancelled job never reports a
        # JCT even if its simulation already ran.
        self.jct = None

    def _check_finish(self, at: float) -> None:
        if self.dispatch_t is not None and at < self.dispatch_t:
            raise IllegalTransition(
                f"job {self.service_id!r}: finish at {at} precedes "
                f"dispatch at {self.dispatch_t}"
            )

    # -- views ----------------------------------------------------------- #

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        payload: "dict[str, Any]" = {
            "service_id": self.service_id,
            "dag_job_id": self.dag_job_id,
            "stages": self.stages,
            "state": self.state.value,
            "submit_t": self.submit_t,
            "dispatch_t": self.dispatch_t,
            "finish_t": self.finish_t,
            "jct": self.jct,
            "failure_time": self.failure_time,
            "retries": self.retries,
            "scheduler": self.scheduler,
            "stages_delayed": self.stages_delayed,
            "total_delay_s": self.total_delay_s,
            "predicted_makespan": self.predicted_makespan,
            "cancelled_from": self.cancelled_from,
            "seq": self.seq,
        }
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload
