"""ServiceDaemon: the asyncio shell around the deterministic core.

The daemon owns two coroutines on one event loop:

* the **arrival task** walks an open-loop submission schedule
  (``(submit_t, job)`` pairs from
  :func:`repro.trace.generator.open_loop_arrivals`), sleeping on the
  :class:`~repro.service.clock.Clock` until each arrival instant and
  submitting to the core — arrivals never slow down because the
  service is busy, which is what makes overload reachable;
* the **pump task** advances the core to "now" whenever something can
  happen: a completion deadline from the core's heap, or a wake-up
  poked by submissions/cancels/drains arriving from HTTP handler
  threads.

Both only read time through the clock, so the whole daemon runs under
a :class:`~repro.service.clock.VirtualClock` in tests — ``await
clock.run_until(t)`` plays hours of service traffic with zero
wall-clock sleeps and a deterministic interleaving.  Under a
:class:`~repro.service.clock.WallClock` the same code is ``repro
serve``.

The daemon is also the **control facade** the HTTP layer calls: the
``control=`` object handed to :class:`~repro.obs.live.server
.LiveServer` is this class.  Control methods are thread-safe (the core
locks internally) and wake the pump across threads via
``loop.call_soon_threadsafe``, so a submission is dispatched at the
next loop turn rather than at the next poll.
"""

from __future__ import annotations

import asyncio
import threading
from typing import TYPE_CHECKING, Iterable, Optional

from repro.service.clock import Clock
from repro.service.core import ServiceCore
from repro.service.wire import job_from_wire

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dag.job import Job


class ServiceDaemon:
    """Asyncio pump + arrival driver + control facade over a core."""

    def __init__(
        self,
        core: ServiceCore,
        clock: Clock,
        *,
        arrivals: "Optional[Iterable[tuple[float, Job]]]" = None,
        drain_after: "Optional[float]" = None,
    ) -> None:
        self.core = core
        self.clock = clock
        self.arrivals = arrivals
        #: Auto-drain once the arrival schedule is exhausted and service
        #: time passes this instant (``repro serve --drain-after``).
        self.drain_after = drain_after
        self._loop: "Optional[asyncio.AbstractEventLoop]" = None
        self._wake: "Optional[asyncio.Event]" = None
        self._stopped = False
        self._lock = threading.Lock()

    # -- control facade (HTTP handler threads land here) ---------------- #

    def submit(self, job: "Job", *, service_id: "str | None" = None) -> dict:
        """Admit a job; returns its lifecycle record as a dict.

        Raises :class:`~repro.service.state.RejectedSubmission` on a
        typed load-shed verdict (mapped to 429/503/409/413 upstream).
        """
        record = self.core.submit(job, service_id=service_id)
        self.poke()
        return record.to_dict()

    def submit_wire(self, payload: dict) -> dict:
        """Wire-format submission (the ``POST /service/submit`` body)."""
        return self.submit(job_from_wire(payload))

    def cancel(self, service_id: str) -> "Optional[dict]":
        record = self.core.cancel(service_id)
        self.poke()
        return record.to_dict() if record is not None else None

    def drain(self) -> dict:
        stats = self.core.drain()
        self.poke()
        return stats

    def stats(self) -> dict:
        return self.core.stats()

    def job(self, service_id: str) -> "Optional[dict]":
        record = self.core.status(service_id)
        return record.to_dict() if record is not None else None

    def jobs_list(self) -> "list[dict]":
        return [r.to_dict() for r in self.core.jobs_snapshot()]

    def poke(self) -> None:
        """Wake the pump; safe from any thread, no-op before ``run``."""
        loop, wake = self._loop, self._wake
        if loop is None or wake is None or loop.is_closed():
            return
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            wake.set()
        else:
            loop.call_soon_threadsafe(wake.set)

    def stop(self) -> None:
        """Hard-stop the pump (drain is the graceful path)."""
        with self._lock:
            self._stopped = True
        self.poke()

    # -- the event loop side -------------------------------------------- #

    async def run(self) -> dict:
        """Run arrivals + pump until drained (or stopped); returns stats.

        The coroutine finishes when the core has drained — every
        admitted job reached a terminal state and admission is closed —
        so ``await daemon.run()`` *is* graceful shutdown.
        """
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        arrival_task = (
            asyncio.create_task(self._play_arrivals(), name="service-arrivals")
            if self.arrivals is not None
            else None
        )
        try:
            await self._pump(arrival_task)
        finally:
            if arrival_task is not None and not arrival_task.done():
                arrival_task.cancel()
                await asyncio.gather(arrival_task, return_exceptions=True)
        return self.core.stats()

    async def _play_arrivals(self) -> None:
        """Open-loop submission driver: sleep to each instant, submit."""
        from repro.service.state import RejectedSubmission

        assert self.arrivals is not None
        for submit_t, job in self.arrivals:
            await self.clock.sleep_until(submit_t)
            with self._lock:
                if self._stopped:
                    return
            try:
                self.core.submit(job)
            except RejectedSubmission:
                pass  # shed: counted and published by the core
            self.poke()

    async def _pump(self, arrival_task: "Optional[asyncio.Task]") -> None:
        """Advance the core whenever time reaches something actionable."""
        assert self._wake is not None
        while True:
            with self._lock:
                if self._stopped:
                    return
            now = self.clock.now()
            self.core.advance_to(now)
            if self.core.drained:
                return
            arrivals_done = arrival_task is None or arrival_task.done()
            if (self.drain_after is not None and arrivals_done
                    and now >= self.drain_after and not self.core.draining):
                self.core.drain()
                continue
            deadline = self.core.next_deadline()
            if (deadline is None and self.drain_after is not None
                    and arrivals_done and not self.core.draining):
                deadline = self.drain_after
            self._wake.clear()
            waiters = [
                asyncio.ensure_future(self._wake.wait()),
            ]
            if deadline is not None:
                waiters.append(
                    asyncio.ensure_future(self.clock.sleep_until(deadline))
                )
            try:
                await asyncio.wait(
                    waiters, return_when=asyncio.FIRST_COMPLETED
                )
            finally:
                for waiter in waiters:
                    if not waiter.done():
                        waiter.cancel()
                await asyncio.gather(*waiters, return_exceptions=True)


async def serve_until_drained(
    daemon: ServiceDaemon,
) -> dict:
    """Convenience wrapper: run the daemon to completion, return stats."""
    return await daemon.run()
