"""Admission control: who gets in, who gets shed, and why.

The service is open-loop — arrivals do not slow down because the
cluster is busy — so overload protection has to happen at the door.
The controller is a pure predicate over the service's current occupancy
(no clock, no randomness): given the same submission against the same
queue state it always returns the same verdict, which keeps overload
runs exactly as replayable as healthy ones.

Verdicts are ``None`` (admit) or a :data:`RejectionReason` string:

* ``queue_full`` — the bounded pending queue is at ``max_pending``;
  admitting more would grow memory without bound under sustained
  overload.  This is the backpressure signal: clients see a typed
  rejection (HTTP 429) and decide whether to back off and retry.
* ``draining``   — the service has stopped admitting (graceful
  shutdown); queued and running jobs still finish.
* ``duplicate``  — the service id is already tracked; replaying a
  submission must not double-run a job.
* ``too_large``  — the DAG exceeds ``max_stages`` (off by default);
  a per-job size cap for deployments that bound worst-case planning
  cost up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.service.state import RejectionReason


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the service's admission and retention policy."""

    #: Bound on the pending (admitted-but-not-dispatched) queue.
    max_pending: int = 64
    #: Reject DAGs with more stages than this (``None``: no cap).
    max_stages: "Optional[int]" = None
    #: Terminal job records kept for ``status``; older ones are evicted
    #: (counters are preserved), bounding memory over a long soak.
    retain_results: int = 4096

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.max_stages is not None and self.max_stages < 1:
            raise ValueError(
                f"max_stages must be >= 1, got {self.max_stages}"
            )
        if self.retain_results < 0:
            raise ValueError(
                f"retain_results must be >= 0, got {self.retain_results}"
            )


class AdmissionController:
    """Stateless admit/shed verdicts against an :class:`AdmissionConfig`."""

    def __init__(self, config: "AdmissionConfig | None" = None) -> None:
        self.config = config if config is not None else AdmissionConfig()

    def decide(
        self,
        *,
        service_id: str,
        stages: int,
        queue_depth: int,
        draining: bool,
        known: bool,
    ) -> "Optional[tuple[str, str]]":
        """``None`` to admit, else ``(reason, detail)``.

        Checks are ordered so the most actionable reason wins: a
        duplicate is a caller bug regardless of load; draining beats
        queue pressure; the size cap beats queue pressure (the job
        would never be admissible).
        """
        if known:
            return (
                RejectionReason.DUPLICATE,
                f"service id {service_id!r} is already tracked",
            )
        if draining:
            return (
                RejectionReason.DRAINING,
                "service is draining and admits no new jobs",
            )
        cfg = self.config
        if cfg.max_stages is not None and stages > cfg.max_stages:
            return (
                RejectionReason.TOO_LARGE,
                f"job has {stages} stages, cap is {cfg.max_stages}",
            )
        if queue_depth >= cfg.max_pending:
            return (
                RejectionReason.QUEUE_FULL,
                f"pending queue is at its bound ({cfg.max_pending})",
            )
        return None
