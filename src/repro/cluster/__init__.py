"""Cluster substrate: node and cluster specifications.

The paper evaluates on 30 Amazon EC2 ``m4.large`` instances (2 vCPUs,
8 GB RAM, 32 GB SSD, 100–480 Mbps NIC) with two 1-vCPU executors per
instance and 3 dedicated HDFS storage instances, and simulates 4,000
Alibaba machines (NIC 100 Mbps–2 Gbps, disk 80 MB/s, executors = CPU
cores).  Both configurations are available as ready-made constructors.
"""

from repro.cluster.spec import (
    ClusterSpec,
    NodeSpec,
    alibaba_sim_cluster,
    ec2_m4large_cluster,
    uniform_cluster,
)
from repro.cluster.geo import GeoCluster, geo_cluster
from repro.cluster.topology import Topology

__all__ = [
    "NodeSpec",
    "ClusterSpec",
    "ec2_m4large_cluster",
    "alibaba_sim_cluster",
    "uniform_cluster",
    "GeoCluster",
    "geo_cluster",
    "Topology",
]
