"""Geo-distributed cluster construction (the paper's Sec. 6 extension).

The related-work discussion positions DelayStage as orthogonal to
geo-distributed analytics (Iridium, Tetrium, Clarinet) and names the
geo-distributed setting as planned future work.  This module provides
the substrate: a cluster whose workers live in multiple datacenters
with wide-area links far slower than intra-DC networking, expressed
via per-pair capacity constraints that the simulator's max-min solver
honors.

DelayStage applies unchanged — the model's ``B^{i,w}`` was always
per-link — so the extension is an experiment, not new scheduling code:
cross-DC shuffle reads become the long network phases that delaying
can overlap with computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.cluster.spec import ClusterSpec, NodeSpec
from repro.util.units import mbps_to_bytes_per_sec, MB
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import Topology


@dataclass(frozen=True)
class GeoCluster:
    """A cluster spec plus its inter-datacenter link constraints.

    Attributes
    ----------
    spec:
        The flat :class:`~repro.cluster.spec.ClusterSpec` (node ids are
        ``dc<i>-w<j>`` / ``dc<i>-store<j>``).
    pair_capacities:
        ``(src, dst) -> bytes/s`` caps for node pairs crossing a
        datacenter boundary.  Apply to a topology with
        :meth:`apply_to`.
    datacenters:
        Node ids grouped per datacenter.
    """

    spec: ClusterSpec
    pair_capacities: dict
    datacenters: tuple[tuple[str, ...], ...]

    def apply_to(self, topology: "Topology") -> None:
        """Install the WAN caps on a :class:`~repro.cluster.topology.Topology`."""
        for (src, dst), cap in self.pair_capacities.items():
            topology.set_pair_capacity(src, dst, cap)

    def dc_of(self, node_id: str) -> int:
        for i, nodes in enumerate(self.datacenters):
            if node_id in nodes:
                return i
        raise KeyError(f"unknown node {node_id!r}")


def geo_cluster(
    num_datacenters: int = 2,
    workers_per_dc: int = 4,
    *,
    executors_per_worker: int = 2,
    intra_dc_mbps: float = 1000.0,
    inter_dc_mbps: float = 150.0,
    disk_mb_per_sec: float = 150.0,
    storage_per_dc: int = 1,
) -> GeoCluster:
    """Build a multi-datacenter cluster with constrained WAN links.

    Every node pair spanning two datacenters is capped at
    ``inter_dc_mbps`` (per-pair — the WAN share each transfer can get),
    while intra-DC pairs run at NIC speed.
    """
    if num_datacenters < 2:
        raise ValueError("a geo cluster needs at least 2 datacenters")
    check_positive(inter_dc_mbps, "inter_dc_mbps")
    if inter_dc_mbps > intra_dc_mbps:
        raise ValueError("inter_dc_mbps must not exceed intra_dc_mbps")

    nodes: list[NodeSpec] = []
    groups: list[tuple[str, ...]] = []
    for dc in range(num_datacenters):
        ids = []
        for w in range(workers_per_dc):
            nid = f"dc{dc}-w{w}"
            nodes.append(
                NodeSpec(
                    node_id=nid,
                    executors=executors_per_worker,
                    nic_bandwidth=mbps_to_bytes_per_sec(intra_dc_mbps),
                    disk_bandwidth=disk_mb_per_sec * MB,
                )
            )
            ids.append(nid)
        for s in range(storage_per_dc):
            nid = f"dc{dc}-store{s}"
            nodes.append(
                NodeSpec(
                    node_id=nid,
                    executors=0,
                    nic_bandwidth=mbps_to_bytes_per_sec(intra_dc_mbps),
                    disk_bandwidth=disk_mb_per_sec * MB,
                    is_storage=True,
                )
            )
            ids.append(nid)
        groups.append(tuple(ids))

    spec = ClusterSpec(nodes)
    wan_cap = mbps_to_bytes_per_sec(inter_dc_mbps)
    pair_caps: dict = {}
    for i, group_a in enumerate(groups):
        for j, group_b in enumerate(groups):
            if i == j:
                continue
            for a in group_a:
                for b in group_b:
                    pair_caps[(a, b)] = wan_cap
    return GeoCluster(spec=spec, pair_capacities=pair_caps, datacenters=tuple(groups))
