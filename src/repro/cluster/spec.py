"""Node and cluster specifications."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.util.rng import resolve_rng
from repro.util.units import gbps_to_bytes_per_sec, mbps_to_bytes_per_sec, MB
from repro.util.validation import check_positive


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one cluster node.

    Parameters
    ----------
    node_id:
        Unique name, e.g. ``"w3"`` for workers or ``"hdfs0"`` for
        storage nodes.
    executors:
        Number of executors (``eps_w`` in the paper's Table 1).  Worker
        CPU is modeled as this many unit-rate execution slots shared
        equally among concurrently computing stages.
    nic_bandwidth:
        Full-duplex NIC capacity in bytes/s (applies independently to
        ingress and egress).
    disk_bandwidth:
        Local-disk write bandwidth ``D_w`` in bytes/s.
    is_storage:
        ``True`` for dedicated storage nodes (the paper's HDFS
        instances): they serve source-stage input but run no executors.
    """

    node_id: str
    executors: int
    nic_bandwidth: float
    disk_bandwidth: float
    is_storage: bool = False

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ValueError("node_id must be a non-empty string")
        if self.executors < 0:
            raise ValueError(f"executors must be >= 0, got {self.executors}")
        if not self.is_storage and self.executors == 0:
            raise ValueError(f"worker node {self.node_id!r} must have >= 1 executor")
        check_positive(self.nic_bandwidth, "nic_bandwidth")
        check_positive(self.disk_bandwidth, "disk_bandwidth")


class ClusterSpec:
    """An ordered collection of nodes forming one cluster.

    Worker nodes execute stages; storage nodes only serve source-stage
    input data over the network.
    """

    def __init__(self, nodes: Iterable[NodeSpec]) -> None:
        self._nodes: dict[str, NodeSpec] = {}
        for node in nodes:
            if node.node_id in self._nodes:
                raise ValueError(f"duplicate node_id {node.node_id!r}")
            self._nodes[node.node_id] = node
        if not self.worker_ids:
            raise ValueError("cluster must contain at least one worker node")

    @property
    def nodes(self) -> list[NodeSpec]:
        return list(self._nodes.values())

    @property
    def node_ids(self) -> list[str]:
        return list(self._nodes)

    @property
    def worker_ids(self) -> list[str]:
        return [n.node_id for n in self._nodes.values() if not n.is_storage]

    @property
    def storage_ids(self) -> list[str]:
        return [n.node_id for n in self._nodes.values() if n.is_storage]

    @property
    def num_workers(self) -> int:
        return len(self.worker_ids)

    @property
    def total_executors(self) -> int:
        return sum(n.executors for n in self._nodes.values())

    def node(self, node_id: str) -> NodeSpec:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"cluster has no node {node_id!r}") from None

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterSpec(workers={self.num_workers}, "
            f"storage={len(self.storage_ids)}, executors={self.total_executors})"
        )

    def partitioned(self, share: float) -> "ClusterSpec":
        """Return a copy with every node's resources scaled by ``share``.

        The paper's trace-driven simulation evenly partitions cluster
        resources among concurrently running jobs (Sec. 5.3); each job is
        then simulated on its fractional slice.  Executor counts are
        kept integral (minimum 1 per worker).
        """
        if not (0 < share <= 1):
            raise ValueError(f"share must be in (0, 1], got {share}")
        scaled = []
        for n in self._nodes.values():
            execs = 0 if n.is_storage else max(1, round(n.executors * share))
            scaled.append(
                replace(
                    n,
                    executors=execs,
                    nic_bandwidth=n.nic_bandwidth * share,
                    disk_bandwidth=n.disk_bandwidth * share,
                )
            )
        return ClusterSpec(scaled)


def uniform_cluster(
    num_workers: int,
    *,
    executors_per_worker: int = 2,
    nic_mbps: float = 480.0,
    disk_mb_per_sec: float = 150.0,
    storage_nodes: int = 0,
    storage_nic_mbps: "float | None" = None,
) -> ClusterSpec:
    """A homogeneous cluster of ``num_workers`` workers (+ storage nodes)."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    nodes = [
        NodeSpec(
            node_id=f"w{i}",
            executors=executors_per_worker,
            nic_bandwidth=mbps_to_bytes_per_sec(nic_mbps),
            disk_bandwidth=disk_mb_per_sec * MB,
        )
        for i in range(num_workers)
    ]
    for i in range(storage_nodes):
        nodes.append(
            NodeSpec(
                node_id=f"hdfs{i}",
                executors=0,
                nic_bandwidth=mbps_to_bytes_per_sec(storage_nic_mbps or nic_mbps),
                disk_bandwidth=disk_mb_per_sec * MB,
                is_storage=True,
            )
        )
    return ClusterSpec(nodes)


def ec2_m4large_cluster(
    num_workers: int = 30,
    *,
    storage_nodes: int = 3,
    nic_mbps: float = 450.0,
    disk_mb_per_sec: float = 150.0,
) -> ClusterSpec:
    """The paper's EC2 testbed: ``m4.large`` workers + dedicated HDFS nodes.

    Each m4.large has 2 vCPUs → 2 executors of 1 vCPU each (Sec. 5.1).
    The NIC bandwidth "ranging from 100 Mbps to 480 Mbps" is modeled by
    its sustained value (default 450 Mbps); the 32 GB SSD is modeled at
    a typical EBS-SSD sequential-write rate.
    """
    return uniform_cluster(
        num_workers,
        executors_per_worker=2,
        nic_mbps=nic_mbps,
        disk_mb_per_sec=disk_mb_per_sec,
        storage_nodes=storage_nodes,
    )


def alibaba_sim_cluster(
    num_machines: int = 16,
    *,
    cores_per_machine: int = 4,
    nic_mbps_range: tuple[float, float] = (100.0, 2000.0),
    disk_mb_per_sec: float = 80.0,
    storage_nodes: int = 2,
    rng: "int | object | None" = 0,
) -> ClusterSpec:
    """Alibaba-style simulation cluster (Sec. 5.3 parameters).

    The paper sets executors per machine to the CPU core count, draws
    NIC bandwidth uniformly between 100 Mbps and 2 Gbps (the only
    heterogeneous resource), and fixes disk bandwidth at 80 MB/s.
    ``num_machines`` defaults to a per-job slice rather than all 4,000
    machines, matching the even-partitioning simplification.
    """
    gen = resolve_rng(rng)
    lo, hi = nic_mbps_range
    if not (0 < lo <= hi):
        raise ValueError(f"invalid nic_mbps_range {nic_mbps_range}")
    nodes = [
        NodeSpec(
            node_id=f"m{i}",
            executors=cores_per_machine,
            nic_bandwidth=mbps_to_bytes_per_sec(float(gen.uniform(lo, hi))),
            disk_bandwidth=disk_mb_per_sec * MB,
        )
        for i in range(num_machines)
    ]
    for i in range(storage_nodes):
        nodes.append(
            NodeSpec(
                node_id=f"store{i}",
                executors=0,
                nic_bandwidth=gbps_to_bytes_per_sec(2.0),
                disk_bandwidth=disk_mb_per_sec * MB,
                is_storage=True,
            )
        )
    return ClusterSpec(nodes)
