"""Network topology: endpoint-limited full-bisection fabric.

The paper's model exposes a per-link available bandwidth ``B^{i,w}``
between a source node ``i`` and a worker ``w``.  We model the common
datacenter case: a non-blocking core, so a transfer is limited only by
the sender's NIC egress and the receiver's NIC ingress (each fairly
shared among the flows using it).  ``Topology`` resolves node ids to
dense indices and capacity arrays for the max-min fair-share solver,
and supports per-pair capacity overrides for experiments that need an
explicitly heterogeneous ``B^{i,w}``.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.util.validation import check_positive


class Topology:
    """Dense-index view of a cluster's network capacities."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.node_ids: list[str] = spec.node_ids
        self.index: dict[str, int] = {nid: i for i, nid in enumerate(self.node_ids)}
        self.egress_capacity = np.array(
            [spec.node(nid).nic_bandwidth for nid in self.node_ids], dtype=float
        )
        self.ingress_capacity = self.egress_capacity.copy()
        self._pair_caps: dict[tuple[int, int], float] = {}
        #: Bumped on every capacity mutation; consumers (the small-path
        #: water-filling solver) key per-solve working buffers on it so
        #: unchanged capacities are not re-materialized every solve.
        #: Code that mutates ``egress_capacity``/``ingress_capacity``
        #: in place directly must call :meth:`invalidate` (the built-in
        #: mutators here do).
        self.version = 0
        self._capacity_lists: "tuple[int, list[float], list[float]] | None" = None
        #: Optional oversubscribed-core model: rack id per node index and
        #: the aggregate capacity of the core fabric shared by all
        #: cross-rack flows.  ``None`` = non-blocking core (the default).
        self.rack_of: "np.ndarray | None" = None
        self.core_capacity: "float | None" = None

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    def invalidate(self) -> None:
        """Mark capacity state changed (bumps :attr:`version`)."""
        self.version += 1
        self._capacity_lists = None

    def scale_nic(self, node_id: str, factor: float) -> None:
        """Scale one node's NIC egress and ingress capacity in place.

        Degradation-injection path; factors compound across calls.
        """
        idx = self.index[node_id]
        self.egress_capacity[idx] *= factor
        self.ingress_capacity[idx] *= factor
        self.invalidate()

    def capacity_lists(self) -> "tuple[list[float], list[float]]":
        """Base (egress, ingress) capacities as plain float lists.

        Cached until :meth:`invalidate`; callers must *copy* before
        mutating (the water-filling solvers consume capacity as they
        freeze flows).  The cached floats are ``ndarray.tolist()``
        output, so values are bit-identical to a fresh conversion.
        """
        cached = self._capacity_lists
        if cached is not None and cached[0] == self.version:
            return cached[1], cached[2]
        egress = self.egress_capacity.tolist()
        ingress = self.ingress_capacity.tolist()
        self._capacity_lists = (self.version, egress, ingress)
        return egress, ingress

    def set_core_oversubscription(
        self, racks: "dict[str, int]", core_capacity: float
    ) -> None:
        """Model an oversubscribed datacenter core.

        Parameters
        ----------
        racks:
            Rack id per node id (every node must appear).
        core_capacity:
            Aggregate bytes/s the core fabric carries; all cross-rack
            flows share it max-min fairly on top of their NIC limits.
        """
        check_positive(core_capacity, "core_capacity")
        missing = set(self.node_ids) - racks.keys()
        if missing:
            raise ValueError(f"racks missing entries for nodes {sorted(missing)}")
        self.rack_of = np.array([racks[nid] for nid in self.node_ids], dtype=np.int64)
        self.core_capacity = float(core_capacity)

    def crosses_core(self, src_idx: np.ndarray, dst_idx: np.ndarray) -> np.ndarray:
        """Boolean mask of flows traversing the core fabric."""
        if self.rack_of is None:
            return np.zeros(len(src_idx), dtype=bool)
        return self.rack_of[src_idx] != self.rack_of[dst_idx]

    def set_pair_capacity(self, src: str, dst: str, bandwidth: float) -> None:
        """Cap the ``src → dst`` path below the endpoint NICs.

        Used by ablations that model an oversubscribed core or the
        paper's explicitly heterogeneous ``B^{i,w}``.
        """
        check_positive(bandwidth, "bandwidth")
        self._pair_caps[(self.index[src], self.index[dst])] = bandwidth

    def pair_capacity(self, src_idx: int, dst_idx: int) -> float:
        """Path capacity between two node indices ignoring sharing."""
        base = min(self.egress_capacity[src_idx], self.ingress_capacity[dst_idx])
        override = self._pair_caps.get((src_idx, dst_idx))
        return base if override is None else min(base, override)

    def pair_cap_array(self, src_idx: np.ndarray, dst_idx: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`pair_capacity` for flow arrays."""
        caps = np.minimum(self.egress_capacity[src_idx], self.ingress_capacity[dst_idx])
        if self._pair_caps:
            for i, (s, d) in enumerate(zip(src_idx, dst_idx)):
                override = self._pair_caps.get((int(s), int(d)))
                if override is not None:
                    caps[i] = min(caps[i], override)
        return caps
