"""Static validators for DelayStage schedules.

Checks that an Algorithm 1 output (or a delay table read back from
``metrics.properties``) satisfies the paper's objective constraints
(4)-(7):

* delays lie in the scan interval ``[l_k, u_k]`` — with the
  reproduction's ready-relative semantics ``l_k = 0`` and ``u_k`` is
  bounded by the incumbent makespan ``T_max``;
* intra-path precedence (5)-(7): delays apply *after* a stage becomes
  ready (all parents finished), so precedence cannot be violated at
  runtime — the checkable residue is that every recorded execution
  path is a real dependency chain of the job's DAG;
* the schedule covers exactly the parallel-stage set ``K``: scheduling
  a sequential stage can only inflate the makespan, and a missing
  member means Algorithm 1 never considered it.

Rules take ``(schedule, job)``; pass the same job the schedule was
computed for.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.core.schedule import DelaySchedule
from repro.dag.graph import ancestors, parallel_stage_set
from repro.dag.job import Job
from repro.verify.diagnostics import Finding, Severity
from repro.verify.rules import rule

#: Relative slack applied to the ``u_k`` upper-bound check (S003).
UPPER_BOUND_SLACK = 1.05


def _loc(schedule: DelaySchedule, stage_id: str = "") -> str:
    base = f"schedule:{schedule.job_id}"
    return f"{base}/stage:{stage_id}" if stage_id else base


@rule("S001", "delays are finite and non-negative", target="schedule")
def check_delay_domain(schedule: DelaySchedule, job: Job) -> Iterator[Finding]:
    for sid in sorted(schedule.delays):
        x = schedule.delays[sid]
        if math.isnan(x) or math.isinf(x) or x < 0:
            yield Finding(
                "S001",
                Severity.ERROR,
                _loc(schedule, sid),
                f"delay must be finite and >= 0, got {x!r}",
                {"delay": x},
            )


@rule("S002", "schedule covers exactly the parallel-stage set K", target="schedule")
def check_covers_parallel_set(schedule: DelaySchedule, job: Job) -> Iterator[Finding]:
    members = parallel_stage_set(job)
    keys = set(schedule.delays)
    for sid in sorted(keys - set(job.stage_ids)):
        yield Finding(
            "S002",
            Severity.ERROR,
            _loc(schedule, sid),
            f"schedule delays a stage the job does not contain",
            {"stage": sid},
        )
    for sid in sorted((keys & set(job.stage_ids)) - members):
        x = schedule.delays[sid]
        if x > 0:
            yield Finding(
                "S002",
                Severity.ERROR,
                _loc(schedule, sid),
                f"sequential stage carries a positive delay ({x:.3f} s); "
                "delaying a stage outside K can only inflate the makespan",
                {"delay": x},
            )
        else:
            yield Finding(
                "S002",
                Severity.INFO,
                _loc(schedule, sid),
                "schedule lists a sequential stage (harmless at zero delay)",
            )
    for sid in sorted(members - keys):
        yield Finding(
            "S002",
            Severity.WARNING,
            _loc(schedule, sid),
            "parallel stage missing from the delay table (submits immediately; "
            "Algorithm 1 output always covers K)",
        )


@rule("S003", "delays lie within the scan bounds [l_k, u_k]", target="schedule")
def check_delay_bounds(schedule: DelaySchedule, job: Job) -> Iterator[Finding]:
    """``l_k = 0`` (ready-relative semantics); ``u_k`` is the largest
    incumbent makespan the scan could have used."""
    candidates = [schedule.baseline_makespan, schedule.predicted_makespan]
    candidates += [p.execution_time for p in schedule.paths]
    upper = max((u for u in candidates if math.isfinite(u)), default=0.0)
    if upper <= 0:
        return
    bound = upper * UPPER_BOUND_SLACK
    for sid in sorted(schedule.delays):
        x = schedule.delays[sid]
        if math.isfinite(x) and x > bound:
            yield Finding(
                "S003",
                Severity.WARNING,
                _loc(schedule, sid),
                f"delay {x:.1f} s exceeds the scan upper bound u_k ≈ {upper:.1f} s; "
                "delaying past the incumbent makespan can only extend it",
                {"delay": x, "upper_bound": upper},
            )


@rule("S004", "execution paths respect intra-path precedence", target="schedule")
def check_precedence(schedule: DelaySchedule, job: Job) -> Iterator[Finding]:
    """Eq. (5)-(7): each recorded path must be a dependency chain.

    Ready-relative delays make the runtime constraints vacuous; a path
    whose order contradicts the DAG means the schedule was computed
    against a different (or corrupted) job.
    """
    known = set(job.stage_ids)
    for path in schedule.paths:
        unknown = [sid for sid in path if sid not in known]
        if unknown:
            yield Finding(
                "S004",
                Severity.ERROR,
                _loc(schedule),
                f"execution path {list(path.stages)} references stages "
                f"{unknown} absent from job {job.job_id!r}",
                {"path": list(path.stages), "unknown": unknown},
            )
            continue
        for parent, child in zip(path.stages, path.stages[1:]):
            if parent not in ancestors(job, child):
                yield Finding(
                    "S004",
                    Severity.ERROR,
                    _loc(schedule),
                    f"path {list(path.stages)}: {child!r} does not depend on "
                    f"{parent!r}; precedence (5)-(7) cannot be established",
                    {"path": list(path.stages)},
                )


@rule("S005", "schedule metrics are consistent", target="schedule")
def check_metrics(schedule: DelaySchedule, job: Job) -> Iterator[Finding]:
    for name, value in (
        ("predicted_makespan", schedule.predicted_makespan),
        ("baseline_makespan", schedule.baseline_makespan),
        ("compute_seconds", schedule.compute_seconds),
    ):
        if math.isnan(value) or math.isinf(value) or value < 0:
            yield Finding(
                "S005",
                Severity.ERROR,
                _loc(schedule),
                f"{name} must be finite and >= 0, got {value!r}",
                {"field": name, "value": value},
            )
    if schedule.evaluations < 0:
        yield Finding(
            "S005",
            Severity.ERROR,
            _loc(schedule),
            f"evaluations must be >= 0, got {schedule.evaluations}",
            {"field": "evaluations", "value": schedule.evaluations},
        )
    if (
        schedule.baseline_makespan > 0
        and math.isfinite(schedule.predicted_makespan)
        and schedule.predicted_makespan
        > schedule.baseline_makespan * UPPER_BOUND_SLACK
    ):
        yield Finding(
            "S005",
            Severity.WARNING,
            _loc(schedule),
            f"predicted makespan {schedule.predicted_makespan:.1f} s is worse than "
            f"the zero-delay baseline {schedule.baseline_makespan:.1f} s; the "
            "fallback-to-immediate safety net should have engaged",
            {"predicted": schedule.predicted_makespan,
             "baseline": schedule.baseline_makespan},
        )
    for sid, t in sorted(schedule.standalone_times.items()):
        if math.isnan(t) or math.isinf(t) or t < 0:
            yield Finding(
                "S005",
                Severity.ERROR,
                _loc(schedule, sid),
                f"standalone time must be finite and >= 0, got {t!r}",
                {"standalone_time": t},
            )
