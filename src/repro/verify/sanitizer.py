"""Sanitizer mode: opt-in runtime invariant checks for the fluid engine.

The Sec. 3 processor-sharing model the paper builds on makes promises
the simulator must actually keep: max-min shares never exceed capacity
and satisfy the water-filling optimality condition, work volumes never
go negative, the clock is monotone, and the event log agrees with the
reported makespan.  This module holds those checks; the simulator
modules (:mod:`repro.simulator.engine`, ``fairshare``, ``simulation``)
call them behind an ``if sanitizer.ENABLED`` guard, so the cost when
off is one module-attribute read per call site.

Enable via :func:`enable`, the :func:`sanitized` context manager, or
the ``REPRO_SANITIZE=1`` environment variable.  The test suite enables
it for every test through an autouse fixture in ``tests/conftest.py``.

This module deliberately imports nothing from ``repro`` at module
level so the innermost simulator modules can import it without cycles.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import Topology
    from repro.simulator.flows import ComputeDemand, DiskWrite, NetworkFlow
    from repro.simulator.simulation import SimulationResult

#: Relative tolerance for capacity / share comparisons.
REL_TOL = 1e-6
#: Absolute floor so zero-capacity comparisons stay meaningful.
ABS_TOL = 1e-9

#: Global switch read by the simulator's call sites.
ENABLED: bool = os.environ.get("REPRO_SANITIZE", "").lower() not in ("", "0", "false", "no")


class SanitizerError(AssertionError):
    """A runtime invariant of the fluid model was violated."""


def enable(on: bool = True) -> None:
    """Turn sanitizer mode on or off process-wide."""
    global ENABLED
    ENABLED = bool(on)


def enabled() -> bool:
    return ENABLED


@contextmanager
def sanitized(on: bool = True) -> Iterator[None]:
    """Scoped enable/disable; restores the previous state on exit."""
    global ENABLED
    previous = ENABLED
    ENABLED = bool(on)
    try:
        yield
    finally:
        ENABLED = previous


def _tol(capacity: float) -> float:
    return ABS_TOL + REL_TOL * abs(capacity)


# ------------------------------------------------------------------ #
# engine invariants
# ------------------------------------------------------------------ #

def check_clock_monotone(previous: float, now: float) -> None:
    """The simulation clock must never run backwards."""
    if now < previous - ABS_TOL:
        raise SanitizerError(
            f"simulation clock moved backwards: {previous:.9f} -> {now:.9f}"
        )


def check_rates_valid(items: Sequence) -> None:
    """Allocator post-condition: every rate finite and >= 0, every
    remaining volume finite and >= 0."""
    for item in items:
        if math.isnan(item.rate) or math.isinf(item.rate) or item.rate < 0:
            raise SanitizerError(
                f"allocator produced invalid rate {item.rate!r} on "
                f"{type(item).__name__}"
            )
        if math.isnan(item.remaining) or math.isinf(item.remaining) or item.remaining < 0:
            raise SanitizerError(
                f"work item has invalid remaining volume {item.remaining!r} on "
                f"{type(item).__name__}"
            )


# ------------------------------------------------------------------ #
# fair-share invariants
# ------------------------------------------------------------------ #

def check_network_allocation(
    flows: "Sequence[NetworkFlow]",
    topology: "Topology",
    rates: Sequence[float],
) -> None:
    """Max-min post-conditions: feasibility + water-filling optimality.

    Feasibility: no flow exceeds its cap; no NIC (or the core fabric)
    carries more than its capacity.  Optimality: a flow below its cap
    must be *bottlenecked* — some saturated link it uses carries no
    flow faster than it (the classic max-min characterization); if no
    such link exists, capacity was left on the table or fairness was
    violated.
    """
    if not flows:
        return
    egress_used = [0.0] * topology.num_nodes
    ingress_used = [0.0] * topology.num_nodes
    egress_max = [0.0] * topology.num_nodes
    ingress_max = [0.0] * topology.num_nodes
    core_used = 0.0
    core_max = 0.0
    crossings = []
    for flow, rate in zip(flows, rates):
        r = float(rate)
        if math.isnan(r) or r < -ABS_TOL:
            raise SanitizerError(f"negative/NaN network rate {r!r} for flow "
                                 f"{flow.src}->{flow.dst}")
        si, di = topology.index[flow.src], topology.index[flow.dst]
        cap = min(flow.rate_cap, topology.pair_capacity(si, di))
        if r > cap + _tol(cap):
            raise SanitizerError(
                f"flow {flow.src}->{flow.dst} rate {r:.6g} exceeds its cap "
                f"{cap:.6g}"
            )
        egress_used[si] += r
        ingress_used[di] += r
        egress_max[si] = max(egress_max[si], r)
        ingress_max[di] = max(ingress_max[di], r)
        crosses = (
            topology.rack_of is not None
            and topology.rack_of[si] != topology.rack_of[di]
        )
        crossings.append(crosses)
        if crosses:
            core_used += r
            core_max = max(core_max, r)

    for i in range(topology.num_nodes):
        for used, capacity, kind in (
            (egress_used[i], float(topology.egress_capacity[i]), "egress"),
            (ingress_used[i], float(topology.ingress_capacity[i]), "ingress"),
        ):
            if used > capacity + _tol(capacity):
                raise SanitizerError(
                    f"{kind} at node {topology.node_ids[i]!r} oversubscribed: "
                    f"{used:.6g} > capacity {capacity:.6g}"
                )
    if topology.core_capacity is not None and core_used > topology.core_capacity + _tol(
        topology.core_capacity
    ):
        raise SanitizerError(
            f"core fabric oversubscribed: {core_used:.6g} > "
            f"{topology.core_capacity:.6g}"
        )

    for flow, rate, crosses in zip(flows, rates, crossings):
        r = float(rate)
        si, di = topology.index[flow.src], topology.index[flow.dst]
        cap = min(flow.rate_cap, topology.pair_capacity(si, di))
        if r >= cap - _tol(cap):
            continue  # cap-limited: exempt from the bottleneck condition
        eg_cap = float(topology.egress_capacity[si])
        in_cap = float(topology.ingress_capacity[di])
        bottlenecked = (
            (egress_used[si] >= eg_cap - _tol(eg_cap)
             and r >= egress_max[si] - _tol(egress_max[si]))
            or (ingress_used[di] >= in_cap - _tol(in_cap)
                and r >= ingress_max[di] - _tol(ingress_max[di]))
            or (crosses
                and topology.core_capacity is not None
                and core_used >= topology.core_capacity - _tol(topology.core_capacity)
                and r >= core_max - _tol(core_max))
        )
        if not bottlenecked:
            raise SanitizerError(
                f"water-filling optimality violated: flow {flow.src}->{flow.dst} "
                f"at {r:.6g} is below its cap {cap:.6g} yet no saturated link "
                "bottlenecks it (capacity left on the table or unfair share)"
            )


def check_compute_allocation(
    demands: "Sequence[ComputeDemand]",
    executors_per_node: dict[str, float],
) -> None:
    """Equal-split post-conditions for executor sharing.

    Per node: shares sum to exactly the executor count (work
    conservation), every share is positive, each stage receives the
    same aggregate share, and each demand's rate equals
    ``share * process_rate``.
    """
    by_node: dict[str, list] = {}
    for d in demands:
        by_node.setdefault(d.node, []).append(d)
    for node, items in by_node.items():
        executors = float(executors_per_node.get(node, 0))
        total = 0.0
        per_stage: dict[tuple, float] = {}
        for d in items:
            if d.executor_share <= 0:
                raise SanitizerError(
                    f"compute demand for stage {d.stage_key} on {node!r} has "
                    f"non-positive executor share {d.executor_share!r}"
                )
            expected = d.executor_share * d.process_rate
            if abs(d.rate - expected) > _tol(expected):
                raise SanitizerError(
                    f"compute rate {d.rate:.6g} inconsistent with share "
                    f"{d.executor_share:.6g} * R_k {d.process_rate:.6g} on {node!r}"
                )
            total += d.executor_share
            per_stage[d.stage_key] = per_stage.get(d.stage_key, 0.0) + d.executor_share
        if abs(total - executors) > _tol(executors):
            raise SanitizerError(
                f"executor shares at {node!r} sum to {total:.6g}, expected "
                f"{executors:.6g} (work conservation)"
            )
        shares = list(per_stage.values())
        if shares and max(shares) - min(shares) > _tol(max(shares)):
            raise SanitizerError(
                f"unequal per-stage executor shares at {node!r}: {per_stage!r}"
            )


def check_disk_allocation(
    writes: "Sequence[DiskWrite]",
    disk_bw_per_node: dict[str, float],
) -> None:
    """Disk rates per node sum to the disk bandwidth and split equally."""
    by_node: dict[str, list] = {}
    for w in writes:
        by_node.setdefault(w.node, []).append(w)
    for node, items in by_node.items():
        bw = float(disk_bw_per_node.get(node, 0.0))
        total = sum(w.rate for w in items)
        if abs(total - bw) > _tol(bw):
            raise SanitizerError(
                f"disk rates at {node!r} sum to {total:.6g}, expected the full "
                f"bandwidth {bw:.6g}"
            )
        rates = [w.rate for w in items]
        if max(rates) - min(rates) > _tol(max(rates)):
            raise SanitizerError(f"unequal disk shares at {node!r}: {rates!r}")


# ------------------------------------------------------------------ #
# end-of-run consistency
# ------------------------------------------------------------------ #

def check_result(result: "SimulationResult") -> None:
    """Event-log / record consistency for a finished simulation.

    Per stage: ready <= submit <= read-done <= compute-done <= finish.
    Per job: the job finish equals its last stage finish.  Event
    timestamps are monotone and the per-stage submission/completion
    events agree with the records.

    Fault runs (``result.faults`` set) relax exactly the clauses that
    recovery legitimately bends: stages of *failed* jobs may carry
    partial (or mid-recompute) lifecycle timestamps and are exempt from
    the per-stage ordering clause; failed jobs' finish time is their
    failure time, not a stage finish; and events may repeat per (kind,
    stage) on requeue, so records are compared against the *last*
    occurrence.  Fault-specific invariants are then checked on top via
    :func:`check_fault_invariants`.
    """
    from repro.simulator.events import EventKind  # lazy: avoids import cycle

    stats = getattr(result, "faults", None)
    failed_jobs = set(stats.jobs_failed) if stats is not None else set()

    labels = ["ready", "submit", "read_done", "compute_done", "finish"]
    for (job_id, stage_id), rec in result.stage_records.items():
        times = [rec.ready_time, rec.submit_time, rec.read_done_time,
                 rec.compute_done_time, rec.finish_time]
        if job_id in failed_jobs:
            # A failed job's stages stop wherever the failure caught
            # them — including mid-recompute, where a later read-done
            # may legally follow an earlier (stale) finish time.
            continue
        if any(math.isnan(t) for t in times):
            raise SanitizerError(
                f"stage {job_id}/{stage_id} finished with unset lifecycle "
                f"timestamps: {times!r}"
            )
        for (la, ta), (lb, tb) in zip(zip(labels, times), zip(labels[1:], times[1:])):
            if tb < ta - ABS_TOL:
                raise SanitizerError(
                    f"stage {job_id}/{stage_id}: {lb} at {tb:.9f} precedes "
                    f"{la} at {ta:.9f}"
                )

    for job_id, jrec in result.job_records.items():
        if job_id in failed_jobs:
            continue  # finish time is the failure instant, not a stage finish
        finishes = [
            rec.finish_time
            for (jid, _sid), rec in result.stage_records.items()
            if jid == job_id
        ]
        if finishes and abs(jrec.finish_time - max(finishes)) > ABS_TOL + REL_TOL * abs(
            jrec.finish_time
        ):
            raise SanitizerError(
                f"job {job_id!r} finish {jrec.finish_time:.9f} does not match "
                f"its last stage finish {max(finishes):.9f}"
            )

    checked_kinds = (EventKind.STAGE_READY, EventKind.STAGE_SUBMITTED,
                     EventKind.STAGE_COMPLETED)
    # Fault runs may re-log lifecycle events on requeue/recompute; the
    # record keeps the final values, so compare the *last* occurrence.
    last_only = stats is not None
    last_seen: dict[tuple, object] = {}
    previous = -math.inf
    for event in result.events:
        if event.time < previous - ABS_TOL:
            raise SanitizerError(
                f"event log is not time-ordered: {event.kind.value} at "
                f"{event.time:.9f} after t={previous:.9f}"
            )
        previous = max(previous, event.time)
        if event.kind not in checked_kinds or event.job_id in failed_jobs:
            continue
        if last_only:
            last_seen[(event.kind, event.job_id, event.stage_id)] = event
            continue
        _check_event_record(result, event)
    for event in last_seen.values():
        _check_event_record(result, event)

    if stats is not None:
        check_fault_invariants(result)


def _check_event_record(result: "SimulationResult", event) -> None:
    from repro.simulator.events import EventKind  # lazy: avoids import cycle

    rec = result.stage_records.get((event.job_id, event.stage_id))
    if rec is None:
        return
    expected = {
        EventKind.STAGE_READY: rec.ready_time,
        EventKind.STAGE_SUBMITTED: rec.submit_time,
        EventKind.STAGE_COMPLETED: rec.finish_time,
    }.get(event.kind)
    if expected is not None and abs(event.time - expected) > ABS_TOL + REL_TOL * abs(
        expected
    ):
        raise SanitizerError(
            f"event {event.kind.value} for {event.job_id}/{event.stage_id} "
            f"at {event.time:.9f} disagrees with the record ({expected:.9f})"
        )


def check_fault_invariants(result: "SimulationResult") -> None:
    """Recovery-layer invariants for a fault-injected run.

    Retries never exceed the per-stage budget (plus the one attempt
    that exhausts it, which must belong to a failed job); every failed
    job has a ``JOB_FAILED`` event and no ``JOB_COMPLETED``; all finish
    times are finite; work accounting is non-negative.
    """
    from repro.simulator.events import EventKind  # lazy: avoids import cycle

    stats = result.faults
    if stats is None:
        return
    failed = set(stats.jobs_failed)
    budget = stats.retry_budget
    for label, count in stats.stage_retries.items():
        job_id = label.split("/", 1)[0]
        limit = budget + 1 if job_id in failed else budget
        if count > limit:
            raise SanitizerError(
                f"stage {label} retried {count} times, exceeding the retry "
                f"budget of {budget}"
            )
    for job_id, jrec in result.job_records.items():
        if math.isnan(jrec.finish_time) or math.isinf(jrec.finish_time):
            raise SanitizerError(
                f"job {job_id!r} ended a fault run with a non-finite finish "
                f"time {jrec.finish_time!r}"
            )
    if stats.work_lost_bytes < 0 or stats.work_recomputed_bytes < 0:
        raise SanitizerError(
            f"negative work accounting: lost={stats.work_lost_bytes!r} "
            f"recomputed={stats.work_recomputed_bytes!r}"
        )
    if result.events:
        completed = {
            e.job_id for e in result.events if e.kind is EventKind.JOB_COMPLETED
        }
        failed_logged = {
            e.job_id for e in result.events if e.kind is EventKind.JOB_FAILED
        }
        for job_id in failed:
            if job_id in completed:
                raise SanitizerError(
                    f"failed job {job_id!r} also logged JOB_COMPLETED"
                )
            if job_id not in failed_logged:
                raise SanitizerError(
                    f"failed job {job_id!r} never logged JOB_FAILED"
                )
        for job_id in failed_logged - failed:
            raise SanitizerError(
                f"JOB_FAILED logged for {job_id!r} but it is not in the "
                "failed-jobs set"
            )
