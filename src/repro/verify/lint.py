"""Custom AST lint for the reproduction's code-quality invariants.

Four rule families, tuned to the failure modes that corrupt
reproduction results silently:

* ``L001`` **determinism** — no stdlib ``random.*``, ``time.time()``,
  ``datetime.now()``-family calls, or legacy ``numpy.random.*``
  module-level functions anywhere in ``src/repro`` except the blessed
  RNG plumbing in ``util/rng.py``.  All randomness must flow through
  seeded generators (:func:`repro.util.rng.resolve_rng`).
* ``L002`` **mutable default arguments** — ``def f(x=[])`` shares one
  list across calls.
* ``L003`` **bare except** — ``except:`` swallows ``KeyboardInterrupt``
  and hides real failures.
* ``L004`` **float equality** — ``==``/``!=`` against float literals
  inside ``simulator/`` and ``model/`` code, where every quantity is
  the product of fluid-rate arithmetic and exact comparison is a bug
  magnet (use ``math.isclose`` or an explicit tolerance).

Suppress a finding by appending ``# noqa: L00x`` (or a bare
``# noqa``) to the offending line.  Run from the command line via
``python tools/lint_repro.py <paths>`` or ``python -m repro.verify.lint``.
"""

from __future__ import annotations

import argparse
import ast
import json
import pathlib
import re
import sys
from dataclasses import dataclass
from typing import Iterable, Iterator

#: Files (matched by trailing path parts) exempt from the determinism rule.
DETERMINISM_EXEMPT = ("util/rng.py",)
#: Directories whose files get the float-equality rule.
FLOAT_EQ_DIRS = frozenset({"simulator", "model"})
#: ``datetime``/``date`` constructors that read the wall clock.
_WALLCLOCK_ATTRS = frozenset({"now", "utcnow", "today"})
#: ``time`` module functions that read the wall clock.
_TIME_ATTRS = frozenset({"time", "time_ns"})
#: Legacy module-level ``numpy.random`` functions (unseeded global state).
_NP_RANDOM_LEGACY = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal", "lognormal",
})

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<rules>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclass(frozen=True)
class LintFinding:
    """One lint violation at a concrete source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _suppressed(source_lines: list[str], line: int, rule: str) -> bool:
    if not (1 <= line <= len(source_lines)):
        return False
    match = _NOQA_RE.search(source_lines[line - 1])
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True
    return rule in {r.strip().upper() for r in rules.split(",")}


class _Visitor(ast.NodeVisitor):
    """Single-pass collector for all four rule families."""

    def __init__(self, path: str, *, check_determinism: bool, check_float_eq: bool):
        self.path = path
        self.check_determinism = check_determinism
        self.check_float_eq = check_float_eq
        self.findings: list[LintFinding] = []
        #: local alias -> canonical module name, e.g. {"_time": "time"}
        self._module_aliases: dict[str, str] = {}
        #: names imported *from* forbidden modules, e.g. from random import randint
        self._tainted_names: dict[str, str] = {}

    # ---------------------------- helpers ---------------------------- #

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            LintFinding(self.path, node.lineno, node.col_offset, rule, message)
        )

    def _alias_of(self, node: ast.expr) -> "str | None":
        """Canonical module name if ``node`` is a bare imported-module name."""
        if isinstance(node, ast.Name):
            return self._module_aliases.get(node.id)
        return None

    # ---------------------------- imports ---------------------------- #

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._module_aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.check_determinism and node.module == "random":
            self._emit(node, "L001",
                       "import from stdlib 'random'; use repro.util.rng instead")
        for alias in node.names:
            local = alias.asname or alias.name
            if node.module == "time" and alias.name in _TIME_ATTRS:
                self._tainted_names[local] = f"time.{alias.name}"
            if node.module == "datetime" and alias.name == "datetime":
                self._module_aliases[local] = "datetime.datetime"
        self.generic_visit(node)

    # ------------------------- determinism --------------------------- #

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.check_determinism:
            base = self._alias_of(node.value)
            if base == "random":
                self._emit(node, "L001",
                           f"stdlib random.{node.attr} is nondeterministic; "
                           "use repro.util.rng.resolve_rng")
            elif base == "time" and node.attr in _TIME_ATTRS:
                self._emit(node, "L001",
                           f"time.{node.attr}() reads the wall clock; pass "
                           "timestamps explicitly (perf_counter is fine for "
                           "duration measurement)")
            elif base in ("datetime", "datetime.datetime") and node.attr in _WALLCLOCK_ATTRS:
                if base == "datetime.datetime" or isinstance(node.value, ast.Name):
                    self._emit(node, "L001",
                               f"datetime {node.attr}() reads the wall clock")
            elif node.attr in _NP_RANDOM_LEGACY:
                value = node.value
                if (
                    isinstance(value, ast.Attribute)
                    and value.attr == "random"
                    and self._alias_of(value.value) == "numpy"
                ):
                    self._emit(node, "L001",
                               f"legacy numpy.random.{node.attr} uses unseeded "
                               "global state; use numpy.random.default_rng via "
                               "repro.util.rng")
            if (
                isinstance(node.value, ast.Attribute)
                and node.attr in _WALLCLOCK_ATTRS
                and node.value.attr == "datetime"
                and self._alias_of(node.value.value) == "datetime"
            ):
                self._emit(node, "L001",
                           f"datetime.datetime.{node.attr}() reads the wall clock")
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if (
            self.check_determinism
            and isinstance(node.ctx, ast.Load)
            and node.id in self._tainted_names
        ):
            self._emit(node, "L001",
                       f"{self._tainted_names[node.id]} reads the wall clock")
        self.generic_visit(node)

    # ---------------------- mutable defaults ------------------------- #

    def _check_defaults(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda"
    ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            )
            if mutable:
                self._emit(default, "L002",
                           "mutable default argument is shared across calls; "
                           "default to None and construct inside the function")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # ------------------------- bare except --------------------------- #

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(node, "L003",
                       "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                       "catch Exception (or narrower) explicitly")
        self.generic_visit(node)

    # ------------------------ float equality ------------------------- #

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.check_float_eq:
            operands = [node.left, *node.comparators]
            has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
            has_float = any(
                isinstance(o, ast.Constant) and isinstance(o.value, float)
                for o in operands
            )
            if has_eq and has_float:
                self._emit(node, "L004",
                           "==/!= against a float literal in simulator/model "
                           "code; use math.isclose or an explicit tolerance")
        self.generic_visit(node)


def _float_eq_applies(path: pathlib.Path) -> bool:
    return bool(FLOAT_EQ_DIRS.intersection(path.parts))


def _determinism_applies(path: pathlib.Path) -> bool:
    posix = path.as_posix()
    return not any(posix.endswith(suffix) for suffix in DETERMINISM_EXEMPT)


def lint_source(source: str, path: "str | pathlib.Path") -> list[LintFinding]:
    """Lint one file's source text; returns findings after noqa filtering."""
    p = pathlib.Path(path)
    try:
        tree = ast.parse(source, filename=str(p))
    except SyntaxError as exc:
        return [LintFinding(str(p), exc.lineno or 0, exc.offset or 0, "L000",
                            f"syntax error: {exc.msg}")]
    visitor = _Visitor(
        str(p),
        check_determinism=_determinism_applies(p),
        check_float_eq=_float_eq_applies(p),
    )
    visitor.visit(tree)
    lines = source.splitlines()
    return [
        f for f in visitor.findings if not _suppressed(lines, f.line, f.rule)
    ]


def lint_paths(paths: Iterable["str | pathlib.Path"]) -> list[LintFinding]:
    """Lint files and directory trees; directories are walked for ``.py``."""
    findings: list[LintFinding] = []
    for target in paths:
        target = pathlib.Path(target)
        files = sorted(target.rglob("*.py")) if target.is_dir() else [target]
        for file in files:
            findings.extend(lint_source(file.read_text(encoding="utf-8"), file))
    return findings


def iter_findings(paths: Iterable["str | pathlib.Path"]) -> Iterator[LintFinding]:
    yield from lint_paths(paths)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_repro",
        description="repro custom lint: determinism, mutable defaults, "
                    "bare except, float equality",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON")
    args = parser.parse_args(argv)

    try:
        findings = lint_paths(args.paths)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding)
        if findings:
            print(f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via tools/lint_repro.py
    sys.exit(main())
