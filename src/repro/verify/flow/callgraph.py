"""Project linker: symbol tables + call graph over module summaries.

Takes the per-module :class:`~repro.verify.flow.summary.ModuleSummary`
facts and resolves their symbolic call references into a concrete call
graph between project functions:

* ``local`` refs resolve against the defining module's top level;
* ``qname`` refs resolve against the global function/class tables
  (a call to a class is an edge to its ``__init__`` when defined);
* ``method``/``typed`` refs dispatch *virtually* through the class
  hierarchy: an edge is added to every implementation the receiver
  could select — the statically-known class, the nearest ancestor
  providing the method, and every subclass override.  This is what
  lets taint planted in one ``Scheduler`` subclass reach the generic
  ``run_with_scheduler`` driver.

External calls (``time.time``, ``numpy.*``, ...) are not graph nodes;
their effects were already recorded as per-function source/impurity
facts at extraction time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.verify.flow.summary import FunctionFact, ModuleSummary


@dataclass
class CallGraph:
    """Resolved project call graph.

    ``edges`` maps caller qname -> {callee qname}; ``edge_lines`` keeps
    one representative call-site line per (caller, callee) pair so
    taint chains can cite concrete locations.
    """

    functions: dict[str, FunctionFact] = field(default_factory=dict)
    modules: dict[str, ModuleSummary] = field(default_factory=dict)
    #: function qname -> defining module qname
    owner: dict[str, str] = field(default_factory=dict)
    edges: dict[str, set[str]] = field(default_factory=dict)
    edge_lines: dict[tuple[str, str], int] = field(default_factory=dict)

    def callees(self, qname: str) -> set[str]:
        return self.edges.get(qname, set())

    def callers_index(self) -> dict[str, set[str]]:
        """Reverse adjacency: callee -> {caller}."""
        rev: dict[str, set[str]] = {}
        for caller, callees in self.edges.items():
            for callee in callees:
                rev.setdefault(callee, set()).add(caller)
        return rev

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Transitive closure of ``roots`` over call edges (roots included)."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            fn = stack.pop()
            if fn in seen:
                continue
            seen.add(fn)
            stack.extend(self.edges.get(fn, ()))
        return seen


class _Hierarchy:
    """Class hierarchy across all summaries, for virtual dispatch."""

    def __init__(self, modules: dict[str, ModuleSummary]) -> None:
        #: class qname -> (module, ClassFact)
        self.classes: dict[str, tuple[str, object]] = {}
        for mod_name, summary in modules.items():
            for cls in summary.classes.values():
                self.classes[f"{mod_name}.{cls.name}"] = (mod_name, cls)
        #: class qname -> resolved base class qnames
        self.bases: dict[str, list[str]] = {}
        for qname, (mod_name, cls) in self.classes.items():
            resolved = []
            for base in cls.bases:  # type: ignore[attr-defined]
                resolved_base = self._resolve_class(base, mod_name, modules)
                if resolved_base:
                    resolved.append(resolved_base)
            self.bases[qname] = resolved
        #: class qname -> direct subclasses
        self.subclasses: dict[str, list[str]] = {}
        for qname, base_list in self.bases.items():
            for base in base_list:
                self.subclasses.setdefault(base, []).append(qname)

    def _resolve_class(self, dotted: str, mod_name: str,
                       modules: dict[str, ModuleSummary]) -> "str | None":
        # Already-qualified project class?
        if dotted in self.classes:
            return dotted
        # Local class name in the defining module?
        candidate = f"{mod_name}.{dotted}"
        if candidate in self.classes:
            return candidate
        # Dotted path whose module part is a project module?
        if "." in dotted:
            mod, _, name = dotted.rpartition(".")
            if mod in modules and f"{mod}.{name}" in self.classes:
                return f"{mod}.{name}"
        return None

    def resolve_class_ref(self, dotted: str, mod_name: str,
                          modules: dict[str, ModuleSummary]) -> "str | None":
        return self._resolve_class(dotted, mod_name, modules)

    def _defines(self, cls_qname: str, method: str) -> bool:
        entry = self.classes.get(cls_qname)
        if entry is None:
            return False
        return method in entry[1].methods  # type: ignore[attr-defined]

    def _ancestor_with(self, cls_qname: str, method: str) -> "str | None":
        """Nearest ancestor (DFS, left-to-right) defining ``method``."""
        for base in self.bases.get(cls_qname, ()):
            if self._defines(base, method):
                return base
            found = self._ancestor_with(base, method)
            if found:
                return found
        return None

    def _subtree(self, cls_qname: str) -> Iterable[str]:
        yield cls_qname
        for sub in self.subclasses.get(cls_qname, ()):
            yield from self._subtree(sub)

    def implementations(self, cls_qname: str, method: str) -> list[str]:
        """Every implementation a ``cls_qname``-typed receiver may select.

        The class' own definition or its nearest ancestor's, plus every
        override in the subtree (virtual dispatch).
        """
        out: set[str] = set()
        if self._defines(cls_qname, method):
            out.add(self._method_qname(cls_qname, method))
        else:
            ancestor = self._ancestor_with(cls_qname, method)
            if ancestor:
                out.add(self._method_qname(ancestor, method))
        for sub in self._subtree(cls_qname):
            if self._defines(sub, method):
                out.add(self._method_qname(sub, method))
        return sorted(out)

    def _method_qname(self, cls_qname: str, method: str) -> str:
        mod_name, cls = self.classes[cls_qname]
        return f"{mod_name}.{cls.name}.{method}"  # type: ignore[attr-defined]


def link(modules: dict[str, ModuleSummary]) -> CallGraph:
    """Build the project call graph from per-module summaries."""
    graph = CallGraph(modules=modules)
    hierarchy = _Hierarchy(modules)

    # Global function table: "mod.f" and "mod.Cls.f".
    for mod_name, summary in modules.items():
        for fact in summary.functions.values():
            qname = f"{mod_name}.{fact.name}"
            graph.functions[qname] = fact
            graph.owner[qname] = mod_name

    for mod_name, summary in modules.items():
        for fact in summary.functions.values():
            caller = f"{mod_name}.{fact.name}"
            targets: list[tuple[str, int]] = []
            for ref in fact.calls:
                if ref.kind == "local":
                    candidate = f"{mod_name}.{ref.target}"
                    if candidate in graph.functions:
                        targets.append((candidate, ref.line))
                    else:  # a local class? edge to its __init__
                        init = f"{mod_name}.{ref.target}.__init__"
                        if init in graph.functions:
                            targets.append((init, ref.line))
                elif ref.kind == "qname":
                    if ref.target in graph.functions:
                        targets.append((ref.target, ref.line))
                    else:
                        cls_q = hierarchy.resolve_class_ref(
                            ref.target, mod_name, modules)
                        if cls_q:
                            init = f"{cls_q}.__init__"
                            if init in graph.functions:
                                targets.append((init, ref.line))
                elif ref.kind in ("method", "typed"):
                    if ref.kind == "method":
                        cls_q = hierarchy.resolve_class_ref(
                            ref.cls, mod_name, modules) if ref.cls else None
                    else:
                        cls_q = hierarchy.resolve_class_ref(
                            ref.cls, mod_name, modules)
                    if cls_q:
                        for impl in hierarchy.implementations(
                                cls_q, ref.target):
                            if impl in graph.functions:
                                targets.append((impl, ref.line))
            for callee, line in targets:
                graph.edges.setdefault(caller, set()).add(callee)
                graph.edge_lines.setdefault((caller, callee), line)
    return graph
