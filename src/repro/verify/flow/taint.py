"""Interprocedural taint fixpoint over the project call graph.

Seeds are the *unsuppressed* direct taint sources extracted per
function (wall clock, unseeded RNG, filesystem ordering, environment
reads, set-order escapes, ``id()`` keys).  Taint then propagates from
callee to caller to a fixpoint: a function that (transitively) calls a
tainted function is itself tainted.  Multi-source BFS over the reverse
graph yields, for every tainted function, a *shortest* call chain back
to a concrete source site — that chain is attached to the F007
findings so a report reads like a stack trace.

Suppressed sources (``# flow: allow[...]`` pragma or baseline entry)
do **not** seed the fixpoint: a justified source is sanctioned, so its
callers stay clean.  Suppressing a *derived* F007 finding, by
contrast, silences only that one function and never blocks
propagation.

Every function also gets a three-way classification:

* ``tainted``       — reaches a nondeterminism source;
* ``pure``          — no sources, no shared-state writes, no impure
                      externals, and only pure project callees;
* ``deterministic`` — everything else: deterministic given its inputs
                      but effectful (I/O, registry mutation, ...).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Mapping

from repro.verify.flow.callgraph import CallGraph
from repro.verify.flow.summary import SourceSite

#: External call prefixes that make a function impure (not nondeterministic).
IMPURE_EXTERNAL_PREFIXES = (
    "os.", "sys.", "io.", "shutil.", "subprocess.", "socket.",
    "logging.", "pathlib.",
)

#: Impure builtins reachable as bare-name calls.
IMPURE_BUILTINS = frozenset({"print", "open", "input", "exec", "eval"})


@dataclass
class TaintInfo:
    """Why one function is tainted."""

    #: qname of the function holding the seeding source site
    root: str
    #: the source symbol, e.g. ``time.time``
    symbol: str
    #: the seeding rule, e.g. ``F001``
    rule: str
    #: call chain from this function down to ``root`` (inclusive)
    chain: list[str]


@dataclass
class TaintResult:
    """Fixpoint output: per-function classification + taint provenance."""

    #: qname -> "tainted" | "pure" | "deterministic"
    classification: dict[str, str]
    #: qname -> provenance, for tainted functions only
    taint: dict[str, TaintInfo]

    def counts(self) -> dict[str, int]:
        out = {"tainted": 0, "pure": 0, "deterministic": 0}
        for kind in self.classification.values():
            out[kind] += 1
        return out


def run_taint(
    graph: CallGraph,
    seeds: Mapping[str, list[SourceSite]],
) -> TaintResult:
    """Propagate taint from ``seeds`` (function qname -> source sites).

    Only functions present in ``graph.functions`` participate; unknown
    seed keys are ignored.
    """
    callers = graph.callers_index()

    taint: dict[str, TaintInfo] = {}
    queue: deque[str] = deque()
    for qname, sites in seeds.items():
        if qname not in graph.functions or not sites:
            continue
        site = sites[0]
        taint[qname] = TaintInfo(
            root=qname, symbol=site.symbol, rule=site.rule, chain=[qname])
        queue.append(qname)

    # Multi-source BFS over reverse edges: first visit = shortest chain.
    while queue:
        callee = queue.popleft()
        info = taint[callee]
        for caller in callers.get(callee, ()):
            if caller in taint:
                continue
            taint[caller] = TaintInfo(
                root=info.root, symbol=info.symbol, rule=info.rule,
                chain=[caller, *info.chain])
            queue.append(caller)

    classification = {
        qname: ("tainted" if qname in taint else "pure")
        for qname in graph.functions
    }

    # Purity fixpoint: demote writers/impure-external callers, then
    # propagate "deterministic" (impure-but-deterministic) to callers
    # of non-pure functions.
    impure: deque[str] = deque()
    for qname, fact in graph.functions.items():
        if classification[qname] != "pure":
            continue
        if fact.writes or _calls_impure_external(fact):
            classification[qname] = "deterministic"
            impure.append(qname)
    while impure:
        callee = impure.popleft()
        for caller in callers.get(callee, ()):
            if classification.get(caller) == "pure":
                classification[caller] = "deterministic"
                impure.append(caller)

    return TaintResult(classification=classification, taint=taint)


def _calls_impure_external(fact) -> bool:
    for ref in fact.calls:
        if ref.kind == "qname":
            if ref.target.startswith(IMPURE_EXTERNAL_PREFIXES):
                return True
        elif ref.kind == "local" and ref.target in IMPURE_BUILTINS:
            return True
    return False
