"""Finding suppression: inline ``# flow: allow[...]`` pragmas + baseline.

Two sanctioned ways to silence a flow finding:

* **Inline pragma** — append ``# flow: allow[F001]`` (comma-separated
  list, or ``allow[*]`` for any rule) to the offending line, ideally
  with a justification after the bracket::

      return max(os.cpu_count() or 1, 1)  # flow: allow[F004] worker
      # count never affects results (merge is order-independent)

  A pragma on a taint *source* line sanctions the source: callers are
  not tainted through it.  A pragma on a derived finding (an F007
  function, an F101 write) silences only that finding.

* **Baseline file** — a committed JSON file
  (``tools/flow_baseline.json`` by default) listing accepted findings
  by ``(rule, path, symbol)``.  Line numbers are deliberately not part
  of the key so routine edits don't churn the baseline.  ``symbol`` is
  the function name within the module (``"<module>"`` for module-level
  code, ``"*"`` to match any).

The analyzer reports suppressed findings separately (counts + sites in
the JSON payload), so suppression is auditable, never invisible.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass
from typing import Iterable, Mapping

_PRAGMA_RE = re.compile(
    r"#\s*flow:\s*allow\[(?P<rules>[A-Za-z0-9*, ]+)\]", re.IGNORECASE)


def parse_pragmas(source_lines: "list[str]") -> dict[int, set[str]]:
    """Map 1-based line number -> set of allowed rules (``"*"`` = all)."""
    pragmas: dict[int, set[str]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match:
            rules = {r.strip().upper() for r in match.group("rules").split(",")
                     if r.strip()}
            pragmas[lineno] = rules
    return pragmas


def pragma_allows(pragmas: Mapping[int, set[str]], line: int,
                  rule: str) -> bool:
    rules = pragmas.get(line)
    if rules is None:
        return False
    return "*" in rules or rule.upper() in rules


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding in the committed baseline."""

    rule: str
    path: str
    symbol: str = "*"
    reason: str = ""

    def matches(self, rule: str, path: str, symbol: str) -> bool:
        if self.rule != rule:
            return False
        norm = path.replace("\\", "/")
        if not (norm == self.path or norm.endswith("/" + self.path)):
            return False
        return self.symbol in ("*", symbol)


class Baseline:
    """Committed suppression set loaded from a JSON file."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries = list(entries)

    @classmethod
    def load(cls, path: "str | pathlib.Path | None") -> "Baseline":
        """Load a baseline file; a missing/None path is an empty baseline."""
        if path is None:
            return cls()
        p = pathlib.Path(path)
        if not p.exists():
            return cls()
        data = json.loads(p.read_text(encoding="utf-8"))
        entries = [
            BaselineEntry(
                rule=e["rule"], path=e["path"],
                symbol=e.get("symbol", "*"), reason=e.get("reason", ""),
            )
            for e in data.get("suppressions", ())
        ]
        return cls(entries)

    def allows(self, rule: str, path: str, symbol: str) -> bool:
        return any(e.matches(rule, path, symbol) for e in self.entries)

    def to_json(self) -> str:
        payload = {
            "version": 1,
            "suppressions": [
                {"rule": e.rule, "path": e.path, "symbol": e.symbol,
                 "reason": e.reason}
                for e in self.entries
            ],
        }
        return json.dumps(payload, indent=2) + "\n"
